#include "runtime/online_sampler.hh"

namespace re::runtime {

OnlineSampler::OnlineSampler(const core::SamplerConfig& config,
                             std::uint64_t window_refs)
    : sampler_(config),
      window_refs_(window_refs ? window_refs : 1),
      // Two windows: long enough to protect hot reuses that straddle a
      // boundary, short enough that a stream's cold-miss evidence lands
      // within a couple of windows of the access.
      watch_timeout_refs_(2 * window_refs_) {}

std::optional<WindowProfile> OnlineSampler::observe(Pc pc, Addr addr,
                                                    Cycle now) {
  if (!window_open_) {
    window_begin_cycle_ = now;
    window_open_ = true;
  }
  sampler_.observe(pc, addr);
  ++refs_in_window_;
  if (refs_in_window_ < window_refs_) return std::nullopt;

  WindowProfile window;
  window.profile = sampler_.harvest(watch_timeout_refs_);
  window.begin_cycle = window_begin_cycle_;
  window.end_cycle = now;
  refs_in_window_ = 0;
  window_open_ = false;
  return window;
}

void merge_window_profile(core::Profile& accumulated,
                          const core::Profile& window) {
  accumulated.sample_period = window.sample_period;
  accumulated.reuse_samples.insert(accumulated.reuse_samples.end(),
                                   window.reuse_samples.begin(),
                                   window.reuse_samples.end());
  accumulated.stride_samples.insert(accumulated.stride_samples.end(),
                                    window.stride_samples.begin(),
                                    window.stride_samples.end());
  accumulated.dangling_reuse_samples += window.dangling_reuse_samples;
  for (const auto& [pc, count] : window.dangling_by_pc) {
    accumulated.dangling_by_pc[pc] += count;
  }
  for (const auto& [pc, count] : window.pc_execution_counts) {
    accumulated.pc_execution_counts[pc] += count;
  }
  accumulated.total_references += window.total_references;
}

}  // namespace re::runtime
