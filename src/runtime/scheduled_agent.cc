#include "runtime/scheduled_agent.hh"

namespace re::runtime {

ScheduledPlanAgent::ScheduledPlanAgent(
    std::vector<core::PhaseSegment> segments,
    std::vector<std::vector<core::PrefetchPlan>> per_phase_plans)
    : segments_(std::move(segments)),
      per_phase_plans_(std::move(per_phase_plans)) {
  if (!segments_.empty()) install_segment(0);
}

void ScheduledPlanAgent::install_segment(std::size_t index) {
  segment_ = index;
  overlay_.plans.clear();
  overlay_.active = true;  // an empty phase plan set means "no prefetching"
  const int phase = segments_[index].phase_id;
  if (phase < 0 ||
      static_cast<std::size_t>(phase) >= per_phase_plans_.size()) {
    return;
  }
  for (const core::PrefetchPlan& plan :
       per_phase_plans_[static_cast<std::size_t>(phase)]) {
    workloads::PrefetchOp op;
    op.distance_bytes = plan.distance_bytes;
    op.hint = plan.hint;
    overlay_.plans.emplace(plan.pc, op);
  }
}

void ScheduledPlanAgent::on_reference(int core, Pc pc, Addr addr, Cycle now,
                                      sim::MemorySystem& memory) {
  (void)core;
  (void)pc;
  (void)addr;
  (void)now;
  (void)memory;
  ++refs_;
  while (segment_ + 1 < segments_.size() &&
         refs_ >= segments_[segment_ + 1].begin_ref) {
    install_segment(segment_ + 1);
  }
}

}  // namespace re::runtime
