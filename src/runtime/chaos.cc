#include "runtime/chaos.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "runtime/plan_cache.hh"
#include "support/rng.hh"

namespace re::runtime {

namespace {

/// Golden-ratio mix for deriving per-episode injector seeds: deterministic
/// in (schedule seed, core, episode start), independent across episodes.
constexpr std::uint64_t kSeedMix = 0x9E3779B97F4A7C15ull;

}  // namespace

const char* chaos_fault_name(ChaosFaultKind kind) {
  switch (kind) {
    case ChaosFaultKind::WindowDrop: return "window-drop";
    case ChaosFaultKind::ClockSkew: return "clock-skew";
    case ChaosFaultKind::GovernorBlackout: return "governor-blackout";
    case ChaosFaultKind::ProfileCorruption: return "profile-corruption";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::generate(const ChaosConfig& config) {
  ChaosSchedule schedule;
  schedule.config_ = config;
  if (config.fault_rate <= 0.0 || config.cores <= 0 ||
      config.horizon_refs == 0) {
    return schedule;
  }
  const double rate = std::min(config.fault_rate, 0.95);
  const double active_fraction =
      std::min(std::max(config.active_fraction, 0.0), 1.0);
  const std::uint64_t active_limit = static_cast<std::uint64_t>(
      static_cast<double>(config.horizon_refs) * active_fraction);
  const double mean_len = static_cast<double>(
      std::max<std::uint64_t>(config.mean_episode_refs, 1));
  // Gap length chosen so episodes cover ~`rate` of the active span:
  // len / (len + gap) = rate.
  const double mean_gap = mean_len * (1.0 - rate) / rate;

  Rng master(config.seed);
  for (int core = 0; core < config.cores; ++core) {
    Rng rng(master.fork());
    std::uint64_t pos = static_cast<std::uint64_t>(
        mean_gap * (0.5 + rng.uniform()));
    while (pos < active_limit) {
      ChaosEpisode episode;
      episode.core = core;
      episode.kind = static_cast<ChaosFaultKind>(
          rng.next(static_cast<std::uint64_t>(kChaosFaultKinds)));
      episode.begin_ref = pos;
      const std::uint64_t len = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(mean_len * (0.5 + rng.uniform())), 1);
      episode.end_ref = std::min(pos + len, active_limit);
      switch (episode.kind) {
        case ChaosFaultKind::ClockSkew: {
          // Cycle drift per reference, far beyond any sane cycles/memop so
          // one window suffices to cross the supervisor's Δ bound.
          const std::int64_t drift =
              static_cast<std::int64_t>(rng.range(4000, 40000));
          episode.magnitude = rng.chance(0.5) ? drift : -drift;
          break;
        }
        case ChaosFaultKind::ProfileCorruption:
          episode.magnitude = static_cast<std::int64_t>(rng.range(20, 80));
          break;
        case ChaosFaultKind::WindowDrop:
        case ChaosFaultKind::GovernorBlackout:
          episode.magnitude = 0;
          break;
      }
      if (episode.end_ref > episode.begin_ref) {
        schedule.episodes_.push_back(episode);
      }
      pos = episode.end_ref + std::max<std::uint64_t>(
                static_cast<std::uint64_t>(mean_gap * (0.5 + rng.uniform())),
                1);
    }
  }
  return schedule;
}

ChaosSchedule ChaosSchedule::from_episodes(const ChaosConfig& config,
                                           std::vector<ChaosEpisode> episodes) {
  ChaosSchedule schedule;
  schedule.config_ = config;
  schedule.episodes_ = std::move(episodes);
  std::sort(schedule.episodes_.begin(), schedule.episodes_.end(),
            [](const ChaosEpisode& a, const ChaosEpisode& b) {
              return a.core != b.core ? a.core < b.core
                                      : a.begin_ref < b.begin_ref;
            });
  return schedule;
}

std::uint64_t ChaosSchedule::last_faulted_ref(int core) const {
  std::uint64_t last = 0;
  for (const ChaosEpisode& episode : episodes_) {
    if (episode.core == core) last = std::max(last, episode.end_ref);
  }
  return last;
}

std::string ChaosSchedule::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "chaos seed=%" PRIu64 " rate=%.3f horizon=%" PRIu64
                " active=%.2f cores=%d episodes=%zu\n",
                config_.seed, config_.fault_rate, config_.horizon_refs,
                config_.active_fraction, config_.cores, episodes_.size());
  std::string out = buf;
  for (const ChaosEpisode& episode : episodes_) {
    std::snprintf(buf, sizeof(buf),
                  "  core=%d kind=%s begin=%" PRIu64 " end=%" PRIu64
                  " magnitude=%" PRId64 "\n",
                  episode.core, chaos_fault_name(episode.kind),
                  episode.begin_ref, episode.end_ref, episode.magnitude);
    out += buf;
  }
  return out;
}

ChaosInjector::ChaosInjector(ChaosSchedule schedule)
    : schedule_(std::move(schedule)) {
  int cores = schedule_.config().cores;
  for (const ChaosEpisode& episode : schedule_.episodes()) {
    cores = std::max(cores, episode.core + 1);
  }
  cursors_.resize(static_cast<std::size_t>(std::max(cores, 1)));
  for (const ChaosEpisode& episode : schedule_.episodes()) {
    cursors_[static_cast<std::size_t>(episode.core)].episodes.push_back(
        episode);
  }
  for (CoreCursor& cursor : cursors_) {
    std::sort(cursor.episodes.begin(), cursor.episodes.end(),
              [](const ChaosEpisode& a, const ChaosEpisode& b) {
                return a.begin_ref < b.begin_ref;
              });
  }
}

RefChaos ChaosInjector::advance(int core, std::uint64_t ref_index) {
  RefChaos out;
  if (core < 0 || static_cast<std::size_t>(core) >= cursors_.size()) {
    return out;
  }
  CoreCursor& cursor = cursors_[static_cast<std::size_t>(core)];
  while (cursor.next < cursor.episodes.size() &&
         cursor.episodes[cursor.next].begin_ref <= ref_index) {
    cursor.active.push_back(cursor.episodes[cursor.next]);
    ++cursor.next;
  }
  cursor.active.erase(
      std::remove_if(cursor.active.begin(), cursor.active.end(),
                     [ref_index](const ChaosEpisode& episode) {
                       return episode.end_ref <= ref_index;
                     }),
      cursor.active.end());

  const ChaosEpisode* corruption = nullptr;
  for (const ChaosEpisode& episode : cursor.active) {
    switch (episode.kind) {
      case ChaosFaultKind::WindowDrop:
        out.drop = true;
        break;
      case ChaosFaultKind::ClockSkew:
        out.clock_skew += episode.magnitude *
                          static_cast<std::int64_t>(ref_index -
                                                    episode.begin_ref);
        break;
      case ChaosFaultKind::GovernorBlackout:
        out.governor_blackout = true;
        break;
      case ChaosFaultKind::ProfileCorruption:
        corruption = &episode;
        break;
    }
  }

  if (corruption != nullptr) {
    if (!cursor.injector.has_value()) {
      const std::uint64_t seed =
          schedule_.config().seed ^
          (kSeedMix * (static_cast<std::uint64_t>(core) + 1)) ^
          corruption->begin_ref;
      cursor.injector.emplace(core::FaultConfig::uniform(
          static_cast<double>(corruption->magnitude) / 100.0, seed));
    }
    out.profile_injector = &cursor.injector.value();
  } else {
    cursor.injector.reset();
  }
  return out;
}

ChaosRunResult run_chaos_mix(
    const sim::MachineConfig& machine,
    const std::vector<const workloads::Program*>& programs, bool hw_prefetch,
    const ChaosConfig& config, const SupervisorOptions& options) {
  ChaosRunResult out;
  ChaosConfig adjusted = config;
  adjusted.cores = static_cast<int>(programs.size());
  out.schedule = ChaosSchedule::generate(adjusted);

  out.baseline = sim::run_mix(machine, programs, hw_prefetch);
  {
    Supervisor supervisor(programs, machine, options);
    std::vector<sim::CoreAgent*> agents(programs.size(), &supervisor);
    out.clean = sim::run_mix_adaptive(machine, programs, hw_prefetch, agents);
  }
  {
    Supervisor supervisor(programs, machine, options);
    ChaosInjector injector(out.schedule);
    supervisor.set_chaos(&injector);
    std::vector<sim::CoreAgent*> agents(programs.size(), &supervisor);
    out.chaotic =
        sim::run_mix_adaptive(machine, programs, hw_prefetch, agents);
    for (int core = 0; core < supervisor.cores(); ++core) {
      out.domains.push_back(supervisor.domain_stats(core));
    }
    out.any_open = supervisor.any_open();
    out.total_trips = supervisor.total_trips();
  }

  for (std::size_t i = 0;
       i < out.chaotic.apps.size() && i < out.clean.apps.size(); ++i) {
    if (out.clean.apps[i].cycles == 0) continue;
    const double slowdown =
        static_cast<double>(out.chaotic.apps[i].cycles) /
        static_cast<double>(out.clean.apps[i].cycles);
    out.worst_slowdown = std::max(out.worst_slowdown, slowdown);
  }
  for (std::size_t i = 0;
       i < out.chaotic.apps.size() && i < out.baseline.apps.size(); ++i) {
    if (out.baseline.apps[i].cycles == 0) continue;
    const double slowdown =
        static_cast<double>(out.chaotic.apps[i].cycles) /
        static_cast<double>(out.baseline.apps[i].cycles);
    out.worst_vs_baseline = std::max(out.worst_vs_baseline, slowdown);
  }
  for (const DomainStats& domain : out.domains) {
    if (domain.recoveries > 0) {
      out.worst_recovery_windows =
          std::max(out.worst_recovery_windows, domain.last_recovery_windows);
    }
  }
  return out;
}

std::string CacheCrashReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trials=%zu clean=%zu degraded=%zu failed=%zu "
                "entries/trial=%zu recovered=%" PRIu64
                " accounting_errors=%zu torn_write_survives=%s",
                trials, clean_loads, degraded_loads, failed_loads,
                entries_per_trial, entries_recovered, accounting_errors,
                survives_torn_write ? "yes" : "no");
  return buf;
}

namespace {

/// Deterministic cache for the crash sweep: a handful of entries with
/// distinct signatures and plans.
PlanCache make_crash_check_cache(const PlanCacheOptions& options,
                                 std::size_t entries) {
  PlanCache cache(options);
  for (std::size_t i = 0; i < entries; ++i) {
    core::PhaseSignature signature;
    const Pc base = static_cast<Pc>(0x1000 + 0x100 * i);
    signature[base] = 0.5;
    signature[base + 4] = 0.3;
    signature[base + 8] = 0.2;
    std::vector<core::PrefetchPlan> plans;
    for (std::size_t p = 0; p < 3; ++p) {
      core::PrefetchPlan plan;
      plan.pc = static_cast<Pc>(base + 16 * p);
      plan.distance_bytes = static_cast<std::int64_t>(64 * (i + 1) * (p + 1));
      plan.hint = p % 2 == 0 ? workloads::PrefetchHint::T0
                             : workloads::PrefetchHint::NTA;
      plans.push_back(plan);
    }
    cache.insert(signature, std::move(plans));
  }
  return cache;
}

}  // namespace

CacheCrashReport chaos_cache_crash_check(std::uint64_t seed,
                                         std::size_t trials,
                                         const std::string& scratch_path) {
  CacheCrashReport report;
  report.trials = trials;
  report.entries_per_trial = 8;

  PlanCacheOptions options;
  options.capacity = 12;
  const PlanCache cache =
      make_crash_check_cache(options, report.entries_per_trial);
  const std::string journal = cache.to_journal();
  const std::size_t header_end = journal.find('\n') + 1;

  Rng rng(seed);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::string damaged = journal;
    // Corrupt strictly past the header: the contract is that body damage
    // quarantines entries but never refuses the load.
    const std::size_t offset =
        header_end + rng.next(std::max<std::size_t>(
                         damaged.size() - header_end, std::size_t{1}));
    switch (rng.next(3)) {
      case 0:  // bit rot: flip one byte
        damaged[offset] = static_cast<char>(
            static_cast<unsigned char>(damaged[offset]) ^
            static_cast<unsigned char>(1 + rng.next(255)));
        break;
      case 1:  // torn tail: truncate mid-entry
        damaged.resize(offset);
        break;
      default: {  // zeroed span: a hole punched by a failed sector write
        const std::size_t span =
            std::min<std::size_t>(rng.range(1, 64), damaged.size() - offset);
        for (std::size_t i = 0; i < span; ++i) damaged[offset + i] = '\0';
        break;
      }
    }

    Expected<PlanCache::LoadReport> loaded =
        PlanCache::load(damaged, options);
    if (!loaded.has_value()) {
      ++report.failed_loads;
      continue;
    }
    const PlanCache::LoadReport& result = loaded.value();
    report.entries_recovered += result.loaded;
    if (result.degraded()) {
      ++report.degraded_loads;
    } else {
      ++report.clean_loads;
    }
    if (result.loaded + result.quarantined + result.missing !=
        report.entries_per_trial) {
      ++report.accounting_errors;
    }
  }

  // Kill mid-write: the previous snapshot was committed by rename; the
  // killed writer leaves only a stray .tmp behind. Reloading the target must
  // recover every entry.
  report.survives_torn_write = false;
  if (cache.save(scratch_path).ok()) {
    {
      std::ofstream torn(scratch_path + ".tmp",
                         std::ios::binary | std::ios::trunc);
      torn << journal.substr(0, journal.size() / 2);
    }
    Expected<PlanCache::LoadReport> reloaded =
        PlanCache::load_file(scratch_path, options);
    report.survives_torn_write =
        reloaded.has_value() && !reloaded.value().degraded() &&
        reloaded.value().loaded == report.entries_per_trial;
  }
  std::remove((scratch_path + ".tmp").c_str());
  std::remove(scratch_path.c_str());

  return report;
}

}  // namespace re::runtime
