// Online phase detection with hysteresis.
//
// Each completed sampling window is fingerprinted by its normalized per-PC
// reference mix (core::PhaseSignature — the same math the offline
// phase clustering uses). The detector matches the fingerprint against the
// centroids of the phases seen so far; an unmatched window founds a new
// phase. Unlike the offline pass, switching the *committed* phase requires
// `hysteresis_windows` consecutive windows agreeing on the new phase, so a
// single noisy or transition-straddling window cannot thrash the plan
// overlay (CGO'12 phase guiding, applied online).
#pragma once

#include <cstdint>
#include <vector>

#include "core/phases.hh"

namespace re::runtime {

struct PhaseDetectorOptions {
  /// Signature distance below which a window joins an existing phase (same
  /// scale as core::PhaseOptions::similarity_threshold, range [0, 2]).
  double similarity_threshold = 0.5;
  /// Consecutive windows that must match a different phase before the
  /// committed phase switches. 1 = switch immediately.
  int hysteresis_windows = 2;
};

struct PhaseDecision {
  /// Committed phase after hysteresis (what the controller acts on).
  int phase = 0;
  /// Phase this window matched before hysteresis.
  int raw_phase = 0;
  /// Committed phase changed with this window.
  bool switched = false;
  /// This window founded a new phase.
  bool novel = false;
};

class PhaseDetector {
 public:
  explicit PhaseDetector(const PhaseDetectorOptions& options = {});

  PhaseDecision observe(const core::PhaseSignature& signature);

  int current_phase() const { return current_ < 0 ? 0 : current_; }
  int num_phases() const { return static_cast<int>(centroids_.size()); }
  const core::PhaseSignature& centroid(int phase) const {
    return centroids_[static_cast<std::size_t>(phase)];
  }
  std::uint64_t windows_observed() const { return windows_; }
  std::uint64_t switches() const { return switches_; }

 private:
  PhaseDetectorOptions opts_;
  std::vector<core::PhaseSignature> centroids_;
  int current_ = -1;    // no window seen yet
  int candidate_ = -1;  // pending switch target
  int candidate_streak_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace re::runtime
