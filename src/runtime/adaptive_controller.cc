#include "runtime/adaptive_controller.hh"

#include "engine/pipeline.hh"
#include "sim/memory_system.hh"

namespace re::runtime {

AdaptiveController::AdaptiveController(const workloads::Program& program,
                                       const sim::MachineConfig& machine,
                                       const AdaptiveOptions& options)
    : program_(&program),
      machine_(machine),
      opts_(options),
      sampler_(options.sampler, options.window_refs),
      detector_(options.phases),
      cache_(options.cache),
      governor_(options.governor, machine.dram_bytes_per_cycle) {}

void AdaptiveController::on_reference(int core, Pc pc, Addr addr, Cycle now,
                                      sim::MemorySystem& memory) {
  (void)core;
  std::optional<WindowProfile> window = sampler_.observe(pc, addr, now);
  if (window) {
    if (window_fault_injector_ != nullptr) {
      window->profile = window_fault_injector_->inject(window->profile);
    }
    close_window(*window, now, memory);
  }
}

void AdaptiveController::close_window(const WindowProfile& window, Cycle now,
                                      sim::MemorySystem& memory) {
  ++stats_.windows;

  // Online Δ: measured under the *current* plans, which is the only Δ an
  // online system can observe (the paper measures its Δ offline with
  // performance counters). The EWMA lives in engine/delta.hh — the one
  // shared Δ implementation.
  delta_ewma_.observe(window.cycles_per_memop());

  const core::PhaseSignature signature = core::normalize_signature(
      window.profile.pc_execution_counts, window.refs());
  const PhaseDecision decision = detector_.observe(signature);

  // Watchpoints survive window boundaries, but not phase boundaries: an
  // open watch belongs to the regime that armed it. Flush leftovers into
  // the OLD phase's profile (drop them if that profile is already capped).
  if (decision.raw_phase != last_raw_phase_) {
    if (last_raw_phase_ >= 0) {
      core::Profile& prev = phase_profiles_[last_raw_phase_];
      sampler_.flush_open_watches(
          prev.total_references < opts_.max_phase_profile_refs ? &prev
                                                               : nullptr);
    }
    last_raw_phase_ = decision.raw_phase;
  }

  // Grow the (bounded) sub-profile of the phase this window belongs to.
  core::Profile& accumulated = phase_profiles_[decision.raw_phase];
  if (accumulated.total_references < opts_.max_phase_profile_refs) {
    merge_window_profile(accumulated, window.profile);
  }

  // Plan management for the committed phase: hot-swap from the cache, or
  // re-optimize a novel phase once it has accumulated enough evidence.
  bool plans_dirty = false;
  if (!plans_valid_ || active_phase_ != decision.phase) {
    const core::PhaseSignature& centroid =
        detector_.centroid(decision.phase);
    if (const std::vector<core::PrefetchPlan>* cached =
            cache_.lookup(centroid)) {
      active_plans_ = *cached;
      active_phase_ = decision.phase;
      plans_valid_ = true;
      plan_cpm_ = 0.0;   // unknown — armed from measurement after settling
      plan_refs_ = 0;    // growth trigger stays off for cached plans
      ++stats_.hot_swaps;
      plans_dirty = true;
    } else if (phase_profiles_[decision.phase].total_references >=
               opts_.min_reoptimize_refs) {
      reoptimize(decision.phase);
      plans_dirty = true;
    }
    // else: evidence floor not reached — keep the previous phase's plans
    // active rather than guessing.
  }

  // Refinement: judge the active plans against evidence that postdates
  // them, but only after the Δ EWMA has settled into the new regime.
  if (plans_dirty) {
    windows_since_plan_change_ = 0;
  } else if (plans_valid_ && decision.phase == active_phase_ &&
             ++windows_since_plan_change_ >= opts_.refine_settle_windows &&
             phase_profiles_[active_phase_].total_references >=
                 opts_.min_reoptimize_refs) {
    const double delta_cpm = delta_ewma_.value();
    if (plan_cpm_ <= 0.0) {
      // Hot-swapped plans carry no Δ; arm the baseline from measurement.
      plan_cpm_ = delta_cpm;
    } else {
      bool diverged = false;
      if (opts_.refine_divergence_ratio > 1.0 && delta_cpm > 0.0) {
        const double ratio = delta_cpm > plan_cpm_ ? delta_cpm / plan_cpm_
                                                   : plan_cpm_ / delta_cpm;
        diverged = ratio >= opts_.refine_divergence_ratio;
      }
      const std::uint64_t acc_refs =
          phase_profiles_[active_phase_].total_references;
      const bool grown =
          opts_.refine_growth_factor > 1.0 && plan_refs_ > 0 &&
          acc_refs > plan_refs_ &&
          (static_cast<double>(acc_refs) >=
               opts_.refine_growth_factor * static_cast<double>(plan_refs_) ||
           acc_refs >= opts_.max_phase_profile_refs);
      if (diverged || grown) {
        reoptimize(active_phase_);
        ++stats_.refinements;
        plans_dirty = true;
        windows_since_plan_change_ = 0;
      }
    }
  }

  const GovernorMode mode = governor_.observe_window(
      dram_override_ != nullptr ? *dram_override_ : memory.dram_stats(), now);
  if (mode != applied_mode_) {
    applied_mode_ = mode;
    plans_dirty = true;
  }
  if (plans_dirty) rebuild_overlay();
}

void AdaptiveController::reoptimize(int phase) {
  core::OptimizerOptions options = opts_.optimizer;
  // The windowed EWMA enters as *measured* Δ: an explicitly configured
  // assumed Δ still outranks it (engine/delta.hh precedence), and with
  // neither set the engine falls back to the baseline simulation.
  options.measured_cycles_per_memop = delta_ewma_.value();
  const engine::EngineContext ctx{opts_.executor, &store_};
  const core::OptimizationReport report = engine::run_optimize_with_profile(
      *program_, phase_profiles_[phase], machine_, options, ctx);

  active_plans_ = report.plans;
  active_phase_ = phase;
  plans_valid_ = true;
  plan_cpm_ = report.cycles_per_memop;
  plan_refs_ = phase_profiles_[phase].total_references;
  windows_since_plan_change_ = 0;
  cache_.insert(detector_.centroid(phase), report.plans);
  ++stats_.reoptimizations;
}

void AdaptiveController::rebuild_overlay() {
  overlay_.plans.clear();
  overlay_.active = plans_valid_;
  if (!plans_valid_) return;  // warm-up: defer to the program's own plans
  if (applied_mode_ == GovernorMode::Suppress) return;  // active + empty
  for (const core::PrefetchPlan& plan : active_plans_) {
    workloads::PrefetchOp op;
    op.distance_bytes = plan.distance_bytes;
    op.hint = applied_mode_ == GovernorMode::Demote
                  ? workloads::PrefetchHint::NTA
                  : plan.hint;
    overlay_.plans.emplace(plan.pc, op);
  }
}

AdaptiveStats AdaptiveController::stats() const {
  AdaptiveStats out = stats_;
  out.phases = detector_.num_phases();
  out.phase_switches = detector_.switches();
  out.measured_cycles_per_memop = delta_ewma_.value();
  out.cache = cache_.stats();
  out.governor = governor_.stats();
  return out;
}

}  // namespace re::runtime
