// Windowed online sampling, piggybacked on execution.
//
// The offline flow profiles a whole run up front; the adaptive runtime
// cannot. Instead it feeds every executed reference through the same
// core::Sampler machinery (hardware-watchpoint analogue, geometric sample
// gaps) and closes a sub-profile every `window_refs` references. Each
// completed window carries the window's reuse/stride samples, its exact
// per-PC reference counts (the phase fingerprint input) and the cycle span
// it covered (the online Δ measurement).
//
// Window truncation bias: naively flushing the sampler at every window
// boundary would turn every reuse pair that straddles a boundary into a
// dangling (= cold miss) sample, making L1-resident buffers look like
// streams. Instead, watchpoints survive window boundaries (core::Sampler::
// harvest) and only age out after `watch_timeout_refs` — old enough that
// the reuse would miss in any cache level of interest anyway. Residual
// bias remains for resident structures whose wrap period exceeds the
// timeout; it errs toward prefetching more, which the cost-benefit filter
// and the bandwidth governor both bound. DESIGN.md §7 discusses the
// trade-off.
#pragma once

#include <cstdint>
#include <optional>

#include "core/sampler.hh"
#include "support/types.hh"

namespace re::runtime {

/// One completed sampling window.
struct WindowProfile {
  core::Profile profile;  // window-local samples; total_references = refs
  Cycle begin_cycle = 0;  // core-local clock at the window's first ref
  Cycle end_cycle = 0;    // core-local clock at the window's last ref

  std::uint64_t refs() const { return profile.total_references; }

  /// Measured cycles per memory operation over this window (the online Δ).
  double cycles_per_memop() const {
    if (refs() == 0) return 0.0;
    return static_cast<double>(end_cycle - begin_cycle) /
           static_cast<double>(refs());
  }
};

class OnlineSampler {
 public:
  OnlineSampler(const core::SamplerConfig& config, std::uint64_t window_refs);

  /// Feed one reference; returns the completed window exactly every
  /// `window_refs` references, std::nullopt otherwise.
  std::optional<WindowProfile> observe(Pc pc, Addr addr, Cycle now);

  std::uint64_t window_refs() const { return window_refs_; }
  std::uint64_t refs_in_window() const { return refs_in_window_; }

  /// Flush every open watchpoint immediately — line watches dangle into
  /// `*into` (nullptr drops them). Call at a phase switch so leftovers are
  /// attributed to the phase that armed them.
  void flush_open_watches(core::Profile* into) {
    sampler_.flush_open_watches(into);
  }

 private:
  core::Sampler sampler_;
  std::uint64_t window_refs_;
  std::uint64_t watch_timeout_refs_;
  std::uint64_t refs_in_window_ = 0;
  Cycle window_begin_cycle_ = 0;
  bool window_open_ = false;
};

/// Merge `window`'s samples into an accumulating per-phase profile
/// (appends samples, sums counts and totals). The sample period must match.
void merge_window_profile(core::Profile& accumulated,
                          const core::Profile& window);

}  // namespace re::runtime
