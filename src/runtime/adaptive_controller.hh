// Online adaptive prefetch controller — the closed loop.
//
// The offline framework decides once, before execution; this controller
// decides continuously, during it. Per sampling window (a few thousand
// references) it:
//
//   1. samples reuse/stride behaviour piggybacked on execution
//      (OnlineSampler, reusing core::Sampler),
//   2. fingerprints the window and tracks the current execution phase with
//      hysteresis (PhaseDetector, reusing core::PhaseSignature math),
//   3. on a phase change, hot-swaps the phase's cached plan set (PlanCache)
//      or — for a novel phase with enough accumulated evidence — runs the
//      full StatStack -> MDDLI -> stride -> bypass pipeline on that phase's
//      windowed sub-profile and caches the result,
//   4. refines stale plans in place: when the measured Δ has diverged from
//      the Δ the active plans were sized with (installing prefetches changes
//      the very cycles-per-memop that prefetch distances divide by), or when
//      the phase's profile has grown several-fold past the evidence the
//      plans were built from, the phase is re-optimized and the cache entry
//      replaced,
//   5. lets the BandwidthGovernor demote plans to non-temporal or suppress
//      them outright while the shared DRAM channel is saturated.
//
// Decisions reach the simulated core through a sim::PlanOverlay (see
// sim/adaptive.hh): the program itself is never rewritten, so every swap is
// O(plan set) and takes effect at the next reference.
//
// The controller manages a single core. Multicore mixes attach one
// controller per core (sim::run_mix_adaptive); each watches the shared
// DRAM stats through its own window clock, which is exactly what a per-core
// governor on real hardware would observe.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/fault_injection.hh"
#include "core/pipeline.hh"
#include "engine/delta.hh"
#include "engine/store.hh"
#include "runtime/governor.hh"
#include "runtime/online_sampler.hh"
#include "runtime/phase_detector.hh"
#include "runtime/plan_cache.hh"
#include "sim/adaptive.hh"
#include "sim/config.hh"
#include "workloads/program.hh"

namespace re::runtime {

struct AdaptiveOptions {
  /// References per adaptation window. Smaller = faster reaction, noisier
  /// fingerprints.
  std::uint64_t window_refs = 8192;
  /// Online sampling config. The default period is denser than the offline
  /// profiler's (100 vs 1000) so a single window still yields enough
  /// samples per hot PC to clear the pipeline's evidence gates.
  core::SamplerConfig sampler{100, 42};
  PhaseDetectorOptions phases;
  PlanCacheOptions cache;
  GovernorOptions governor;
  /// Options for the incremental re-optimization of novel phases.
  core::OptimizerOptions optimizer;
  /// References a phase must accumulate before its first re-optimization
  /// (evidence floor; until then the previous plans stay active).
  std::uint64_t min_reoptimize_refs = 16384;
  /// Cap on accumulated per-phase profile references (bounds memory on
  /// long runs; windows beyond the cap no longer grow the sub-profile).
  std::uint64_t max_phase_profile_refs = 1 << 17;
  /// Windows to let the Δ EWMA settle after a plan install before judging
  /// the install against fresh measurements (0.7^8 leaves ~6 % of the
  /// pre-install regime in the average).
  std::uint64_t refine_settle_windows = 8;
  /// Re-optimize the active phase when measured Δ and the Δ its plans were
  /// computed with differ by this factor in either direction. Prefetch
  /// distances are latency / Δ, so a plan sized on unprefetched windows is
  /// under-distanced the moment it starts working. <= 1 disables.
  double refine_divergence_ratio = 1.2;
  /// Re-optimize when the phase's accumulated profile holds this many times
  /// the references the active plans were built from (early plans come from
  /// sparse evidence and miss cold PCs). Also fires once at the profile
  /// cap. <= 1 disables.
  double refine_growth_factor = 4.0;
  /// Optional engine executor for the per-window re-optimizations (fans out
  /// per-PC MRC construction and per-load analysis). Non-owning; must
  /// outlive the controller. Null = serial.
  const engine::Executor* executor = nullptr;
};

struct AdaptiveStats {
  std::uint64_t windows = 0;
  std::uint64_t reoptimizations = 0;  // full pipeline runs (incl. refines)
  std::uint64_t refinements = 0;      // re-runs on stale Δ / grown evidence
  std::uint64_t hot_swaps = 0;        // plan installs served from the cache
  int phases = 0;
  std::uint64_t phase_switches = 0;
  double measured_cycles_per_memop = 0.0;  // EWMA of the online Δ
  PlanCacheStats cache;
  GovernorStats governor;
};

class AdaptiveController final : public sim::CoreAgent {
 public:
  AdaptiveController(const workloads::Program& program,
                     const sim::MachineConfig& machine,
                     const AdaptiveOptions& options = {});

  // sim::CoreAgent:
  void on_reference(int core, Pc pc, Addr addr, Cycle now,
                    sim::MemorySystem& memory) override;
  const sim::PlanOverlay* overlay(int core) const override {
    (void)core;
    return &overlay_;
  }

  /// Aggregated statistics (cache and governor stats folded in).
  AdaptiveStats stats() const;

  /// The plan cache; assign a snapshot loaded via PlanCache::from_json to
  /// warm-start the controller, or serialize it after a run to persist the
  /// learned plans.
  PlanCache& plan_cache() { return cache_; }
  const PlanCache& plan_cache() const { return cache_; }

  const PhaseDetector& phase_detector() const { return detector_; }
  const BandwidthGovernor& governor() const { return governor_; }
  const std::vector<core::PrefetchPlan>& active_plans() const {
    return active_plans_;
  }

  /// Cheap heartbeat counter for supervision: windows closed so far.
  std::uint64_t windows_closed() const { return stats_.windows; }
  /// Δ EWMA as currently measured (the supervisor's sanity probe).
  double measured_cycles_per_memop() const { return delta_ewma_.value(); }

  // Chaos/fault-injection seams (runtime/chaos.hh). Production runs leave
  // both null; the injector and stats must outlive their installation.
  //
  /// Corrupt every subsequently closed window's sub-profile through the
  /// given injector before the controller consumes it (mid-run profile
  /// corruption — the online analogue of PR 1's offline fault models).
  void set_window_fault_injector(const core::FaultInjector* injector) {
    window_fault_injector_ = injector;
  }
  /// Feed the governor the given (frozen) DRAM stats instead of the live
  /// channel telemetry — models loss of the bandwidth signal.
  void set_dram_override(const sim::DramStats* stats) {
    dram_override_ = stats;
  }

 private:
  void close_window(const WindowProfile& window, Cycle now,
                    sim::MemorySystem& memory);
  void reoptimize(int phase);
  void rebuild_overlay();

  const workloads::Program* program_;
  sim::MachineConfig machine_;
  AdaptiveOptions opts_;

  OnlineSampler sampler_;
  PhaseDetector detector_;
  PlanCache cache_;
  BandwidthGovernor governor_;
  sim::PlanOverlay overlay_;

  std::vector<core::PrefetchPlan> active_plans_;
  bool plans_valid_ = false;  // false until the first install (warm-up)
  int active_phase_ = -1;     // phase the active plans belong to
  int last_raw_phase_ = -1;   // raw phase of the previous window
  GovernorMode applied_mode_ = GovernorMode::Normal;
  engine::DeltaEwma delta_ewma_;  // measured cycles/memop (online Δ)
  /// Engine scratch reused across the per-window re-optimizations: hot PCs
  /// keep their interned index and grouping buffers keep their capacity,
  /// so steady-state windows allocate nothing in the StatStack solve.
  engine::ArtifactStore store_;

  // Refinement bookkeeping for the active plans: the Δ and profile size
  // they were computed with (0 = unknown, e.g. hot-swapped from the cache;
  // the Δ baseline is then armed from measurement once the EWMA settles).
  double plan_cpm_ = 0.0;
  std::uint64_t plan_refs_ = 0;
  std::uint64_t windows_since_plan_change_ = 0;

  /// Accumulated windowed sub-profile per detected phase.
  std::unordered_map<int, core::Profile> phase_profiles_;

  const core::FaultInjector* window_fault_injector_ = nullptr;
  const sim::DramStats* dram_override_ = nullptr;

  AdaptiveStats stats_;
};

}  // namespace re::runtime
