#include "runtime/supervisor.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "runtime/chaos.hh"
#include "sim/memory_system.hh"

namespace re::runtime {

const char* domain_state_name(DomainState state) {
  return breaker_state_name(state);
}

const char* trip_cause_name(TripCause cause) {
  switch (cause) {
    case TripCause::None: return "none";
    case TripCause::Watchdog: return "watchdog";
    case TripCause::ClockFault: return "clock";
    case TripCause::PlanFault: return "plan";
    case TripCause::GovernorFault: return "governor";
  }
  return "unknown";
}

std::string DomainStats::to_string() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "state=%s trips=%d last=%s watchdog=%" PRIu64 " clock=%" PRIu64
      " plan=%" PRIu64 " governor=%" PRIu64 " rollbacks=%" PRIu64
      " restarts=%" PRIu64 " recoveries=%" PRIu64 " healthy_windows=%" PRIu64
      " refs=%" PRIu64 " backoff_refs=%" PRIu64 " recovery_windows=%" PRIu64,
      domain_state_name(state), trips, trip_cause_name(last_trip),
      watchdog_fires, clock_faults, plan_faults, governor_faults, rollbacks,
      restarts, recoveries, healthy_windows, refs_seen, backoff_refs,
      last_recovery_windows);
  return buf;
}

/// One core's failure domain: the (disposable) controller plus everything
/// the supervisor needs to judge it from the outside.
struct Supervisor::Domain {
  Domain(int core_index, const BreakerOptions& breaker_options,
         std::uint64_t seed)
      : core(core_index), breaker(breaker_options, seed) {}

  int core;
  std::unique_ptr<AdaptiveController> controller;
  /// LKG mirror consulted by the simulator. Updated only from validated
  /// windows while Armed; during Backoff/HalfOpen it keeps the last good
  /// plans in force; in Open it is active+empty (no-prefetch).
  sim::PlanOverlay overlay;
  /// Trip/backoff/half-open/open protection state, one tick per delivered
  /// reference (tick_scale = window_refs). stats.state mirrors it.
  Breaker breaker;
  DomainStats stats;

  // Heartbeat / health bookkeeping.
  std::uint64_t refs_since_window = 0;       // all refs seen since last close
  std::uint64_t delivered_since_window = 0;  // refs the controller received
  std::uint64_t last_windows = 0;            // controller windows at last check
  Cycle last_now = 0;          // last clock delivered (monotonicity guard)
  Cycle last_window_now = 0;   // delivered clock at the previous window close
  std::uint64_t last_dram_bytes = 0;  // supervisor's own channel meter
  Cycle last_dram_cycle = 0;
  int governor_streak = 0;
  /// Running cycles-per-memop the domain considers plausible. Deliberately
  /// NOT reset on trip/restart: a controller restarted mid-skew must be
  /// judged against the pre-fault baseline, not re-baselined on the faulty
  /// clock.
  double cpm_ewma = 0.0;
  int suspect_streak = 0;
  std::uint64_t refs_at_trip = 0;

  // Last-known-good plan-cache snapshot for warm restarts.
  std::string lkg_cache;
  std::uint64_t lkg_insertions = 0;

  // Chaos seams currently installed on the controller.
  const core::FaultInjector* applied_injector = nullptr;
  bool blackout = false;
  sim::DramStats frozen_dram;
};

Supervisor::Supervisor(const std::vector<const workloads::Program*>& programs,
                       const sim::MachineConfig& machine,
                       const SupervisorOptions& options)
    : programs_(programs), machine_(machine), opts_(options) {
  BreakerOptions breaker_options;
  breaker_options.backoff_base = opts_.backoff_base_windows;
  breaker_options.max_backoff = opts_.max_backoff_windows;
  breaker_options.tick_scale = opts_.adaptive.window_refs;
  breaker_options.jitter = opts_.backoff_jitter;
  breaker_options.half_open_probes = opts_.half_open_probe_windows;
  breaker_options.max_trips = opts_.max_trips;
  Rng master(opts_.seed);
  domains_.reserve(programs_.size());
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    auto domain = std::make_unique<Domain>(static_cast<int>(i),
                                           breaker_options, master.fork());
    domain->controller = std::make_unique<AdaptiveController>(
        *programs_[i], machine_, opts_.adaptive);
    domains_.push_back(std::move(domain));
  }
}

Supervisor::~Supervisor() = default;

const sim::PlanOverlay* Supervisor::overlay(int core) const {
  return &domains_[static_cast<std::size_t>(core)]->overlay;
}

const DomainStats& Supervisor::domain_stats(int core) const {
  return domains_[static_cast<std::size_t>(core)]->stats;
}

DomainState Supervisor::domain_state(int core) const {
  return domains_[static_cast<std::size_t>(core)]->stats.state;
}

const AdaptiveController* Supervisor::controller(int core) const {
  return domains_[static_cast<std::size_t>(core)]->controller.get();
}

bool Supervisor::any_open() const {
  for (const auto& domain : domains_) {
    if (domain->stats.state == DomainState::Open) return true;
  }
  return false;
}

int Supervisor::total_trips() const {
  int trips = 0;
  for (const auto& domain : domains_) trips += domain->stats.trips;
  return trips;
}

void Supervisor::on_reference(int core, Pc pc, Addr addr, Cycle now,
                              sim::MemorySystem& memory) {
  Domain& domain = *domains_[static_cast<std::size_t>(core)];
  const std::uint64_t ref_index = domain.stats.refs_seen++;

  RefChaos chaos;
  if (chaos_ != nullptr) chaos = chaos_->advance(core, ref_index);

  switch (domain.stats.state) {
    case DomainState::Open:
      return;  // circuit broken: the core runs no-prefetch, untouched
    case DomainState::Backoff:
      ++domain.stats.backoff_refs;
      if (domain.breaker.tick()) restart(domain);
      return;
    case DomainState::Armed:
    case DomainState::HalfOpen:
      break;
  }

  AdaptiveController& controller = *domain.controller;

  // (Re-)install chaos seams. The supervisor does this mechanically on
  // behalf of the harness; it draws no conclusions from it — detection below
  // works purely from symptoms.
  if (chaos.governor_blackout != domain.blackout) {
    if (chaos.governor_blackout) {
      domain.frozen_dram = memory.dram_stats();
      controller.set_dram_override(&domain.frozen_dram);
    } else {
      controller.set_dram_override(nullptr);
    }
    domain.blackout = chaos.governor_blackout;
  }
  if (chaos.profile_injector != domain.applied_injector) {
    controller.set_window_fault_injector(chaos.profile_injector);
    domain.applied_injector = chaos.profile_injector;
  }

  // Heartbeat: every reference the core executes is one the controller was
  // supposed to account toward a window, delivered or not.
  ++domain.refs_since_window;

  if (chaos.drop) {
    // Reference swallowed before the controller (stalled sampler). Only the
    // watchdog can see this.
    if (domain.refs_since_window >
        opts_.heartbeat_grace_windows * opts_.adaptive.window_refs) {
      trip(domain, TripCause::Watchdog);
    }
    return;
  }

  const Cycle seen = now + static_cast<Cycle>(chaos.clock_skew);

  // Monotonicity guard: the delivered clock must never run backwards.
  if (domain.last_now != 0 && seen < domain.last_now) {
    trip(domain, TripCause::ClockFault);
    return;
  }
  domain.last_now = seen;

  controller.on_reference(core, pc, addr, seen, memory);
  ++domain.delivered_since_window;

  if (controller.windows_closed() > domain.last_windows) {
    domain.last_windows = controller.windows_closed();
    const std::uint64_t delivered = domain.delivered_since_window;
    domain.refs_since_window = 0;
    domain.delivered_since_window = 0;
    validate_window(domain, seen, now, delivered, memory);
  } else if (domain.refs_since_window >
             opts_.heartbeat_grace_windows * opts_.adaptive.window_refs) {
    trip(domain, TripCause::Watchdog);
  }
}

void Supervisor::validate_window(Domain& domain, Cycle seen, Cycle now,
                                 std::uint64_t delivered_refs,
                                 sim::MemorySystem& memory) {
  AdaptiveController& controller = *domain.controller;

  // Clock sanity, measured by the supervisor itself: cycles the delivered
  // clock advanced per delivered reference over the window just closed. An
  // in-order core stalls a few hundred cycles per reference at worst; a
  // drifting clock shows thousands.
  if (domain.last_window_now != 0 && delivered_refs > 0) {
    const double window_cpm =
        static_cast<double>(seen - domain.last_window_now) /
        static_cast<double>(delivered_refs);
    if (!(window_cpm <= opts_.max_cycles_per_memop)) {
      trip(domain, TripCause::ClockFault);
      return;
    }
    // Relative plausibility: moderate skew hides below the absolute bound
    // but still dwarfs the domain's own history. A suspect window is never
    // mirrored (its plans were computed from a clock we do not trust);
    // repeated suspects trip. The EWMA inflates each suspect window so a
    // genuine persistent regime change is accepted after a bounded number
    // of windows instead of tripping forever.
    if (domain.cpm_ewma > 0.0 &&
        window_cpm > opts_.suspicious_cpm_factor * domain.cpm_ewma) {
      domain.last_window_now = seen;
      domain.cpm_ewma *= 1.5;
      const sim::DramStats& live = memory.dram_stats();
      domain.last_dram_bytes = live.total_bytes() + live.writeback_bytes();
      domain.last_dram_cycle = now;
      if (++domain.suspect_streak >= opts_.clock_suspect_windows) {
        trip(domain, TripCause::ClockFault);
      }
      return;
    }
    domain.suspect_streak = 0;
    domain.cpm_ewma = domain.cpm_ewma == 0.0
                          ? window_cpm
                          : 0.75 * domain.cpm_ewma + 0.25 * window_cpm;
  }
  domain.last_window_now = seen;
  if (!std::isfinite(controller.measured_cycles_per_memop())) {
    trip(domain, TripCause::ClockFault);
    return;
  }

  // Plan sanity: bounded count, bounded distances.
  const std::vector<core::PrefetchPlan>& plans = controller.active_plans();
  if (plans.size() > opts_.max_plans_per_core) {
    trip(domain, TripCause::PlanFault);
    return;
  }
  for (const core::PrefetchPlan& plan : plans) {
    if (plan.distance_bytes > opts_.max_plan_distance_bytes ||
        plan.distance_bytes < -opts_.max_plan_distance_bytes) {
      trip(domain, TripCause::PlanFault);
      return;
    }
  }

  // Governor cross-check: meter the shared channel independently (true
  // clock, live stats) and compare with what the governor claims to see. A
  // divergent window is never mirrored — a blinded governor de-escalates
  // and turns prefetching loose on a saturated channel, and the plans it
  // releases must not reach the simulator while the signal is in doubt.
  const sim::DramStats& live = memory.dram_stats();
  const std::uint64_t bytes = live.total_bytes() + live.writeback_bytes();
  bool divergent = false;
  if (domain.last_dram_cycle != 0 && now > domain.last_dram_cycle &&
      machine_.dram_bytes_per_cycle > 0.0) {
    const double capacity =
        machine_.dram_bytes_per_cycle *
        static_cast<double>(now - domain.last_dram_cycle);
    const double observed =
        static_cast<double>(bytes - domain.last_dram_bytes) / capacity;
    const double reported = controller.governor().last_utilization();
    divergent = std::abs(observed - reported) > opts_.governor_divergence;
    if (divergent) {
      ++domain.governor_streak;
    } else {
      domain.governor_streak = 0;
    }
    if (domain.governor_streak >= opts_.governor_divergence_windows) {
      trip(domain, TripCause::GovernorFault);
      return;
    }
  }
  domain.last_dram_bytes = bytes;
  domain.last_dram_cycle = now;
  if (divergent) return;  // hold the LKG mirror, stall any half-open probe

  // Window is healthy.
  ++domain.stats.healthy_windows;
  if (domain.stats.state == DomainState::HalfOpen) {
    if (domain.breaker.probe_ok()) {  // re-arms and resets the trip count
      domain.stats.state = DomainState::Armed;
      ++domain.stats.recoveries;
      const std::uint64_t window_refs =
          std::max<std::uint64_t>(opts_.adaptive.window_refs, 1);
      domain.stats.last_recovery_windows =
          (domain.stats.refs_seen - domain.refs_at_trip + window_refs - 1) /
          window_refs;
    }
  }
  if (domain.stats.state == DomainState::Armed) mirror_overlay(domain);
}

void Supervisor::mirror_overlay(Domain& domain) {
  domain.overlay = *domain.controller->overlay(domain.core);

  // Refresh the LKG plan-cache snapshot whenever the cache has changed
  // under a validated window (insertions only ever grow).
  const std::uint64_t insertions =
      domain.controller->plan_cache().stats().insertions;
  if (insertions != domain.lkg_insertions) {
    domain.lkg_cache = domain.controller->plan_cache().to_journal();
    domain.lkg_insertions = insertions;
  }
}

void Supervisor::trip(Domain& domain, TripCause cause) {
  DomainStats& stats = domain.stats;
  stats.last_trip = cause;
  ++stats.trips;
  switch (cause) {
    case TripCause::Watchdog: ++stats.watchdog_fires; break;
    case TripCause::ClockFault: ++stats.clock_faults; break;
    case TripCause::PlanFault: ++stats.plan_faults; break;
    case TripCause::GovernorFault: ++stats.governor_faults; break;
    case TripCause::None: break;
  }
  // The overlay keeps whatever the last *validated* window installed — that
  // is the rollback: the tripped controller's half-adapted state is simply
  // never mirrored.
  if (domain.overlay.active) ++stats.rollbacks;

  // Discard the suspect controller wholesale (its sampler, detector and
  // governor state are all untrusted now) and detach the seams with it.
  domain.controller.reset();
  domain.applied_injector = nullptr;
  domain.blackout = false;
  domain.refs_since_window = 0;
  domain.delivered_since_window = 0;
  domain.last_windows = 0;
  domain.governor_streak = 0;
  domain.suspect_streak = 0;
  domain.refs_at_trip = stats.refs_seen;

  domain.breaker.trip();
  stats.state = domain.breaker.state();
  if (domain.breaker.open()) {
    // Circuit open: degrade this core to no-prefetch (the guaranteed-safe
    // baseline) permanently. Other domains are untouched.
    domain.overlay.plans.clear();
    domain.overlay.active = true;
  }
}

void Supervisor::restart(Domain& domain) {
  domain.controller = std::make_unique<AdaptiveController>(
      *programs_[static_cast<std::size_t>(domain.core)], machine_,
      opts_.adaptive);
  if (opts_.restart_from_lkg_cache && !domain.lkg_cache.empty()) {
    Expected<PlanCache::LoadReport> warm =
        PlanCache::load(domain.lkg_cache, opts_.adaptive.cache);
    if (warm.has_value()) {
      domain.controller->plan_cache() = std::move(warm.value().cache);
    }
  }
  ++domain.stats.restarts;
  domain.stats.state = DomainState::HalfOpen;
  domain.refs_since_window = 0;
  domain.delivered_since_window = 0;
  domain.last_windows = 0;
  // Re-sync the clock and channel baselines: the new controller starts a
  // fresh timeline and the supervisor must not judge it against the old one.
  domain.last_now = 0;
  domain.last_window_now = 0;
  domain.last_dram_cycle = 0;
  domain.last_dram_bytes = 0;
  domain.governor_streak = 0;
  domain.lkg_insertions = 0;
}

}  // namespace re::runtime
