// LRU cache of phase signature -> prefetch-plan set.
//
// A revisited phase should hot-swap its plans in O(window) time, not pay a
// full StatStack -> MDDLI -> stride -> bypass re-optimization. Entries are
// keyed by the phase's fingerprint and matched by signature distance (the
// same metric the detector uses), so a cache warmed on one run — or loaded
// from a snapshot saved by `repf adapt --save-cache` — keeps matching the
// same phases on the next run even though window boundaries shift. Capacity
// is bounded LRU: long-running workloads with many transient phases evict
// the coldest plans first.
//
// Persistence is crash-consistent (DESIGN.md §10): the journal format (v2)
// writes one CRC-guarded line per entry under a versioned header, so a
// corrupted or truncated snapshot loses only the damaged entries — they are
// quarantined and counted while every intact entry is reloaded. The legacy
// whole-document JSON snapshot (v1) is still read, strictly and
// all-or-nothing. Writes go through the shared atomic temp-file + rename
// helper so a kill mid-write never tears the file.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "core/insertion.hh"
#include "core/phases.hh"
#include "support/status.hh"

namespace re::runtime {

struct PlanCacheOptions {
  std::size_t capacity = 16;
  /// Signature distance below which a lookup matches an entry (same scale
  /// as PhaseDetectorOptions::similarity_threshold).
  double match_threshold = 0.5;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

struct PlanCacheLoadReport;

class PlanCache {
 public:
  struct Entry {
    core::PhaseSignature signature;
    std::vector<core::PrefetchPlan> plans;
  };

  explicit PlanCache(const PlanCacheOptions& options = {});

  /// Closest entry within the match threshold (promoted to MRU), nullptr on
  /// miss. Both outcomes are counted in stats().
  const std::vector<core::PrefetchPlan>* lookup(
      const core::PhaseSignature& signature);

  /// Insert plans for a signature. A signature matching an existing entry
  /// replaces that entry's plans (and promotes it); otherwise a new entry is
  /// added, evicting the LRU entry when over capacity.
  void insert(const core::PhaseSignature& signature,
              std::vector<core::PrefetchPlan> plans);

  std::size_t size() const { return entries_.size(); }
  const PlanCacheStats& stats() const { return stats_; }
  const PlanCacheOptions& options() const { return opts_; }
  /// MRU-first entry list (for persistence and tests).
  const std::list<Entry>& entries() const { return entries_; }

  /// Versioned JSON snapshot of the cache contents (stats are not
  /// persisted). Format documented in DESIGN.md §7.
  std::string to_json() const;

  /// Rebuild a cache from a snapshot produced by to_json(). Rejects unknown
  /// versions, malformed documents, duplicate signature/plan PCs and
  /// missing required fields with a descriptive status — a legacy snapshot
  /// is trusted whole or not at all. `options` governs the rebuilt cache
  /// (entries beyond its capacity are dropped, coldest first).
  static Expected<PlanCache> from_json(const std::string& text,
                                       const PlanCacheOptions& options = {});

  /// Crash-consistent journal snapshot (v2): a versioned header line
  /// followed by one line per entry, each carrying the CRC-32 of its
  /// canonical payload. MRU-first, byte-deterministic. A non-empty
  /// `fingerprint` (an identifier-safe token, e.g. a hex digest of the
  /// machine model + knobs) is stamped into the header so a later load can
  /// refuse state solved under different assumptions.
  std::string to_journal(const std::string& fingerprint = {}) const;

  /// The v2 header line (newline-terminated) promising `entries` records.
  /// The loader treats extra appended records as valid and fewer as a
  /// truncated tail, so an append-mode writer (serve's shard journals)
  /// snapshots a header + current entries once and then appends records.
  static std::string journal_header(std::size_t entries,
                                    const std::string& fingerprint = {});

  /// One CRC-guarded journal record line (newline-terminated) for `entry`,
  /// byte-identical to the line to_journal() would emit for it.
  static std::string journal_record(const Entry& entry);

  /// What a journal load recovered (defined after the class: the report
  /// carries a rebuilt cache by value).
  using LoadReport = PlanCacheLoadReport;

  /// Load a journal produced by to_journal(): quarantine-and-continue.
  /// Only an unreadable header (wrong magic/version) fails the whole load.
  static Expected<LoadReport> from_journal(const std::string& text,
                                           const PlanCacheOptions& options = {});

  /// Load either format: sniffs the journal header and falls back to the
  /// strict legacy JSON loader (which reports quarantined = 0 on success).
  static Expected<LoadReport> load(const std::string& text,
                                   const PlanCacheOptions& options = {});

  /// Persist the journal via the shared atomic temp-file + rename writer.
  Status save(const std::string& path,
              const std::string& fingerprint = {}) const;

  /// Read `path` and load() it.
  static Expected<LoadReport> load_file(const std::string& path,
                                        const PlanCacheOptions& options = {});

 private:
  PlanCacheOptions opts_;
  std::list<Entry> entries_;  // front = MRU
  PlanCacheStats stats_;
};

/// What a journal load recovered. `missing` counts entries the header
/// promised but the file no longer holds (truncated tail); `quarantined`
/// counts lines present but corrupt (bad JSON, failed CRC, invalid
/// fields). Both are skipped; every intact entry loads.
struct PlanCacheLoadReport {
  PlanCache cache;
  std::size_t loaded = 0;
  std::size_t quarantined = 0;
  std::size_t missing = 0;
  /// One human-readable reason per quarantined/missing entry.
  std::vector<std::string> quarantine_log;
  /// Header fingerprint, empty when the journal was written without one
  /// (or loaded via the legacy v1 snapshot path). The caller decides the
  /// trust policy — the loader only reports what the header claimed.
  std::string fingerprint;

  bool degraded() const { return quarantined > 0 || missing > 0; }
};

}  // namespace re::runtime
