// LRU cache of phase signature -> prefetch-plan set.
//
// A revisited phase should hot-swap its plans in O(window) time, not pay a
// full StatStack -> MDDLI -> stride -> bypass re-optimization. Entries are
// keyed by the phase's fingerprint and matched by signature distance (the
// same metric the detector uses), so a cache warmed on one run — or loaded
// from a snapshot saved by `repf adapt --save-cache` — keeps matching the
// same phases on the next run even though window boundaries shift. Capacity
// is bounded LRU: long-running workloads with many transient phases evict
// the coldest plans first.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "core/insertion.hh"
#include "core/phases.hh"
#include "support/status.hh"

namespace re::runtime {

struct PlanCacheOptions {
  std::size_t capacity = 16;
  /// Signature distance below which a lookup matches an entry (same scale
  /// as PhaseDetectorOptions::similarity_threshold).
  double match_threshold = 0.5;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class PlanCache {
 public:
  struct Entry {
    core::PhaseSignature signature;
    std::vector<core::PrefetchPlan> plans;
  };

  explicit PlanCache(const PlanCacheOptions& options = {});

  /// Closest entry within the match threshold (promoted to MRU), nullptr on
  /// miss. Both outcomes are counted in stats().
  const std::vector<core::PrefetchPlan>* lookup(
      const core::PhaseSignature& signature);

  /// Insert plans for a signature. A signature matching an existing entry
  /// replaces that entry's plans (and promotes it); otherwise a new entry is
  /// added, evicting the LRU entry when over capacity.
  void insert(const core::PhaseSignature& signature,
              std::vector<core::PrefetchPlan> plans);

  std::size_t size() const { return entries_.size(); }
  const PlanCacheStats& stats() const { return stats_; }
  const PlanCacheOptions& options() const { return opts_; }
  /// MRU-first entry list (for persistence and tests).
  const std::list<Entry>& entries() const { return entries_; }

  /// Versioned JSON snapshot of the cache contents (stats are not
  /// persisted). Format documented in DESIGN.md §7.
  std::string to_json() const;

  /// Rebuild a cache from a snapshot produced by to_json(). Rejects unknown
  /// versions and malformed documents with a descriptive status. `options`
  /// governs the rebuilt cache (entries beyond its capacity are dropped,
  /// coldest first).
  static Expected<PlanCache> from_json(const std::string& text,
                                       const PlanCacheOptions& options = {});

 private:
  PlanCacheOptions opts_;
  std::list<Entry> entries_;  // front = MRU
  PlanCacheStats stats_;
};

}  // namespace re::runtime
