// Reusable circuit-breaker state machine.
//
// PR 4 grew this logic inside the Supervisor's per-core failure domains;
// the advisory service (src/serve/) needs the identical machine per cache
// shard, so it lives here as a value type both layers share:
//
//   Armed --trip--> Backoff --ticks expire--> HalfOpen
//     ^                                          |
//     +---- half_open_probes healthy probes -----+
//   any state --consecutive trips == max_trips--> Open (terminal)
//
// Backoff after the t-th consecutive trip lasts
// clamp(backoff_base << (t-1), [1, max_backoff]) units, each unit
// `tick_scale` ticks, stretched by seeded jitter in [1-jitter, 1+jitter].
// A completed half-open probation resets the consecutive-trip count, so a
// domain that keeps proving health never opens, no matter how long it runs.
// The Supervisor measures ticks in delivered references (tick_scale =
// window_refs); the serve tier measures them in virtual service ticks
// (tick_scale = 1).
//
// The breaker only tracks protection state; what "trip", "probe" and
// "open" mean (discard a controller, skip a shard, degrade to no-prefetch)
// stays with the owner.
#pragma once

#include <cstdint>

#include "support/rng.hh"

namespace re::runtime {

/// Recovery state of one protected component. (Aliased as DomainState by
/// the Supervisor; the names predate the extraction.)
enum class BreakerState : int {
  Armed = 0,    // component trusted
  Backoff = 1,  // tripped; waiting out the penalty
  HalfOpen = 2, // on probation: healthy observations re-arm, faults re-trip
  Open = 3,     // circuit broken for good (terminal)
};

const char* breaker_state_name(BreakerState state);

struct BreakerOptions {
  /// Backoff duration after the first trip, in backoff units.
  std::uint64_t backoff_base = 8;
  /// Cap on the exponential backoff, in backoff units.
  std::uint64_t max_backoff = 512;
  /// Ticks per backoff unit (the owner's clock granularity).
  std::uint64_t tick_scale = 1;
  /// Jitter fraction: each backoff is stretched by [1-jitter, 1+jitter].
  double jitter = 0.25;
  /// Healthy observations required in HalfOpen before re-arming.
  int half_open_probes = 3;
  /// Consecutive trips (no completed probation in between) after which the
  /// circuit opens permanently. <= 0 means it never opens.
  int max_trips = 5;
};

class Breaker {
 public:
  Breaker(const BreakerOptions& options, std::uint64_t seed);

  BreakerState state() const { return state_; }
  bool armed() const { return state_ == BreakerState::Armed; }
  bool open() const { return state_ == BreakerState::Open; }
  /// True while the protected component must not be used (Backoff or Open).
  bool down() const {
    return state_ == BreakerState::Backoff || state_ == BreakerState::Open;
  }
  int consecutive_trips() const { return consecutive_trips_; }
  std::uint64_t backoff_remaining() const { return backoff_remaining_; }

  /// Record a fault. Armed/HalfOpen/Backoff -> Backoff with the next
  /// exponential penalty, or -> Open once max_trips consecutive faults
  /// accumulate. No-op when already Open.
  void trip();

  /// Consume `ticks` of Backoff time. Returns true exactly once, when the
  /// penalty expires and the breaker moves to HalfOpen (the owner should
  /// restart/probe the component). No-op in other states.
  bool tick(std::uint64_t ticks = 1);

  /// Record one healthy observation while HalfOpen. Returns true when the
  /// probation completes: the breaker re-arms and the consecutive-trip
  /// count resets. No-op in other states.
  bool probe_ok();

 private:
  BreakerOptions opts_;
  Rng rng_;  // backoff jitter
  BreakerState state_ = BreakerState::Armed;
  int consecutive_trips_ = 0;
  int probes_ = 0;
  std::uint64_t backoff_remaining_ = 0;
};

}  // namespace re::runtime
