#include "runtime/phase_detector.hh"

namespace re::runtime {

PhaseDetector::PhaseDetector(const PhaseDetectorOptions& options)
    : opts_(options) {
  if (opts_.hysteresis_windows < 1) opts_.hysteresis_windows = 1;
}

PhaseDecision PhaseDetector::observe(const core::PhaseSignature& signature) {
  ++windows_;
  PhaseDecision decision;

  // Nearest centroid under the similarity threshold; none -> new phase.
  int best = -1;
  double best_distance = opts_.similarity_threshold;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double d = core::signature_distance(signature, centroids_[i]);
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    best = static_cast<int>(centroids_.size());
    centroids_.push_back(signature);
    decision.novel = true;
  }
  decision.raw_phase = best;

  if (current_ < 0) {
    // First window: commit immediately, not a "switch".
    current_ = best;
  } else if (best == current_) {
    candidate_ = -1;
    candidate_streak_ = 0;
  } else {
    if (best == candidate_) {
      ++candidate_streak_;
    } else {
      candidate_ = best;
      candidate_streak_ = 1;
    }
    if (candidate_streak_ >= opts_.hysteresis_windows) {
      current_ = best;
      candidate_ = -1;
      candidate_streak_ = 0;
      decision.switched = true;
      ++switches_;
    }
  }

  decision.phase = current_;
  return decision;
}

}  // namespace re::runtime
