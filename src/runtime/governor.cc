#include "runtime/governor.hh"

#include <algorithm>

namespace re::runtime {

const char* governor_mode_name(GovernorMode mode) {
  switch (mode) {
    case GovernorMode::Normal: return "normal";
    case GovernorMode::Demote: return "demote";
    case GovernorMode::Suppress: return "suppress";
  }
  return "normal";
}

BandwidthGovernor::BandwidthGovernor(const GovernorOptions& options,
                                     double dram_bytes_per_cycle)
    : opts_(options), bytes_per_cycle_(dram_bytes_per_cycle) {
  if (opts_.release_windows < 1) opts_.release_windows = 1;
}

GovernorMode BandwidthGovernor::observe_window(
    const sim::DramStats& cumulative, Cycle now) {
  const std::uint64_t bytes =
      cumulative.total_bytes() + cumulative.writeback_bytes();
  const std::uint64_t delta_bytes = bytes - std::min(bytes, last_bytes_);
  const Cycle delta_cycles = now > last_cycle_ ? now - last_cycle_ : 0;
  last_bytes_ = bytes;
  last_cycle_ = now;

  ++stats_.windows;
  if (delta_cycles == 0 || bytes_per_cycle_ <= 0.0) {
    // Degenerate window (clock did not advance): hold the current mode.
    if (mode_ == GovernorMode::Demote) ++stats_.demote_windows;
    if (mode_ == GovernorMode::Suppress) ++stats_.suppress_windows;
    return mode_;
  }
  const double utilization =
      static_cast<double>(delta_bytes) /
      (static_cast<double>(delta_cycles) * bytes_per_cycle_);
  last_utilization_ = utilization;
  stats_.peak_utilization = std::max(stats_.peak_utilization, utilization);

  const GovernorMode target =
      utilization >= opts_.suppress_utilization ? GovernorMode::Suppress
      : utilization >= opts_.demote_utilization ? GovernorMode::Demote
                                                : GovernorMode::Normal;

  if (static_cast<int>(target) > static_cast<int>(mode_)) {
    mode_ = target;  // escalate immediately
    calm_streak_ = 0;
    ++stats_.mode_changes;
  } else if (static_cast<int>(target) < static_cast<int>(mode_)) {
    if (++calm_streak_ >= opts_.release_windows) {
      mode_ = static_cast<GovernorMode>(static_cast<int>(mode_) - 1);
      calm_streak_ = 0;
      ++stats_.mode_changes;
    }
  } else {
    calm_streak_ = 0;
  }

  if (mode_ == GovernorMode::Demote) ++stats_.demote_windows;
  if (mode_ == GovernorMode::Suppress) ++stats_.suppress_windows;
  return mode_;
}

}  // namespace re::runtime
