#include "runtime/plan_cache.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

#include "support/atomic_file.hh"
#include "support/checksum.hh"
#include "support/json.hh"

namespace re::runtime {

namespace {

constexpr int kSnapshotVersion = 1;
constexpr int kJournalVersion = 2;
constexpr const char* kJournalMagic = "re-plan-cache";

const char* hint_name(workloads::PrefetchHint hint) {
  switch (hint) {
    case workloads::PrefetchHint::T0: return "t0";
    case workloads::PrefetchHint::T1: return "t1";
    case workloads::PrefetchHint::T2: return "t2";
    case workloads::PrefetchHint::NTA: return "nta";
  }
  return "t0";
}

Expected<workloads::PrefetchHint> hint_from_name(const std::string& name) {
  if (name == "t0") return workloads::PrefetchHint::T0;
  if (name == "t1") return workloads::PrefetchHint::T1;
  if (name == "t2") return workloads::PrefetchHint::T2;
  if (name == "nta") return workloads::PrefetchHint::NTA;
  return Status(StatusCode::kDataLoss, "plan cache: unknown hint '" + name +
                                           "'");
}

void append_printf(std::string& out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Canonical serialization of one entry. Shared by both snapshot formats
/// and by the journal's CRC computation, so a reloaded entry re-serializes
/// byte-identically.
std::string entry_to_json(const PlanCache::Entry& entry) {
  std::string out = "{\"signature\": [";
  // Sort by PC so snapshots are byte-stable across hash-map orderings.
  std::vector<std::pair<Pc, double>> sig(entry.signature.begin(),
                                         entry.signature.end());
  std::sort(sig.begin(), sig.end());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (i) out += ", ";
    append_printf(out, "[%" PRIu64 ", %.17g]",
                  static_cast<std::uint64_t>(sig[i].first), sig[i].second);
  }
  out += "], \"plans\": [";
  for (std::size_t i = 0; i < entry.plans.size(); ++i) {
    const core::PrefetchPlan& plan = entry.plans[i];
    if (i) out += ", ";
    append_printf(out,
                  "{\"pc\": %" PRIu64 ", \"distance_bytes\": %" PRId64
                  ", \"hint\": \"%s\"}",
                  static_cast<std::uint64_t>(plan.pc),
                  static_cast<std::int64_t>(plan.distance_bytes),
                  hint_name(plan.hint));
  }
  out += "]}";
  return out;
}

/// Parse and validate one entry object: required fields present, finite
/// frequencies, no duplicate signature or plan PCs (a duplicate key means
/// the snapshot was hand-edited or corrupted — both sides of the duplicate
/// cannot be trusted).
Expected<PlanCache::Entry> entry_from_json(const json::Value& entry) {
  const json::Value* sig = entry.find("signature");
  const json::Value* plans = entry.find("plans");
  if (!sig || !sig->is_array() || !plans || !plans->is_array()) {
    return Status(StatusCode::kDataLoss,
                  "plan cache: entry missing signature or plans");
  }
  PlanCache::Entry out;
  for (const json::Value& pair : sig->as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
      return Status(StatusCode::kDataLoss,
                    "plan cache: signature entries must be [pc, freq]");
    }
    const double freq = pair.as_array()[1].as_number();
    if (!std::isfinite(freq) || freq < 0.0) {
      return Status(StatusCode::kDataLoss,
                    "plan cache: non-finite signature frequency");
    }
    const Pc pc = static_cast<Pc>(pair.as_array()[0].as_number());
    if (out.signature.count(pc)) {
      return Status(StatusCode::kDataLoss,
                    "plan cache: duplicate signature pc " +
                        std::to_string(pc));
    }
    out.signature[pc] = freq;
  }
  std::unordered_set<Pc> plan_pcs;
  for (const json::Value& plan : plans->as_array()) {
    const json::Value* pc = plan.find("pc");
    const json::Value* distance = plan.find("distance_bytes");
    const json::Value* hint = plan.find("hint");
    if (!pc || !pc->is_number() || !distance || !distance->is_number() ||
        !hint || !hint->is_string()) {
      return Status(StatusCode::kDataLoss,
                    "plan cache: plan missing pc/distance_bytes/hint");
    }
    const Expected<workloads::PrefetchHint> parsed_hint =
        hint_from_name(hint->as_string());
    if (!parsed_hint) return parsed_hint.status();
    core::PrefetchPlan parsed;
    parsed.pc = static_cast<Pc>(pc->as_number());
    parsed.distance_bytes = static_cast<std::int64_t>(distance->as_number());
    parsed.hint = *parsed_hint;
    if (!plan_pcs.insert(parsed.pc).second) {
      return Status(StatusCode::kDataLoss,
                    "plan cache: duplicate plan pc " +
                        std::to_string(parsed.pc));
    }
    out.plans.push_back(parsed);
  }
  return out;
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) : opts_(options) {
  if (opts_.capacity == 0) opts_.capacity = 1;
}

const std::vector<core::PrefetchPlan>* PlanCache::lookup(
    const core::PhaseSignature& signature) {
  auto best = entries_.end();
  double best_distance = opts_.match_threshold;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const double d = core::signature_distance(signature, it->signature);
    if (d < best_distance) {
      best_distance = d;
      best = it;
    }
  }
  if (best == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, best);  // promote to MRU
  return &entries_.front().plans;
}

void PlanCache::insert(const core::PhaseSignature& signature,
                       std::vector<core::PrefetchPlan> plans) {
  ++stats_.insertions;
  double best_distance = opts_.match_threshold;
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const double d = core::signature_distance(signature, it->signature);
    if (d < best_distance) {
      best_distance = d;
      best = it;
    }
  }
  if (best != entries_.end()) {
    best->plans = std::move(plans);
    entries_.splice(entries_.begin(), entries_, best);
    return;
  }
  entries_.push_front(Entry{signature, std::move(plans)});
  while (entries_.size() > opts_.capacity) {
    entries_.pop_back();
    ++stats_.evictions;
  }
}

std::string PlanCache::to_json() const {
  std::string out;
  append_printf(out, "{\"version\": %d, \"entries\": [", kSnapshotVersion);
  bool first_entry = true;
  for (const Entry& entry : entries_) {
    if (!first_entry) out += ", ";
    first_entry = false;
    out += entry_to_json(entry);
  }
  out += "]}\n";
  return out;
}

Expected<PlanCache> PlanCache::from_json(const std::string& text,
                                         const PlanCacheOptions& options) {
  const Expected<json::Value> doc = json::parse(text);
  if (!doc) return doc.status();
  if (!doc->is_object()) {
    return Status(StatusCode::kDataLoss, "plan cache: root is not an object");
  }
  const json::Value* version = doc->find("version");
  if (!version || !version->is_number() ||
      static_cast<int>(version->as_number()) != kSnapshotVersion) {
    return Status(StatusCode::kDataLoss,
                  "plan cache: missing or unsupported snapshot version");
  }
  const json::Value* entries = doc->find("entries");
  if (!entries || !entries->is_array()) {
    return Status(StatusCode::kDataLoss, "plan cache: missing entries array");
  }

  PlanCache cache(options);
  // Entries were dumped MRU-first; insert coldest-first so the rebuilt LRU
  // order (and capacity-overflow eviction) matches the original.
  for (auto it = entries->as_array().rbegin();
       it != entries->as_array().rend(); ++it) {
    Expected<Entry> entry = entry_from_json(*it);
    if (!entry) return entry.status();
    cache.insert(entry->signature, std::move(entry->plans));
  }
  cache.stats_ = PlanCacheStats{};  // loading is not a workload
  return cache;
}

std::string PlanCache::journal_header(std::size_t entries,
                                      const std::string& fingerprint) {
  std::string out;
  if (fingerprint.empty()) {
    append_printf(out,
                  "{\"format\": \"%s\", \"version\": %d, \"entries\": %zu}\n",
                  kJournalMagic, kJournalVersion, entries);
  } else {
    // The fingerprint is an identifier-safe token (hex digest); it is
    // emitted verbatim, so callers must not pass JSON metacharacters.
    append_printf(out, "{\"format\": \"%s\", \"version\": %d, ", kJournalMagic,
                  kJournalVersion);
    out += "\"fingerprint\": \"" + fingerprint + "\", ";
    append_printf(out, "\"entries\": %zu}\n", entries);
  }
  return out;
}

std::string PlanCache::journal_record(const Entry& entry) {
  const std::string payload = entry_to_json(entry);
  return "{\"crc\": \"" + support::crc32_hex(support::crc32(payload)) +
         "\", \"entry\": " + payload + "}\n";
}

std::string PlanCache::to_journal(const std::string& fingerprint) const {
  std::string out = journal_header(entries_.size(), fingerprint);
  for (const Entry& entry : entries_) out += journal_record(entry);
  return out;
}

Expected<PlanCache::LoadReport> PlanCache::from_journal(
    const std::string& text, const PlanCacheOptions& options) {
  std::size_t pos = text.find('\n');
  if (pos == std::string::npos) pos = text.size();
  const Expected<json::Value> header = json::parse(text.substr(0, pos));
  if (!header) {
    return Status(StatusCode::kDataLoss,
                  "plan cache journal: unreadable header (" +
                      header.status().message() + ")");
  }
  const json::Value* format = header->find("format");
  const json::Value* version = header->find("version");
  const json::Value* count = header->find("entries");
  if (!format || !format->is_string() ||
      format->as_string() != kJournalMagic) {
    return Status(StatusCode::kDataLoss,
                  "plan cache journal: missing or wrong format magic");
  }
  if (!version || !version->is_number() ||
      static_cast<int>(version->as_number()) != kJournalVersion) {
    return Status(StatusCode::kDataLoss,
                  "plan cache journal: unsupported version");
  }
  if (!count || !count->is_number() || count->as_number() < 0.0) {
    return Status(StatusCode::kDataLoss,
                  "plan cache journal: missing entry count");
  }
  const std::size_t promised = static_cast<std::size_t>(count->as_number());

  LoadReport report{PlanCache(options), 0, 0, 0, {}, {}};
  const json::Value* fingerprint = header->find("fingerprint");
  if (fingerprint != nullptr && fingerprint->is_string()) {
    report.fingerprint = fingerprint->as_string();
  }
  std::vector<Entry> recovered;  // file order = MRU first
  std::size_t line_no = 1;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t begin = pos + 1;
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    pos = end;
    const std::string line = text.substr(begin, end - begin);
    if (line.empty()) continue;
    const auto quarantine = [&](const std::string& why) {
      ++report.quarantined;
      report.quarantine_log.push_back("line " + std::to_string(line_no) +
                                      ": " + why);
    };
    const Expected<json::Value> record = json::parse(line);
    if (!record) {
      quarantine("unparseable record (" + record.status().message() + ")");
      continue;
    }
    const json::Value* crc = record->find("crc");
    const json::Value* entry = record->find("entry");
    if (!crc || !crc->is_string() || !entry) {
      quarantine("record missing crc or entry");
      continue;
    }
    Expected<Entry> parsed = entry_from_json(*entry);
    if (!parsed) {
      quarantine(parsed.status().message());
      continue;
    }
    // The CRC was taken over the canonical payload text; re-serializing the
    // parsed entry reproduces those exact bytes, so any in-flight mutation
    // of values (not just structure) fails the check.
    const std::string canonical = entry_to_json(*parsed);
    if (support::crc32_hex(support::crc32(canonical)) != crc->as_string()) {
      quarantine("crc mismatch");
      continue;
    }
    recovered.push_back(std::move(*parsed));
  }

  if (recovered.size() + report.quarantined < promised) {
    report.missing = promised - recovered.size() - report.quarantined;
    report.quarantine_log.push_back(
        "truncated: header promised " + std::to_string(promised) +
        " entries, file holds " +
        std::to_string(recovered.size() + report.quarantined));
  }

  // Coldest-first insertion rebuilds the LRU order (see from_json).
  for (auto it = recovered.rbegin(); it != recovered.rend(); ++it) {
    report.cache.insert(it->signature, std::move(it->plans));
  }
  report.loaded = report.cache.size();
  report.cache.stats_ = PlanCacheStats{};
  return report;
}

Expected<PlanCache::LoadReport> PlanCache::load(
    const std::string& text, const PlanCacheOptions& options) {
  // Journal iff the first non-blank line carries the format magic.
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos) {
    std::size_t eol = text.find('\n', first);
    if (eol == std::string::npos) eol = text.size();
    if (text.substr(first, eol - first).find(kJournalMagic) !=
        std::string::npos) {
      return from_journal(text.substr(first), options);
    }
  }
  Expected<PlanCache> legacy = from_json(text, options);
  if (!legacy) return legacy.status();
  LoadReport report{std::move(*legacy), 0, 0, 0, {}, {}};
  report.loaded = report.cache.size();
  return report;
}

Status PlanCache::save(const std::string& path,
                       const std::string& fingerprint) const {
  return support::write_file_atomic(path, to_journal(fingerprint));
}

Expected<PlanCache::LoadReport> PlanCache::load_file(
    const std::string& path, const PlanCacheOptions& options) {
  Expected<std::string> text = support::read_file(path);
  if (!text) return text.status();
  return load(*text, options);
}

}  // namespace re::runtime
