#include "runtime/plan_cache.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "support/json.hh"

namespace re::runtime {

namespace {

constexpr int kSnapshotVersion = 1;

const char* hint_name(workloads::PrefetchHint hint) {
  switch (hint) {
    case workloads::PrefetchHint::T0: return "t0";
    case workloads::PrefetchHint::T1: return "t1";
    case workloads::PrefetchHint::T2: return "t2";
    case workloads::PrefetchHint::NTA: return "nta";
  }
  return "t0";
}

Expected<workloads::PrefetchHint> hint_from_name(const std::string& name) {
  if (name == "t0") return workloads::PrefetchHint::T0;
  if (name == "t1") return workloads::PrefetchHint::T1;
  if (name == "t2") return workloads::PrefetchHint::T2;
  if (name == "nta") return workloads::PrefetchHint::NTA;
  return Status(StatusCode::kDataLoss, "plan cache: unknown hint '" + name +
                                           "'");
}

void append_printf(std::string& out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) : opts_(options) {
  if (opts_.capacity == 0) opts_.capacity = 1;
}

const std::vector<core::PrefetchPlan>* PlanCache::lookup(
    const core::PhaseSignature& signature) {
  auto best = entries_.end();
  double best_distance = opts_.match_threshold;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const double d = core::signature_distance(signature, it->signature);
    if (d < best_distance) {
      best_distance = d;
      best = it;
    }
  }
  if (best == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, best);  // promote to MRU
  return &entries_.front().plans;
}

void PlanCache::insert(const core::PhaseSignature& signature,
                       std::vector<core::PrefetchPlan> plans) {
  ++stats_.insertions;
  double best_distance = opts_.match_threshold;
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const double d = core::signature_distance(signature, it->signature);
    if (d < best_distance) {
      best_distance = d;
      best = it;
    }
  }
  if (best != entries_.end()) {
    best->plans = std::move(plans);
    entries_.splice(entries_.begin(), entries_, best);
    return;
  }
  entries_.push_front(Entry{signature, std::move(plans)});
  while (entries_.size() > opts_.capacity) {
    entries_.pop_back();
    ++stats_.evictions;
  }
}

std::string PlanCache::to_json() const {
  std::string out;
  append_printf(out, "{\"version\": %d, \"entries\": [", kSnapshotVersion);
  bool first_entry = true;
  for (const Entry& entry : entries_) {
    if (!first_entry) out += ", ";
    first_entry = false;
    out += "{\"signature\": [";
    // Sort by PC so snapshots are byte-stable across hash-map orderings.
    std::vector<std::pair<Pc, double>> sig(entry.signature.begin(),
                                           entry.signature.end());
    std::sort(sig.begin(), sig.end());
    for (std::size_t i = 0; i < sig.size(); ++i) {
      if (i) out += ", ";
      append_printf(out, "[%" PRIu64 ", %.17g]",
                    static_cast<std::uint64_t>(sig[i].first), sig[i].second);
    }
    out += "], \"plans\": [";
    for (std::size_t i = 0; i < entry.plans.size(); ++i) {
      const core::PrefetchPlan& plan = entry.plans[i];
      if (i) out += ", ";
      append_printf(out,
                    "{\"pc\": %" PRIu64 ", \"distance_bytes\": %" PRId64
                    ", \"hint\": \"%s\"}",
                    static_cast<std::uint64_t>(plan.pc),
                    static_cast<std::int64_t>(plan.distance_bytes),
                    hint_name(plan.hint));
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

Expected<PlanCache> PlanCache::from_json(const std::string& text,
                                         const PlanCacheOptions& options) {
  const Expected<json::Value> doc = json::parse(text);
  if (!doc) return doc.status();
  if (!doc->is_object()) {
    return Status(StatusCode::kDataLoss, "plan cache: root is not an object");
  }
  const json::Value* version = doc->find("version");
  if (!version || !version->is_number() ||
      static_cast<int>(version->as_number()) != kSnapshotVersion) {
    return Status(StatusCode::kDataLoss,
                  "plan cache: missing or unsupported snapshot version");
  }
  const json::Value* entries = doc->find("entries");
  if (!entries || !entries->is_array()) {
    return Status(StatusCode::kDataLoss, "plan cache: missing entries array");
  }

  PlanCache cache(options);
  // Entries were dumped MRU-first; insert coldest-first so the rebuilt LRU
  // order (and capacity-overflow eviction) matches the original.
  for (auto it = entries->as_array().rbegin();
       it != entries->as_array().rend(); ++it) {
    const json::Value& entry = *it;
    const json::Value* sig = entry.find("signature");
    const json::Value* plans = entry.find("plans");
    if (!sig || !sig->is_array() || !plans || !plans->is_array()) {
      return Status(StatusCode::kDataLoss,
                    "plan cache: entry missing signature or plans");
    }
    core::PhaseSignature signature;
    for (const json::Value& pair : sig->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2 ||
          !pair.as_array()[0].is_number() ||
          !pair.as_array()[1].is_number()) {
        return Status(StatusCode::kDataLoss,
                      "plan cache: signature entries must be [pc, freq]");
      }
      const double freq = pair.as_array()[1].as_number();
      if (!std::isfinite(freq) || freq < 0.0) {
        return Status(StatusCode::kDataLoss,
                      "plan cache: non-finite signature frequency");
      }
      signature[static_cast<Pc>(pair.as_array()[0].as_number())] = freq;
    }
    std::vector<core::PrefetchPlan> plan_list;
    for (const json::Value& plan : plans->as_array()) {
      const json::Value* pc = plan.find("pc");
      const json::Value* distance = plan.find("distance_bytes");
      const json::Value* hint = plan.find("hint");
      if (!pc || !pc->is_number() || !distance || !distance->is_number() ||
          !hint || !hint->is_string()) {
        return Status(StatusCode::kDataLoss,
                      "plan cache: plan missing pc/distance_bytes/hint");
      }
      const Expected<workloads::PrefetchHint> parsed_hint =
          hint_from_name(hint->as_string());
      if (!parsed_hint) return parsed_hint.status();
      core::PrefetchPlan out;
      out.pc = static_cast<Pc>(pc->as_number());
      out.distance_bytes = static_cast<std::int64_t>(distance->as_number());
      out.hint = *parsed_hint;
      plan_list.push_back(out);
    }
    cache.insert(signature, std::move(plan_list));
  }
  cache.stats_ = PlanCacheStats{};  // loading is not a workload
  return cache;
}

}  // namespace re::runtime
