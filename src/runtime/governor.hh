// Bandwidth-aware prefetch governor.
//
// The paper's resource-efficiency argument (Section VI-B) is that prefetch
// usefulness is conditional on shared-resource headroom: on a contended
// channel, prefetch traffic queues behind demand traffic and slows every
// core down. The governor applies that argument dynamically. Each sampling
// window it measures utilization of the shared DRAM channel (bytes moved /
// bytes the channel could move) and ratchets through three modes:
//
//   Normal   — plans apply as optimized.
//   Demote   — every planned prefetch is demoted to non-temporal (fill L1
//              only, never pollute the shared levels under pressure).
//   Suppress — prefetching is switched off entirely; demand traffic gets
//              the whole channel.
//
// Escalation is immediate (pressure hurts now); de-escalation requires
// `release_windows` consecutive calm windows (hysteresis against
// oscillating around a threshold).
#pragma once

#include <cstdint>

#include "sim/dram.hh"
#include "support/types.hh"

namespace re::runtime {

struct GovernorOptions {
  /// Channel utilization at or above which plans are demoted to NT.
  double demote_utilization = 0.60;
  /// Channel utilization at or above which prefetching is suppressed.
  double suppress_utilization = 0.85;
  /// Consecutive windows below the relevant threshold before easing one
  /// mode step.
  int release_windows = 2;
};

enum class GovernorMode : int { Normal = 0, Demote = 1, Suppress = 2 };

const char* governor_mode_name(GovernorMode mode);

struct GovernorStats {
  std::uint64_t windows = 0;
  std::uint64_t demote_windows = 0;    // windows spent in Demote
  std::uint64_t suppress_windows = 0;  // windows spent in Suppress
  std::uint64_t mode_changes = 0;
  double peak_utilization = 0.0;
};

class BandwidthGovernor {
 public:
  BandwidthGovernor(const GovernorOptions& options,
                    double dram_bytes_per_cycle);

  /// Feed one window's cumulative DRAM stats (fetches + writebacks) and the
  /// core-local clock at the window's end; returns the mode to apply until
  /// the next window.
  GovernorMode observe_window(const sim::DramStats& cumulative, Cycle now);

  GovernorMode mode() const { return mode_; }
  double last_utilization() const { return last_utilization_; }
  const GovernorStats& stats() const { return stats_; }

 private:
  GovernorOptions opts_;
  double bytes_per_cycle_;
  GovernorMode mode_ = GovernorMode::Normal;
  std::uint64_t last_bytes_ = 0;
  Cycle last_cycle_ = 0;
  double last_utilization_ = 0.0;
  int calm_streak_ = 0;
  GovernorStats stats_;
};

}  // namespace re::runtime
