// Oracle plan scheduler: replays a precomputed phase schedule.
//
// Given the phase segmentation of a profiled run (core::PhasedProfile
// segments) and the per-phase plan sets the offline analysis produced, this
// agent switches the overlay at the exact reference boundaries — zero
// detection lag, zero warm-up. It is the upper bound the online controller
// is measured against in bench_online_adaptation ("per-phase oracle"), and
// doubles as a test harness for the overlay plumbing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/insertion.hh"
#include "core/phases.hh"
#include "sim/adaptive.hh"

namespace re::runtime {

class ScheduledPlanAgent final : public sim::CoreAgent {
 public:
  /// `segments` must be contiguous and ascending (as produced by
  /// profile_with_phases); `per_phase_plans` is indexed by phase id.
  ScheduledPlanAgent(
      std::vector<core::PhaseSegment> segments,
      std::vector<std::vector<core::PrefetchPlan>> per_phase_plans);

  void on_reference(int core, Pc pc, Addr addr, Cycle now,
                    sim::MemorySystem& memory) override;
  const sim::PlanOverlay* overlay(int core) const override {
    (void)core;
    return &overlay_;
  }

  std::uint64_t references_seen() const { return refs_; }

 private:
  void install_segment(std::size_t index);

  std::vector<core::PhaseSegment> segments_;
  std::vector<std::vector<core::PrefetchPlan>> per_phase_plans_;
  sim::PlanOverlay overlay_;
  std::size_t segment_ = 0;
  std::uint64_t refs_ = 0;
};

}  // namespace re::runtime
