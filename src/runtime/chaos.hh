// Deterministic chaos harness for the supervised adaptive runtime.
//
// Robustness claims are worthless if the faults that back them cannot be
// replayed. The harness turns a (seed, fault-rate) pair into a fixed
// *schedule* of fault episodes — which core, which fault, which reference
// span — generated once up front from support/rng.hh and applied verbatim
// during the run. Two runs with the same seed see byte-identical fault
// timelines; a failing seed from CI reproduces locally with one flag.
//
// Fault models (per episode, per core):
//
//   WindowDrop        — references are swallowed before they reach the
//                       controller; the sampler starves and the supervisor's
//                       heartbeat watchdog must notice the silence.
//   ClockSkew         — the clock the controller reads drifts by a fixed
//                       number of cycles per reference (positive or
//                       negative); negative drift also breaks monotonicity.
//   GovernorBlackout  — the controller's governor is fed frozen DRAM
//                       telemetry captured at episode start; the channel
//                       signal goes dark while the channel keeps moving.
//   ProfileCorruption — every window closed during the episode passes its
//                       sub-profile through a core::FaultInjector (PR 1's
//                       offline fault models, applied mid-run).
//
// The fifth chaos dimension — kill-and-restart of the plan-cache file — is
// file-shaped, not reference-shaped, so it lives in its own sweep:
// chaos_cache_crash_check() simulates kills mid-write and seeded corruption
// of the journal and checks the crash-consistency contract (old snapshot
// survives a torn write; corruption quarantines entries, never the cache).
//
// The injector only perturbs *inputs* at the supervision boundary. The
// supervisor is never told a fault is active; it must detect the symptoms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_injection.hh"
#include "runtime/supervisor.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "workloads/program.hh"

namespace re::runtime {

enum class ChaosFaultKind : int {
  WindowDrop = 0,
  ClockSkew = 1,
  GovernorBlackout = 2,
  ProfileCorruption = 3,
};
constexpr int kChaosFaultKinds = 4;

const char* chaos_fault_name(ChaosFaultKind kind);

/// One contiguous fault episode on one core, in that core's reference
/// timeline ([begin_ref, end_ref), counted over references the core
/// *attempts* to deliver — dropped references still advance the clock).
struct ChaosEpisode {
  ChaosFaultKind kind = ChaosFaultKind::WindowDrop;
  int core = 0;
  std::uint64_t begin_ref = 0;
  std::uint64_t end_ref = 0;
  /// Kind-specific: ClockSkew = signed cycle drift per reference;
  /// ProfileCorruption = fault rate in percent (core::FaultConfig::uniform).
  std::int64_t magnitude = 0;
};

struct ChaosConfig {
  /// Target fraction of each core's horizon spent under some fault, in
  /// [0, 1). 0 generates an empty schedule.
  double fault_rate = 0.25;
  /// Per-core reference horizon the schedule covers.
  std::uint64_t horizon_refs = 1u << 20;
  /// Episodes are confined to the first `active_fraction` of the horizon so
  /// every run ends with a fault-free tail in which recovery can complete
  /// and be measured.
  double active_fraction = 0.7;
  /// Mean episode length in references.
  std::uint64_t mean_episode_refs = 16384;
  int cores = 4;
  std::uint64_t seed = 0xC4A05;
};

/// Immutable, fully pre-generated fault schedule.
class ChaosSchedule {
 public:
  static ChaosSchedule generate(const ChaosConfig& config);

  /// Build a schedule from hand-written episodes (targeted tests and
  /// repros). Episodes are sorted into (core, begin_ref) order.
  static ChaosSchedule from_episodes(const ChaosConfig& config,
                                     std::vector<ChaosEpisode> episodes);

  const std::vector<ChaosEpisode>& episodes() const { return episodes_; }
  const ChaosConfig& config() const { return config_; }
  /// Largest end_ref of any episode on `core` (0 = core unfaulted): after
  /// this reference the core runs clean and must recover.
  std::uint64_t last_faulted_ref(int core) const;

  /// Deterministic one-line-per-episode rendering (for --print-schedule and
  /// the byte-determinism check in CI).
  std::string to_string() const;

 private:
  ChaosConfig config_;
  std::vector<ChaosEpisode> episodes_;  // sorted by (core, begin_ref)
};

/// What the injector wants done to the current reference.
struct RefChaos {
  bool drop = false;              // swallow the reference entirely
  std::int64_t clock_skew = 0;    // cycles to add to the delivered clock
  bool governor_blackout = false; // freeze the controller's DRAM telemetry
  /// Non-null while a ProfileCorruption episode is active (stable for the
  /// episode's duration).
  const core::FaultInjector* profile_injector = nullptr;
};

/// Replays a ChaosSchedule reference by reference. advance() must be called
/// with a strictly increasing ref index per core (the supervisor's per-core
/// delivery counter).
class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosSchedule schedule);

  RefChaos advance(int core, std::uint64_t ref_index);
  const ChaosSchedule& schedule() const { return schedule_; }

 private:
  struct CoreCursor {
    std::vector<ChaosEpisode> episodes;  // sorted by begin_ref
    std::size_t next = 0;
    std::vector<ChaosEpisode> active;
    std::optional<core::FaultInjector> injector;
  };

  ChaosSchedule schedule_;
  std::vector<CoreCursor> cursors_;
};

/// One full chaos experiment: a supervised mix run under a generated
/// schedule, plus a matching clean run of the same supervised setup for the
/// never-hurts comparison.
struct ChaosRunResult {
  ChaosSchedule schedule;
  sim::RunResult chaotic;           // run with faults injected
  sim::RunResult clean;             // same setup, no injector attached
  sim::RunResult baseline;          // unmanaged no-overlay run (never-hurts
                                    // reference: plain mix, no controllers)
  std::vector<DomainStats> domains; // per-core supervisor outcome (chaotic)
  /// Worst-core slowdown of the chaotic run vs the clean supervised run
  /// (1.0 = identical).
  double worst_slowdown = 0.0;
  /// Worst-core slowdown of the chaotic run vs the unmanaged baseline — the
  /// paper's never-hurts bound (<= 1 + epsilon): however hard the runtime is
  /// faulted, supervised prefetching must not lose to not prefetching.
  double worst_vs_baseline = 0.0;
  /// Largest last_recovery_windows across recovered domains.
  std::uint64_t worst_recovery_windows = 0;
  bool any_open = false;
  int total_trips = 0;
};

/// Run the chaos experiment. `programs` supplies one core per entry (the
/// schedule's `cores` is clamped to it).
ChaosRunResult run_chaos_mix(const sim::MachineConfig& machine,
                             const std::vector<const workloads::Program*>& programs,
                             bool hw_prefetch, const ChaosConfig& config,
                             const SupervisorOptions& options = {});

/// Crash-consistency sweep for the plan-cache journal. Builds a
/// deterministic cache, then per trial either simulates a kill mid-write
/// (tmp file present, target intact) or corrupts the journal at a seeded
/// offset (byte flip, truncation, zeroed span) and reloads. `scratch_path`
/// names a writable scratch file (removed afterwards).
struct CacheCrashReport {
  std::size_t trials = 0;
  std::size_t clean_loads = 0;     // every entry recovered
  std::size_t degraded_loads = 0;  // quarantined/missing but load succeeded
  std::size_t failed_loads = 0;    // header destroyed: load refused
  std::size_t entries_per_trial = 0;
  std::uint64_t entries_recovered = 0;
  /// Trials where loaded + quarantined + missing failed to account for
  /// every entry the snapshot held (must stay 0).
  std::size_t accounting_errors = 0;
  bool survives_torn_write = false;  // kill mid-write left old file intact

  std::string to_string() const;
};

CacheCrashReport chaos_cache_crash_check(std::uint64_t seed,
                                         std::size_t trials,
                                         const std::string& scratch_path);

}  // namespace re::runtime
