// Supervision layer for the online adaptive runtime: per-core failure
// domains around AdaptiveController.
//
// The controller (PR 2) assumes every component stays healthy. On real
// hardware the pieces it depends on fail independently: the sampling window
// stalls (PMU interrupt storms, watchpoint exhaustion), the clock it reads
// skews, the bandwidth telemetry feeding the governor goes dark, and the
// profile stream can corrupt mid-run. The paper's never-hurts contract
// (Section VI-B) does not allow any of those to poison prefetch decisions —
// let alone decisions on *other* cores.
//
// The Supervisor wraps each core's controller in an isolated failure
// domain:
//
//   * heartbeat watchdog — the controller must close a sampling window at
//     least every `heartbeat_grace_windows x window_refs` delivered
//     references; a silent controller is tripped (exactly one fire per
//     missed heartbeat).
//   * health validation — every closed window is checked: the measured Δ
//     must stay finite and bounded, the active plan set must stay sane
//     (bounded distances, bounded count), the clock must stay monotonic,
//     and the governor's reported utilization must track the supervisor's
//     own independent measurement of the shared channel (divergence for
//     several consecutive windows = bandwidth signal loss).
//   * last-known-good rollback — the overlay the simulator consults is the
//     domain's own mirror, updated only from validated windows; a tripped
//     controller's half-written plans are therefore never visible.
//   * exponential-backoff re-arm — a tripped domain discards the suspect
//     controller, waits base x 2^(trips-1) windows (seeded jitter via
//     support/rng.hh), then restarts a fresh controller warm-started from
//     the last-known-good plan-cache snapshot and probes it in half-open
//     mode before trusting it again.
//   * circuit breaker — after `max_trips` consecutive trips (a completed
//     half-open probe resets the count) the domain opens for good: that
//     core degrades to no-prefetch (the guaranteed-safe baseline) and
//     stays there; the other cores' domains never notice.
//
// State machine (DESIGN.md §10):
//
//   Armed --fault--> Tripped --(rollback)--> Backoff --expiry--> HalfOpen
//     ^                                                             |
//     +------- probe healthy windows (resets the trip count) -------+
//   any state --consecutive trips == max_trips--> Open (terminal)
//
// The Supervisor is a sim::CoreAgent managing all cores of a mix: pass the
// same instance as every core's agent; on_reference and overlay dispatch on
// the core index. Chaos faults are injected at this boundary (see
// runtime/chaos.hh) so the supervisor proves recovery against the symptoms,
// never against knowledge of the injection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/adaptive_controller.hh"
#include "runtime/breaker.hh"
#include "sim/adaptive.hh"
#include "sim/config.hh"
#include "support/rng.hh"
#include "workloads/program.hh"

namespace re::runtime {

class ChaosInjector;  // runtime/chaos.hh

/// Recovery state of one core's failure domain. The state machine itself
/// (trip/backoff/half-open/open, exponential backoff with seeded jitter)
/// is the shared runtime::Breaker; for a domain the states read as:
/// Armed = controller trusted, overlay mirrored window by window;
/// Backoff = controller discarded, LKG overlay active; HalfOpen =
/// restarted controller on probation; Open = no-prefetch for good.
using DomainState = BreakerState;

const char* domain_state_name(DomainState state);

/// Why a domain tripped (for stats and logs).
enum class TripCause : int {
  None = 0,
  Watchdog,          // missed heartbeat: no window closed within grace
  ClockFault,        // non-monotonic clock or unbounded measured Δ
  PlanFault,         // active plans failed the sanity bounds
  GovernorFault,     // reported utilization diverged from the channel
};

const char* trip_cause_name(TripCause cause);

struct SupervisorOptions {
  /// Configuration for every per-core controller (including restarts).
  AdaptiveOptions adaptive;

  /// Windows of silence tolerated before the watchdog fires. The grace is
  /// measured in delivered references: grace_refs = this x window_refs.
  std::uint64_t heartbeat_grace_windows = 4;
  /// Measured Δ (cycles/memop EWMA) above this is insane — no in-order core
  /// spends thousands of cycles per reference; a skewed clock does.
  double max_cycles_per_memop = 10000.0;
  /// Relative clock plausibility: a window whose cycles-per-memop jumps
  /// above `suspicious_cpm_factor` x the domain's running EWMA is held back
  /// from the mirror (moderate skew hides below the absolute bound); after
  /// `clock_suspect_windows` consecutive suspect windows the domain trips.
  /// The EWMA survives trips so a restart mid-skew cannot re-baseline on the
  /// faulty clock; it is inflated on every suspect window so a genuine,
  /// persistent regime change is eventually accepted instead of tripping
  /// forever.
  double suspicious_cpm_factor = 8.0;
  int clock_suspect_windows = 2;
  /// Plan sanity: |distance_bytes| above this bound trips the domain.
  std::int64_t max_plan_distance_bytes = 16 << 20;
  /// Plan sanity: more active plans than this trips the domain.
  std::size_t max_plans_per_core = 512;
  /// Governor health: |reported - observed| channel utilization above this
  /// for `governor_divergence_windows` consecutive windows is signal loss.
  double governor_divergence = 0.35;
  int governor_divergence_windows = 3;

  /// Backoff after the t-th consecutive trip lasts base x 2^(t-1) windows
  /// (capped), stretched by seeded jitter in [1 - jitter, 1 + jitter].
  std::uint64_t backoff_base_windows = 8;
  std::uint64_t max_backoff_windows = 512;
  double backoff_jitter = 0.25;
  /// Consecutive healthy windows a restarted controller must produce in
  /// half-open mode before the domain re-arms.
  int half_open_probe_windows = 3;
  /// Consecutive trips (with no successful recovery in between) after which
  /// the circuit opens for good (no-prefetch). A completed half-open probe
  /// resets the count — a domain that keeps proving health never opens, no
  /// matter how long it runs.
  int max_trips = 5;
  /// Warm-start restarted controllers from the last-known-good plan-cache
  /// snapshot (taken at validated windows).
  bool restart_from_lkg_cache = true;
  /// Master seed for the per-domain backoff jitter (forked per core).
  std::uint64_t seed = 0x5EED5AFE;
};

struct DomainStats {
  DomainState state = DomainState::Armed;
  TripCause last_trip = TripCause::None;
  int trips = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t clock_faults = 0;
  std::uint64_t plan_faults = 0;
  std::uint64_t governor_faults = 0;
  std::uint64_t rollbacks = 0;       // trips that fell back to LKG plans
  std::uint64_t restarts = 0;        // fresh controllers armed after backoff
  std::uint64_t recoveries = 0;      // half-open probes that re-armed
  std::uint64_t healthy_windows = 0; // validated windows mirrored to the sim
  std::uint64_t refs_seen = 0;
  std::uint64_t backoff_refs = 0;    // references spent in Backoff
  /// Windows between the most recent trip and the re-arm that cleared it
  /// (0 until the first recovery) — the bench's recovery-time bound.
  std::uint64_t last_recovery_windows = 0;

  std::string to_string() const;
};

class Supervisor final : public sim::CoreAgent {
 public:
  /// One failure domain per program/core. The programs and machine config
  /// must outlive the supervisor (controllers are rebuilt from them on
  /// re-arm).
  Supervisor(const std::vector<const workloads::Program*>& programs,
             const sim::MachineConfig& machine,
             const SupervisorOptions& options = {});
  ~Supervisor() override;

  // sim::CoreAgent (pass this instance as every core's agent):
  void on_reference(int core, Pc pc, Addr addr, Cycle now,
                    sim::MemorySystem& memory) override;
  const sim::PlanOverlay* overlay(int core) const override;

  /// Attach a chaos injector (nullptr detaches). Faults are applied at the
  /// supervision boundary of every subsequent reference. The injector must
  /// outlive the supervisor or be detached first.
  void set_chaos(ChaosInjector* chaos) { chaos_ = chaos; }

  int cores() const { return static_cast<int>(domains_.size()); }
  const DomainStats& domain_stats(int core) const;
  DomainState domain_state(int core) const;
  /// The live controller of a domain (nullptr while tripped/backoff/open).
  const AdaptiveController* controller(int core) const;

  /// True when any domain's circuit is permanently open.
  bool any_open() const;
  /// Total trips across all domains.
  int total_trips() const;

 private:
  struct Domain;

  void trip(Domain& domain, TripCause cause);
  void restart(Domain& domain);
  /// Health checks at a window close. `seen` is the clock as delivered to
  /// the controller (possibly chaos-skewed); `now` is the true core clock
  /// the supervisor meters the channel with.
  void validate_window(Domain& domain, Cycle seen, Cycle now,
                       std::uint64_t delivered_refs,
                       sim::MemorySystem& memory);
  void mirror_overlay(Domain& domain);

  std::vector<const workloads::Program*> programs_;
  sim::MachineConfig machine_;
  SupervisorOptions opts_;
  std::vector<std::unique_ptr<Domain>> domains_;
  ChaosInjector* chaos_ = nullptr;
};

}  // namespace re::runtime
