#include "runtime/breaker.hh"

#include <algorithm>

namespace re::runtime {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Armed: return "armed";
    case BreakerState::Backoff: return "backoff";
    case BreakerState::HalfOpen: return "half-open";
    case BreakerState::Open: return "open";
  }
  return "unknown";
}

Breaker::Breaker(const BreakerOptions& options, std::uint64_t seed)
    : opts_(options), rng_(seed) {}

void Breaker::trip() {
  if (state_ == BreakerState::Open) return;
  ++consecutive_trips_;
  probes_ = 0;

  if (opts_.max_trips > 0 && consecutive_trips_ >= opts_.max_trips) {
    state_ = BreakerState::Open;
    backoff_remaining_ = 0;
    return;
  }

  state_ = BreakerState::Backoff;
  const int exponent =
      std::min(consecutive_trips_ - 1, 30);  // >= 0 here; cap the shift
  std::uint64_t units = opts_.backoff_base << static_cast<unsigned>(exponent);
  units = std::min(std::max<std::uint64_t>(units, 1),
                   std::max<std::uint64_t>(opts_.max_backoff, 1));
  const double jitter =
      1.0 + opts_.jitter * (2.0 * rng_.uniform() - 1.0);
  const double ticks =
      static_cast<double>(units) *
      static_cast<double>(std::max<std::uint64_t>(opts_.tick_scale, 1)) *
      std::max(jitter, 0.0);
  backoff_remaining_ =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(ticks), 1);
}

bool Breaker::tick(std::uint64_t ticks) {
  if (state_ != BreakerState::Backoff) return false;
  backoff_remaining_ -= std::min(backoff_remaining_, ticks);
  if (backoff_remaining_ > 0) return false;
  state_ = BreakerState::HalfOpen;
  probes_ = 0;
  return true;
}

bool Breaker::probe_ok() {
  if (state_ != BreakerState::HalfOpen) return false;
  if (++probes_ < opts_.half_open_probes) return false;
  state_ = BreakerState::Armed;
  consecutive_trips_ = 0;
  probes_ = 0;
  return true;
}

}  // namespace re::runtime
