#include "sim/dram.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace re::sim {

DramChannel::DramChannel(double bytes_per_cycle, Cycle latency)
    : bytes_per_cycle_(bytes_per_cycle), latency_(latency) {
  if (bytes_per_cycle <= 0.0) {
    throw std::invalid_argument("DRAM bandwidth must be positive");
  }
  transfer_cycles_ = static_cast<Cycle>(
      std::llround(std::ceil(static_cast<double>(kLineSize) /
                             bytes_per_cycle_)));
  if (transfer_cycles_ == 0) transfer_cycles_ = 1;
}

Cycle DramChannel::fetch_line(Cycle now, TrafficClass cls) {
  switch (cls) {
    case TrafficClass::DemandRead: ++stats_.demand_lines; break;
    case TrafficClass::SwPrefetchRead: ++stats_.sw_prefetch_lines; break;
    case TrafficClass::HwPrefetchRead: ++stats_.hw_prefetch_lines; break;
  }
  const Cycle start = std::max(now, next_free_);
  next_free_ = start + transfer_cycles_;
  return start + latency_;
}

void DramChannel::writeback_line(Cycle now) {
  ++stats_.writeback_lines;
  next_free_ = std::max(now, next_free_) + transfer_cycles_;
}

Cycle DramChannel::queue_delay(Cycle now) const {
  return next_free_ > now ? next_free_ - now : 0;
}

}  // namespace re::sim
