#include "sim/core_runner.hh"

namespace re::sim {

CoreRunner::CoreRunner(int core_index, const workloads::Program& program,
                       MemorySystem& memory, CoreAgent* agent)
    : core_(core_index), cursor_(program), memory_(&memory), agent_(agent) {}

void CoreRunner::step() {
  auto event = cursor_.next();
  if (!event) {
    // One full run finished; the cursor has rewound. Record the completion
    // and return — the next step() starts the restarted run (mix runs keep
    // finished apps executing so contention stays realistic).
    if (completions_ == 0) {
      first_completion_cycle_ = now_;
      first_run_refs_ = cursor_.program().total_references();
    }
    ++completions_;
    ++now_;  // loop-exit bookkeeping; also guarantees forward progress for
             // degenerate (empty) programs in the multicore driver
    return;
  }

  const workloads::StaticInst& inst = *event->inst;
  now_ += memory_->demand_load(core_, inst.pc, event->addr, now_,
                               inst.serial_dependent, inst.is_store);
  now_ += inst.compute_cycles;

  // An active overlay replaces the program's baked-in prefetches wholesale;
  // without one the static rewrite applies unchanged.
  const workloads::PrefetchOp* op = nullptr;
  const PlanOverlay* overlay = agent_ ? agent_->overlay(core_) : nullptr;
  if (overlay && overlay->active) {
    op = overlay->lookup(inst.pc);
  } else if (inst.prefetch) {
    op = &*inst.prefetch;
  }
  if (op) {
    now_ += memory_->config().prefetch_inst_cost;
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(event->addr) + op->distance_bytes);
    memory_->software_prefetch(core_, target, op->hint, now_);
  }

  if (agent_) agent_->on_reference(core_, inst.pc, event->addr, now_, *memory_);
}

}  // namespace re::sim
