#include "sim/core_runner.hh"

namespace re::sim {

CoreRunner::CoreRunner(int core_index, const workloads::Program& program,
                       MemorySystem& memory)
    : core_(core_index), cursor_(program), memory_(&memory) {}

void CoreRunner::step() {
  auto event = cursor_.next();
  if (!event) {
    // One full run finished; the cursor has rewound. Record the completion
    // and return — the next step() starts the restarted run (mix runs keep
    // finished apps executing so contention stays realistic).
    if (completions_ == 0) {
      first_completion_cycle_ = now_;
      first_run_refs_ = cursor_.program().total_references();
    }
    ++completions_;
    ++now_;  // loop-exit bookkeeping; also guarantees forward progress for
             // degenerate (empty) programs in the multicore driver
    return;
  }

  const workloads::StaticInst& inst = *event->inst;
  now_ += memory_->demand_load(core_, inst.pc, event->addr, now_,
                               inst.serial_dependent, inst.is_store);
  now_ += inst.compute_cycles;

  if (inst.prefetch) {
    now_ += memory_->config().prefetch_inst_cost;
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(event->addr) +
        inst.prefetch->distance_bytes);
    memory_->software_prefetch(core_, target, inst.prefetch->hint, now_);
  }
}

}  // namespace re::sim
