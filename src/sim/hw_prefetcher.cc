#include "sim/hw_prefetcher.hh"

#include <algorithm>

#include "workloads/program.hh"  // mix64

namespace re::sim {

namespace {
constexpr Addr kRegionShift = 12;  // 4 kB stream-training regions

std::size_t slot_for(std::uint64_t key, std::size_t table_size) {
  return workloads::mix64(key) % table_size;
}
}  // namespace

HwPrefetcher::HwPrefetcher(const HwPrefetcherConfig& config)
    : config_(config),
      stride_table_(config.stride_table_entries),
      stream_table_(config.stream_table_entries) {}

std::uint32_t HwPrefetcher::effective_degree(std::uint32_t configured,
                                             Cycle dram_queue_delay) {
  if (dram_queue_delay > config_.throttle_queue_cycles) {
    ++stats_.throttled_events;
    return std::max(config_.throttled_min_degree, configured / 2);
  }
  return configured;
}

void HwPrefetcher::observe(Pc pc, Addr addr, bool l2_hit,
                           Cycle dram_queue_delay, std::vector<Addr>& out) {
  if (!config_.enabled) return;
  const Addr line = line_of(addr);

  if (config_.pc_stride && !stride_table_.empty()) {
    StrideEntry& entry = stride_table_[slot_for(pc, stride_table_.size())];
    if (entry.valid && entry.pc == pc) {
      const std::int64_t delta = static_cast<std::int64_t>(addr) -
                                 static_cast<std::int64_t>(entry.last_addr);
      if (delta != 0 && delta == entry.stride) {
        if (entry.confidence < 16) ++entry.confidence;
      } else if (entry.confidence > 0) {
        --entry.confidence;
      } else {
        // Adopt the new stride; this observation is its first confirmation.
        entry.stride = delta;
        entry.confidence = 1;
      }
      entry.last_addr = addr;
      if (delta != 0 && entry.stride != 0 &&
          entry.confidence >= config_.stride_confidence_threshold) {
        const std::uint32_t degree =
            effective_degree(config_.stride_degree, dram_queue_delay);
        Addr prev_line = line;
        for (std::uint32_t k = 1; k <= degree; ++k) {
          const Addr target = static_cast<Addr>(
              static_cast<std::int64_t>(addr) + entry.stride *
              static_cast<std::int64_t>(k));
          const Addr target_line = line_of(target);
          if (target_line != prev_line) {
            out.push_back(target_line);
            ++stats_.stride_prefetches;
            prev_line = target_line;
          }
        }
      }
    } else {
      entry = StrideEntry{pc, addr, 0, 0, true};
    }
  }

  // Stream and adjacent-line engines train on L2 misses only.
  if (l2_hit) return;

  if (config_.stream && !stream_table_.empty()) {
    const Addr region = line >> (kRegionShift - kLineShift);
    StreamEntry& entry = stream_table_[slot_for(region, stream_table_.size())];
    if (entry.valid && entry.region == region) {
      const std::int64_t delta = static_cast<std::int64_t>(line) -
                                 static_cast<std::int64_t>(entry.last_line);
      if (delta == 1 || delta == -1) {
        const int dir = delta > 0 ? 1 : -1;
        if (entry.direction == dir) {
          ++entry.count;
        } else {
          entry.direction = dir;
          entry.count = 1;
        }
        if (entry.count >= config_.stream_train_misses) {
          const std::uint32_t degree =
              effective_degree(config_.stream_degree, dram_queue_delay);
          for (std::uint32_t k = 1; k <= degree; ++k) {
            const std::int64_t target =
                static_cast<std::int64_t>(line) +
                dir * static_cast<std::int64_t>(k);
            if (target >= 0) {
              out.push_back(static_cast<Addr>(target));
              ++stats_.stream_prefetches;
            }
          }
        }
      } else if (delta != 0) {
        entry.count = 0;
        entry.direction = 0;
      }
      entry.last_line = line;
    } else {
      entry = StreamEntry{region, line, 0, 0, true};
    }
  }

  // Adjacent-line prefetch backs off entirely under channel contention.
  if (config_.adjacent_line &&
      dram_queue_delay <= config_.throttle_queue_cycles) {
    out.push_back(line ^ 1);
    ++stats_.adjacent_prefetches;
  }
}

void HwPrefetcher::reset() {
  std::fill(stride_table_.begin(), stride_table_.end(), StrideEntry{});
  std::fill(stream_table_.begin(), stream_table_.end(), StreamEntry{});
  stats_ = HwPrefetcherStats{};
}

}  // namespace re::sim
