// Hardware prefetcher model (per core, observing the L2 access stream).
//
// Two cooperating engines, mirroring 2014-era commodity prefetchers:
//  * a PC-indexed stride prefetcher (AMD-style), and
//  * a region-based stream detector with configurable degree plus an
//    optional adjacent-line prefetch (Intel Sandy Bridge-style).
//
// The model is intentionally aggressive and speculative: it trains on two
// events, runs past stream ends, and fetches buddy lines on sparse misses.
// That is the behaviour the paper measures as useless off-chip traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "support/types.hh"

namespace re::sim {

struct HwPrefetcherStats {
  std::uint64_t stride_prefetches = 0;
  std::uint64_t stream_prefetches = 0;
  std::uint64_t adjacent_prefetches = 0;
  std::uint64_t throttled_events = 0;

  std::uint64_t total() const {
    return stride_prefetches + stream_prefetches + adjacent_prefetches;
  }
};

class HwPrefetcher {
 public:
  explicit HwPrefetcher(const HwPrefetcherConfig& config);

  /// Observe one demand access that reached the L2 (i.e. missed L1).
  /// `l2_hit` distinguishes training-on-miss engines. `dram_queue_delay`
  /// drives throttling. Candidate prefetch target *line* addresses are
  /// appended to `out` (dedup against caches is the caller's job).
  void observe(Pc pc, Addr addr, bool l2_hit, Cycle dram_queue_delay,
               std::vector<Addr>& out);

  const HwPrefetcherStats& stats() const { return stats_; }
  void reset();

 private:
  struct StrideEntry {
    Pc pc = 0;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
    bool valid = false;
  };

  struct StreamEntry {
    Addr region = 0;
    Addr last_line = 0;
    int direction = 0;  // +1 / -1
    std::uint32_t count = 0;
    bool valid = false;
  };

  std::uint32_t effective_degree(std::uint32_t configured,
                                 Cycle dram_queue_delay);

  HwPrefetcherConfig config_;
  std::vector<StrideEntry> stride_table_;
  std::vector<StreamEntry> stream_table_;
  HwPrefetcherStats stats_;
};

}  // namespace re::sim
