// Bandwidth-limited DRAM channel shared by all cores.
//
// Models the channel as a single serial resource: each line transfer
// occupies the channel for line_size / bytes_per_cycle cycles, and a request
// arriving while the channel is busy queues behind earlier ones. Queueing
// delay is what turns aggressive prefetching into a multicore throughput
// loss — the central mechanism of the paper's evaluation.
#pragma once

#include <cstdint>

#include "support/types.hh"

namespace re::sim {

/// Why a line crossed the off-chip interface (for traffic attribution).
enum class TrafficClass : std::uint8_t {
  DemandRead,
  SwPrefetchRead,
  HwPrefetchRead,
};

struct DramStats {
  std::uint64_t demand_lines = 0;
  std::uint64_t sw_prefetch_lines = 0;
  std::uint64_t hw_prefetch_lines = 0;
  std::uint64_t writeback_lines = 0;

  /// Lines *fetched* from DRAM — the paper's "data volume fetched"
  /// metric. Writebacks are accounted separately.
  std::uint64_t total_lines() const {
    return demand_lines + sw_prefetch_lines + hw_prefetch_lines;
  }
  std::uint64_t total_bytes() const { return total_lines() * kLineSize; }
  std::uint64_t writeback_bytes() const {
    return writeback_lines * kLineSize;
  }
};

class DramChannel {
 public:
  /// `bytes_per_cycle` is the sustained channel bandwidth; `latency` is the
  /// unloaded access latency (row access + transfer start).
  DramChannel(double bytes_per_cycle, Cycle latency);

  /// Issue a line fetch at time `now` (requester's clock). Returns the cycle
  /// at which the data arrives at the requester.
  Cycle fetch_line(Cycle now, TrafficClass cls);

  /// Retire a dirty line to memory: occupies channel bandwidth but the
  /// core does not wait for it.
  void writeback_line(Cycle now);

  /// Cycles a request issued at `now` would wait before the channel is free
  /// (used by prefetcher throttling).
  Cycle queue_delay(Cycle now) const;

  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

  /// Forget channel occupancy (used between independent runs).
  void reset_time() { next_free_ = 0; }

  double bytes_per_cycle() const { return bytes_per_cycle_; }

 private:
  double bytes_per_cycle_;
  Cycle latency_;
  Cycle transfer_cycles_;
  Cycle next_free_ = 0;
  DramStats stats_;
};

}  // namespace re::sim
