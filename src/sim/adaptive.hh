// Plan-switch hook for online adaptive prefetching.
//
// The offline pipeline bakes prefetches into the program (a static rewrite,
// the paper's assembler-level insertion). The adaptive runtime instead gives
// each core a *mutable plan overlay*: a PC -> PrefetchOp map consulted on
// every executed load. While an overlay is active it replaces the program's
// baked-in prefetches wholesale, so a controller can hot-swap the entire
// plan set between two references without touching the program — the
// simulator analogue of patching prefetch instructions in a running binary.
#pragma once

#include <unordered_map>

#include "support/types.hh"
#include "workloads/program.hh"

namespace re::sim {

class MemorySystem;

/// Mutable per-core prefetch-plan overlay. Inactive overlays defer to the
/// program's baked-in prefetches; an active overlay replaces them entirely
/// (an active *empty* overlay therefore suppresses all prefetching — the
/// governor's strongest action).
struct PlanOverlay {
  bool active = false;
  std::unordered_map<Pc, workloads::PrefetchOp> plans;

  const workloads::PrefetchOp* lookup(Pc pc) const {
    auto it = plans.find(pc);
    return it == plans.end() ? nullptr : &it->second;
  }

  void install(Pc pc, workloads::PrefetchOp op) {
    plans[pc] = op;
    active = true;
  }

  void deactivate() {
    plans.clear();
    active = false;
  }
};

/// Observer + policy hook driven by CoreRunner. `on_reference` fires after
/// each demand reference completes (including its attached prefetch), so
/// any overlay mutation it performs takes effect from the next reference
/// on. The memory system is passed mutable so an agent may inspect shared
/// state (DRAM stats, queue delay); agents must not issue accesses from the
/// hook.
class CoreAgent {
 public:
  virtual ~CoreAgent() = default;

  virtual void on_reference(int core, Pc pc, Addr addr, Cycle now,
                            MemorySystem& memory) = 0;

  /// Overlay consulted for this core's prefetches; nullptr = none.
  virtual const PlanOverlay* overlay(int core) const = 0;
};

}  // namespace re::sim
