// Multicore memory system: per-core L1 + L2, shared LLC, shared DRAM
// channel, per-core hardware prefetchers, and in-flight prefetch tracking.
//
// Prefetch semantics: a prefetched line is installed into the target cache
// level(s) immediately, with a per-core "pending ready" timestamp equal to
// its DRAM (or lower-level) arrival time. A demand access to a line whose
// prefetch is still in flight pays only the remaining latency — i.e. late
// prefetches are partially useful, giving the paper's prefetch-distance
// formula its meaning.
//
// Non-temporal (PREFETCHNTA) semantics: the line is installed into the L1
// only. When it is evicted from L1 it vanishes (clean line, no allocation in
// L2/LLC on the way out), so NT prefetches never pollute shared levels.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/hw_prefetcher.hh"
#include "workloads/program.hh"
#include "support/types.hh"

namespace re::sim {

/// Per-core memory statistics.
struct CoreMemStats {
  std::uint64_t loads = 0;   // demand accesses (loads and stores)
  std::uint64_t stores = 0;  // subset of `loads` that were stores
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t dram_loads = 0;

  std::uint64_t sw_prefetches_issued = 0;   // prefetch instructions executed
  std::uint64_t sw_prefetches_dropped = 0;  // target already resident/pending
  std::uint64_t sw_prefetch_dram_lines = 0;
  std::uint64_t hw_prefetch_dram_lines = 0;

  std::uint64_t late_prefetch_hits = 0;  // demand hit an in-flight line
  std::uint64_t useless_sw_evictions = 0;  // SW-prefetched, never touched
  std::uint64_t useless_hw_evictions = 0;  // HW-prefetched, never touched

  std::uint64_t memory_stall_cycles = 0;

  std::uint64_t l1_misses() const { return loads - l1_hits; }
  std::uint64_t dram_lines_total() const {
    return dram_loads + sw_prefetch_dram_lines + hw_prefetch_dram_lines;
  }
  double l1_miss_ratio() const {
    return loads ? static_cast<double>(l1_misses()) / static_cast<double>(loads)
                 : 0.0;
  }
};

/// In-flight (prefetched but not yet arrived) line tracker: a direct-mapped
/// table of (line, ready-cycle). Collisions overwrite — the table is a
/// timing hint, and a dropped entry only makes one late prefetch look
/// punctual. Far cheaper than a hash map on the per-access hot path.
class PendingLines {
 public:
  void insert(Addr line, Cycle ready) {
    Entry& e = entries_[slot(line)];
    e.line = line;
    e.ready = ready;
  }

  /// Remaining cycles until an in-flight fill of `line` completes (0 if not
  /// pending or already arrived).
  Cycle remaining(Addr line, Cycle now) const {
    const Entry& e = entries_[slot(line)];
    if (e.line != line || e.ready <= now) return 0;
    return e.ready - now;
  }

  /// True if `line` has a fill still in flight at `now`.
  bool in_flight(Addr line, Cycle now) const { return remaining(line, now) != 0; }

 private:
  struct Entry {
    Addr line = ~Addr{0};
    Cycle ready = 0;
  };
  static constexpr std::size_t kSlots = 1 << 14;
  static std::size_t slot(Addr line) {
    return (line * 0x9e3779b97f4a7c15ULL) >> 50;
  }
  std::vector<Entry> entries_ = std::vector<Entry>(kSlots);
};

class MemorySystem {
 public:
  MemorySystem(const MachineConfig& config, int num_cores);

  /// Execute a demand load; returns the stall cycles observed by the core.
  /// `serial_dependent` marks loads on a serial dependence chain (pointer
  /// chasing): they pay the full latency, while independent loads have their
  /// stall reduced by the machine's out-of-order overlap window.
  Cycle demand_load(int core, Pc pc, Addr addr, Cycle now,
                    bool serial_dependent = false, bool is_store = false);

  /// Execute a software prefetch for `addr` with the given x86 hint level
  /// (the instruction's 1-cycle issue cost is charged by the core model,
  /// not here). T0 fills L1+L2+LLC, T1 fills L2+LLC, T2 fills LLC only,
  /// NTA fills L1 only.
  void software_prefetch(int core, Addr addr, workloads::PrefetchHint hint,
                         Cycle now);

  const CoreMemStats& core_stats(int core) const { return cores_[core].stats; }
  const DramStats& dram_stats() const { return dram_.stats(); }
  const HwPrefetcherStats& hw_prefetcher_stats(int core) const {
    return cores_[core].hw_prefetcher->stats();
  }
  const MachineConfig& config() const { return config_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  /// Direct cache handles for tests.
  SetAssocCache& l1(int core) { return *cores_[core].l1; }
  SetAssocCache& l2(int core) { return *cores_[core].l2; }
  SetAssocCache& llc() { return *llc_; }
  DramChannel& dram() { return dram_; }

 private:
  struct CoreState {
    std::unique_ptr<SetAssocCache> l1;
    std::unique_ptr<SetAssocCache> l2;
    std::unique_ptr<HwPrefetcher> hw_prefetcher;
    PendingLines pending;
    CoreMemStats stats;
  };

  enum class Level { L1, L2, Llc };

  /// Account a displaced line: useless-prefetch bookkeeping plus dirty
  /// propagation (write the line into the next level down, or retire it to
  /// DRAM as writeback bandwidth if no lower level holds it).
  void handle_eviction(CoreState& core, Level level,
                       const std::optional<Eviction>& ev, Cycle now);
  void issue_hw_prefetches(int core_idx, Cycle now);

  MachineConfig config_;
  DramChannel dram_;
  std::unique_ptr<SetAssocCache> llc_;
  std::vector<CoreState> cores_;
  std::vector<Addr> hw_candidates_;  // scratch, avoids per-access allocation
};

}  // namespace re::sim
