#include "sim/system.hh"

#include <limits>
#include <memory>

#include "sim/core_runner.hh"

namespace re::sim {

namespace {

/// Drive the given runners until each completes its program once.
/// `restart_finished` keeps early finishers executing (mix protocol) so
/// shared-resource contention persists for the apps still running.
RunResult drive(const MachineConfig& machine,
                std::vector<const workloads::Program*> programs,
                bool hw_prefetch, bool restart_finished,
                const std::vector<CoreAgent*>* agents = nullptr) {
  MachineConfig config = machine;
  config.hw_prefetcher.enabled = hw_prefetch;

  MemorySystem memory(config, static_cast<int>(programs.size()));
  std::vector<std::unique_ptr<CoreRunner>> cores;
  cores.reserve(programs.size());
  for (std::size_t c = 0; c < programs.size(); ++c) {
    CoreAgent* agent =
        agents && c < agents->size() ? (*agents)[c] : nullptr;
    cores.push_back(
        std::make_unique<CoreRunner>(static_cast<int>(c), *programs[c],
                                     memory, agent));
  }

  std::size_t remaining = cores.size();
  while (remaining > 0) {
    // Advance the core with the smallest local clock that still matters.
    CoreRunner* next = nullptr;
    Cycle min_cycle = std::numeric_limits<Cycle>::max();
    for (auto& core : cores) {
      if (core->completed_once() && !restart_finished) continue;
      if (core->now() < min_cycle) {
        min_cycle = core->now();
        next = core.get();
      }
    }
    if (next == nullptr) break;  // all parked
    const bool was_done = next->completed_once();
    next->step();
    if (!was_done && next->completed_once()) --remaining;
  }

  RunResult result;
  result.freq_ghz = config.freq_ghz;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    AppResult app;
    app.name = programs[c]->name;
    app.cycles = cores[c]->first_completion_cycle();
    app.references = cores[c]->first_run_references();
    app.mem = memory.core_stats(static_cast<int>(c));
    result.apps.push_back(std::move(app));
    result.elapsed_cycles =
        std::max(result.elapsed_cycles, cores[c]->first_completion_cycle());
  }
  result.dram = memory.dram_stats();
  return result;
}

}  // namespace

RunResult run_single(const MachineConfig& machine,
                     const workloads::Program& program, bool hw_prefetch) {
  return drive(machine, {&program}, hw_prefetch, /*restart_finished=*/false);
}

RunResult run_mix(const MachineConfig& machine,
                  const std::vector<const workloads::Program*>& programs,
                  bool hw_prefetch) {
  return drive(machine, programs, hw_prefetch, /*restart_finished=*/true);
}

RunResult run_parallel(const MachineConfig& machine,
                       const std::vector<workloads::Program>& shards,
                       bool hw_prefetch) {
  std::vector<const workloads::Program*> ptrs;
  ptrs.reserve(shards.size());
  for (const workloads::Program& shard : shards) ptrs.push_back(&shard);
  return drive(machine, ptrs, hw_prefetch, /*restart_finished=*/false);
}

RunResult run_single_adaptive(const MachineConfig& machine,
                              const workloads::Program& program,
                              bool hw_prefetch, CoreAgent& agent) {
  const std::vector<CoreAgent*> agents = {&agent};
  return drive(machine, {&program}, hw_prefetch, /*restart_finished=*/false,
               &agents);
}

RunResult run_mix_adaptive(
    const MachineConfig& machine,
    const std::vector<const workloads::Program*>& programs, bool hw_prefetch,
    const std::vector<CoreAgent*>& agents) {
  return drive(machine, programs, hw_prefetch, /*restart_finished=*/true,
               &agents);
}

}  // namespace re::sim
