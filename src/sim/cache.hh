// Set-associative cache with true-LRU replacement and prefetch/NT-aware
// fill control.
//
// Tracks, per line, whether it was installed by a prefetch and whether it has
// been touched by a demand access since — the basis of the useless-prefetch
// accounting behind the paper's off-chip traffic results.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/config.hh"
#include "support/types.hh"

namespace re::sim {

/// How a line came to be resident (for pollution/useless-fill accounting).
enum class FillOrigin : std::uint8_t {
  Demand,       // brought in by a demand load
  SwPrefetch,   // software prefetch (normal or NT)
  HwPrefetch,   // hardware prefetcher
};

/// Result of evicting a line.
struct Eviction {
  Addr line = 0;
  FillOrigin origin = FillOrigin::Demand;
  bool demand_touched = false;  // ever hit by a demand access while resident
  bool dirty = false;           // written while resident (needs writeback)
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geometry);

  /// Demand or prefetch probe. A hit refreshes recency; a demand hit also
  /// marks the line as touched. Returns true on hit.
  bool access(Addr line, bool demand);

  /// Mark a resident line dirty (store hit or dirty writeback from an
  /// upper level); no-op if absent. Returns true if the line was found.
  bool mark_dirty(Addr line);

  /// Probe without changing any state.
  bool contains(Addr line) const;

  /// Insert a line (caller established it missed). Returns the eviction, if
  /// a valid line was displaced.
  std::optional<Eviction> fill(Addr line, FillOrigin origin);

  /// Remove a specific line if present.
  void invalidate(Addr line);

  /// Remove everything.
  void flush();

  std::uint64_t num_sets() const { return sets_; }
  std::uint32_t associativity() const { return ways_; }
  std::uint64_t size_bytes() const { return sets_ * ways_ * kLineSize; }

  /// Resident lines installed by prefetch and never demand-touched (cheap
  /// pollution snapshot used by tests).
  std::uint64_t untouched_prefetch_lines() const;

 private:
  struct Way {
    Addr tag = 0;
    std::uint64_t last_used = 0;
    FillOrigin origin = FillOrigin::Demand;
    bool valid = false;
    bool demand_touched = false;
    bool dirty = false;
  };

  std::uint64_t set_of(Addr line) const { return line & (sets_ - 1); }

  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_storage_;  // sets_ * ways_, row-major by set

  Way* set_begin(std::uint64_t set) { return &ways_storage_[set * ways_]; }
  const Way* set_begin(std::uint64_t set) const {
    return &ways_storage_[set * ways_];
  }
};

}  // namespace re::sim
