#include "sim/config.hh"

namespace re::sim {

MachineConfig amd_phenom_ii() {
  MachineConfig m;
  m.name = "AMD Phenom II";
  m.freq_ghz = 2.8;
  // Paper geometry 64 kB / 512 kB / 6 MB, scaled per level.
  m.l1 = {(64 << 10) / kL1Scale, 2};
  m.l2 = {(512 << 10) / kL2Scale, 16};
  // 24-way keeps the set count a power of two (the real part is 48-way).
  m.llc = {(6 << 20) / kLlcScale, 24};
  m.l1_latency = 3;
  m.l2_latency = 15;
  m.llc_latency = 45;
  m.dram_latency = 220;
  m.oo_overlap_cycles = 190;
  // ~8 GB/s sustained DDR3 at 2.8 GHz.
  m.dram_bytes_per_cycle = 8.0 / 2.8;
  m.prefetch_inst_cost = 1;

  m.hw_prefetcher.enabled = false;  // toggled per experiment
  m.hw_prefetcher.pc_stride = true;
  m.hw_prefetcher.stride_degree = 4;
  m.hw_prefetcher.stream = true;
  // Speculative: a single pair of adjacent-line misses in a region starts a
  // degree-6 stream — great for real streams, wasteful on scattered misses
  // that happen to land on neighbouring lines.
  m.hw_prefetcher.stream_train_misses = 1;
  m.hw_prefetcher.stream_degree = 6;
  // The Phenom II's L1 prefetcher also fetched the neighbouring line on a
  // miss, so scattered misses drag in useless buddies (paper Fig. 5a).
  m.hw_prefetcher.adjacent_line = true;
  return m;
}

MachineConfig intel_sandybridge() {
  MachineConfig m;
  m.name = "Intel i7-2600K";
  m.freq_ghz = 3.4;
  // Paper geometry 32 kB / 256 kB / 8 MB, scaled per level.
  m.l1 = {(32 << 10) / kL1Scale, 8};
  m.l2 = {(256 << 10) / kL2Scale, 8};
  m.llc = {(8 << 20) / kLlcScale, 16};
  m.l1_latency = 4;
  m.l2_latency = 12;
  m.llc_latency = 38;
  m.dram_latency = 190;
  m.oo_overlap_cycles = 160;
  // The paper reports streams peaking at 15.6 GB/s on this machine.
  m.dram_bytes_per_cycle = 15.6 / 3.4;
  m.prefetch_inst_cost = 1;

  m.hw_prefetcher.enabled = false;  // toggled per experiment
  m.hw_prefetcher.pc_stride = true;
  m.hw_prefetcher.stride_degree = 4;
  m.hw_prefetcher.stream = true;
  m.hw_prefetcher.stream_degree = 8;
  m.hw_prefetcher.adjacent_line = true;
  return m;
}

}  // namespace re::sim
