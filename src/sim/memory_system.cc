#include "sim/memory_system.hh"

#include <algorithm>

namespace re::sim {

MemorySystem::MemorySystem(const MachineConfig& config, int num_cores)
    : config_(config),
      dram_(config.dram_bytes_per_cycle, config.dram_latency),
      llc_(std::make_unique<SetAssocCache>(config.llc)) {
  cores_.reserve(static_cast<std::size_t>(num_cores));
  for (int c = 0; c < num_cores; ++c) {
    CoreState state;
    state.l1 = std::make_unique<SetAssocCache>(config.l1);
    state.l2 = std::make_unique<SetAssocCache>(config.l2);
    state.hw_prefetcher = std::make_unique<HwPrefetcher>(config.hw_prefetcher);
    cores_.push_back(std::move(state));
  }
}

void MemorySystem::handle_eviction(CoreState& core, Level level,
                                   const std::optional<Eviction>& ev,
                                   Cycle now) {
  if (!ev) return;
  if (!ev->demand_touched) {
    if (ev->origin == FillOrigin::SwPrefetch) {
      ++core.stats.useless_sw_evictions;
    } else if (ev->origin == FillOrigin::HwPrefetch) {
      ++core.stats.useless_hw_evictions;
    }
  }
  if (!ev->dirty) return;
  // Dirty line: push the data into the next level that holds the line, or
  // retire it to DRAM (asynchronously; only bandwidth is consumed).
  if (level == Level::L1 && core.l2->mark_dirty(ev->line)) return;
  if (level != Level::Llc && llc_->mark_dirty(ev->line)) return;
  dram_.writeback_line(now);
}

void MemorySystem::issue_hw_prefetches(int core_idx, Cycle now) {
  CoreState& core = cores_[static_cast<std::size_t>(core_idx)];
  for (Addr line : hw_candidates_) {
    // Dedup against anything already resident or in flight.
    if (core.l2->contains(line) || llc_->contains(line) ||
        core.pending.in_flight(line, now)) {
      continue;
    }
    const Cycle ready = dram_.fetch_line(now, TrafficClass::HwPrefetchRead);
    ++core.stats.hw_prefetch_dram_lines;
    core.pending.insert(line, ready);
    handle_eviction(core, Level::L2,
                    core.l2->fill(line, FillOrigin::HwPrefetch), now);
    handle_eviction(core, Level::Llc,
                    llc_->fill(line, FillOrigin::HwPrefetch), now);
  }
  hw_candidates_.clear();
}

Cycle MemorySystem::demand_load(int core_idx, Pc pc, Addr addr, Cycle now,
                                bool serial_dependent, bool is_store) {
  CoreState& core = cores_[static_cast<std::size_t>(core_idx)];
  const Addr line = line_of(addr);
  ++core.stats.loads;
  if (is_store) ++core.stats.stores;

  // Observed stall for a raw hierarchy latency: serial chains pay the full
  // latency; independent loads overlap all but the tail with other work.
  auto observed = [&](Cycle raw_latency) {
    if (serial_dependent) return raw_latency;
    if (raw_latency <= config_.oo_overlap_cycles) {
      return config_.min_miss_stall;
    }
    return std::max(config_.min_miss_stall,
                    raw_latency - config_.oo_overlap_cycles);
  };

  auto finish = [&](Cycle raw_latency) {
    const Cycle extra = core.pending.remaining(line, now);
    Cycle stall;
    if (extra > raw_latency) {
      ++core.stats.late_prefetch_hits;
      stall = observed(extra);
    } else {
      stall = observed(raw_latency);
    }
    core.stats.memory_stall_cycles += stall;
    return stall;
  };

  if (core.l1->access(line, /*demand=*/true)) {
    ++core.stats.l1_hits;
    if (is_store) core.l1->mark_dirty(line);
    const Cycle extra = core.pending.remaining(line, now);
    Cycle stall;
    if (extra > config_.l1_latency) {
      ++core.stats.late_prefetch_hits;
      stall = observed(extra);
    } else {
      stall = serial_dependent ? config_.l1_latency
                               : config_.pipelined_l1_cost;
    }
    core.stats.memory_stall_cycles += stall;
    return stall;
  }

  // L1 miss: the access reaches L2; the HW prefetcher observes it there.
  const bool l2_hit = core.l2->access(line, /*demand=*/true);
  core.hw_prefetcher->observe(pc, addr, l2_hit, dram_.queue_delay(now),
                              hw_candidates_);
  if (!hw_candidates_.empty()) issue_hw_prefetches(core_idx, now);

  auto fill_l1 = [&] {
    handle_eviction(core, Level::L1,
                    core.l1->fill(line, FillOrigin::Demand), now);
    if (is_store) core.l1->mark_dirty(line);
  };

  if (l2_hit) {
    ++core.stats.l2_hits;
    fill_l1();
    return finish(config_.l2_latency);
  }

  if (llc_->access(line, /*demand=*/true)) {
    ++core.stats.llc_hits;
    handle_eviction(core, Level::L2,
                    core.l2->fill(line, FillOrigin::Demand), now);
    fill_l1();
    return finish(config_.llc_latency);
  }

  ++core.stats.dram_loads;
  const Cycle ready = dram_.fetch_line(now, TrafficClass::DemandRead);
  handle_eviction(core, Level::Llc,
                  llc_->fill(line, FillOrigin::Demand), now);
  handle_eviction(core, Level::L2,
                  core.l2->fill(line, FillOrigin::Demand), now);
  fill_l1();
  return finish(ready - now);
}

void MemorySystem::software_prefetch(int core_idx, Addr addr,
                                     workloads::PrefetchHint hint,
                                     Cycle now) {
  using workloads::PrefetchHint;
  CoreState& core = cores_[static_cast<std::size_t>(core_idx)];
  const Addr line = line_of(addr);
  ++core.stats.sw_prefetches_issued;

  const bool fill_l1 =
      hint == PrefetchHint::T0 || hint == PrefetchHint::NTA;
  const bool fill_l2 =
      hint == PrefetchHint::T0 || hint == PrefetchHint::T1;
  const bool fill_llc = hint != PrefetchHint::NTA;

  // Dedup against the shallowest level this hint would fill.
  const bool already_resident =
      fill_l1 ? core.l1->contains(line)
              : (fill_l2 ? core.l2->contains(line) : llc_->contains(line));
  if (already_resident || core.pending.in_flight(line, now)) {
    ++core.stats.sw_prefetches_dropped;
    return;
  }

  Cycle ready;
  if (core.l2->contains(line)) {
    core.l2->access(line, /*demand=*/false);
    ready = now + config_.l2_latency;
  } else if (llc_->contains(line)) {
    llc_->access(line, /*demand=*/false);
    ready = now + config_.llc_latency;
    if (fill_l2) {
      handle_eviction(core, Level::L2,
                      core.l2->fill(line, FillOrigin::SwPrefetch), now);
    }
  } else {
    ready = dram_.fetch_line(now, TrafficClass::SwPrefetchRead);
    ++core.stats.sw_prefetch_dram_lines;
    if (fill_llc) {
      handle_eviction(core, Level::Llc,
                      llc_->fill(line, FillOrigin::SwPrefetch), now);
    }
    if (fill_l2) {
      handle_eviction(core, Level::L2,
                      core.l2->fill(line, FillOrigin::SwPrefetch), now);
    }
  }
  if (fill_l1) {
    handle_eviction(core, Level::L1,
                    core.l1->fill(line, FillOrigin::SwPrefetch), now);
  }
  core.pending.insert(line, ready);
}

}  // namespace re::sim
