// Machine configurations (the paper's Table II) and tunables for the
// simulated memory hierarchy and hardware prefetchers.
#pragma once

#include <cstdint>
#include <string>

#include "support/types.hh"

namespace re::sim {

/// Geometry of one cache level.
struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t associativity = 1;

  std::uint64_t num_lines() const { return size_bytes / kLineSize; }
  std::uint64_t num_sets() const {
    const std::uint64_t lines = num_lines();
    return associativity ? lines / associativity : lines;
  }
};

/// Hardware prefetcher tunables. The defaults model an aggressive commodity
/// stream/stride prefetcher of the 2014 era.
struct HwPrefetcherConfig {
  bool enabled = false;

  // PC-indexed stride prefetcher.
  bool pc_stride = true;
  std::uint32_t stride_table_entries = 256;
  std::uint32_t stride_confidence_threshold = 2;
  std::uint32_t stride_degree = 4;  // lines fetched ahead on a trained PC

  // Region-based stream detector (next-line streams within 4 kB regions).
  bool stream = true;
  std::uint32_t stream_table_entries = 64;
  std::uint32_t stream_train_misses = 2;  // sequential misses to trigger
  std::uint32_t stream_degree = 4;        // lines fetched ahead per trigger

  // Fetch the buddy line of every triggering miss (Intel "adjacent line" /
  // spatial prefetcher). Responsible for large overfetch on sparse misses.
  bool adjacent_line = false;

  // Throttle: when the DRAM queue delay (cycles a new request would wait
  // before the channel is free) exceeds this, the effective degree is
  // halved. Mirrors the paper's observation that real prefetchers throttle
  // under contention yet still waste bandwidth.
  Cycle throttle_queue_cycles = 48;
  std::uint32_t throttled_min_degree = 1;
};

/// Full machine description.
struct MachineConfig {
  std::string name;
  double freq_ghz = 3.0;

  CacheGeometry l1;
  CacheGeometry l2;
  CacheGeometry llc;  // shared across all cores

  // Load-to-use hit latencies (cycles).
  Cycle l1_latency = 3;
  Cycle l2_latency = 14;
  Cycle llc_latency = 40;
  Cycle dram_latency = 200;

  /// Out-of-order latency-hiding window (cycles). Miss stalls of
  /// *independent* loads are reduced by this amount (the core overlaps them
  /// with other work); serially-dependent loads (pointer chasing) pay the
  /// full latency. Models memory-level parallelism without an OoO pipeline.
  Cycle oo_overlap_cycles = 160;
  /// Floor for any observed miss stall (cycles).
  Cycle min_miss_stall = 2;
  /// Cost of an L1 hit for an independent (pipelined) load.
  Cycle pipelined_l1_cost = 1;

  /// Sustained off-chip bandwidth in bytes per core-cycle (shared channel).
  double dram_bytes_per_cycle = 4.0;

  /// Cost of executing one software prefetch instruction (the paper's α).
  Cycle prefetch_inst_cost = 1;

  HwPrefetcherConfig hw_prefetcher;

  /// Peak off-chip bandwidth in GB/s (1 GHz == 1e9 cycles/s).
  double peak_bandwidth_gbps() const {
    return dram_bytes_per_cycle * freq_ghz;
  }
};

/// Geometry scale factors applied to both machines (and matched by the
/// workload footprints), keeping the paper's Table II hierarchy shape while
/// holding simulated runs at ~10^6 references (DESIGN.md §5). The LLC — the
/// contended resource every multicore result hinges on — is scaled the
/// most; the L1 the least, so per-core hot data still fits it.
inline constexpr std::uint64_t kL1Scale = 1;
inline constexpr std::uint64_t kL2Scale = 4;
inline constexpr std::uint64_t kLlcScale = 8;

/// AMD Phenom II X4-like configuration (Table II row 1).
/// Paper: 64 kB / 512 kB / 6 MB at 2.8 GHz; stride + stream prefetcher, no
/// adjacent-line prefetch. Scaled: 64 kB / 128 kB / 768 kB.
MachineConfig amd_phenom_ii();

/// Intel i7-2600K (Sandy Bridge)-like configuration (Table II row 2).
/// Paper: 32 kB / 256 kB / 8 MB at 3.4 GHz; stream prefetcher with
/// adjacent-line ("spatial") prefetching — the source of the paper's cigar
/// pathology. Scaled: 32 kB / 64 kB / 1 MB.
MachineConfig intel_sandybridge();

/// Number of cores used in the paper's multicore experiments.
inline constexpr int kNumCores = 4;

}  // namespace re::sim
