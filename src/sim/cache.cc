#include "sim/cache.hh"

#include <cassert>
#include <stdexcept>

namespace re::sim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

SetAssocCache::SetAssocCache(const CacheGeometry& geometry)
    : sets_(geometry.num_sets()), ways_(geometry.associativity) {
  if (sets_ == 0 || ways_ == 0) {
    throw std::invalid_argument("cache geometry must be non-empty");
  }
  if (!is_pow2(sets_)) {
    throw std::invalid_argument(
        "cache set count must be a power of two (adjust associativity)");
  }
  ways_storage_.resize(sets_ * ways_);
}

bool SetAssocCache::access(Addr line, bool demand) {
  Way* begin = set_begin(set_of(line));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = begin[w];
    if (way.valid && way.tag == line) {
      way.last_used = ++tick_;
      if (demand) way.demand_touched = true;
      return true;
    }
  }
  return false;
}

bool SetAssocCache::contains(Addr line) const {
  const Way* begin = set_begin(set_of(line));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (begin[w].valid && begin[w].tag == line) return true;
  }
  return false;
}

std::optional<Eviction> SetAssocCache::fill(Addr line, FillOrigin origin) {
  // Contract: the caller has established that `line` is not resident (all
  // call sites probe with access()/contains() first). A duplicate fill
  // would corrupt the set, so this is asserted in debug builds.
  Way* begin = set_begin(set_of(line));
  Way* victim = begin;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = begin[w];
    assert(!(way.valid && way.tag == line) && "duplicate cache fill");
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.last_used < oldest) {
      oldest = way.last_used;
      victim = &way;
    }
  }

  std::optional<Eviction> evicted;
  if (victim->valid) {
    evicted = Eviction{victim->tag, victim->origin, victim->demand_touched,
                       victim->dirty};
  }
  victim->tag = line;
  victim->valid = true;
  victim->last_used = ++tick_;
  victim->origin = origin;
  victim->demand_touched = false;
  victim->dirty = false;
  return evicted;
}

bool SetAssocCache::mark_dirty(Addr line) {
  Way* begin = set_begin(set_of(line));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (begin[w].valid && begin[w].tag == line) {
      begin[w].dirty = true;
      return true;
    }
  }
  return false;
}

void SetAssocCache::invalidate(Addr line) {
  Way* begin = set_begin(set_of(line));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (begin[w].valid && begin[w].tag == line) {
      begin[w].valid = false;
      return;
    }
  }
}

void SetAssocCache::flush() {
  for (Way& way : ways_storage_) way.valid = false;
}

std::uint64_t SetAssocCache::untouched_prefetch_lines() const {
  std::uint64_t count = 0;
  for (const Way& way : ways_storage_) {
    if (way.valid && !way.demand_touched &&
        way.origin != FillOrigin::Demand) {
      ++count;
    }
  }
  return count;
}

}  // namespace re::sim
