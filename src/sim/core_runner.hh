// In-order core model executing one trace program against the memory system.
//
// Cost model per dynamic instruction:
//   demand load   : hierarchy latency (blocking, in-order)
//   compute work  : StaticInst::compute_cycles
//   sw prefetch   : MachineConfig::prefetch_inst_cost (the paper's α = 1)
//                   plus the issued request's asynchronous effects
#pragma once

#include <cstdint>

#include "sim/adaptive.hh"
#include "sim/memory_system.hh"
#include "support/types.hh"
#include "workloads/cursor.hh"

namespace re::sim {

class CoreRunner {
 public:
  /// `agent` (optional) observes every reference and may supply a mutable
  /// prefetch-plan overlay; see sim/adaptive.hh. Must outlive the runner.
  CoreRunner(int core_index, const workloads::Program& program,
             MemorySystem& memory, CoreAgent* agent = nullptr);

  /// Execute one memory instruction (plus its attached compute and prefetch
  /// work). Advances the local clock.
  void step();

  /// True once the program has completed at least one full run.
  bool completed_once() const { return completions_ > 0; }

  /// Local cycle at which the first full run completed (0 if not yet).
  Cycle first_completion_cycle() const { return first_completion_cycle_; }

  /// References executed during the first run (the app's fixed work).
  std::uint64_t first_run_references() const { return first_run_refs_; }

  Cycle now() const { return now_; }
  std::uint64_t completions() const { return completions_; }
  int core_index() const { return core_; }
  const workloads::Program& program() const { return cursor_.program(); }

 private:
  int core_;
  workloads::ProgramCursor cursor_;
  MemorySystem* memory_;
  CoreAgent* agent_ = nullptr;
  Cycle now_ = 0;
  std::uint64_t completions_ = 0;
  Cycle first_completion_cycle_ = 0;
  std::uint64_t first_run_refs_ = 0;
};

}  // namespace re::sim
