// Top-level run protocols: single-program runs (Figs. 4-6) and 4-app mixed
// workload runs (Figs. 7-11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/adaptive.hh"
#include "sim/config.hh"
#include "sim/memory_system.hh"
#include "support/types.hh"
#include "workloads/program.hh"

namespace re::sim {

/// Result of running one app (inside a single run or a mix).
struct AppResult {
  std::string name;
  Cycle cycles = 0;              // first-completion time
  std::uint64_t references = 0;  // fixed work of one full run
  CoreMemStats mem;              // per-core stats over the whole run window
};

/// Result of one system run.
struct RunResult {
  std::vector<AppResult> apps;
  DramStats dram;            // whole-window off-chip traffic
  Cycle elapsed_cycles = 0;  // window length (last first-completion)
  double freq_ghz = 0.0;

  /// Whole-window average off-chip bandwidth in GB/s.
  double bandwidth_gbps() const {
    if (elapsed_cycles == 0) return 0.0;
    return static_cast<double>(dram.total_bytes()) /
           static_cast<double>(elapsed_cycles) * freq_ghz;
  }
};

/// Run one program alone on core 0.
/// `hw_prefetch` enables the machine's hardware prefetcher; software
/// prefetching is encoded in the program itself (rewritten by the optimizer).
RunResult run_single(const MachineConfig& machine,
                     const workloads::Program& program, bool hw_prefetch);

/// Run a mix of programs, one per core, all starting at cycle 0. Apps that
/// finish early restart and keep contending; each app's result records its
/// first completion. The run window ends when every app has completed once.
RunResult run_mix(const MachineConfig& machine,
                  const std::vector<const workloads::Program*>& programs,
                  bool hw_prefetch);

/// Run a data-parallel workload: `threads` cores each execute their own
/// shard program; the result window ends when all shards complete.
RunResult run_parallel(const MachineConfig& machine,
                       const std::vector<workloads::Program>& shards,
                       bool hw_prefetch);

/// Run one program alone on core 0 under an adaptive agent (observer +
/// mutable plan overlay; see sim/adaptive.hh). The agent must outlive the
/// call.
RunResult run_single_adaptive(const MachineConfig& machine,
                              const workloads::Program& program,
                              bool hw_prefetch, CoreAgent& agent);

/// Mix-protocol run with one agent per core (entries may be nullptr for
/// cores that should run unmanaged). `agents` must have one entry per
/// program.
RunResult run_mix_adaptive(const MachineConfig& machine,
                           const std::vector<const workloads::Program*>& programs,
                           bool hw_prefetch,
                           const std::vector<CoreAgent*>& agents);

}  // namespace re::sim
