// Profile validation and the graceful-degradation log.
//
// The optimizer's contract is "never hurt": when the sampled evidence for a
// load is thin, inconsistent, or numerically hazardous, the right move is
// to *skip* that prefetch, not to guess (the same conservatism as the
// paper's 70 % stride-dominance rule and MDDLI cost-benefit filter, applied
// to the input data itself). The ProfileValidator checks profile-level
// invariants and classifies each candidate load; every suppression the
// pipeline performs as a result is recorded in a DegradationLog with a
// machine-readable reason, so callers and tests can see exactly what was
// suppressed and why.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hh"
#include "core/stride_analysis.hh"
#include "support/status.hh"
#include "support/types.hh"

namespace re::core {

/// Why a prefetch (or a whole profile) was degraded. Tokens are stable:
/// tests and tooling match on them.
enum class DegradationReason : std::uint8_t {
  /// Profile has no usable samples at all — pipeline emits nothing.
  kProfileEmpty,
  /// Profile-level bookkeeping is inconsistent (zero references / period
  /// with samples present).
  kProfileInconsistent,
  /// A reuse sample was internally impossible (distance or position beyond
  /// the profiled window) and was discarded.
  kCorruptReuseSample,
  /// A stride sample was internally impossible (outlier stride / position
  /// beyond the window) and was discarded.
  kCorruptStrideSample,
  /// Delinquent load had no stride samples at all.
  kNoStrideSamples,
  /// Delinquent load had fewer stride samples than the analysis minimum.
  kInsufficientStrideSamples,
  /// Stride dominance below the 70 % rule — access pattern too irregular.
  kLowStrideDominance,
  /// Dominant stride was zero — nothing to prefetch ahead of.
  kZeroStride,
  /// A modeled quantity (miss ratio, latency, Δ) was NaN/Inf or outside its
  /// legal range.
  kNumericHazard,
  /// The prefetch-distance formula could not produce a trustworthy value.
  kDistanceUnavailable,
};

constexpr const char* degradation_reason_name(DegradationReason reason) {
  switch (reason) {
    case DegradationReason::kProfileEmpty: return "profile_empty";
    case DegradationReason::kProfileInconsistent: return "profile_inconsistent";
    case DegradationReason::kCorruptReuseSample: return "corrupt_reuse_sample";
    case DegradationReason::kCorruptStrideSample:
      return "corrupt_stride_sample";
    case DegradationReason::kNoStrideSamples: return "no_stride_samples";
    case DegradationReason::kInsufficientStrideSamples:
      return "insufficient_stride_samples";
    case DegradationReason::kLowStrideDominance: return "low_stride_dominance";
    case DegradationReason::kZeroStride: return "zero_stride";
    case DegradationReason::kNumericHazard: return "numeric_hazard";
    case DegradationReason::kDistanceUnavailable:
      return "distance_unavailable";
  }
  return "unknown";
}

/// One suppression/clamp event. `pc == 0` marks profile-level entries.
struct DegradationEntry {
  Pc pc = 0;
  DegradationReason reason = DegradationReason::kProfileEmpty;
  std::string detail;
};

/// Append-only record of everything the pipeline refused to do.
class DegradationLog {
 public:
  void record(Pc pc, DegradationReason reason, std::string detail = {}) {
    entries_.push_back(DegradationEntry{pc, reason, std::move(detail)});
  }

  const std::vector<DegradationEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  std::size_t count(DegradationReason reason) const {
    std::size_t n = 0;
    for (const DegradationEntry& e : entries_) {
      if (e.reason == reason) ++n;
    }
    return n;
  }

  bool contains(Pc pc) const {
    for (const DegradationEntry& e : entries_) {
      if (e.pc == pc) return true;
    }
    return false;
  }

  /// One line per entry: "pc<pc> <reason_token> <detail>".
  std::string to_string() const;

 private:
  std::vector<DegradationEntry> entries_;
};

/// Trust classification of one candidate load's evidence.
enum class LoadConfidence : std::uint8_t { kOk, kLowConfidence, kInvalid };

constexpr const char* load_confidence_name(LoadConfidence c) {
  switch (c) {
    case LoadConfidence::kOk: return "ok";
    case LoadConfidence::kLowConfidence: return "low-confidence";
    case LoadConfidence::kInvalid: return "invalid";
  }
  return "unknown";
}

struct ValidatorOptions {
  /// Minimum stride samples to trust a stride judgement; mirrors
  /// StrideAnalysisOptions::min_samples so a clean profile classifies
  /// exactly as the pre-validation pipeline gated.
  std::uint64_t min_stride_samples = 8;
  /// Dominance below this is low-confidence (the paper's 70 % rule).
  double dominance_threshold = 0.7;
  /// Strides with |stride| above this are physically implausible for the
  /// modeled workloads (footprints are << 1 TiB) and treated as corrupt.
  std::int64_t max_plausible_stride = std::int64_t{1} << 40;
};

/// Per-load verdict with the reason the evidence fell short (valid only
/// when confidence != kOk).
struct LoadVerdict {
  LoadConfidence confidence = LoadConfidence::kOk;
  DegradationReason reason = DegradationReason::kProfileEmpty;
  std::string detail;
};

class ProfileValidator {
 public:
  explicit ProfileValidator(const ValidatorOptions& options = {})
      : options_(options) {}

  /// Profile-level validation: discards internally-impossible samples
  /// (recording each class in `log`) and returns the sanitized profile, or
  /// an error status when nothing usable remains. A clean profile passes
  /// through bit-identical.
  Expected<Profile> sanitize(const Profile& profile,
                             DegradationLog* log) const;

  /// Classify the stride evidence for one load, given how many stride
  /// samples it had. Mirrors the stride-analysis gates, so `kOk` iff the
  /// analysis would have accepted the load.
  LoadVerdict classify_stride_evidence(const StrideInfo& info,
                                       std::uint64_t sample_count) const;

  /// Check the modeled StatStack → MDDLI quantities for NaN/Inf/negative
  /// hazards. Returns kOk or kInvalid.
  LoadVerdict classify_model_numerics(double l1_miss_ratio,
                                      double l2_miss_ratio,
                                      double llc_miss_ratio,
                                      double avg_miss_latency,
                                      double cycles_per_memop) const;

  const ValidatorOptions& options() const { return options_; }

 private:
  ValidatorOptions options_;
};

}  // namespace re::core
