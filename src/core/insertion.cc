#include "core/insertion.hh"

namespace re::core {

const char* hint_mnemonic(workloads::PrefetchHint hint) {
  switch (hint) {
    case workloads::PrefetchHint::T0: return "prefetcht0";
    case workloads::PrefetchHint::T1: return "prefetcht1";
    case workloads::PrefetchHint::T2: return "prefetcht2";
    case workloads::PrefetchHint::NTA: return "prefetchnta";
  }
  return "?";
}

workloads::Program insert_prefetches(const workloads::Program& program,
                                     const std::vector<PrefetchPlan>& plans) {
  workloads::Program out = program;
  for (const PrefetchPlan& plan : plans) {
    workloads::StaticInst* inst = out.find(plan.pc);
    if (inst == nullptr) continue;
    inst->prefetch = workloads::PrefetchOp{plan.distance_bytes, plan.hint};
  }
  return out;
}

}  // namespace re::core
