#include "core/phases.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "core/sampler.hh"
#include "workloads/cursor.hh"

namespace re::core {

double signature_distance(const PhaseSignature& a, const PhaseSignature& b) {
  double distance = 0.0;
  for (const auto& [pc, freq] : a) {
    auto it = b.find(pc);
    distance += std::fabs(freq - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [pc, freq] : b) {
    if (!a.count(pc)) distance += freq;
  }
  return distance;
}

PhaseSignature normalize_signature(
    const std::unordered_map<Pc, std::uint64_t>& counts,
    std::uint64_t total) {
  PhaseSignature sig;
  if (total == 0) return sig;
  for (const auto& [pc, count] : counts) {
    sig[pc] = static_cast<double>(count) / static_cast<double>(total);
  }
  return sig;
}

int PhasedProfile::phase_at(std::uint64_t ref) const {
  int id = segments.empty() ? 0 : segments.back().phase_id;
  for (const PhaseSegment& seg : segments) {
    if (ref >= seg.begin_ref && ref < seg.end_ref) return seg.phase_id;
  }
  return id;
}

Profile PhasedProfile::phase_profile(int phase_id) const {
  Profile out;
  out.sample_period = full.sample_period;
  for (const ReuseSample& s : full.reuse_samples) {
    if (phase_at(s.at_ref) == phase_id) out.reuse_samples.push_back(s);
  }
  for (const StrideSample& s : full.stride_samples) {
    if (phase_at(s.at_ref) == phase_id) out.stride_samples.push_back(s);
  }
  // Dangling samples have no closing position; attribute them to every
  // phase proportionally to its share of references (they mostly belong to
  // streaming loads that execute in the long phases anyway).
  const double share =
      full.total_references
          ? static_cast<double>(phase_references(phase_id)) /
                static_cast<double>(full.total_references)
          : 0.0;
  out.dangling_reuse_samples = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(full.dangling_reuse_samples) * share));
  for (const auto& [pc, count] : full.dangling_by_pc) {
    const auto scaled = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(count) * share));
    if (scaled > 0) out.dangling_by_pc[pc] = scaled;
  }
  // Execution counts: scale the full-run counts by the phase share of each
  // PC's activity is unknown per-phase; approximate with the phase share of
  // total references for PCs that appear in the phase's samples, falling
  // back to full counts (conservative upper bound for loop caps).
  out.pc_execution_counts = full.pc_execution_counts;
  out.total_references = phase_references(phase_id);
  return out;
}

std::uint64_t PhasedProfile::phase_references(int phase_id) const {
  std::uint64_t refs = 0;
  for (const PhaseSegment& seg : segments) {
    if (seg.phase_id == phase_id) refs += seg.end_ref - seg.begin_ref;
  }
  return refs;
}

PhasedProfile profile_with_phases(const workloads::Program& program,
                                  const SamplerConfig& sampler_config,
                                  const PhaseOptions& phase_options,
                                  std::uint64_t max_refs) {
  Sampler sampler(sampler_config);
  workloads::ProgramCursor cursor(program);

  PhasedProfile out;
  std::vector<PhaseSignature> centroids;

  std::unordered_map<Pc, std::uint64_t> window_counts;
  std::uint64_t window_start = 0;
  std::uint64_t refs = 0;

  auto close_window = [&](std::uint64_t end_ref) {
    if (end_ref == window_start) return;
    const PhaseSignature sig =
        normalize_signature(window_counts, end_ref - window_start);
    int best = -1;
    double best_distance = phase_options.similarity_threshold;
    for (std::size_t i = 0; i < centroids.size(); ++i) {
      const double d = signature_distance(sig, centroids[i]);
      if (d < best_distance) {
        best_distance = d;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      best = static_cast<int>(centroids.size());
      centroids.push_back(sig);
    }
    if (!out.segments.empty() && out.segments.back().phase_id == best &&
        out.segments.back().end_ref == window_start) {
      out.segments.back().end_ref = end_ref;  // extend the current segment
    } else {
      out.segments.push_back(PhaseSegment{best, window_start, end_ref});
    }
    window_counts.clear();
    window_start = end_ref;
  };

  while (refs < max_refs) {
    auto event = cursor.next();
    if (!event) break;
    ++refs;
    sampler.observe(event->inst->pc, event->addr);
    ++window_counts[event->inst->pc];
    if (refs - window_start >= phase_options.window_refs) close_window(refs);
  }
  close_window(refs);

  out.full = sampler.finish();
  out.num_phases = static_cast<int>(centroids.size());
  return out;
}

PhasedOptimizationReport phase_aware_optimize(
    const workloads::Program& program, const sim::MachineConfig& machine,
    const OptimizerOptions& options, const PhaseOptions& phase_options) {
  PhasedOptimizationReport out;
  out.phases = profile_with_phases(program, options.sampler, phase_options,
                                   options.profile_max_refs);
  out.merged.benchmark = program.name;
  out.merged.profile = out.phases.full;
  out.merged.cycles_per_memop = measure_cycles_per_memop(program, machine);

  const ReuseGraph graph(out.phases.full);

  // For every load, keep the plan from the phase where it causes the most
  // misses; the bypass decision must hold in *every* phase that prefetches
  // the load (a single temporal phase forbids NT).
  std::map<Pc, std::pair<double, PrefetchPlan>> best_plans;
  std::map<Pc, bool> bypass_ok;

  out.per_phase_plans.resize(
      static_cast<std::size_t>(out.phases.num_phases));
  for (int phase = 0; phase < out.phases.num_phases; ++phase) {
    const Profile profile = out.phases.phase_profile(phase);
    if (profile.reuse_samples.size() + profile.dangling_reuse_samples <
        options.mddli.min_samples) {
      continue;  // phase too small to model
    }
    const StatStack model(profile);
    const auto delinquent =
        identify_delinquent_loads(model, profile, machine, options.mddli);

    std::unordered_map<Pc, std::vector<StrideSample>> by_pc;
    for (const StrideSample& s : profile.stride_samples) {
      by_pc[s.pc].push_back(s);
    }

    for (const DelinquentLoad& load : delinquent) {
      auto it = by_pc.find(load.pc);
      if (it == by_pc.end()) continue;
      const StrideInfo info =
          analyze_strides(load.pc, it->second, options.stride);
      if (!info.regular) continue;

      PrefetchDistanceParams params;
      params.latency = load.avg_miss_latency;
      params.cycles_per_memop = out.merged.cycles_per_memop;
      params.loop_references = profile.executions_of(load.pc);
      const auto distance = prefetch_distance_bytes(info, params);
      if (!distance) continue;

      const bool bypass =
          options.enable_non_temporal &&
          should_bypass(load.pc, graph, model, machine, options.bypass);

      PrefetchPlan plan;
      plan.pc = load.pc;
      plan.distance_bytes = *distance;
      plan.hint = bypass ? workloads::PrefetchHint::NTA
                         : workloads::PrefetchHint::T0;
      out.per_phase_plans[static_cast<std::size_t>(phase)].push_back(plan);

      auto [bit, inserted] = bypass_ok.try_emplace(load.pc, bypass);
      if (!inserted) bit->second = bit->second && bypass;
      auto [pit, fresh] = best_plans.try_emplace(
          load.pc, load.estimated_l1_misses, plan);
      if (!fresh && load.estimated_l1_misses > pit->second.first) {
        pit->second = {load.estimated_l1_misses, plan};
      }
    }
  }

  for (auto& [pc, scored] : best_plans) {
    PrefetchPlan plan = scored.second;
    if (!bypass_ok[pc]) plan.hint = workloads::PrefetchHint::T0;
    out.merged.plans.push_back(plan);
  }
  out.merged.optimized = insert_prefetches(program, out.merged.plans);
  return out;
}

}  // namespace re::core
