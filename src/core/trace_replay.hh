// Exact-trace replay hook.
//
// Every consumer of a workload's full (unsampled) access stream — the
// sampling profiler, the phase fingerprinter, and the differential
// verification oracle (src/verify/) — iterates the same ProgramCursor.
// Routing them through one entry point guarantees that "the trace" means
// the identical (pc, addr) sequence everywhere: an estimator validated by
// verify::ExactLruModel is validated against the very stream it sampled.
#pragma once

#include <cstdint>
#include <functional>

#include "support/types.hh"
#include "workloads/program.hh"

namespace re::core {

/// Observer of one memory reference, in program order.
using TraceObserver = std::function<void(Pc pc, Addr addr)>;

/// Replay one full run of `program` (optionally capped at `max_refs`
/// references), invoking `observer` for every access. Returns the number of
/// references replayed.
std::uint64_t replay_program(const workloads::Program& program,
                             const TraceObserver& observer,
                             std::uint64_t max_refs = ~std::uint64_t{0});

}  // namespace re::core
