#include "core/bypass.hh"

#include <algorithm>

namespace re::core {

ReuseGraph::ReuseGraph(const Profile& profile) {
  for (const ReuseSample& s : profile.reuse_samples) {
    ++edges_[s.first_pc][s.second_pc];
    ++totals_[s.first_pc];
  }
}

std::vector<Pc> ReuseGraph::reusers_of(Pc pc, double min_fraction) const {
  std::vector<Pc> out;
  auto it = edges_.find(pc);
  if (it == edges_.end()) return out;
  const double total = static_cast<double>(totals_.at(pc));
  for (const auto& [to, count] : it->second) {
    if (static_cast<double>(count) / total >= min_fraction) {
      out.push_back(to);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t ReuseGraph::edge_count(Pc from, Pc to) const {
  auto it = edges_.find(from);
  if (it == edges_.end()) return 0;
  auto jt = it->second.find(to);
  return jt == it->second.end() ? 0 : jt->second;
}

std::uint64_t ReuseGraph::out_degree_samples(Pc from) const {
  auto it = totals_.find(from);
  return it == totals_.end() ? 0 : it->second;
}

bool mrc_flat_between_l1_and_llc(const MissRatioCurve& mrc,
                                 const sim::MachineConfig& machine,
                                 double drop_threshold,
                                 std::uint64_t llc_effective_bytes) {
  if (mrc.empty()) return true;  // nothing observed -> no L2/LLC reuse seen
  const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
  if (mr_l1 <= 0.0) return true;  // L1-resident; higher levels irrelevant
  const double mr_llc = mrc.miss_ratio_bytes(
      llc_effective_bytes ? llc_effective_bytes : machine.llc.size_bytes);
  const double drop = (mr_l1 - mr_llc) / mr_l1;
  return drop <= drop_threshold;
}

bool should_bypass(Pc pc, const ReuseGraph& graph, const StatStack& model,
                   const sim::MachineConfig& machine,
                   const BypassOptions& options) {
  // The load's own next-touch behaviour matters too (sub-line strides reuse
  // their own lines), so include pc itself alongside the observed reusers.
  std::vector<Pc> reusers = graph.reusers_of(pc, options.min_edge_weight);
  if (std::find(reusers.begin(), reusers.end(), pc) == reusers.end()) {
    reusers.push_back(pc);
  }
  for (Pc reuser : reusers) {
    if (!mrc_flat_between_l1_and_llc(model.pc_mrc(reuser), machine,
                                     options.drop_threshold,
                                     options.llc_effective_bytes)) {
      return false;
    }
  }
  return true;
}

}  // namespace re::core
