// Model-driven delinquent load identification (paper Section V).
//
// Uses the StatStack per-instruction miss-ratio curves at the target
// machine's L1/L2/LLC sizes to run the paper's cost-benefit filter:
//
//     insert a prefetch for load A  iff  MR_A(D$) > alpha / latency
//
// where alpha is the cost of executing one prefetch instruction (~1 cycle)
// and `latency` is the average latency of an L1 miss of A, derived from the
// modeled distribution of where A's misses are served.
#pragma once

#include <cstdint>
#include <vector>

#include "core/profile.hh"
#include "core/statstack.hh"
#include "sim/config.hh"
#include "support/types.hh"

namespace re::core {

struct MddliOptions {
  /// Cost of one prefetch instruction in cycles (the paper measured 1).
  double alpha = 1.0;
  /// Ignore PCs with fewer reuse samples than this (too noisy to model).
  std::uint64_t min_samples = 8;
  /// Shared-LLC capacity (bytes) this core can actually rely on under
  /// co-run contention. 0 means the full machine.llc.size_bytes (the
  /// single-core assumption baked in before co-run modeling existed). The
  /// co-run pipeline sets it from CoRunModel::effective_llc_lines via
  /// engine::AnalysisKnobs, so LLC miss ratios — and through them the
  /// average miss latency the cost-benefit filter uses — reflect
  /// contention-adjusted miss costs.
  std::uint64_t llc_effective_bytes = 0;
};

/// One load that passed the cost-benefit filter.
struct DelinquentLoad {
  Pc pc = 0;
  double l1_miss_ratio = 0.0;
  double l2_miss_ratio = 0.0;
  double llc_miss_ratio = 0.0;
  /// Average latency of this load's L1 misses (cycles), from the model.
  double avg_miss_latency = 0.0;
  /// Modeled L1 misses over the profiled window (miss ratio × executions).
  double estimated_l1_misses = 0.0;
};

/// Average latency per L1 miss implied by the level miss ratios, using the
/// machine's hit latencies. Exposed for tests.
double average_miss_latency(const sim::MachineConfig& machine, double mr_l1,
                            double mr_l2, double mr_llc);

/// Run the MDDLI pass: returns the delinquent loads that are worth
/// prefetching, ordered by descending estimated misses.
std::vector<DelinquentLoad> identify_delinquent_loads(
    const StatStack& model, const Profile& profile,
    const sim::MachineConfig& machine, const MddliOptions& options = {});

}  // namespace re::core
