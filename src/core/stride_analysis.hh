// Stride analysis and prefetch-distance computation (paper Section VI,
// VI-A).
//
// Groups a load's stride samples into cache-line-sized buckets; the load is
// regular if >= 70 % of samples fall in one bucket. The prefetch distance
// follows Mowry's formula P = ceil(l / d) * stride with
// d = recurrence * delta (cycles per memory operation), shortened by the
// intra-line reuse factor i = C/stride for sub-line strides, and capped at
// half the loop's references.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/profile.hh"
#include "support/status.hh"
#include "support/types.hh"

namespace re::core {

struct StrideAnalysisOptions {
  /// Fraction of stride samples that must fall into one line-sized group
  /// for the load to count as regular (the paper's 70 %).
  double dominance_threshold = 0.7;
  /// Minimum stride samples needed to judge a load.
  std::uint64_t min_samples = 8;
};

/// Result of analyzing one load's stride behaviour.
struct StrideInfo {
  Pc pc = 0;
  bool regular = false;
  /// Most frequent stride within the dominant group (bytes, signed).
  std::int64_t stride = 0;
  /// Fraction of samples in the dominant group.
  double dominance = 0.0;
  /// Mean references between successive executions of this load.
  double mean_recurrence = 0.0;
};

/// Analyze the stride samples of one PC.
StrideInfo analyze_strides(Pc pc, const std::vector<StrideSample>& samples,
                           const StrideAnalysisOptions& options = {});

/// Collect per-PC stride samples from a profile and analyze every PC.
std::vector<StrideInfo> analyze_all_strides(
    const Profile& profile, const StrideAnalysisOptions& options = {});

struct PrefetchDistanceParams {
  /// Average memory latency to hide (cycles); the paper uses the average
  /// miss latency known from the cost-benefit step.
  double latency = 200.0;
  /// Average cycles per memory operation (the paper's Δ, measured per
  /// benchmark with performance counters).
  double cycles_per_memop = 3.0;
  /// Estimated dynamic executions of the loop (the paper's R): the distance
  /// is capped so at most half the loop's accesses are cold-start misses.
  std::uint64_t loop_references = ~std::uint64_t{0};
};

/// Compute the prefetch distance in bytes (signed: negative strides
/// prefetch backwards). Every numeric hazard in the formula — zero stride,
/// non-finite or non-positive latency/Δ/recurrence, overflow of the
/// resulting distance — yields an error status naming the hazard instead of
/// a garbage distance.
Expected<std::int64_t> prefetch_distance_checked(
    const StrideInfo& info, const PrefetchDistanceParams& params);

/// Convenience wrapper: std::nullopt on any hazard.
std::optional<std::int64_t> prefetch_distance_bytes(
    const StrideInfo& info, const PrefetchDistanceParams& params);

}  // namespace re::core
