// Runtime profile data produced by the reuse/stride sampler (paper
// Section III).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace re::core {

/// One data-reuse sample: a randomly selected access touched a cache line;
/// `distance` memory references later, the instruction at `second_pc`
/// touched the same line. `first_pc` -> `second_pc` pairs form the
/// data-reuse graph used by the cache-bypass analysis.
struct ReuseSample {
  Pc first_pc = 0;
  Pc second_pc = 0;
  RefCount distance = 0;  // intervening memory references
  std::uint64_t at_ref = 0;  // stream position of the reusing access
};

/// One stride sample: the sampled instruction executed again `recurrence`
/// memory references later, at an address `stride` bytes away.
struct StrideSample {
  Pc pc = 0;
  std::int64_t stride = 0;
  RefCount recurrence = 0;
  std::uint64_t at_ref = 0;  // stream position of the re-execution
};

/// Everything the offline analysis passes consume.
struct Profile {
  std::vector<ReuseSample> reuse_samples;
  std::vector<StrideSample> stride_samples;

  /// Sampled lines never re-accessed before the end of the profiled window
  /// (dangling watchpoints). They represent last-touches: infinite reuse
  /// distance in the StatStack model.
  std::uint64_t dangling_reuse_samples = 0;

  /// Dangling samples grouped by the PC of the *sampled* (first) access.
  /// The per-instruction model attributes them to that PC: when a streamed
  /// line is eventually re-touched beyond the profiled window, the toucher
  /// is almost always the same instruction, and that future access misses.
  std::unordered_map<Pc, std::uint64_t> dangling_by_pc;

  /// Exact per-PC execution counts over the profiled window (cheaply
  /// obtainable in practice from basic-block counts).
  std::unordered_map<Pc, std::uint64_t> pc_execution_counts;

  /// Total memory references observed.
  std::uint64_t total_references = 0;

  /// Sampling period used (mean references between samples).
  std::uint64_t sample_period = 0;

  std::uint64_t executions_of(Pc pc) const {
    auto it = pc_execution_counts.find(pc);
    return it == pc_execution_counts.end() ? 0 : it->second;
  }
};

}  // namespace re::core
