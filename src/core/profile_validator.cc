#include "core/profile_validator.hh"

#include <cmath>

namespace re::core {

namespace {

std::string count_detail(std::uint64_t discarded, const char* what) {
  return "discarded " + std::to_string(discarded) + " " + what;
}

}  // namespace

std::string DegradationLog::to_string() const {
  std::string out;
  for (const DegradationEntry& e : entries_) {
    out += "pc" + std::to_string(e.pc) + " " +
           degradation_reason_name(e.reason);
    if (!e.detail.empty()) {
      out += " (" + e.detail + ")";
    }
    out += "\n";
  }
  return out;
}

Expected<Profile> ProfileValidator::sanitize(const Profile& profile,
                                             DegradationLog* log) const {
  const bool has_samples = !profile.reuse_samples.empty() ||
                           !profile.stride_samples.empty() ||
                           profile.dangling_reuse_samples > 0;
  if (has_samples &&
      (profile.total_references == 0 || profile.sample_period == 0)) {
    if (log != nullptr) {
      log->record(0, DegradationReason::kProfileInconsistent,
                  "samples present but total_references/sample_period is 0");
    }
    return Status(StatusCode::kFailedPrecondition,
                  "profile bookkeeping inconsistent");
  }

  Profile out;
  out.total_references = profile.total_references;
  out.sample_period = profile.sample_period;
  out.dangling_reuse_samples = profile.dangling_reuse_samples;
  out.dangling_by_pc = profile.dangling_by_pc;
  out.pc_execution_counts = profile.pc_execution_counts;

  // A reuse sample is impossible if it claims more intervening references
  // than the window held, or a stream position beyond the window. (Finite
  // distances only: kInfiniteDistance never appears in recorded samples —
  // dangling watches are counted separately.)
  std::uint64_t bad_reuse = 0;
  out.reuse_samples.reserve(profile.reuse_samples.size());
  for (const ReuseSample& s : profile.reuse_samples) {
    const bool ok = s.distance < profile.total_references &&
                    s.at_ref <= profile.total_references;
    if (ok) {
      out.reuse_samples.push_back(s);
    } else {
      ++bad_reuse;
    }
  }
  if (bad_reuse > 0 && log != nullptr) {
    log->record(0, DegradationReason::kCorruptReuseSample,
                count_detail(bad_reuse, "reuse samples"));
  }

  // A stride sample is impossible if its recurrence or position exceeds the
  // window, or its stride magnitude is beyond any plausible footprint.
  std::uint64_t bad_stride = 0;
  out.stride_samples.reserve(profile.stride_samples.size());
  for (const StrideSample& s : profile.stride_samples) {
    const bool ok = s.recurrence < profile.total_references &&
                    s.at_ref <= profile.total_references &&
                    s.stride >= -options_.max_plausible_stride &&
                    s.stride <= options_.max_plausible_stride;
    if (ok) {
      out.stride_samples.push_back(s);
    } else {
      ++bad_stride;
    }
  }
  if (bad_stride > 0 && log != nullptr) {
    log->record(0, DegradationReason::kCorruptStrideSample,
                count_detail(bad_stride, "stride samples"));
  }

  const bool usable = !out.reuse_samples.empty() ||
                      !out.stride_samples.empty() ||
                      out.dangling_reuse_samples > 0;
  if (!usable) {
    if (log != nullptr) {
      log->record(0, DegradationReason::kProfileEmpty,
                  "no usable samples after validation");
    }
    return Status(StatusCode::kDataLoss, "no usable samples");
  }
  return out;
}

LoadVerdict ProfileValidator::classify_stride_evidence(
    const StrideInfo& info, std::uint64_t sample_count) const {
  LoadVerdict v;
  if (sample_count == 0) {
    v.confidence = LoadConfidence::kLowConfidence;
    v.reason = DegradationReason::kNoStrideSamples;
    return v;
  }
  if (sample_count < options_.min_stride_samples) {
    v.confidence = LoadConfidence::kLowConfidence;
    v.reason = DegradationReason::kInsufficientStrideSamples;
    v.detail = std::to_string(sample_count) + " < " +
               std::to_string(options_.min_stride_samples);
    return v;
  }
  if (!std::isfinite(info.dominance) || !std::isfinite(info.mean_recurrence)) {
    v.confidence = LoadConfidence::kInvalid;
    v.reason = DegradationReason::kNumericHazard;
    v.detail = "non-finite stride statistics";
    return v;
  }
  if (info.dominance < options_.dominance_threshold) {
    v.confidence = LoadConfidence::kLowConfidence;
    v.reason = DegradationReason::kLowStrideDominance;
    v.detail = "dominance " + std::to_string(info.dominance);
    return v;
  }
  if (info.stride == 0) {
    v.confidence = LoadConfidence::kLowConfidence;
    v.reason = DegradationReason::kZeroStride;
    return v;
  }
  return v;  // kOk
}

LoadVerdict ProfileValidator::classify_model_numerics(
    double l1_miss_ratio, double l2_miss_ratio, double llc_miss_ratio,
    double avg_miss_latency, double cycles_per_memop) const {
  LoadVerdict v;
  auto bad_ratio = [](double r) {
    return !std::isfinite(r) || r < 0.0 || r > 1.0;
  };
  if (bad_ratio(l1_miss_ratio) || bad_ratio(l2_miss_ratio) ||
      bad_ratio(llc_miss_ratio)) {
    v.confidence = LoadConfidence::kInvalid;
    v.reason = DegradationReason::kNumericHazard;
    v.detail = "miss ratio outside [0,1]";
    return v;
  }
  if (!std::isfinite(avg_miss_latency) || avg_miss_latency < 0.0) {
    v.confidence = LoadConfidence::kInvalid;
    v.reason = DegradationReason::kNumericHazard;
    v.detail = "bad miss latency";
    return v;
  }
  if (!std::isfinite(cycles_per_memop) || cycles_per_memop <= 0.0) {
    v.confidence = LoadConfidence::kInvalid;
    v.reason = DegradationReason::kNumericHazard;
    v.detail = "bad cycles_per_memop";
    return v;
  }
  return v;  // kOk
}

}  // namespace re::core
