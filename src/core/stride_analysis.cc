#include "core/stride_analysis.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/histogram.hh"

namespace re::core {

namespace {

/// Bucket strides that are likely to land in the same cache line together
/// (floor division so negative strides group consistently).
std::int64_t line_group(std::int64_t stride) {
  const std::int64_t c = kLineSize;
  std::int64_t q = stride / c;
  if (stride % c != 0 && stride < 0) --q;
  return q;
}

}  // namespace

StrideInfo analyze_strides(Pc pc, const std::vector<StrideSample>& samples,
                           const StrideAnalysisOptions& options) {
  StrideInfo info;
  info.pc = pc;
  if (samples.size() < options.min_samples) return info;

  // Group samples into line-sized buckets, then find the dominant bucket
  // and the most frequent exact stride within it.
  std::unordered_map<std::int64_t, std::uint64_t> group_counts;
  std::unordered_map<std::int64_t, Histogram> group_strides;
  double recurrence_sum = 0.0;
  for (const StrideSample& s : samples) {
    const std::int64_t g = line_group(s.stride);
    ++group_counts[g];
    group_strides[g].add(static_cast<std::uint64_t>(s.stride + (1LL << 62)));
    recurrence_sum += static_cast<double>(s.recurrence);
  }
  info.mean_recurrence = recurrence_sum / static_cast<double>(samples.size());

  std::int64_t best_group = 0;
  std::uint64_t best_count = 0;
  for (const auto& [group, count] : group_counts) {
    if (count > best_count || (count == best_count && group < best_group)) {
      best_group = group;
      best_count = count;
    }
  }
  info.dominance =
      static_cast<double>(best_count) / static_cast<double>(samples.size());
  info.stride = static_cast<std::int64_t>(group_strides[best_group].mode().first) -
                (1LL << 62);
  info.regular =
      info.dominance >= options.dominance_threshold && info.stride != 0;
  return info;
}

std::vector<StrideInfo> analyze_all_strides(
    const Profile& profile, const StrideAnalysisOptions& options) {
  std::unordered_map<Pc, std::vector<StrideSample>> by_pc;
  for (const StrideSample& s : profile.stride_samples) {
    by_pc[s.pc].push_back(s);
  }
  std::vector<StrideInfo> out;
  out.reserve(by_pc.size());
  for (const auto& [pc, samples] : by_pc) {
    out.push_back(analyze_strides(pc, samples, options));
  }
  std::sort(out.begin(), out.end(),
            [](const StrideInfo& a, const StrideInfo& b) { return a.pc < b.pc; });
  return out;
}

Expected<std::int64_t> prefetch_distance_checked(
    const StrideInfo& info, const PrefetchDistanceParams& params) {
  if (info.stride == 0) {
    return Status(StatusCode::kFailedPrecondition, "zero stride");
  }
  if (!std::isfinite(info.mean_recurrence) || info.mean_recurrence < 0.0) {
    return Status(StatusCode::kOutOfRange, "bad recurrence");
  }
  if (!std::isfinite(params.latency) || params.latency <= 0.0) {
    return Status(StatusCode::kOutOfRange, "non-positive latency");
  }
  if (!std::isfinite(params.cycles_per_memop) ||
      params.cycles_per_memop <= 0.0) {
    return Status(StatusCode::kOutOfRange, "non-positive cycles_per_memop");
  }
  const double stride_mag = std::abs(static_cast<double>(info.stride));
  const double sign = info.stride < 0 ? -1.0 : 1.0;
  const double c = kLineSize;
  const double d =
      std::max(1.0, info.mean_recurrence * params.cycles_per_memop);

  double distance;
  if (stride_mag >= c) {
    // P = ceil(l / d) * stride
    distance = std::ceil(params.latency / d) * stride_mag;
  } else {
    // Sub-line strides reuse each line i = C/stride times, so the demand
    // stream takes d*i cycles per line: P = ceil(l / (d*i)) * C.
    const double i = c / stride_mag;
    distance = std::ceil(params.latency / (d * i)) * c;
  }

  // Cap: with R references in the loop, the first P bytes are cold misses;
  // keep P <= (R/2) * stride so prefetching never costs more misses than it
  // removes (paper Section VI-A).
  if (params.loop_references != ~std::uint64_t{0}) {
    const double span_cap =
        static_cast<double>(params.loop_references) / 2.0 * stride_mag;
    distance = std::min(distance, std::max(span_cap, c));
  }

  // Always look at least one full line ahead; a shorter distance would
  // target the line the load itself touches.
  distance = std::max(distance, c);

  // A distance beyond any plausible footprint means a corrupt input slipped
  // through (wild stride, absurd latency): refuse rather than emit it.
  constexpr double kMaxDistance = 1LL << 46;
  if (!std::isfinite(distance) || distance > kMaxDistance) {
    return Status(StatusCode::kOutOfRange, "distance overflow");
  }
  return static_cast<std::int64_t>(sign * distance);
}

std::optional<std::int64_t> prefetch_distance_bytes(
    const StrideInfo& info, const PrefetchDistanceParams& params) {
  const Expected<std::int64_t> result =
      prefetch_distance_checked(info, params);
  if (!result) return std::nullopt;
  return *result;
}

}  // namespace re::core
