// StatStack fast cache model (paper Section IV; Eklöv & Hagersten,
// ISPASS'10).
//
// Converts a sparse reuse-distance distribution into expected stack
// distances, from which LRU miss ratios follow for *any* cache size:
//
//   An access with reuse distance D has expected stack distance
//       SD(D) = sum_{j=0}^{D-1} P(reuse distance > j)
//   i.e. each of the D intervening references contributes one *unique* line
//   iff its own forward reuse carries it past the end of the window.
//   The access misses in a fully-associative LRU cache of S lines
//   iff SD(D) >= S.
//
// Dangling samples (lines never re-accessed) have infinite reuse distance:
// they keep the survival function bounded away from zero, so stack
// distances keep growing with window size — exactly the behaviour of
// streaming data.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/profile.hh"
#include "support/histogram.hh"
#include "support/types.hh"

namespace re::engine {
class Executor;
class ArtifactStore;
}  // namespace re::engine

namespace re::core {

/// Piecewise-linear expected-stack-distance function built from the sampled
/// reuse-distance distribution.
class StackDistanceSolver {
 public:
  /// `finite` holds the observed (finite) reuse distances; `dangling_count`
  /// samples had no reuse before the window ended.
  StackDistanceSolver(const Histogram& finite, double dangling_count);

  /// Expected stack distance (unique intervening lines) for a reuse
  /// distance. Monotone non-decreasing.
  double stack_distance(RefCount reuse_distance) const;

  /// Smallest reuse distance whose expected stack distance reaches
  /// `stack_distance` (the inverse); kInfiniteDistance if never reached.
  RefCount reuse_distance_for(double stack_distance) const;

  double total_samples() const { return total_; }

 private:
  // Segment i covers reuse distances [start_[i], start_[i+1]) over which
  // the survival function is the constant survival_[i];
  // integral_[i] = SD(start_[i]).
  std::vector<RefCount> start_;
  std::vector<double> survival_;
  std::vector<double> integral_;
  double total_ = 0.0;
};

/// Per-instruction (or whole-application) miss-ratio curve: the fraction of
/// an instruction's sampled accesses whose expected stack distance reaches a
/// given cache size.
class MissRatioCurve {
 public:
  MissRatioCurve() = default;

  MissRatioCurve(std::vector<RefCount> sorted_reuse_distances,
                 double dangling, std::shared_ptr<const StackDistanceSolver>
                 solver);

  /// Modeled miss ratio for a cache of `cache_lines` lines. Returns 0 for
  /// an empty curve (no samples ⇒ assume hits).
  double miss_ratio_lines(std::uint64_t cache_lines) const;

  /// Convenience: cache size given in bytes.
  double miss_ratio_bytes(std::uint64_t bytes) const {
    return miss_ratio_lines(bytes / kLineSize);
  }

  double sample_count() const { return samples_; }
  bool empty() const { return samples_ <= 0.0; }

 private:
  std::vector<RefCount> reuse_distances_;  // ascending
  double dangling_ = 0.0;
  double samples_ = 0.0;
  std::shared_ptr<const StackDistanceSolver> solver_;
};

/// The full model: global stack-distance solver plus per-PC curves.
class StatStack {
 public:
  explicit StatStack(const Profile& profile);

  /// Engine-aware build: per-PC curve construction fans out over
  /// `executor`'s workers (ordered reduction — the model is byte-identical
  /// to the serial build at any worker count), and `store` supplies the
  /// interned PC table plus reusable grouping arenas so repeated windowed
  /// solves allocate nothing in steady state. Either argument may be null.
  StatStack(const Profile& profile, const engine::Executor* executor,
            engine::ArtifactStore* store);

  const StackDistanceSolver& solver() const { return *solver_; }

  /// Whole-application miss ratio curve (includes dangling samples).
  const MissRatioCurve& application_mrc() const { return application_; }

  /// Per-instruction curve; empty curve for PCs with no samples.
  const MissRatioCurve& pc_mrc(Pc pc) const;

  /// PCs that have at least one reuse sample, ascending.
  const std::vector<Pc>& sampled_pcs() const { return pcs_; }

  /// Estimated misses per PC for a given cache size: modeled miss ratio
  /// times the PC's execution count from the profile.
  double estimated_misses(Pc pc, std::uint64_t cache_lines,
                          const Profile& profile) const;

 private:
  std::shared_ptr<const StackDistanceSolver> solver_;
  MissRatioCurve application_;
  std::unordered_map<Pc, MissRatioCurve> per_pc_;
  std::vector<Pc> pcs_;
  MissRatioCurve empty_;
};

}  // namespace re::core
