// Fault injection for sampled profiles.
//
// The paper's profiles come from a hardware-watchpoint sampler (Sembrant et
// al., CGO'12): real deployments drop watchpoints under pressure, multiplex
// PMU counters, truncate profiling windows, and occasionally deliver
// corrupted readings. The FaultInjector perturbs a clean `Profile` with
// those fault models behind a seeded RNG, so every degraded-input scenario
// the robustness tests and `repf faultcheck` exercise is reproducible
// bit-for-bit. The injector never mutates its input; it returns a faulted
// copy.
#pragma once

#include <cstdint>

#include "core/profile.hh"

namespace re::core {

/// Probabilities/parameters of each fault model. All rates are in [0, 1]
/// and independent per sample (or per PC for `zero_sample_pc_rate`).
struct FaultConfig {
  /// P(a sample is silently dropped) — lost watchpoint / counter overflow.
  double drop_rate = 0.0;
  /// P(a surviving sample is delivered twice) — replayed PMU interrupt.
  double duplicate_rate = 0.0;
  /// Fraction of the profiled window cut off the end — truncated run.
  double truncate_fraction = 0.0;
  /// P(a reuse distance is skewed by `reuse_skew_factor`) — counter
  /// multiplexing miscounts the intervening references.
  double reuse_skew_rate = 0.0;
  double reuse_skew_factor = 16.0;
  /// P(a stride sample's stride is replaced by a wild outlier) — the
  /// re-armed breakpoint fired on an unrelated access.
  double stride_outlier_rate = 0.0;
  /// P(a PC loses *all* of its samples) — its watchpoints never won the
  /// multiplexing slot.
  double zero_sample_pc_rate = 0.0;

  std::uint64_t seed = 0xFA57;

  /// All per-sample fault models at one common rate (the sweep harness's
  /// single-knob configuration).
  static FaultConfig uniform(double rate, std::uint64_t seed = 0xFA57) {
    FaultConfig config;
    config.drop_rate = rate;
    config.duplicate_rate = rate;
    config.truncate_fraction = rate;
    config.reuse_skew_rate = rate;
    config.stride_outlier_rate = rate;
    config.zero_sample_pc_rate = rate;
    config.seed = seed;
    return config;
  }
};

/// Summary of what the injector actually did (for logs and tests).
struct FaultStats {
  std::uint64_t reuse_dropped = 0;
  std::uint64_t reuse_duplicated = 0;
  std::uint64_t reuse_skewed = 0;
  std::uint64_t reuse_truncated = 0;
  std::uint64_t stride_dropped = 0;
  std::uint64_t stride_duplicated = 0;
  std::uint64_t stride_outliers = 0;
  std::uint64_t stride_truncated = 0;
  std::uint64_t zeroed_pcs = 0;

  std::uint64_t total() const {
    return reuse_dropped + reuse_duplicated + reuse_skewed + reuse_truncated +
           stride_dropped + stride_duplicated + stride_outliers +
           stride_truncated + zeroed_pcs;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  /// Return a faulted copy of `profile`. Deterministic in (profile, config).
  Profile inject(const Profile& profile) const;

  /// Stats of the most recent inject() call.
  const FaultStats& last_stats() const { return stats_; }

 private:
  FaultConfig config_;
  mutable FaultStats stats_;
};

}  // namespace re::core
