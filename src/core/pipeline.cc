#include "core/pipeline.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/system.hh"

namespace re::core {

namespace {

/// Index stride samples by PC once.
std::unordered_map<Pc, std::vector<StrideSample>> strides_by_pc(
    const Profile& profile) {
  std::unordered_map<Pc, std::vector<StrideSample>> by_pc;
  for (const StrideSample& s : profile.stride_samples) {
    by_pc[s.pc].push_back(s);
  }
  return by_pc;
}

/// Offline Δ from a baseline run, unless the caller measured it online.
double resolve_cycles_per_memop(const workloads::Program& program,
                                const sim::MachineConfig& machine,
                                const OptimizerOptions& options) {
  if (options.assumed_cycles_per_memop > 0.0) {
    return options.assumed_cycles_per_memop;
  }
  return measure_cycles_per_memop(program, machine);
}

}  // namespace

double measure_cycles_per_memop(const workloads::Program& program,
                                const sim::MachineConfig& machine) {
  const sim::RunResult run =
      sim::run_single(machine, program, /*hw_prefetch=*/false);
  if (run.apps.empty() || run.apps[0].references == 0) return 1.0;
  return static_cast<double>(run.apps[0].cycles) /
         static_cast<double>(run.apps[0].references);
}

OptimizationReport optimize_program(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const OptimizerOptions& options) {
  // 1-2) Integrated sampling pass: data-reuse + stride samples.
  return optimize_with_profile(
      program, profile_program(program, options.sampler,
                               options.profile_max_refs),
      machine, options);
}

OptimizationReport optimize_with_profile(const workloads::Program& program,
                                         Profile profile,
                                         const sim::MachineConfig& machine,
                                         const OptimizerOptions& options) {
  OptimizationReport report;
  report.benchmark = program.name;

  // Skip-not-guess: the validator mirrors the stride-analysis gates, so a
  // clean profile yields byte-identical plans; degraded evidence only ever
  // removes prefetches, and every removal lands in the DegradationLog.
  ValidatorOptions vopts;
  vopts.min_stride_samples = options.stride.min_samples;
  vopts.dominance_threshold = options.stride.dominance_threshold;
  const ProfileValidator validator(vopts);

  Expected<Profile> sanitized =
      validator.sanitize(profile, &report.degradation);
  if (!sanitized) {
    // Unusable profile: degrade to "do nothing". The input program passes
    // through untouched — never prefetch on evidence we cannot trust.
    report.profile = std::move(profile);
    report.cycles_per_memop =
        resolve_cycles_per_memop(program, machine, options);
    report.optimized = program;
    return report;
  }
  report.profile = std::move(*sanitized);

  // 3) Fast cache modeling.
  const StatStack model(report.profile);

  // Δ from a plain baseline run (performance counters in the paper).
  report.cycles_per_memop =
      resolve_cycles_per_memop(program, machine, options);

  // 4) Delinquent-load identification with cost-benefit filtering.
  report.delinquent_loads = identify_delinquent_loads(
      model, report.profile, machine, options.mddli);

  // 5-6) Stride analysis, prefetch distance and bypass analysis for the
  // selected loads. Each load must clear the validator at every step; a
  // failed check suppresses the prefetch and records why.
  const auto by_pc = strides_by_pc(report.profile);
  const ReuseGraph graph(report.profile);
  for (const DelinquentLoad& load : report.delinquent_loads) {
    const LoadVerdict numerics = validator.classify_model_numerics(
        load.l1_miss_ratio, load.l2_miss_ratio, load.llc_miss_ratio,
        load.avg_miss_latency, report.cycles_per_memop);
    if (numerics.confidence != LoadConfidence::kOk) {
      report.degradation.record(load.pc, numerics.reason, numerics.detail);
      continue;
    }

    auto it = by_pc.find(load.pc);
    if (it == by_pc.end()) {
      report.degradation.record(load.pc, DegradationReason::kNoStrideSamples);
      continue;
    }
    const StrideInfo info =
        analyze_strides(load.pc, it->second, options.stride);
    report.stride_infos.push_back(info);
    const LoadVerdict stride_verdict =
        validator.classify_stride_evidence(info, it->second.size());
    if (stride_verdict.confidence != LoadConfidence::kOk) {
      report.degradation.record(load.pc, stride_verdict.reason,
                                stride_verdict.detail);
      continue;
    }

    PrefetchDistanceParams params;
    params.latency = load.avg_miss_latency;
    params.cycles_per_memop = report.cycles_per_memop;
    params.loop_references = report.profile.executions_of(load.pc);
    const Expected<std::int64_t> distance =
        prefetch_distance_checked(info, params);
    if (!distance) {
      report.degradation.record(load.pc,
                                DegradationReason::kDistanceUnavailable,
                                distance.status().to_string());
      continue;
    }

    PrefetchPlan plan;
    plan.pc = load.pc;
    plan.distance_bytes = *distance;
    plan.hint = options.enable_non_temporal &&
                        should_bypass(load.pc, graph, model, machine,
                                      options.bypass)
                    ? workloads::PrefetchHint::NTA
                    : workloads::PrefetchHint::T0;
    report.plans.push_back(plan);
  }

  report.optimized = insert_prefetches(program, report.plans);
  return report;
}

OptimizationReport stride_centric_optimize(const workloads::Program& program,
                                           const sim::MachineConfig& machine,
                                           const OptimizerOptions& options) {
  OptimizationReport report;
  report.benchmark = program.name;
  report.profile =
      profile_program(program, options.sampler, options.profile_max_refs);
  report.cycles_per_memop = measure_cycles_per_memop(program, machine);

  // No cache model, no cost-benefit: every regular-strided load gets a
  // prefetch, with a constant assumed memory latency and no loop cap.
  report.stride_infos = analyze_all_strides(report.profile, options.stride);
  for (const StrideInfo& info : report.stride_infos) {
    if (!info.regular) continue;

    PrefetchDistanceParams params;
    params.latency = static_cast<double>(machine.dram_latency);
    params.cycles_per_memop = report.cycles_per_memop;
    params.loop_references = ~std::uint64_t{0};  // no cap
    const auto distance = prefetch_distance_bytes(info, params);
    if (!distance) continue;

    PrefetchPlan plan;
    plan.pc = info.pc;
    plan.distance_bytes = *distance;
    plan.hint = workloads::PrefetchHint::T0;
    report.plans.push_back(plan);
  }

  report.optimized = insert_prefetches(program, report.plans);
  return report;
}

}  // namespace re::core
