#include "core/pipeline.hh"

#include "sim/system.hh"

// The optimization entry points declared in this header are stage-graph
// configurations since PR 5; their definitions live in engine/pipeline.cc
// (re_engine). Only the baseline Δ probe remains here: it is the one piece
// phase detection (core/phases.cc) needs, and it must not drag the engine
// into re_core.

namespace re::core {

double measure_cycles_per_memop(const workloads::Program& program,
                                const sim::MachineConfig& machine) {
  const sim::RunResult run =
      sim::run_single(machine, program, /*hw_prefetch=*/false);
  if (run.apps.empty() || run.apps[0].references == 0) return 1.0;
  return static_cast<double>(run.apps[0].cycles) /
         static_cast<double>(run.apps[0].references);
}

}  // namespace re::core
