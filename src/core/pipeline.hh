// End-to-end optimization pipeline (paper Figure 1):
//
//   sampling pass  ->  StatStack modeling  ->  MDDLI cost-benefit  ->
//   stride analysis -> prefetch distance -> bypass analysis -> insertion
//
// plus the stride-centric baseline the paper compares against (Section
// VI-D): prefetch *every* load with a regular stride, no cost-benefit
// filter, no bypassing — modeled on Luk'02 / Wu'02.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bypass.hh"
#include "core/insertion.hh"
#include "core/mddli.hh"
#include "core/profile.hh"
#include "core/profile_validator.hh"
#include "core/sampler.hh"
#include "core/statstack.hh"
#include "core/stride_analysis.hh"
#include "sim/config.hh"
#include "workloads/program.hh"

namespace re::core {

struct OptimizerOptions {
  SamplerConfig sampler;
  MddliOptions mddli;
  StrideAnalysisOptions stride;
  BypassOptions bypass;
  /// Use PREFETCHNTA where the bypass analysis allows ("Soft Pref.+NT" in
  /// the paper); false gives plain "Software Pref.".
  bool enable_non_temporal = true;
  /// Cap on profiled references (full run by default).
  std::uint64_t profile_max_refs = ~std::uint64_t{0};
  /// Δ (cycles per memory operation) knobs, resolved by the engine with
  /// one precedence rule (engine/delta.hh): assumed > measured >
  /// baseline-sim. `assumed` is a statement of intent (tests, ablations,
  /// replays); `measured` is an online observation of the running program
  /// (the adaptive runtime's EWMA — it cannot pause the workload to run a
  /// counterfactual baseline); when both are unset the offline baseline
  /// simulation supplies Δ.
  double assumed_cycles_per_memop = 0.0;
  double measured_cycles_per_memop = 0.0;
};

/// Everything the analysis produced, for reporting and tests.
struct OptimizationReport {
  std::string benchmark;
  Profile profile;
  std::vector<DelinquentLoad> delinquent_loads;
  std::vector<StrideInfo> stride_infos;  // for the delinquent loads
  std::vector<PrefetchPlan> plans;
  /// Measured average cycles per memory operation (the paper's Δ).
  double cycles_per_memop = 0.0;
  workloads::Program optimized;
  /// Every prefetch the pipeline conservatively suppressed (and every
  /// profile-level discard), with machine-readable reasons. When the
  /// profile is unusable the pipeline degrades to "emit nothing" and
  /// `optimized` is the input program unchanged.
  DegradationLog degradation;
};

/// Measure Δ: baseline cycles per memory operation from a single-core run
/// with all prefetching off (the paper measures this per benchmark with
/// performance counters).
double measure_cycles_per_memop(const workloads::Program& program,
                                const sim::MachineConfig& machine);

/// Run the full resource-efficient prefetching pipeline for one program.
OptimizationReport optimize_program(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const OptimizerOptions& options = {});

/// Same pipeline, but starting from an externally supplied profile — the
/// entry point for fault-injection studies (`repf faultcheck`,
/// `bench_robustness_faults`) and for replaying stored profiles. The
/// profile is validated first; degraded or corrupt evidence suppresses
/// prefetches (recorded in the report's DegradationLog) rather than
/// producing wrong ones. With a clean profile this is exactly
/// optimize_program.
OptimizationReport optimize_with_profile(const workloads::Program& program,
                                         Profile profile,
                                         const sim::MachineConfig& machine,
                                         const OptimizerOptions& options = {});

/// The stride-centric baseline: same sampling pass, but inserts a prefetch
/// for every load with a dominant stride — no miss-ratio model, no
/// cost-benefit filter, no NT bypassing, constant assumed memory latency.
OptimizationReport stride_centric_optimize(
    const workloads::Program& program, const sim::MachineConfig& machine,
    const OptimizerOptions& options = {});

}  // namespace re::core
