// Prefetch insertion (paper Section VI-C).
//
// The paper inserts `prefetch[nta] distance(base)` directly after the
// target load at the assembler level. The simulator analogue attaches a
// PrefetchOp to the static instruction: after each dynamic execution of the
// load with address A, the core issues a prefetch to A + distance at a cost
// of one cycle — exactly the base+offset addressing form.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hh"
#include "workloads/program.hh"

namespace re::core {

/// One planned insertion.
struct PrefetchPlan {
  Pc pc = 0;
  std::int64_t distance_bytes = 0;
  workloads::PrefetchHint hint = workloads::PrefetchHint::T0;

  bool non_temporal() const {
    return hint == workloads::PrefetchHint::NTA;
  }
};

/// Assembly mnemonic for a hint ("prefetcht0" ... "prefetchnta").
const char* hint_mnemonic(workloads::PrefetchHint hint);

/// Return a copy of `program` with the planned prefetches attached.
/// Plans naming unknown PCs are ignored (they would be dead code).
workloads::Program insert_prefetches(const workloads::Program& program,
                                     const std::vector<PrefetchPlan>& plans);

}  // namespace re::core
