#include "core/fault_injection.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/rng.hh"

namespace re::core {

namespace {

/// Magnitude floor for injected stride outliers: far beyond any plausible
/// footprint, so a correct validator can recognise them and a broken one
/// computes absurd prefetch distances.
constexpr std::int64_t kOutlierBase = std::int64_t{1} << 45;

}  // namespace

Profile FaultInjector::inject(const Profile& profile) const {
  stats_ = FaultStats{};
  Rng rng(config_.seed);

  Profile out;
  out.total_references = profile.total_references;
  out.sample_period = profile.sample_period;
  out.dangling_reuse_samples = profile.dangling_reuse_samples;
  out.dangling_by_pc = profile.dangling_by_pc;
  out.pc_execution_counts = profile.pc_execution_counts;

  // Truncated run: every sample recorded after the cut is lost. Execution
  // counts survive (they come from basic-block counters, a separate
  // mechanism), which is exactly the inconsistency a truncated profile
  // shows in practice.
  const double keep_fraction =
      1.0 - std::clamp(config_.truncate_fraction, 0.0, 1.0);
  const std::uint64_t cutoff_ref = static_cast<std::uint64_t>(
      static_cast<double>(profile.total_references) * keep_fraction);
  const bool truncating = config_.truncate_fraction > 0.0;

  // PCs whose watchpoints never won the PMU multiplexing slot: all their
  // samples vanish. Decide per distinct PC, deterministically, by iterating
  // the sample streams in order (not the hash maps).
  std::unordered_set<Pc> zeroed;
  if (config_.zero_sample_pc_rate > 0.0) {
    std::unordered_set<Pc> seen;
    auto consider = [&](Pc pc) {
      if (!seen.insert(pc).second) return;
      if (rng.chance(config_.zero_sample_pc_rate)) {
        zeroed.insert(pc);
        ++stats_.zeroed_pcs;
      }
    };
    for (const ReuseSample& s : profile.reuse_samples) consider(s.first_pc);
    for (const StrideSample& s : profile.stride_samples) consider(s.pc);
  }

  out.reuse_samples.reserve(profile.reuse_samples.size());
  for (const ReuseSample& s : profile.reuse_samples) {
    if (truncating && s.at_ref > cutoff_ref) {
      ++stats_.reuse_truncated;
      continue;
    }
    if (zeroed.count(s.first_pc) != 0) continue;
    if (config_.drop_rate > 0.0 && rng.chance(config_.drop_rate)) {
      ++stats_.reuse_dropped;
      continue;
    }
    ReuseSample copy = s;
    if (config_.reuse_skew_rate > 0.0 && rng.chance(config_.reuse_skew_rate)) {
      copy.distance = static_cast<RefCount>(
          static_cast<double>(std::max<RefCount>(copy.distance, 1)) *
          config_.reuse_skew_factor);
      ++stats_.reuse_skewed;
    }
    out.reuse_samples.push_back(copy);
    if (config_.duplicate_rate > 0.0 && rng.chance(config_.duplicate_rate)) {
      out.reuse_samples.push_back(copy);
      ++stats_.reuse_duplicated;
    }
  }

  out.stride_samples.reserve(profile.stride_samples.size());
  for (const StrideSample& s : profile.stride_samples) {
    if (truncating && s.at_ref > cutoff_ref) {
      ++stats_.stride_truncated;
      continue;
    }
    if (zeroed.count(s.pc) != 0) continue;
    if (config_.drop_rate > 0.0 && rng.chance(config_.drop_rate)) {
      ++stats_.stride_dropped;
      continue;
    }
    StrideSample copy = s;
    if (config_.stride_outlier_rate > 0.0 &&
        rng.chance(config_.stride_outlier_rate)) {
      const std::int64_t wild =
          kOutlierBase + static_cast<std::int64_t>(rng.next(1u << 20)) *
                             static_cast<std::int64_t>(kLineSize);
      copy.stride = rng.chance(0.5) ? wild : -wild;
      ++stats_.stride_outliers;
    }
    out.stride_samples.push_back(copy);
    if (config_.duplicate_rate > 0.0 && rng.chance(config_.duplicate_rate)) {
      out.stride_samples.push_back(copy);
      ++stats_.stride_duplicated;
    }
  }

  // Zeroed PCs also lose their dangling attribution (those watchpoints were
  // never armed).
  for (Pc pc : zeroed) {
    auto it = out.dangling_by_pc.find(pc);
    if (it != out.dangling_by_pc.end()) {
      out.dangling_reuse_samples -= std::min(out.dangling_reuse_samples,
                                             it->second);
      out.dangling_by_pc.erase(it);
    }
  }

  if (truncating) {
    out.total_references = cutoff_ref;
  }
  return out;
}

}  // namespace re::core
