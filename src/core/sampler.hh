// Data-reuse and stride sampler (paper Section III).
//
// The real system samples a native run with hardware watchpoints and
// performance counters (Sembrant et al., CGO'12) at 1 in 100,000 references
// for <30 % overhead. Here the sampler hooks the simulated access stream
// instead; the produced (reuse distance, stride, recurrence) tuples are
// identical in kind. Because our workload models execute ~10^6 references
// instead of SPEC's ~10^11, the default period is scaled so the *number of
// samples per static instruction* lands in the same regime as the paper.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/profile.hh"
#include "support/rng.hh"
#include "support/types.hh"
#include "workloads/program.hh"

namespace re::core {

struct SamplerConfig {
  /// Mean references between samples (geometrically distributed, so sample
  /// points are memoryless like the hardware framework's).
  std::uint64_t sample_period = 1000;
  std::uint64_t seed = 42;
};

class Sampler {
 public:
  explicit Sampler(const SamplerConfig& config);

  /// Feed one memory reference, in program order.
  void observe(Pc pc, Addr addr);

  /// Flush outstanding watchpoints (dangling = infinite reuse distance) and
  /// return the profile. The sampler can be reused afterwards.
  Profile finish();

  /// Emit the current window's profile WITHOUT resetting the reuse clock:
  /// open watchpoints survive, so a hot reuse that happens to straddle the
  /// window boundary closes later at its true distance instead of becoming
  /// a phantom cold miss. Watches older than `watch_timeout_refs` flush as
  /// dangling into this window — streaming lines are never re-touched, and
  /// without the timeout their cold-miss evidence would never materialize.
  /// Sample positions (`at_ref`) are window-relative; distances and
  /// recurrences are true global differences, so they may exceed the window
  /// length (the profile validator bounds them against the accumulated
  /// profile they are merged into).
  Profile harvest(std::uint64_t watch_timeout_refs);

  /// Flush every open watchpoint now: line watches become dangling counts
  /// in `*into` (pass nullptr to drop them), stride breakpoints are
  /// dropped. Used at phase switches, where an open watch belongs to the
  /// regime that armed it, not the one that is starting.
  void flush_open_watches(Profile* into);

 private:
  struct LineWatch {
    Pc first_pc = 0;
    std::uint64_t start_ref = 0;
  };
  struct PcWatch {
    Addr last_addr = 0;
    std::uint64_t start_ref = 0;
  };

  SamplerConfig config_;
  Rng rng_;
  Profile profile_;
  std::uint64_t ref_count_ = 0;
  std::uint64_t window_start_ref_ = 0;  // harvest() rebases positions here
  std::uint64_t next_sample_at_ = 0;
  std::unordered_map<Addr, LineWatch> line_watches_;
  std::unordered_map<Pc, PcWatch> pc_watches_;
};

/// Profile one full run of `program` (optionally capped at `max_refs`).
Profile profile_program(const workloads::Program& program,
                        const SamplerConfig& config,
                        std::uint64_t max_refs = ~std::uint64_t{0});

}  // namespace re::core
