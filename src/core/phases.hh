// Phase-guided profiling (after Sembrant, Black-Schaffer & Hagersten,
// CGO'12 — the framework the paper's sampler builds on).
//
// Real applications move through execution phases with distinct memory
// behaviour; one global profile blurs them together. This pass splits the
// profiled reference stream into fixed windows, fingerprints each window by
// its static-instruction mix, clusters consecutive windows into phases, and
// runs the full MDDLI/stride/bypass analysis per phase. The merged plan
// keeps, for every load, the decision from the phase where it matters most
// (highest estimated misses).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hh"
#include "core/profile.hh"
#include "workloads/program.hh"

namespace re::core {

/// Normalized per-PC frequency vector fingerprinting one profiling window
/// (entries sum to 1). Shared between the offline phase clustering below and
/// the online runtime::PhaseDetector.
using PhaseSignature = std::unordered_map<Pc, double>;

/// Manhattan (L1) distance between two normalized signatures; lies in
/// [0, 2], with 0 = identical instruction mixes and 2 = disjoint ones.
double signature_distance(const PhaseSignature& a, const PhaseSignature& b);

/// Normalize raw per-PC reference counts into a signature. Empty when
/// `total` is zero.
PhaseSignature normalize_signature(
    const std::unordered_map<Pc, std::uint64_t>& counts, std::uint64_t total);

struct PhaseOptions {
  /// References per signature window.
  std::uint64_t window_refs = 1 << 16;
  /// Manhattan distance between normalized PC-frequency signatures below
  /// which a window joins an existing phase (signatures sum to 1, so the
  /// distance lies in [0, 2]).
  double similarity_threshold = 0.5;
};

/// One contiguous run of windows belonging to the same phase.
struct PhaseSegment {
  int phase_id = 0;
  std::uint64_t begin_ref = 0;
  std::uint64_t end_ref = 0;  // exclusive
};

/// A profile annotated with detected phases.
struct PhasedProfile {
  Profile full;
  std::vector<PhaseSegment> segments;
  int num_phases = 0;

  /// Phase id covering a stream position (last segment wins at boundaries).
  int phase_at(std::uint64_t ref) const;

  /// Sub-profile containing only the samples recorded inside `phase_id`'s
  /// segments; execution counts and totals are scaled to the phase.
  Profile phase_profile(int phase_id) const;

  /// Total references spent in a phase.
  std::uint64_t phase_references(int phase_id) const;
};

/// Profile one run of `program`, fingerprinting windows and clustering them
/// into phases.
PhasedProfile profile_with_phases(
    const workloads::Program& program, const SamplerConfig& sampler_config,
    const PhaseOptions& phase_options = {},
    std::uint64_t max_refs = ~std::uint64_t{0});

/// Phase-aware variant of optimize_program: per-phase analysis, merged
/// plans. Reported delinquent loads / stride infos are the union across
/// phases.
struct PhasedOptimizationReport {
  OptimizationReport merged;
  PhasedProfile phases;
  /// Plans each phase produced on its own (index = phase id).
  std::vector<std::vector<PrefetchPlan>> per_phase_plans;
};

PhasedOptimizationReport phase_aware_optimize(
    const workloads::Program& program, const sim::MachineConfig& machine,
    const OptimizerOptions& options = {},
    const PhaseOptions& phase_options = {});

}  // namespace re::core
