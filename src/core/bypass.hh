// Cache-bypass (non-temporal) analysis (paper Section VI-B; Sandberg et
// al., SC'10).
//
// For a prefetchable load A, find its *data-reusing loads*: the
// instructions that touch A's cache lines next (from the reuse-sample
// pairs). If none of them reuses data out of the L2/LLC — their miss-ratio
// curves are flat between the L1 and LLC sizes — then A's data passes
// through the higher cache levels without benefit and the prefetch can be
// non-temporal (PREFETCHNTA): fill L1 only, never pollute L2/LLC.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/profile.hh"
#include "core/statstack.hh"
#include "sim/config.hh"
#include "support/types.hh"

namespace re::core {

struct BypassOptions {
  /// A reusing load disqualifies bypassing if its MRC drops by more than
  /// this fraction of its L1 miss ratio between the L1 and LLC points
  /// (i.e. it serves that share of accesses out of L2/LLC).
  double drop_threshold = 0.10;
  /// Ignore reuse edges carrying less than this fraction of a load's
  /// outgoing reuse samples (noise).
  double min_edge_weight = 0.05;
  /// Shared-LLC capacity (bytes) the core can rely on under co-run
  /// contention; 0 = the full machine.llc.size_bytes. A shrunken effective
  /// share moves the upper end of the flatness window: data that would be
  /// served out of an uncontended LLC no longer disqualifies bypassing when
  /// co-runners would evict it first. Plumbed from
  /// engine::AnalysisKnobs::llc_effective_bytes.
  std::uint64_t llc_effective_bytes = 0;
};

/// Data-reuse graph: for each PC, the PCs observed to access the same cache
/// line directly after it, with sample counts.
class ReuseGraph {
 public:
  explicit ReuseGraph(const Profile& profile);

  /// Successor PCs of `pc` whose edge weight is at least `min_fraction` of
  /// pc's outgoing samples.
  std::vector<Pc> reusers_of(Pc pc, double min_fraction) const;

  std::uint64_t edge_count(Pc from, Pc to) const;
  std::uint64_t out_degree_samples(Pc from) const;

 private:
  std::unordered_map<Pc, std::unordered_map<Pc, std::uint64_t>> edges_;
  std::unordered_map<Pc, std::uint64_t> totals_;
};

/// True if the MRC is (nearly) flat between the machine's L1 and LLC sizes,
/// i.e. the load does not reuse data from the intermediate levels.
/// `llc_effective_bytes` overrides the LLC capacity when nonzero (a core's
/// contention-adjusted share of the shared LLC).
bool mrc_flat_between_l1_and_llc(const MissRatioCurve& mrc,
                                 const sim::MachineConfig& machine,
                                 double drop_threshold,
                                 std::uint64_t llc_effective_bytes = 0);

/// Decide whether a prefetch for `pc` may bypass the higher cache levels.
bool should_bypass(Pc pc, const ReuseGraph& graph, const StatStack& model,
                   const sim::MachineConfig& machine,
                   const BypassOptions& options = {});

}  // namespace re::core
