#include "core/sampler.hh"

#include "core/trace_replay.hh"

namespace re::core {

Sampler::Sampler(const SamplerConfig& config)
    : config_(config), rng_(config.seed) {
  next_sample_at_ = rng_.geometric_gap(
      static_cast<double>(config_.sample_period));
}

void Sampler::observe(Pc pc, Addr addr) {
  ++ref_count_;
  const Addr line = line_of(addr);

  // Watchpoint on the sampled cache line: first re-access closes the
  // reuse sample.
  if (!line_watches_.empty()) {
    auto it = line_watches_.find(line);
    if (it != line_watches_.end()) {
      profile_.reuse_samples.push_back(
          ReuseSample{it->second.first_pc, pc,
                      ref_count_ - it->second.start_ref - 1,
                      ref_count_ - window_start_ref_});
      line_watches_.erase(it);
    }
  }

  // Breakpoint on the sampled instruction: next execution closes the
  // stride/recurrence sample.
  if (!pc_watches_.empty()) {
    auto it = pc_watches_.find(pc);
    if (it != pc_watches_.end()) {
      profile_.stride_samples.push_back(StrideSample{
          pc,
          static_cast<std::int64_t>(addr) -
              static_cast<std::int64_t>(it->second.last_addr),
          ref_count_ - it->second.start_ref - 1,
          ref_count_ - window_start_ref_});
      pc_watches_.erase(it);
    }
  }

  ++profile_.pc_execution_counts[pc];

  if (ref_count_ >= next_sample_at_) {
    // This reference is the randomly selected sample point: arm a
    // watchpoint on its line and a breakpoint on its instruction (unless
    // either is already being monitored).
    line_watches_.emplace(line, LineWatch{pc, ref_count_});
    pc_watches_.emplace(pc, PcWatch{addr, ref_count_});
    next_sample_at_ =
        ref_count_ +
        rng_.geometric_gap(static_cast<double>(config_.sample_period));
  }
}

Profile Sampler::finish() {
  profile_.dangling_reuse_samples += line_watches_.size();
  for (const auto& [line, watch] : line_watches_) {
    (void)line;
    ++profile_.dangling_by_pc[watch.first_pc];
  }
  profile_.total_references = ref_count_ - window_start_ref_;
  profile_.sample_period = config_.sample_period;
  line_watches_.clear();
  pc_watches_.clear();

  Profile out = std::move(profile_);
  profile_ = Profile{};
  ref_count_ = 0;
  window_start_ref_ = 0;
  // Re-arm the sampling clock: without this a reused sampler would start
  // its next window with the previous window's residual gap (offset by the
  // old ref count), displacing every sample point.
  next_sample_at_ =
      rng_.geometric_gap(static_cast<double>(config_.sample_period));
  return out;
}

Profile Sampler::harvest(std::uint64_t watch_timeout_refs) {
  for (auto it = line_watches_.begin(); it != line_watches_.end();) {
    if (ref_count_ - it->second.start_ref >= watch_timeout_refs) {
      ++profile_.dangling_reuse_samples;
      ++profile_.dangling_by_pc[it->second.first_pc];
      it = line_watches_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pc_watches_.begin(); it != pc_watches_.end();) {
    if (ref_count_ - it->second.start_ref >= watch_timeout_refs) {
      // A stride breakpoint whose PC was not re-executed for a whole
      // timeout carries no closable sample; drop it silently.
      it = pc_watches_.erase(it);
    } else {
      ++it;
    }
  }
  profile_.total_references = ref_count_ - window_start_ref_;
  profile_.sample_period = config_.sample_period;

  Profile out = std::move(profile_);
  profile_ = Profile{};
  window_start_ref_ = ref_count_;
  // ref clock, open watches and the sampling gap all continue untouched.
  return out;
}

void Sampler::flush_open_watches(Profile* into) {
  if (into != nullptr) {
    into->dangling_reuse_samples += line_watches_.size();
    for (const auto& [line, watch] : line_watches_) {
      (void)line;
      ++into->dangling_by_pc[watch.first_pc];
    }
  }
  line_watches_.clear();
  pc_watches_.clear();
}

Profile profile_program(const workloads::Program& program,
                        const SamplerConfig& config, std::uint64_t max_refs) {
  Sampler sampler(config);
  replay_program(
      program, [&](Pc pc, Addr addr) { sampler.observe(pc, addr); },
      max_refs);
  return sampler.finish();
}

}  // namespace re::core
