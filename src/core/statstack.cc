#include "core/statstack.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "engine/executor.hh"
#include "engine/store.hh"

namespace re::core {

StackDistanceSolver::StackDistanceSolver(const Histogram& finite,
                                         double dangling_count) {
  const auto sorted = finite.sorted();
  total_ = finite.total() + dangling_count;
  if (total_ <= 0.0) {
    // No samples at all: stack distance is identically zero.
    start_ = {0};
    survival_ = {0.0};
    integral_ = {0.0};
    total_ = 0.0;
    return;
  }

  // Survival S(j) = P(reuse distance > j) is a right-continuous step
  // function dropping at each observed key; dangling samples never drop.
  // Build segments [start_i, start_{i+1}) of constant survival together
  // with the running integral SD(start_i) = sum_{j<start_i} S(j).
  start_.reserve(sorted.size() + 1);
  survival_.reserve(sorted.size() + 1);
  integral_.reserve(sorted.size() + 1);

  start_.push_back(0);
  survival_.push_back(1.0);
  integral_.push_back(0.0);

  double cumulative = 0.0;
  for (const auto& [key, count] : sorted) {
    cumulative += count;
    // count_le(j) includes `key` once j >= key, so survival changes at
    // j = key: a new segment starts there.
    const RefCount seg_start = key;
    const double new_survival = (total_ - cumulative) / total_;
    if (seg_start == start_.back()) {
      // First key is 0: overwrite the initial segment in place.
      survival_.back() = new_survival;
    } else {
      const double seg_integral =
          integral_.back() +
          static_cast<double>(seg_start - start_.back()) * survival_.back();
      start_.push_back(seg_start);
      survival_.push_back(new_survival);
      integral_.push_back(seg_integral);
    }
  }
}

double StackDistanceSolver::stack_distance(RefCount reuse_distance) const {
  if (total_ <= 0.0 || reuse_distance == 0) return 0.0;
  if (reuse_distance == kInfiniteDistance) {
    return std::numeric_limits<double>::infinity();
  }
  // Find the segment containing j = reuse_distance - 1 ... but since the
  // integral is over [0, D), locate the last segment starting at or before D
  // and extend linearly.
  auto it = std::upper_bound(start_.begin(), start_.end(), reuse_distance);
  const std::size_t i = static_cast<std::size_t>(it - start_.begin()) - 1;
  return integral_[i] +
         static_cast<double>(reuse_distance - start_[i]) * survival_[i];
}

RefCount StackDistanceSolver::reuse_distance_for(double stack_distance) const {
  if (stack_distance <= 0.0) return 0;
  if (total_ <= 0.0) return kInfiniteDistance;

  // Find the first segment whose end-integral reaches the target, then
  // solve within it. The final segment extends to infinity with slope equal
  // to the terminal survival (dangling fraction).
  for (std::size_t i = 0; i < start_.size(); ++i) {
    const bool last = i + 1 == start_.size();
    const double seg_end_integral =
        last ? std::numeric_limits<double>::infinity()
             : integral_[i + 1];
    if (stack_distance <= seg_end_integral) {
      if (survival_[i] <= 0.0) {
        if (last) return kInfiniteDistance;
        continue;  // zero-slope segment cannot reach a larger target
      }
      const double offset = (stack_distance - integral_[i]) / survival_[i];
      return start_[i] + static_cast<RefCount>(std::ceil(offset));
    }
  }
  return kInfiniteDistance;
}

MissRatioCurve::MissRatioCurve(
    std::vector<RefCount> sorted_reuse_distances, double dangling,
    std::shared_ptr<const StackDistanceSolver> solver)
    : reuse_distances_(std::move(sorted_reuse_distances)),
      dangling_(dangling),
      solver_(std::move(solver)) {
  samples_ = static_cast<double>(reuse_distances_.size()) + dangling_;
}

double MissRatioCurve::miss_ratio_lines(std::uint64_t cache_lines) const {
  if (samples_ <= 0.0) return 0.0;
  const RefCount threshold =
      solver_->reuse_distance_for(static_cast<double>(cache_lines));
  double misses = dangling_;
  if (threshold != kInfiniteDistance) {
    auto it = std::lower_bound(reuse_distances_.begin(),
                               reuse_distances_.end(), threshold);
    misses += static_cast<double>(reuse_distances_.end() - it);
  }
  return misses / samples_;
}

StatStack::StatStack(const Profile& profile)
    : StatStack(profile, nullptr, nullptr) {}

StatStack::StatStack(const Profile& profile,
                     const engine::Executor* executor,
                     engine::ArtifactStore* store) {
  Histogram finite;
  for (const ReuseSample& s : profile.reuse_samples) {
    finite.add(s.distance);
  }
  solver_ = std::make_shared<StackDistanceSolver>(
      finite, static_cast<double>(profile.dangling_reuse_samples));

  // Group reuse distances by the reusing (second) PC: each sample is an
  // unbiased observation of one execution of that PC. With a store, hot
  // PCs keep their dense index across windowed solves and the grouping
  // buffers keep their capacity — steady-state windows allocate nothing.
  engine::ArtifactStore local;
  engine::ArtifactStore& arena = store != nullptr ? *store : local;
  arena.clear();
  engine::PcInterner& table = arena.pc_table();

  for (const ReuseSample& s : profile.reuse_samples) {
    table.intern(s.second_pc);
  }
  // Dangling samples join the curve of their sampled PC (see
  // Profile::dangling_by_pc); PCs with only dangling samples still get a
  // curve (pure streaming with no observed reuse at all).
  for (const auto& [pc, count] : profile.dangling_by_pc) {
    (void)count;
    table.intern(pc);
  }
  std::vector<engine::ArenaVector<RefCount>>& groups =
      arena.reuse_groups(table.size());
  std::vector<std::uint32_t>& touched = arena.touched_pcs();

  std::vector<RefCount> all;
  all.reserve(profile.reuse_samples.size());
  for (const ReuseSample& s : profile.reuse_samples) {
    const std::uint32_t id = table.index_of(s.second_pc);
    if (groups[id].empty()) touched.push_back(id);
    groups[id].push_back(s.distance);
    all.push_back(s.distance);
  }

  std::sort(all.begin(), all.end());
  application_ = MissRatioCurve(
      std::move(all), static_cast<double>(profile.dangling_reuse_samples),
      solver_);

  pcs_.reserve(touched.size() + profile.dangling_by_pc.size());
  for (const std::uint32_t id : touched) pcs_.push_back(table.pc_of(id));
  for (const auto& [pc, count] : profile.dangling_by_pc) {
    (void)count;
    if (groups[table.index_of(pc)].empty()) pcs_.push_back(pc);
  }
  std::sort(pcs_.begin(), pcs_.end());

  // Per-PC curve construction is embarrassingly parallel: unit i owns
  // exactly pcs_[i]'s group and curves[i], and the serial emplace below
  // runs in sorted-PC order — the model is byte-identical at any worker
  // count.
  std::vector<MissRatioCurve> curves(pcs_.size());
  const auto build = [&](std::size_t i) {
    const Pc pc = pcs_[i];
    engine::ArenaVector<RefCount>& distances = groups[table.index_of(pc)];
    std::sort(distances.begin(), distances.end());
    double dangling = 0.0;
    auto it = profile.dangling_by_pc.find(pc);
    if (it != profile.dangling_by_pc.end()) {
      dangling = static_cast<double>(it->second);
    }
    curves[i] = MissRatioCurve(
        std::vector<RefCount>(distances.begin(), distances.end()), dangling,
        solver_);
  };
  if (executor != nullptr) {
    // Annotate each unit with the group buffer it is about to sort: the
    // dispatcher prefetches unit i+1's samples (T0 — the sort walks them
    // repeatedly) while unit i runs.
    const engine::HintFn hint = [&](std::size_t i) {
      const engine::ArenaVector<RefCount>& distances =
          groups[table.index_of(pcs_[i])];
      return engine::ResourceHint{distances.data(),
                                  distances.size() * sizeof(RefCount),
                                  engine::PrefetchMode::kT0};
    };
    executor->for_each(pcs_.size(), build, nullptr, &hint);
  } else {
    for (std::size_t i = 0; i < pcs_.size(); ++i) build(i);
  }

  per_pc_.reserve(pcs_.size());
  for (std::size_t i = 0; i < pcs_.size(); ++i) {
    per_pc_.emplace(pcs_[i], std::move(curves[i]));
  }
}

const MissRatioCurve& StatStack::pc_mrc(Pc pc) const {
  auto it = per_pc_.find(pc);
  return it == per_pc_.end() ? empty_ : it->second;
}

double StatStack::estimated_misses(Pc pc, std::uint64_t cache_lines,
                                   const Profile& profile) const {
  return pc_mrc(pc).miss_ratio_lines(cache_lines) *
         static_cast<double>(profile.executions_of(pc));
}

}  // namespace re::core
