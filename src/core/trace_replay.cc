#include "core/trace_replay.hh"

#include "workloads/cursor.hh"

namespace re::core {

std::uint64_t replay_program(const workloads::Program& program,
                             const TraceObserver& observer,
                             std::uint64_t max_refs) {
  workloads::ProgramCursor cursor(program);
  std::uint64_t refs = 0;
  while (refs < max_refs) {
    auto event = cursor.next();
    if (!event) break;
    observer(event->inst->pc, event->addr);
    ++refs;
  }
  return refs;
}

}  // namespace re::core
