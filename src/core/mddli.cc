#include "core/mddli.hh"

#include <algorithm>

namespace re::core {

double average_miss_latency(const sim::MachineConfig& machine, double mr_l1,
                            double mr_l2, double mr_llc) {
  if (mr_l1 <= 0.0) return 0.0;
  // Clamp to a consistent nesting (modeled curves are monotone by
  // construction, but guard against degenerate inputs).
  mr_l2 = std::min(mr_l2, mr_l1);
  mr_llc = std::min(mr_llc, mr_l2);

  const double served_l2 = (mr_l1 - mr_l2) / mr_l1;
  const double served_llc = (mr_l2 - mr_llc) / mr_l1;
  const double served_dram = mr_llc / mr_l1;
  return served_l2 * static_cast<double>(machine.l2_latency) +
         served_llc * static_cast<double>(machine.llc_latency) +
         served_dram * static_cast<double>(machine.dram_latency);
}

std::vector<DelinquentLoad> identify_delinquent_loads(
    const StatStack& model, const Profile& profile,
    const sim::MachineConfig& machine, const MddliOptions& options) {
  std::vector<DelinquentLoad> out;
  for (Pc pc : model.sampled_pcs()) {
    const MissRatioCurve& mrc = model.pc_mrc(pc);
    if (mrc.sample_count() < static_cast<double>(options.min_samples)) {
      continue;
    }

    DelinquentLoad load;
    load.pc = pc;
    load.l1_miss_ratio = mrc.miss_ratio_bytes(machine.l1.size_bytes);
    load.l2_miss_ratio = mrc.miss_ratio_bytes(machine.l2.size_bytes);
    load.llc_miss_ratio = mrc.miss_ratio_bytes(options.llc_effective_bytes
                                                   ? options.llc_effective_bytes
                                                   : machine.llc.size_bytes);
    load.avg_miss_latency = average_miss_latency(
        machine, load.l1_miss_ratio, load.l2_miss_ratio, load.llc_miss_ratio);
    load.estimated_l1_misses =
        load.l1_miss_ratio * static_cast<double>(profile.executions_of(pc));

    // The paper's cost-benefit test: a prefetch executed on every dynamic
    // instance costs alpha; it pays off only if misses are frequent enough
    // that the removed latency exceeds that cost.
    if (load.avg_miss_latency <= 0.0) continue;
    if (load.l1_miss_ratio > options.alpha / load.avg_miss_latency) {
      out.push_back(load);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DelinquentLoad& a, const DelinquentLoad& b) {
              if (a.estimated_l1_misses != b.estimated_l1_misses) {
                return a.estimated_l1_misses > b.estimated_l1_misses;
              }
              return a.pc < b.pc;
            });
  return out;
}

}  // namespace re::core
