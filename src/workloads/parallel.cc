#include "workloads/parallel.hh"

#include <stdexcept>

#include "workloads/mix.hh"

namespace re::workloads {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

std::uint64_t shard_seed(const std::string& name, int shard) {
  std::uint64_t h = 0x84222325cbf29ce4ULL;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x1b3ULL;
  return mix64(h ^ static_cast<std::uint64_t>(shard + 1));
}

/// 64 MB region with a pseudo-random set stagger (see suite.cc).
Addr region_base(std::uint64_t region) {
  return (region << 26) + (mix64(region ^ 0x5eedULL) % 16384) * kLineSize;
}

StaticInst make_inst(Pc pc, AccessPattern pattern, std::uint32_t compute,
                     bool serial = false) {
  StaticInst si;
  si.pc = pc;
  si.pattern = std::move(pattern);
  si.compute_cycles = compute;
  si.serial_dependent = serial;
  return si;
}

std::uint64_t per_thread(std::uint64_t total, int threads) {
  return total / static_cast<std::uint64_t>(threads);
}

/// swim — shallow-water stencil: several strided field sweeps, very little
/// compute per element. The highest-bandwidth SPEC OMP code; saturates the
/// channel at 4 threads.
Program make_swim_shard(int shard, int threads) {
  const std::uint64_t field = per_thread(3 * MB, threads);
  Program p;
  p.name = "swim";
  p.seed = shard_seed("swim", shard);
  Loop loop;
  loop.iterations = per_thread(360000, threads);
  for (Pc pc = 1; pc <= 4; ++pc) {
    loop.body.push_back(
        make_inst(pc, StreamPattern{region_base(pc), 16, field}, 2));
  }
  loop.body.push_back(make_inst(5, GatherPattern{region_base(5), 2 * KB, 8}, 2));
  p.loops.push_back(std::move(loop));
  rebase_program(p, core_address_offset(shard));
  return p;
}

/// cg — NAS conjugate gradient: sparse matrix-vector product, a value
/// stream plus an indexed gather; bandwidth-bound at scale.
Program make_cg_shard(int shard, int threads) {
  const std::uint64_t matrix = per_thread(2 * MB, threads);
  Program p;
  p.name = "cg";
  p.seed = shard_seed("cg", shard);
  Loop loop;
  loop.iterations = per_thread(400000, threads);
  loop.body.push_back(
      make_inst(1, StreamPattern{region_base(1), 16, matrix}, 2));        // a[k]
  loop.body.push_back(
      make_inst(2, StreamPattern{region_base(2), 8, matrix / 2}, 2));     // colidx
  loop.body.push_back(
      make_inst(3, GatherPattern{region_base(3), 512 * KB, 8}, 2));       // x[col]
  loop.body.push_back(make_inst(4, GatherPattern{region_base(4), 2 * KB, 8}, 2));
  p.loops.push_back(std::move(loop));
  rebase_program(p, core_address_offset(shard));
  return p;
}

/// fma3d — crash simulation: element-local compute dominates; the working
/// set per element batch mostly fits in L2, so off-chip demand is modest.
Program make_fma3d_shard(int shard, int threads) {
  Program p;
  p.name = "fma3d";
  p.seed = shard_seed("fma3d", shard);
  Loop loop;
  loop.iterations = per_thread(280000, threads);
  loop.body.push_back(make_inst(
      1, StreamPattern{region_base(1), 32, per_thread(768 * KB, threads)}, 14));
  loop.body.push_back(make_inst(2, GatherPattern{region_base(2), 4 * KB, 8}, 12));
  loop.body.push_back(make_inst(3, GatherPattern{region_base(3), 2 * KB, 8}, 12));
  p.loops.push_back(std::move(loop));
  rebase_program(p, core_address_offset(shard));
  return p;
}

/// dc — data-mining style: hash-bucket gathers over a mostly cache-resident
/// index with heavy per-record compute; compute-bound.
Program make_dc_shard(int shard, int threads) {
  Program p;
  p.name = "dc";
  p.seed = shard_seed("dc", shard);
  Loop loop;
  loop.iterations = per_thread(300000, threads);
  loop.body.push_back(
      make_inst(1, GatherPattern{region_base(1), 256 * KB, 64}, 10));
  loop.body.push_back(make_inst(2, GatherPattern{region_base(2), 4 * KB, 8}, 10));
  loop.body.push_back(make_inst(3, GatherPattern{region_base(3), 2 * KB, 8}, 10));
  p.loops.push_back(std::move(loop));
  rebase_program(p, core_address_offset(shard));
  return p;
}

}  // namespace

const std::vector<std::string>& parallel_names() {
  static const std::vector<std::string> names = {"swim", "cg", "fma3d", "dc"};
  return names;
}

bool parallel_is_bandwidth_bound(const std::string& name) {
  return name == "swim" || name == "cg";
}

std::vector<Program> make_parallel(const std::string& name, int threads) {
  if (threads <= 0) throw std::invalid_argument("threads must be positive");
  std::vector<Program> shards;
  shards.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    if (name == "swim") {
      shards.push_back(make_swim_shard(t, threads));
    } else if (name == "cg") {
      shards.push_back(make_cg_shard(t, threads));
    } else if (name == "fma3d") {
      shards.push_back(make_fma3d_shard(t, threads));
    } else if (name == "dc") {
      shards.push_back(make_dc_shard(t, threads));
    } else {
      throw std::out_of_range("unknown parallel workload: " + name);
    }
  }
  return shards;
}

}  // namespace re::workloads
