// Synthetic models of the paper's 12 evaluated benchmarks.
//
// Each model reproduces the *memory-behaviour class* of its namesake — the
// property Table I and Figures 4-11 actually depend on: how much of the miss
// stream comes from regular-strided loads (prefetchable), how much from
// pointer chasing or gathers (not prefetchable), total footprint relative to
// the LLC, and whether prefetched data is reused out of higher cache levels
// (the NT-bypass opportunity). See DESIGN.md §2 for the substitution
// rationale.
//
// Two input sets are provided per benchmark (paper Section VII-D): the
// Reference input used for profiling, and an Alternate input with different
// footprints and loop counts used to test the stability of the inserted
// prefetches.
#pragma once

#include <string>
#include <vector>

#include "workloads/program.hh"

namespace re::workloads {

enum class InputSet { Reference, Alternate };

/// Names of the 12 evaluated benchmarks, in the paper's Table I order.
const std::vector<std::string>& suite_names();

/// Build the model of one benchmark. Throws std::out_of_range for unknown
/// names.
Program make_benchmark(const std::string& name,
                       InputSet input = InputSet::Reference);

/// Build the whole suite in Table I order.
std::vector<Program> make_suite(InputSet input = InputSet::Reference);

}  // namespace re::workloads
