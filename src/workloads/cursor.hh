// Sequential walker over a trace program.
//
// ProgramCursor yields one memory access per next() call, in program order,
// maintaining per-static-instruction pattern state. Both the profiler
// (functional iteration) and the simulator's core model (timed execution)
// drive a cursor, so the two always observe the identical access stream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/types.hh"
#include "workloads/program.hh"

namespace re::workloads {

/// One dynamic memory access produced by the cursor.
struct AccessEvent {
  const StaticInst* inst = nullptr;
  Addr addr = 0;
};

class ProgramCursor {
 public:
  explicit ProgramCursor(const Program& program);
  // The cursor keeps a reference to the program; binding a temporary would
  // dangle as soon as the full-expression ends.
  explicit ProgramCursor(Program&&) = delete;

  /// Next access of the current run; std::nullopt when one full run (all
  /// loops times outer_reps) has completed. After nullopt, the cursor
  /// automatically rewinds so the next call starts a fresh run.
  std::optional<AccessEvent> next();

  /// Restart from the beginning (fresh pattern state).
  void reset();

  /// Dynamic references completed in the current run.
  std::uint64_t references_done() const { return refs_done_; }

  const Program& program() const { return *program_; }

 private:
  const Program* program_;
  std::vector<std::vector<PatternState>> state_;  // [loop][body index]
  std::vector<std::vector<std::uint64_t>> seeds_;  // per-inst seeds
  std::uint64_t rep_ = 0;
  std::size_t loop_ = 0;
  std::uint64_t iter_ = 0;
  std::size_t inst_ = 0;
  std::uint64_t refs_done_ = 0;
  bool finished_ = false;

  void skip_empty_loops();
};

}  // namespace re::workloads
