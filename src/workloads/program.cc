#include "workloads/program.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace re::workloads {

namespace {

Addr wrap(Addr base, std::int64_t offset, std::uint64_t footprint) {
  if (footprint == 0) return base;
  // Proper Euclidean modulo so negative strides walk backwards through the
  // footprint instead of underflowing.
  std::int64_t m = offset % static_cast<std::int64_t>(footprint);
  if (m < 0) m += static_cast<std::int64_t>(footprint);
  return base + static_cast<Addr>(m);
}

struct PatternVisitor {
  PatternState& state;
  std::uint64_t seed;

  Addr operator()(const StreamPattern& p) const {
    const std::uint64_t i = state.iteration++;
    return wrap(p.base, p.stride * static_cast<std::int64_t>(i), p.footprint);
  }

  Addr operator()(const StridedPattern& p) const {
    const std::uint64_t i = state.iteration++;
    if (p.irregular_ppm > 0 &&
        mix64(seed ^ (i * 0x9e3779b97f4a7c15ULL)) % 1000000 < p.irregular_ppm) {
      // Restart the stream at a pseudo-random origin within the footprint.
      state.walk_state = mix64(seed ^ i) % (p.footprint ? p.footprint : 1);
    }
    return wrap(p.base + state.walk_state,
                p.stride * static_cast<std::int64_t>(i), p.footprint);
  }

  Addr operator()(const PointerChasePattern& p) const {
    ++state.iteration;
    std::uint64_t x = state.walk_state ^ seed;
    // xorshift64 walk; every step lands on a node-aligned slot.
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state.walk_state = x;
    const std::uint64_t slots =
        p.footprint / (p.node_size ? p.node_size : 1);
    if (slots == 0) return p.base;
    return p.base + (x % slots) * p.node_size;
  }

  Addr operator()(const GatherPattern& p) const {
    const std::uint64_t i = state.iteration++;
    const std::uint64_t slots =
        p.footprint / (p.element_size ? p.element_size : 1);
    if (slots == 0) return p.base;
    return p.base + (mix64(seed ^ i) % slots) * p.element_size;
  }

  Addr operator()(const ShortStreamPattern& p) const {
    const std::uint64_t i = state.iteration++;
    const std::uint64_t run = i / p.stream_len;
    const std::uint64_t pos = i % p.stream_len;
    const std::uint64_t origin =
        p.footprint ? mix64(seed ^ (run * 0x2545f4914f6cdd1dULL)) % p.footprint
                    : 0;
    return wrap(p.base + origin, p.stride * static_cast<std::int64_t>(pos),
                p.footprint);
  }

  Addr operator()(const HotBufferPattern& p) const {
    const std::uint64_t i = state.iteration++;
    return wrap(p.base, p.stride * static_cast<std::int64_t>(i), p.footprint);
  }

  Addr operator()(const BlockedPattern& p) const {
    const std::uint64_t i = state.iteration++;
    const std::uint64_t stride_mag = static_cast<std::uint64_t>(
        p.stride < 0 ? -p.stride : p.stride);
    const std::uint64_t elems =
        stride_mag ? std::max<std::uint64_t>(1, p.block_bytes / stride_mag)
                   : 1;
    const std::uint64_t pos = i % elems;
    const std::uint64_t sweep = i / elems;
    const std::uint64_t block =
        sweep / std::max<std::uint32_t>(1, p.revisits);
    const Addr block_off =
        p.footprint ? (block * p.block_bytes) % p.footprint : 0;
    return wrap(p.base + block_off,
                p.stride * static_cast<std::int64_t>(pos), p.block_bytes);
  }
};

}  // namespace

Addr next_address(const AccessPattern& pattern, PatternState& state,
                  std::uint64_t seed) {
  return std::visit(PatternVisitor{state, seed}, pattern);
}

bool pattern_is_regular(const AccessPattern& pattern) {
  return std::visit(
      [](const auto& p) -> bool {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, StreamPattern> ||
                      std::is_same_v<T, HotBufferPattern>) {
          return true;
        } else if constexpr (std::is_same_v<T, StridedPattern>) {
          return p.irregular_ppm < 300000;  // dominant stride survives jumps
        } else if constexpr (std::is_same_v<T, ShortStreamPattern>) {
          return p.stream_len >= 4;  // intra-run stride dominates
        } else {
          return false;
        }
      },
      pattern);
}

std::uint64_t pattern_footprint(const AccessPattern& pattern) {
  return std::visit([](const auto& p) -> std::uint64_t { return p.footprint; },
                    pattern);
}

std::uint64_t Program::total_references() const {
  std::uint64_t refs = 0;
  for (const Loop& loop : loops) {
    refs += loop.iterations * loop.body.size();
  }
  return refs * outer_reps;
}

std::uint64_t Program::executions_of(Pc pc) const {
  std::uint64_t count = 0;
  for (const Loop& loop : loops) {
    for (const StaticInst& inst : loop.body) {
      if (inst.pc == pc) count += loop.iterations;
    }
  }
  return count * outer_reps;
}

const StaticInst* Program::find(Pc pc) const {
  for (const Loop& loop : loops) {
    for (const StaticInst& inst : loop.body) {
      if (inst.pc == pc) return &inst;
    }
  }
  return nullptr;
}

StaticInst* Program::find(Pc pc) {
  return const_cast<StaticInst*>(std::as_const(*this).find(pc));
}

std::size_t Program::static_instruction_count() const {
  std::size_t count = 0;
  for (const Loop& loop : loops) count += loop.body.size();
  return count;
}

}  // namespace re::workloads
