// Text format for trace programs ("assembler level" representation).
//
// The paper's framework operates on assembler output so optimizations apply
// without source access. The analogue here is a small text DSL: any
// workload can be dumped to text, edited, re-parsed and optimized; the
// optimizer's output can be printed as an annotated listing showing the
// inserted `prefetch{t0,nta} distance(base)` operations.
//
//   # stream benchmark
//   program demo seed=42 reps=4
//   loop 22000 {
//     pc1: stream base=0x4000000 stride=16 footprint=768K compute=2
//     pc2: chase  base=0x8000000 footprint=640K node=64 compute=3 serial
//     pc3: gather base=0xC000000 footprint=2K element=8 compute=2
//   }
//
// Pattern forms:
//   stream      base stride footprint
//   strided     base stride footprint irregular(=ppm)
//   chase       base footprint node
//   gather      base footprint element
//   shortstream base stride len footprint
//   hot         base stride footprint
// Optional per-instruction suffixes: `serial`, `store`, and an attached
// prefetch
//   `; prefetcht0 +256` / `; prefetchnta -128`.
// Sizes accept K/M suffixes; addresses accept 0x hex.
#pragma once

#include <stdexcept>
#include <string>

#include "workloads/program.hh"

namespace re::workloads {

/// Parse error with 1-based line number context.
class DslParseError : public std::runtime_error {
 public:
  DslParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a program from DSL text. Throws DslParseError on malformed input.
Program parse_program(const std::string& text);

/// Render a program as DSL text; parse_program(print_program(p)) is
/// structurally identical to p (round-trip property).
std::string print_program(const Program& program);

}  // namespace re::workloads
