// Trace-program intermediate representation.
//
// A workload is modeled as a loop-nest program over *static* memory
// instructions. Each static instruction owns a deterministic address
// generator (its "access pattern"). This IR serves three purposes:
//
//  1. The simulator executes it (sim::CoreRunner) to produce timing.
//  2. The profiler iterates it functionally to feed the sampler.
//  3. The optimizer *rewrites* it by attaching prefetch operations to
//     individual static instructions — the simulator analogue of the paper's
//     assembler/binary-level `prefetch[nta] distance(base)` insertion.
//
// Patterns are deterministic functions of (per-instruction seed, iteration
// state), so re-running a program always produces the identical access
// stream, and "input sets" are just different generator parameters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/types.hh"

namespace re::workloads {

// ---------------------------------------------------------------------------
// Access patterns
// ---------------------------------------------------------------------------

/// Sequential streaming: addr = base + (stride * i) % footprint.
/// Classic libquantum/lbm behaviour; perfectly stride-prefetchable.
struct StreamPattern {
  Addr base = 0;
  std::int64_t stride = 8;
  std::uint64_t footprint = 1 << 20;  // bytes; wraps around
};

/// Mostly-regular stride with occasional pseudo-random jumps.
/// `irregular_ppm` accesses per million restart the stream at a new origin.
struct StridedPattern {
  Addr base = 0;
  std::int64_t stride = 8;
  std::uint64_t footprint = 1 << 20;
  std::uint32_t irregular_ppm = 0;  // jumps per million accesses
};

/// Pointer chasing: each address is a pseudo-random function of the previous
/// one (xorshift walk over the footprint). No regular stride exists, which is
/// exactly what makes mcf/omnetpp hard to prefetch.
struct PointerChasePattern {
  Addr base = 0;
  std::uint64_t footprint = 1 << 20;
  std::uint32_t node_size = 64;  // alignment of node addresses
};

/// Uniformly pseudo-random accesses over the footprint (hash of the
/// iteration index). Models gather-style sparse access.
struct GatherPattern {
  Addr base = 0;
  std::uint64_t footprint = 1 << 20;
  std::uint32_t element_size = 8;
};

/// Many short streams: runs of `stream_len` strided accesses, each run
/// starting at a pseudo-random origin. Models cigar's short-lived strided
/// accesses that trick hardware stream prefetchers into overfetching.
struct ShortStreamPattern {
  Addr base = 0;
  std::int64_t stride = 8;
  std::uint32_t stream_len = 16;
  std::uint64_t footprint = 1 << 22;
};

/// Strided sweep over a small working set that fits in some cache level:
/// addr = base + (stride * i) % footprint, identical to StreamPattern but
/// kept distinct so workloads can tag "hot" structures for readability.
struct HotBufferPattern {
  Addr base = 0;
  std::int64_t stride = 8;
  std::uint64_t footprint = 32 << 10;
};

/// Tiled (cache-blocked) traversal: the footprint is split into consecutive
/// blocks of `block_bytes`; each block is swept `revisits` times in
/// stride-sized steps before the walk advances to the next block (wrapping
/// at the footprint). Models blocked kernels whose data reuse lives at the
/// block size, not the footprint — the classic reason an MRC has a knee.
struct BlockedPattern {
  Addr base = 0;
  std::int64_t stride = 64;
  std::uint64_t block_bytes = 16 << 10;
  std::uint64_t footprint = 1 << 20;
  std::uint32_t revisits = 4;  // sweeps per block before advancing
};

using AccessPattern =
    std::variant<StreamPattern, StridedPattern, PointerChasePattern,
                 GatherPattern, ShortStreamPattern, HotBufferPattern,
                 BlockedPattern>;

/// Runtime iteration state of one static instruction's pattern.
struct PatternState {
  std::uint64_t iteration = 0;
  std::uint64_t walk_state = 0;  // for PointerChase / ShortStream origins
};

/// Generate the next address for `pattern`, advancing `state`.
/// `seed` decorrelates instructions that share a pattern type.
Addr next_address(const AccessPattern& pattern, PatternState& state,
                  std::uint64_t seed);

/// True if the pattern has a dominant compile-time-ish stride (used only by
/// tests to cross-check the stride analysis, never by the optimizer).
bool pattern_is_regular(const AccessPattern& pattern);

/// Bytes touched by the pattern (footprint), for documentation/stats.
std::uint64_t pattern_footprint(const AccessPattern& pattern);

// ---------------------------------------------------------------------------
// Program structure
// ---------------------------------------------------------------------------

/// x86 prefetch hint levels. T0 fills every level (the paper's ordinary
/// "prefetch"); T1/T2 fill from the L2/LLC down, leaving upper levels
/// untouched; NTA fills the L1 only and never pollutes the shared levels
/// (the paper's PREFETCHNTA cache bypassing).
enum class PrefetchHint : std::uint8_t { T0, T1, T2, NTA };

/// A software prefetch attached to a static load by the optimizer.
/// Semantics: after the load executes with address A, issue
/// `prefetch{t0,t1,t2,nta} (A + distance_bytes)` at a cost of one cycle.
struct PrefetchOp {
  std::int64_t distance_bytes = 0;
  PrefetchHint hint = PrefetchHint::T0;

  bool non_temporal() const { return hint == PrefetchHint::NTA; }
};

/// One static memory instruction inside a loop body.
struct StaticInst {
  Pc pc = 0;
  AccessPattern pattern;
  /// Non-memory work (cycles) the core performs after this access; models
  /// the compute portion of the loop body.
  std::uint32_t compute_cycles = 0;
  /// True for loads on a serial dependence chain (pointer chasing): the
  /// core cannot overlap their miss latency with other work.
  bool serial_dependent = false;
  /// True for stores: write-allocate, marks the line dirty; dirty evictions
  /// cost writeback bandwidth on the shared channel.
  bool is_store = false;
  /// Filled in by the prefetch-insertion pass; absent in original programs.
  std::optional<PrefetchOp> prefetch;
};

/// A loop: its body executes `iterations` times, instructions in order.
struct Loop {
  std::vector<StaticInst> body;
  std::uint64_t iterations = 0;
};

/// A whole workload: loops run in sequence; the sequence repeats
/// `outer_reps` times (modeling an outer timestep/phase loop).
struct Program {
  std::string name;
  std::vector<Loop> loops;
  std::uint64_t outer_reps = 1;
  /// Seed decorrelating this program's pseudo-random patterns.
  std::uint64_t seed = 1;

  /// Total dynamic memory references of one full run.
  std::uint64_t total_references() const;

  /// Total dynamic executions of the given static instruction per full run.
  std::uint64_t executions_of(Pc pc) const;

  /// Pointer to the instruction with this PC (nullptr if absent).
  const StaticInst* find(Pc pc) const;
  StaticInst* find(Pc pc);

  /// Number of static memory instructions.
  std::size_t static_instruction_count() const;
};

/// Deterministic 64-bit mix hash used by the pattern generators.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace re::workloads
