// Mixed-workload generation (the paper's Section VII-C): random 4-app mixes
// drawn from the 12-benchmark suite, plus address rebasing so that identical
// benchmarks on different cores do not alias in the shared LLC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/program.hh"
#include "workloads/suite.hh"

namespace re::workloads {

struct MixSpec {
  std::vector<std::string> apps;  // kNumCores entries
};

/// Generate `count` random mixes of `apps_per_mix` benchmarks each,
/// deterministically from `seed`. Matches the paper's 180 randomly
/// generated 4-app mixes.
std::vector<MixSpec> generate_mixes(int count, int apps_per_mix,
                                    std::uint64_t seed);

/// Shift every pattern base address in `program` by `offset`; used to give
/// each core a disjoint address space within a mix.
void rebase_program(Program& program, Addr offset);

/// Per-core base offset used by mix construction (1 TB apart).
inline Addr core_address_offset(int core) {
  return static_cast<Addr>(core) << 40;
}

}  // namespace re::workloads
