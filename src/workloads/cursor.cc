#include "workloads/cursor.hh"

namespace re::workloads {

ProgramCursor::ProgramCursor(const Program& program) : program_(&program) {
  state_.resize(program.loops.size());
  seeds_.resize(program.loops.size());
  for (std::size_t l = 0; l < program.loops.size(); ++l) {
    state_[l].resize(program.loops[l].body.size());
    seeds_[l].resize(program.loops[l].body.size());
    for (std::size_t i = 0; i < program.loops[l].body.size(); ++i) {
      seeds_[l][i] = mix64(program.seed ^ (program.loops[l].body[i].pc *
                                           0x9e3779b97f4a7c15ULL));
      // Distinct initial walk state per instruction so pointer chases over
      // the same footprint do not follow identical paths.
      state_[l][i].walk_state = seeds_[l][i] | 1;
    }
  }
  skip_empty_loops();
}

void ProgramCursor::skip_empty_loops() {
  while (loop_ < program_->loops.size() &&
         (program_->loops[loop_].body.empty() ||
          program_->loops[loop_].iterations == 0)) {
    ++loop_;
  }
  if (loop_ >= program_->loops.size()) {
    ++rep_;
    loop_ = 0;
    if (rep_ >= program_->outer_reps || program_->loops.empty()) {
      finished_ = true;
      return;
    }
    skip_empty_loops();
  }
}

std::optional<AccessEvent> ProgramCursor::next() {
  if (finished_) {
    reset();
    return std::nullopt;
  }

  const Loop& loop = program_->loops[loop_];
  const StaticInst& inst = loop.body[inst_];
  AccessEvent event;
  event.inst = &inst;
  event.addr = next_address(inst.pattern, state_[loop_][inst_],
                            seeds_[loop_][inst_]);
  ++refs_done_;

  if (++inst_ >= loop.body.size()) {
    inst_ = 0;
    if (++iter_ >= loop.iterations) {
      iter_ = 0;
      ++loop_;
      skip_empty_loops();
    }
  }
  return event;
}

void ProgramCursor::reset() {
  for (std::size_t l = 0; l < state_.size(); ++l) {
    for (std::size_t i = 0; i < state_[l].size(); ++i) {
      state_[l][i] = PatternState{};
      state_[l][i].walk_state = seeds_[l][i] | 1;
    }
  }
  rep_ = 0;
  loop_ = 0;
  iter_ = 0;
  inst_ = 0;
  refs_done_ = 0;
  finished_ = false;
  skip_empty_loops();
}

}  // namespace re::workloads
