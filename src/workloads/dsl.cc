#include "workloads/dsl.hh"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace re::workloads {

namespace {

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;  // comment to end of line
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else if (c == '{' || c == '}' || c == ';') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      tokens.push_back(std::string(1, c));
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::uint64_t parse_size(const std::string& text, int line) {
  if (text.empty()) throw DslParseError(line, "empty number");
  std::uint64_t multiplier = 1;
  std::string digits = text;
  const char suffix = digits.back();
  if (suffix == 'K' || suffix == 'k') {
    multiplier = 1024;
    digits.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    multiplier = 1024 * 1024;
    digits.pop_back();
  }
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(digits, &used, 0);
    if (used != digits.size()) {
      throw DslParseError(line, "trailing characters in number: " + text);
    }
    return value * multiplier;
  } catch (const DslParseError&) {
    throw;
  } catch (const std::exception&) {
    throw DslParseError(line, "bad number: " + text);
  }
}

std::int64_t parse_signed(const std::string& text, int line) {
  if (!text.empty() && text[0] == '-') {
    return -static_cast<std::int64_t>(parse_size(text.substr(1), line));
  }
  if (!text.empty() && text[0] == '+') {
    return static_cast<std::int64_t>(parse_size(text.substr(1), line));
  }
  return static_cast<std::int64_t>(parse_size(text, line));
}

/// key=value fields of an instruction line.
using Fields = std::map<std::string, std::string>;

std::uint64_t field_size(const Fields& fields, const std::string& key,
                         int line) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    throw DslParseError(line, "missing field: " + key);
  }
  return parse_size(it->second, line);
}

std::int64_t field_signed(const Fields& fields, const std::string& key,
                          int line) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    throw DslParseError(line, "missing field: " + key);
  }
  return parse_signed(it->second, line);
}

std::uint64_t field_size_or(const Fields& fields, const std::string& key,
                            std::uint64_t fallback, int line) {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : parse_size(it->second, line);
}

AccessPattern parse_pattern(const std::string& kind, const Fields& fields,
                            int line) {
  const Addr base = field_size_or(fields, "base", 0, line);
  if (kind == "stream") {
    return StreamPattern{base, field_signed(fields, "stride", line),
                         field_size(fields, "footprint", line)};
  }
  if (kind == "strided") {
    return StridedPattern{
        base, field_signed(fields, "stride", line),
        field_size(fields, "footprint", line),
        static_cast<std::uint32_t>(
            field_size_or(fields, "irregular", 0, line))};
  }
  if (kind == "chase") {
    return PointerChasePattern{
        base, field_size(fields, "footprint", line),
        static_cast<std::uint32_t>(field_size_or(fields, "node", 64, line))};
  }
  if (kind == "gather") {
    return GatherPattern{
        base, field_size(fields, "footprint", line),
        static_cast<std::uint32_t>(
            field_size_or(fields, "element", 8, line))};
  }
  if (kind == "shortstream") {
    return ShortStreamPattern{
        base, field_signed(fields, "stride", line),
        static_cast<std::uint32_t>(field_size(fields, "len", line)),
        field_size(fields, "footprint", line)};
  }
  if (kind == "hot") {
    return HotBufferPattern{base, field_signed(fields, "stride", line),
                            field_size(fields, "footprint", line)};
  }
  if (kind == "blocked") {
    return BlockedPattern{
        base, field_signed(fields, "stride", line),
        field_size(fields, "block", line),
        field_size(fields, "footprint", line),
        static_cast<std::uint32_t>(
            field_size_or(fields, "revisits", 1, line))};
  }
  throw DslParseError(line, "unknown pattern kind: " + kind);
}

PrefetchHint parse_hint(const std::string& mnemonic, int line) {
  if (mnemonic == "prefetcht0") return PrefetchHint::T0;
  if (mnemonic == "prefetcht1") return PrefetchHint::T1;
  if (mnemonic == "prefetcht2") return PrefetchHint::T2;
  if (mnemonic == "prefetchnta") return PrefetchHint::NTA;
  throw DslParseError(line, "unknown prefetch mnemonic: " + mnemonic);
}

const char* hint_name(PrefetchHint hint) {
  switch (hint) {
    case PrefetchHint::T0: return "prefetcht0";
    case PrefetchHint::T1: return "prefetcht1";
    case PrefetchHint::T2: return "prefetcht2";
    case PrefetchHint::NTA: return "prefetchnta";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Printing helpers
// ---------------------------------------------------------------------------

std::string size_str(std::uint64_t value) {
  char buf[32];
  if (value >= (1ULL << 20) && value % (1ULL << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(value >> 20));
  } else if (value >= 1024 && value % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(value >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buf;
}

std::string base_str(Addr base) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(base));
  return buf;
}

struct PatternPrinter {
  std::ostringstream& out;

  void operator()(const StreamPattern& p) const {
    out << "stream base=" << base_str(p.base) << " stride=" << p.stride
        << " footprint=" << size_str(p.footprint);
  }
  void operator()(const StridedPattern& p) const {
    out << "strided base=" << base_str(p.base) << " stride=" << p.stride
        << " footprint=" << size_str(p.footprint)
        << " irregular=" << p.irregular_ppm;
  }
  void operator()(const PointerChasePattern& p) const {
    out << "chase base=" << base_str(p.base)
        << " footprint=" << size_str(p.footprint) << " node=" << p.node_size;
  }
  void operator()(const GatherPattern& p) const {
    out << "gather base=" << base_str(p.base)
        << " footprint=" << size_str(p.footprint)
        << " element=" << p.element_size;
  }
  void operator()(const ShortStreamPattern& p) const {
    out << "shortstream base=" << base_str(p.base) << " stride=" << p.stride
        << " len=" << p.stream_len << " footprint=" << size_str(p.footprint);
  }
  void operator()(const HotBufferPattern& p) const {
    out << "hot base=" << base_str(p.base) << " stride=" << p.stride
        << " footprint=" << size_str(p.footprint);
  }
  void operator()(const BlockedPattern& p) const {
    out << "blocked base=" << base_str(p.base) << " stride=" << p.stride
        << " block=" << size_str(p.block_bytes)
        << " footprint=" << size_str(p.footprint)
        << " revisits=" << p.revisits;
  }
};

}  // namespace

Program parse_program(const std::string& text) {
  Program program;
  bool saw_header = false;
  bool in_loop = false;
  int line_no = 0;

  std::istringstream stream(text);
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(raw_line);
    if (tokens.empty()) continue;

    if (tokens[0] == "program") {
      if (saw_header) throw DslParseError(line_no, "duplicate program header");
      if (tokens.size() < 2) {
        throw DslParseError(line_no, "program needs a name");
      }
      saw_header = true;
      program.name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          throw DslParseError(line_no, "expected key=value: " + tokens[i]);
        }
        const std::string key = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        if (key == "seed") {
          program.seed = parse_size(value, line_no);
        } else if (key == "reps") {
          program.outer_reps = parse_size(value, line_no);
        } else {
          throw DslParseError(line_no, "unknown program field: " + key);
        }
      }
      continue;
    }

    if (!saw_header) {
      throw DslParseError(line_no, "expected `program <name>` header first");
    }

    if (tokens[0] == "loop") {
      if (in_loop) throw DslParseError(line_no, "nested loops not supported");
      if (tokens.size() < 3 || tokens[2] != "{") {
        throw DslParseError(line_no, "expected `loop <iterations> {`");
      }
      Loop loop;
      loop.iterations = parse_size(tokens[1], line_no);
      program.loops.push_back(std::move(loop));
      in_loop = true;
      continue;
    }

    if (tokens[0] == "}") {
      if (!in_loop) throw DslParseError(line_no, "unmatched `}`");
      in_loop = false;
      continue;
    }

    // Instruction: pcN: kind key=value... [serial] [; mnemonic +dist]
    if (!in_loop) {
      throw DslParseError(line_no, "instruction outside a loop");
    }
    std::string label = tokens[0];
    if (label.size() < 4 || label.substr(0, 2) != "pc" ||
        label.back() != ':') {
      throw DslParseError(line_no, "expected `pcN:` label, got " + label);
    }
    StaticInst inst;
    try {
      inst.pc = static_cast<Pc>(
          std::stoul(label.substr(2, label.size() - 3)));
    } catch (const std::exception&) {
      throw DslParseError(line_no, "bad pc label: " + label);
    }
    if (tokens.size() < 2) throw DslParseError(line_no, "missing pattern");
    const std::string kind = tokens[1];

    Fields fields;
    std::size_t i = 2;
    for (; i < tokens.size(); ++i) {
      if (tokens[i] == ";") break;
      if (tokens[i] == "serial") {
        inst.serial_dependent = true;
        continue;
      }
      if (tokens[i] == "store") {
        inst.is_store = true;
        continue;
      }
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        throw DslParseError(line_no, "expected key=value: " + tokens[i]);
      }
      fields[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    if (fields.count("compute")) {
      inst.compute_cycles = static_cast<std::uint32_t>(
          parse_size(fields.at("compute"), line_no));
      fields.erase("compute");
    }
    inst.pattern = parse_pattern(kind, fields, line_no);

    if (i < tokens.size() && tokens[i] == ";") {
      if (i + 2 >= tokens.size()) {
        throw DslParseError(line_no, "incomplete prefetch annotation");
      }
      PrefetchOp op;
      op.hint = parse_hint(tokens[i + 1], line_no);
      op.distance_bytes = parse_signed(tokens[i + 2], line_no);
      inst.prefetch = op;
    }

    program.loops.back().body.push_back(std::move(inst));
  }

  if (in_loop) throw DslParseError(line_no, "unterminated loop");
  if (!saw_header) throw DslParseError(line_no, "empty program");
  return program;
}

std::string print_program(const Program& program) {
  std::ostringstream out;
  out << "program " << program.name << " seed=" << program.seed
      << " reps=" << program.outer_reps << "\n";
  for (const Loop& loop : program.loops) {
    out << "loop " << loop.iterations << " {\n";
    for (const StaticInst& inst : loop.body) {
      out << "  pc" << inst.pc << ": ";
      std::visit(PatternPrinter{out}, inst.pattern);
      out << " compute=" << inst.compute_cycles;
      if (inst.serial_dependent) out << " serial";
      if (inst.is_store) out << " store";
      if (inst.prefetch) {
        out << " ; " << hint_name(inst.prefetch->hint) << " "
            << (inst.prefetch->distance_bytes >= 0 ? "+" : "")
            << inst.prefetch->distance_bytes;
      }
      out << "\n";
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace re::workloads
