#include "workloads/suite.hh"

#include <stdexcept>

namespace re::workloads {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

// Workload footprints are scaled together with the machine geometries
// (sim::kGeometryScale, see DESIGN.md §5): the paper's multi-MB working
// sets against a 6-8 MB LLC become sub-to-few-MB working sets against the
// scaled 768 kB / 1 MB LLC — the same pressure ratios at ~10^6 references
// per run. What matters for every experiment is (a) the ratio of total
// working set to LLC capacity and (b) the share of misses coming from
// regular-strided loads; both are preserved.

/// Convenience builder: accumulates loops and assigns sequential PCs.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { program_.name = std::move(name); }

  ProgramBuilder& loop(std::uint64_t iterations) {
    program_.loops.push_back(Loop{{}, iterations});
    return *this;
  }

  ProgramBuilder& inst(AccessPattern pattern, std::uint32_t compute_cycles,
                       bool serial_dependent = false) {
    StaticInst si;
    si.pc = next_pc_++;
    si.pattern = std::move(pattern);
    si.compute_cycles = compute_cycles;
    si.serial_dependent = serial_dependent;
    program_.loops.back().body.push_back(std::move(si));
    return *this;
  }

  /// Add `count` hot accesses: scattered references within an L1-resident
  /// buffer (stack/locals/small tables). Irregular stride by construction,
  /// so pure stride-profiling methods cannot tell them apart from real
  /// gathers — only their cache behaviour (always hits) distinguishes them,
  /// which is exactly the signal MDDLI uses and stride-centric lacks.
  ProgramBuilder& hot(int count, std::uint32_t compute_cycles) {
    for (int i = 0; i < count; ++i) {
      inst(GatherPattern{next_base(), 2 * KB, 8}, compute_cycles);
    }
    return *this;
  }

  /// Add `count` hot *strided* accesses: small local arrays swept
  /// repeatedly (L1-resident). Perfectly regular stride, near-zero miss
  /// ratio: the stride-centric method prefetches them (pure overhead),
  /// while MDDLI's cost-benefit filter rejects them — the contrast behind
  /// Table I's "35 % fewer prefetch instructions".
  ProgramBuilder& hot_strided(int count, std::uint32_t compute_cycles) {
    for (int i = 0; i < count; ++i) {
      inst(HotBufferPattern{next_base(), 8, 512}, compute_cycles);
    }
    return *this;
  }

  /// A workspace phase: a short loop, alternating with the main loop via
  /// outer_reps, that gathers over an LLC-sized structure. Its lines are
  /// reused across phases *iff* the main loop's streams did not flush the
  /// LLC in between — i.e. exactly when the streams are prefetched
  /// non-temporally. Irregular by construction, so it is never itself a
  /// prefetch candidate (paper Section VI-B's "useful data retained and
  /// reused from higher level caches").
  ProgramBuilder& workspace_phase(std::uint64_t iterations,
                                  std::uint64_t footprint_bytes) {
    loop(iterations);
    inst(GatherPattern{next_base(), footprint_bytes, 8}, 2);
    return hot(1, 2);
  }

  /// Next non-overlapping base address: 64 MB regions with a pseudo-random
  /// sub-region stagger so distinct structures do not alias into the same
  /// cache sets (real allocators never hand out 64 MB-aligned everything).
  Addr next_base() {
    const Addr region = region_++;
    return (region << 26) + (mix64(region ^ 0x5eedULL) % 16384) * kLineSize;
  }

  Program build(std::uint64_t outer_reps, std::uint64_t seed) {
    program_.outer_reps = outer_reps;
    program_.seed = seed;
    return std::move(program_);
  }

 private:
  Program program_;
  Pc next_pc_ = 1;
  Addr region_ = 1;
};

std::uint64_t seed_of(const std::string& name, InputSet input) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return mix64(h ^ (input == InputSet::Alternate ? 0xa17eULL : 0));
}

bool alt(InputSet input) { return input == InputSet::Alternate; }

// ---------------------------------------------------------------------------
// The 12 benchmark models. Comments list the Table I targets each model is
// shaped to reproduce: L1 miss coverage of the final prefetching and OH
// (prefetches executed per miss removed).
// ---------------------------------------------------------------------------

/// gcc — mixed behaviour: regular sweeps over pass-local arrays plus
/// pointer-heavy IR walking. Targets: coverage ~66 %, OH ~6, moderate
/// speedup.
Program make_gcc(InputSet input) {
  ProgramBuilder b("gcc");
  const std::uint64_t big = alt(input) ? 640 * KB : 512 * KB;
  const std::uint64_t chase_fp = alt(input) ? 768 * KB : 640 * KB;
  b.loop(alt(input) ? 13000 : 12000)
      .inst(StreamPattern{b.next_base(), 16, big}, 2)       // IR array sweep
      .inst(StreamPattern{b.next_base(), 16, big}, 2)       // df info sweep
      .inst(PointerChasePattern{b.next_base(), chase_fp}, 3, true)
      .hot(5, 2)
      .hot_strided(2, 2)
      .workspace_phase(1500, 256 * KB);  // symbol table between passes
  return b.build(4, seed_of("gcc", input));
}

/// libquantum — long unit-stride sweeps over the quantum register
/// (16 B nodes). Targets: coverage ~100 %, OH ~4.9 (4 prefetches per 64 B
/// line at stride 16), the suite's largest speedup, strong NT win (no
/// temporal reuse of the register between sweeps at LLC sizes).
Program make_libquantum(InputSet input) {
  ProgramBuilder b("libquantum");
  const std::uint64_t reg = alt(input) ? 1280 * KB : 1 * MB;
  b.loop(alt(input) ? 30000 : 27500)
      .inst(StreamPattern{b.next_base(), 16, reg}, 2)   // gate sweep A
      .inst(StreamPattern{b.next_base(), 16, reg}, 2)   // gate sweep B
      .hot(6, 2)
      .workspace_phase(400, 256 * KB);  // gate bookkeeping between sweeps
  return b.build(4, seed_of("libquantum", input));
}

/// lbm — lattice-Boltzmann: several concurrent grid streams with 32 B
/// effective stride. Targets: coverage ~98 %, OH ~2, large speedup, NT win.
Program make_lbm(InputSet input) {
  ProgramBuilder b("lbm");
  const std::uint64_t grid = alt(input) ? 1280 * KB : 1 * MB;
  b.loop(alt(input) ? 15000 : 14000)
      .inst(StreamPattern{b.next_base(), 32, grid}, 4)
      .inst(StreamPattern{b.next_base(), 32, grid}, 4)
      .inst(StreamPattern{b.next_base(), 32, grid}, 4)
      .hot(6, 12)
      .workspace_phase(300, 256 * KB);  // boundary-cell lists per timestep
  return b.build(4, seed_of("lbm", input));
}

/// mcf — network simplex: dominant serial pointer chasing over a large arc
/// network plus a regular 64 B-stride arc-array scan. Targets: coverage
/// ~36 %, OH ~1.5, good speedup (the strided third carries it), HW
/// prefetcher largely ineffective.
Program make_mcf(InputSet input) {
  ProgramBuilder b("mcf");
  const std::uint64_t arcs = alt(input) ? 2 * MB : 1536 * KB;
  const std::uint64_t nodes = alt(input) ? 2560 * KB : 2 * MB;
  b.loop(alt(input) ? 33000 : 30000)
      .inst(StreamPattern{b.next_base(), 64, arcs}, 2)             // arc scan
      .inst(PointerChasePattern{b.next_base(), nodes}, 2, true)    // tree walk
      .hot(6, 2);
  return b.build(1, seed_of("mcf", input));
}

/// omnetpp — discrete event simulation: heap/event-list pointer chasing
/// with barely any strided component; the one regular sweep lives in a
/// buffer that fits the LLC, so prefetching it buys little. Targets:
/// coverage ~9 %, OH ~5.
Program make_omnetpp(InputSet input) {
  ProgramBuilder b("omnetpp");
  const std::uint64_t heap = alt(input) ? 1536 * KB : 1280 * KB;
  b.loop(alt(input) ? 42000 : 40000)
      .inst(PointerChasePattern{b.next_base(), heap}, 3, true)
      .inst(GatherPattern{b.next_base(), heap / 2, 32}, 2)
      .inst(StreamPattern{b.next_base(), 16, 64 * KB}, 2)  // msg buffers
      .hot(7, 2)
      .hot_strided(2, 2);
  return b.build(1, seed_of("omnetpp", input));
}

/// soplex — simplex LP: regular sweeps over the constraint matrix values
/// interleaved with indexed gathers through the column index vectors.
/// Targets: coverage ~53 %, OH ~5.
Program make_soplex(InputSet input) {
  ProgramBuilder b("soplex");
  const std::uint64_t matrix = alt(input) ? 1280 * KB : 1 * MB;
  b.loop(alt(input) ? 32000 : 30000)
      .inst(StreamPattern{b.next_base(), 16, matrix}, 2)      // value sweep
      .inst(GatherPattern{b.next_base(), 96 * KB, 8}, 2)      // x[ind[i]]
      .hot(4, 2)
      .hot_strided(1, 2)
      // Price/weight vectors reused across pricing rounds (NT beneficiary).
      .workspace_phase(3000, 320 * KB);
  return b.build(4, seed_of("soplex", input));
}

/// astar — grid pathfinding: short strided bursts along open-list expansion
/// plus scattered node lookups. Targets: coverage ~26 %, OH ~10 (prefetches
/// run off the ends of the short bursts).
Program make_astar(InputSet input) {
  ProgramBuilder b("astar");
  const std::uint64_t grid = alt(input) ? 2 * MB : 1536 * KB;
  b.loop(alt(input) ? 52000 : 48000)
      .inst(ShortStreamPattern{b.next_base(), 16, 24, grid}, 2)
      .inst(GatherPattern{b.next_base(), 96 * KB, 64}, 2)
      .inst(PointerChasePattern{b.next_base(), grid / 2}, 2, true)
      .hot(7, 2);
  return b.build(1, seed_of("astar", input));
}

/// xalan — XSLT processing: DOM pointer chasing and hash gathers; almost no
/// stride opportunity, and what regular access exists mostly hits the LLC
/// anyway, so inserted prefetches do little work. Targets: coverage ~3 %,
/// very high OH.
Program make_xalan(InputSet input) {
  ProgramBuilder b("xalan");
  const std::uint64_t dom = alt(input) ? 1536 * KB : 1280 * KB;
  b.loop(alt(input) ? 42000 : 40000)
      .inst(PointerChasePattern{b.next_base(), dom}, 3, true)
      .inst(GatherPattern{b.next_base(), dom, 16}, 2)
      .inst(StreamPattern{b.next_base(), 8, 32 * KB}, 2)  // string append
      .hot(7, 2)
      .hot_strided(2, 2);
  return b.build(1, seed_of("xalan", input));
}

/// leslie3d — structured-grid CFD: unit-stride (8 B) Fortran loops over
/// several state arrays. Targets: coverage ~94 %, OH ~10 (8 prefetches per
/// line at stride 8), large speedup, NT win.
Program make_leslie3d(InputSet input) {
  ProgramBuilder b("leslie3d");
  const std::uint64_t field = alt(input) ? 640 * KB : 512 * KB;
  b.loop(alt(input) ? 24000 : 22000)
      .inst(StreamPattern{b.next_base(), 8, field}, 2)
      .inst(StreamPattern{b.next_base(), 8, field}, 2)
      .inst(StreamPattern{b.next_base(), 32, 2 * field}, 2)
      .hot(5, 2)
      .hot_strided(1, 2)
      // Grid coefficients reused across sweeps when the LLC is clean.
      .workspace_phase(1000, 256 * KB);
  return b.build(4, seed_of("leslie3d", input));
}

/// GemsFDTD — finite-difference time domain: stride-8 field sweeps plus a
/// scattered boundary-condition component. Targets: coverage ~84 %, OH ~8.
Program make_gemsfdtd(InputSet input) {
  ProgramBuilder b("GemsFDTD");
  const std::uint64_t field = alt(input) ? 640 * KB : 512 * KB;
  b.loop(alt(input) ? 26000 : 24000)
      .inst(StreamPattern{b.next_base(), 8, field}, 3)
      .inst(StreamPattern{b.next_base(), 8, field}, 3)
      .hot(5, 2)
      .hot_strided(1, 2)
      // Boundary-condition pass between field sweeps: scattered, rare.
      .workspace_phase(1500, 512 * KB);
  return b.build(4, seed_of("GemsFDTD", input));
}

/// milc — lattice QCD: streaming over large su3 matrices with a small
/// indexed component. Targets: coverage ~96 %, OH ~7.
Program make_milc(InputSet input) {
  ProgramBuilder b("milc");
  const std::uint64_t lattice = alt(input) ? 1280 * KB : 1 * MB;
  b.loop(alt(input) ? 115000 : 110000)
      .inst(StreamPattern{b.next_base(), 8, lattice / 2}, 2)
      .inst(StreamPattern{b.next_base(), 16, lattice}, 2)
      .hot(4, 2)
      .hot_strided(1, 2);
  return b.build(1, seed_of("milc", input));
}

/// cigar — case-injected genetic algorithm: short-lived strided runs over
/// the population (chromosome scans) plus scattered fitness lookups. The
/// short streams train hardware stream prefetchers which then run past the
/// end of every chromosome — the paper's HW-prefetch pathology (AMD slows
/// >11 %, Intel traffic +630 %). Targets: coverage ~28 %, OH ~3.4, SW
/// speedup ~13 %.
Program make_cigar(InputSet input) {
  ProgramBuilder b("cigar");
  const std::uint64_t population = alt(input) ? 2 * MB : 1536 * KB;
  b.loop(alt(input) ? 90000 : 85000)
      .inst(ShortStreamPattern{b.next_base(), 16, 24, population}, 2)
      .inst(ShortStreamPattern{b.next_base(), 16, 24, population}, 2)
      .inst(GatherPattern{b.next_base(), population, 64}, 2)
      .hot(7, 2);
  return b.build(1, seed_of("cigar", input));
}

}  // namespace

const std::vector<std::string>& suite_names() {
  static const std::vector<std::string> names = {
      "gcc",   "libquantum", "lbm",   "mcf",      "omnetpp",  "soplex",
      "astar", "cigar",      "xalan", "GemsFDTD", "leslie3d", "milc"};
  return names;
}

Program make_benchmark(const std::string& name, InputSet input) {
  if (name == "gcc") return make_gcc(input);
  if (name == "libquantum") return make_libquantum(input);
  if (name == "lbm") return make_lbm(input);
  if (name == "mcf") return make_mcf(input);
  if (name == "omnetpp") return make_omnetpp(input);
  if (name == "soplex") return make_soplex(input);
  if (name == "astar") return make_astar(input);
  if (name == "cigar") return make_cigar(input);
  if (name == "xalan") return make_xalan(input);
  if (name == "GemsFDTD") return make_gemsfdtd(input);
  if (name == "leslie3d") return make_leslie3d(input);
  if (name == "milc") return make_milc(input);
  throw std::out_of_range("unknown benchmark: " + name);
}

std::vector<Program> make_suite(InputSet input) {
  std::vector<Program> suite;
  suite.reserve(suite_names().size());
  for (const std::string& name : suite_names()) {
    suite.push_back(make_benchmark(name, input));
  }
  return suite;
}

}  // namespace re::workloads
