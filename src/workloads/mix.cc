#include "workloads/mix.hh"

#include "support/rng.hh"

namespace re::workloads {

std::vector<MixSpec> generate_mixes(int count, int apps_per_mix,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string>& names = suite_names();
  std::vector<MixSpec> mixes;
  mixes.reserve(static_cast<std::size_t>(count));
  for (int m = 0; m < count; ++m) {
    MixSpec mix;
    for (int a = 0; a < apps_per_mix; ++a) {
      mix.apps.push_back(names[rng.next(names.size())]);
    }
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

void rebase_program(Program& program, Addr offset) {
  for (Loop& loop : program.loops) {
    for (StaticInst& inst : loop.body) {
      std::visit([offset](auto& p) { p.base += offset; }, inst.pattern);
    }
  }
}

}  // namespace re::workloads
