// Data-parallel workload models for the paper's Figure 12 (NAS / SPEC OMP
// benchmarks run with 1, 2 and 4 threads).
//
// Each workload is built as `threads` shard programs — one per core — that
// split the iteration space. Two are bandwidth-bound (swim, cg: the starred
// benchmarks with the highest off-chip bandwidth in their suites) and two
// are compute-bound (fma3d, dc), where the hardware prefetcher "does a
// perfect job" per the paper.
#pragma once

#include <string>
#include <vector>

#include "workloads/program.hh"

namespace re::workloads {

/// Names in Figure 12's order. The starred workloads are bandwidth-bound.
const std::vector<std::string>& parallel_names();

/// True for the bandwidth-bound workloads (swim, cg).
bool parallel_is_bandwidth_bound(const std::string& name);

/// Build the per-thread shard programs for one workload.
std::vector<Program> make_parallel(const std::string& name, int threads);

}  // namespace re::workloads
