// Unified Δ (cycles per memory operation) resolution.
//
// The paper measures Δ per benchmark with performance counters and feeds
// it into Mowry's prefetch-distance formula. The repo grew three
// independent copies of the surrounding logic — the offline pipeline's
// "assumed or baseline-sim" fallback, the adaptive controller's EWMA of
// windowed measurements, and the experiment drivers' direct baseline
// probes. This is the one shared implementation, with one precedence rule:
//
//     assumed  >  measured  >  baseline-sim
//
//   * assumed  — an explicitly configured Δ (tests, ablations, replays of
//                stored profiles on a machine the program never ran on).
//                Always wins: it is a statement of intent.
//   * measured — an online observation of the running program (the
//                adaptive runtime's EWMA). Preferred over simulation
//                because it reflects the *current* plans and phase.
//   * baseline-sim — a counterfactual single-core run with prefetching
//                off. The offline default; an online system cannot pause
//                the workload to obtain it, which is exactly why
//                `measured` outranks it.
#pragma once

#include <cstdint>
#include <functional>

namespace re::engine {

enum class DeltaSource { kAssumed, kMeasured, kBaselineSim };

const char* delta_source_name(DeltaSource source);

struct DeltaEstimate {
  double cycles_per_memop = 0.0;
  DeltaSource source = DeltaSource::kBaselineSim;
};

/// Apply the precedence rule. `assumed` and `measured` count only when
/// positive; `baseline_sim` is invoked lazily (it runs a full simulation)
/// and only when both knobs are unset.
DeltaEstimate resolve_delta(double assumed, double measured,
                            const std::function<double()>& baseline_sim);

/// The online Δ estimator: an EWMA over per-window measurements. The
/// default weight rides out single turbulent windows while still tracking
/// a phase change within a few windows (0.7^8 leaves ~6 % of the old
/// regime after the settle period the controller uses).
class DeltaEwma {
 public:
  explicit DeltaEwma(double weight = 0.3) : weight_(weight) {}

  /// Fold in one window's measurement; non-positive observations are
  /// ignored (an empty window measures nothing).
  void observe(double cycles_per_memop) {
    if (cycles_per_memop <= 0.0) return;
    value_ = value_ <= 0.0 ? cycles_per_memop
                           : (1.0 - weight_) * value_ +
                                 weight_ * cycles_per_memop;
  }

  /// Current estimate; 0 until the first observation.
  double value() const { return value_; }

 private:
  double weight_;
  double value_ = 0.0;
};

}  // namespace re::engine
