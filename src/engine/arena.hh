// NUMA-aware slab arenas for engine artifacts.
//
// The paper's thesis — prefetching must be resource-efficient — extends to
// memory placement: a reuse-group buffer solved by a worker on node 1 but
// resident on node 0 pays a cross-socket latency on every sample it touches.
// A SlabArena is a bump allocator over large page-aligned slabs whose
// placement policy says where those pages should land:
//
//   kPlain       — malloc-backed slabs, pages placed lazily by the kernel's
//                  default first-touch policy (the no-NUMA fallback).
//   kWorkerLocal — slabs are eagerly first-touched (zero-filled) on the
//                  allocating thread, so a windowed solve running inside an
//                  executor worker pins its reuse-group buffers to that
//                  worker's node. Per-PC buffers land where the worker that
//                  solves them runs.
//   kInterleaved — slabs are spread page-round-robin across every NUMA node
//                  (mbind(MPOL_INTERLEAVE) via raw syscall — no libnuma
//                  dependency), so a big shared solve fanned out over
//                  workers on several nodes sees uniform average latency.
//   kAuto        — kInterleaved when the machine has >1 node, else kPlain.
//
// Placement can never affect artifact bytes: arenas hand out memory, they
// do not order computation. When mbind is unavailable (non-Linux, seccomp,
// single node) interleaving silently degrades to plain first-touch — the
// fallback is a perf property, not an error.
//
// An arena is NOT thread-safe; like ArtifactStore (which owns one), it
// belongs to one solve at a time. reset() rewinds the bump cursor but
// keeps the slabs (and their NUMA placement) for the next solve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace re::engine {

enum class ArenaPlacement : std::uint8_t {
  kAuto,
  kPlain,
  kInterleaved,
  kWorkerLocal,
};

/// Stable lowercase name ("auto", "plain", "interleave", "local").
const char* placement_name(ArenaPlacement placement);

/// Minimal NUMA topology: the node count, read once from
/// /sys/devices/system/node (no libnuma). 1 on any failure — "no NUMA".
struct NumaTopology {
  int nodes = 1;
  static NumaTopology detect();
  /// Detected once per process; every kAuto resolution shares this.
  static const NumaTopology& cached();
};

class SlabArena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = std::size_t{256} << 10;

  explicit SlabArena(ArenaPlacement placement = ArenaPlacement::kAuto,
                     std::size_t slab_bytes = kDefaultSlabBytes);
  ~SlabArena();
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Grows a new
  /// slab when the active one is full; requests larger than the slab size
  /// get a dedicated slab. Never returns nullptr for bytes > 0.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewind to empty, retaining every slab (and its NUMA placement) for
  /// the next solve. O(1).
  void reset();

  /// The resolved placement (kAuto is resolved at construction against the
  /// cached topology; this never returns kAuto).
  ArenaPlacement placement() const { return placement_; }
  /// True when at least one slab was successfully mbind-interleaved.
  bool numa_bound() const { return numa_bound_; }

  std::size_t slab_count() const { return slabs_.size(); }
  std::size_t bytes_reserved() const;
  /// Bytes handed out since the last reset() (includes alignment padding).
  std::size_t bytes_used() const;

 private:
  struct Slab {
    std::byte* data = nullptr;
    std::size_t capacity = 0;
  };

  /// Make a new slab of at least `min_bytes` the active one.
  void grow(std::size_t min_bytes);

  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  // index of the slab the cursor lives in
  std::size_t offset_ = 0;  // bump cursor within the active slab
  std::size_t used_ = 0;    // total handed out since reset()
  std::size_t slab_bytes_;
  ArenaPlacement placement_;
  bool numa_bound_ = false;
};

/// std-allocator adapter over a SlabArena: deallocate is a no-op (memory
/// comes back in bulk via reset()), so container churn inside one solve
/// costs a pointer bump. Containers copied from an arena-backed container
/// inherit its arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(SlabArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // reclaimed via reset()

  SlabArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  SlabArena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace re::engine
