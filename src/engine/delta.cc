#include "engine/delta.hh"

namespace re::engine {

const char* delta_source_name(DeltaSource source) {
  switch (source) {
    case DeltaSource::kAssumed: return "assumed";
    case DeltaSource::kMeasured: return "measured";
    case DeltaSource::kBaselineSim: return "baseline-sim";
  }
  return "?";
}

DeltaEstimate resolve_delta(double assumed, double measured,
                            const std::function<double()>& baseline_sim) {
  if (assumed > 0.0) return {assumed, DeltaSource::kAssumed};
  if (measured > 0.0) return {measured, DeltaSource::kMeasured};
  return {baseline_sim(), DeltaSource::kBaselineSim};
}

}  // namespace re::engine
