// Central knob plumbing for the analysis engine.
//
// Before PR 5, every consumer hand-assembled SamplerConfig and
// OptimizerOptions from its own flag soup (repf commands, bench binaries,
// the adaptive runtime), and knobs silently diverged — the online sampler's
// period lived in one place, the offline profiler's in another, and a knob
// added to OptimizerOptions had to be wired N times. AnalysisKnobs is the
// one audited set; the make_* builders below are the only places that
// translate knobs into the structs the pipeline consumes.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.hh"

namespace re::engine {

/// Every externally tunable analysis knob, with the repo-wide defaults.
/// Field-by-field provenance:
///   sample_period / sample_seed    -> core::SamplerConfig
///   profile_max_refs               -> OptimizerOptions::profile_max_refs
///   enable_non_temporal            -> OptimizerOptions::enable_non_temporal
///   assumed / measured Δ           -> OptimizerOptions Δ knobs
///                                     (precedence: engine/delta.hh)
///   mddli / stride / bypass        -> passed through unchanged
///   llc_effective_bytes            -> MddliOptions::llc_effective_bytes
///                                     and BypassOptions::llc_effective_bytes
struct AnalysisKnobs {
  std::uint64_t sample_period = 1000;
  std::uint64_t sample_seed = 42;
  std::uint64_t profile_max_refs = ~std::uint64_t{0};
  bool enable_non_temporal = true;
  double assumed_cycles_per_memop = 0.0;
  double measured_cycles_per_memop = 0.0;
  /// Contention-adjusted shared-LLC share for the analyzed core, in bytes
  /// (0 = uncontended: the machine's full LLC). Set by the co-run pipeline
  /// (analysis::CoRunModel::effective_llc_lines × kLineSize) so MDDLI, the
  /// prefetch-distance solve (through the miss latencies MDDLI feeds it),
  /// and the bypass verdict all price LLC misses at the capacity the core
  /// actually gets when a co-run set is declared.
  std::uint64_t llc_effective_bytes = 0;
  core::MddliOptions mddli;
  core::StrideAnalysisOptions stride;
  core::BypassOptions bypass;
};

core::SamplerConfig make_sampler_config(const AnalysisKnobs& knobs);

core::OptimizerOptions make_optimizer_options(const AnalysisKnobs& knobs);

/// One "knob=value" per line — the audit trail `repf` prints under
/// --verbose so a run's effective configuration is reviewable.
std::string describe_knobs(const AnalysisKnobs& knobs);

}  // namespace re::engine
