#include "engine/arena.hh"

#include <cstring>
#include <new>

#if defined(__linux__)
#include <dirent.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace re::engine {

namespace {

constexpr std::size_t kPageBytes = 4096;

std::size_t round_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

/// Best-effort MPOL_INTERLEAVE over the first `nodes` NUMA nodes via the
/// raw mbind syscall (no libnuma). False when the syscall is unavailable
/// or refused — the caller falls back to first-touch placement.
bool try_interleave(void* addr, std::size_t length, int nodes) {
#if defined(__linux__) && defined(__NR_mbind)
  if (nodes < 2 || nodes > 64) return false;
  constexpr int kMpolInterleave = 3;
  unsigned long nodemask =
      nodes >= 64 ? ~0ul : ((1ul << static_cast<unsigned>(nodes)) - 1ul);
  // maxnode counts bits; the kernel wants one past the highest usable bit.
  return syscall(__NR_mbind, addr, length, kMpolInterleave, &nodemask,
                 static_cast<unsigned long>(nodes + 1), 0ul) == 0;
#else
  (void)addr;
  (void)length;
  (void)nodes;
  return false;
#endif
}

}  // namespace

const char* placement_name(ArenaPlacement placement) {
  switch (placement) {
    case ArenaPlacement::kAuto:
      return "auto";
    case ArenaPlacement::kPlain:
      return "plain";
    case ArenaPlacement::kInterleaved:
      return "interleave";
    case ArenaPlacement::kWorkerLocal:
      return "local";
  }
  return "plain";
}

NumaTopology NumaTopology::detect() {
  NumaTopology topo;
#if defined(__linux__)
  DIR* dir = opendir("/sys/devices/system/node");
  if (dir == nullptr) return topo;
  int nodes = 0;
  while (dirent* entry = readdir(dir)) {
    // nodeN directories, one per online NUMA node.
    if (std::strncmp(entry->d_name, "node", 4) != 0) continue;
    const char* digits = entry->d_name + 4;
    if (*digits == '\0') continue;
    bool numeric = true;
    for (const char* c = digits; *c != '\0'; ++c) {
      if (*c < '0' || *c > '9') numeric = false;
    }
    if (numeric) ++nodes;
  }
  closedir(dir);
  if (nodes > 0) topo.nodes = nodes;
#endif
  return topo;
}

const NumaTopology& NumaTopology::cached() {
  static const NumaTopology topo = detect();
  return topo;
}

SlabArena::SlabArena(ArenaPlacement placement, std::size_t slab_bytes)
    : slab_bytes_(round_up(slab_bytes < kPageBytes ? kPageBytes : slab_bytes,
                           kPageBytes)),
      placement_(placement) {
  if (placement_ == ArenaPlacement::kAuto) {
    placement_ = NumaTopology::cached().nodes > 1 ? ArenaPlacement::kInterleaved
                                                  : ArenaPlacement::kPlain;
  }
  if (placement_ == ArenaPlacement::kInterleaved &&
      NumaTopology::cached().nodes < 2) {
    placement_ = ArenaPlacement::kPlain;  // no NUMA: nothing to interleave
  }
}

SlabArena::~SlabArena() {
  for (Slab& slab : slabs_) {
    ::operator delete(slab.data, std::align_val_t{kPageBytes});
  }
}

void SlabArena::grow(std::size_t min_bytes) {
  Slab slab;
  slab.capacity = round_up(min_bytes > slab_bytes_ ? min_bytes : slab_bytes_,
                           kPageBytes);
  slab.data = static_cast<std::byte*>(
      ::operator new(slab.capacity, std::align_val_t{kPageBytes}));
  if (placement_ == ArenaPlacement::kInterleaved &&
      try_interleave(slab.data, slab.capacity, NumaTopology::cached().nodes)) {
    numa_bound_ = true;
  }
  if (placement_ != ArenaPlacement::kPlain) {
    // Eager first-touch: commit the pages now, on this thread. Under
    // kWorkerLocal that pins them to the allocating worker's node; under
    // kInterleaved it realizes the mbind policy immediately.
    std::memset(slab.data, 0, slab.capacity);
  }
  slabs_.push_back(slab);
  active_ = slabs_.size() - 1;
  offset_ = 0;
}

void* SlabArena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align == 0) align = 1;
  if (!slabs_.empty()) {
    // Try the active slab, then any later (already-reserved) slab — reset()
    // rewinds to slab 0, so a warmed arena walks its slabs in order.
    while (active_ < slabs_.size()) {
      const std::size_t aligned = round_up(offset_, align);
      if (aligned + bytes <= slabs_[active_].capacity) {
        offset_ = aligned + bytes;
        used_ += bytes;
        return slabs_[active_].data + aligned;
      }
      ++active_;
      offset_ = 0;
    }
  }
  grow(bytes + align);
  const std::size_t aligned = round_up(offset_, align);
  offset_ = aligned + bytes;
  used_ += bytes;
  return slabs_[active_].data + aligned;
}

void SlabArena::reset() {
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

std::size_t SlabArena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Slab& slab : slabs_) total += slab.capacity;
  return total;
}

std::size_t SlabArena::bytes_used() const { return used_; }

}  // namespace re::engine
