// Cooperative cancellation for engine solves.
//
// A long-running pipeline (stage graph or executor fan-out) cannot be
// killed from outside without corrupting shared state; instead the caller
// arms a CancelToken and the engine checks it at its natural preemption
// points — before each stage in StageGraph::run and before each unit in
// Executor::for_each. A solve observed cancelled unwinds by throwing
// Cancelled, which the caller catches at the dispatch boundary; partial
// artifacts die with the stack, nothing half-written escapes.
//
// The token is a single relaxed atomic: request() may race the solve from
// any thread, and the worst case is one extra unit of work — cancellation
// is a latency bound, not a correctness boundary.
#pragma once

#include <atomic>
#include <stdexcept>

namespace re::engine {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request() { requested_.store(true, std::memory_order_relaxed); }
  bool requested() const {
    return requested_.load(std::memory_order_relaxed);
  }
  /// Re-arm for reuse (only between solves; never while one is in flight).
  void reset() { requested_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> requested_{false};
};

/// Thrown by the engine when a solve observes its CancelToken. Callers
/// that dispatch solves catch this to distinguish "deadline abandoned the
/// work" from a unit failure.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("engine: solve cancelled") {}
};

}  // namespace re::engine
