#include "engine/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace re::engine {

namespace {

thread_local int t_worker_index = -1;

/// Process-wide fan-out epoch: every run_parallel takes the next value and
/// tags its task-claim words with it (claim words start at 0, epochs start
/// at 1, so a claim can never be confused with an unclaimed slot).
std::atomic<std::uint64_t> g_epoch{0};

constexpr std::size_t kNoUnit = ~std::size_t{0};

/// splitmix64 — the standard cheap seeded mixer (same family as
/// support/rng.hh); drives the claim and steal-victim permutations.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Seeded Fisher-Yates permutation of [0, n): the order in which workers
/// claim units. Deterministic in (n, seed); independent of scheduling.
std::vector<std::size_t> claim_order(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::uint64_t state = seed;
  for (std::size_t i = n; i > 1; --i) {
    state = mix64(state);
    std::swap(order[i - 1], order[state % i]);
  }
  return order;
}

/// Seeded permutation of the other workers: the order worker `w` tries
/// steal victims. Deterministic in (workers, w, seed).
std::vector<std::size_t> victim_order(std::size_t workers, std::size_t w,
                                      std::uint64_t seed) {
  std::vector<std::size_t> victims;
  victims.reserve(workers - 1);
  for (std::size_t v = 0; v < workers; ++v) {
    if (v != w) victims.push_back(v);
  }
  std::uint64_t state = seed ^ mix64(w + 1);
  for (std::size_t i = victims.size(); i > 1; --i) {
    state = mix64(state);
    std::swap(victims[i - 1], victims[state % i]);
  }
  return victims;
}

/// Shared state of one fan-out: the task set, error/cancel resolution and
/// the dispatch counters. Among the units that threw, the lowest-indexed
/// one is rethrown — error selection depends on unit identity, never on
/// which worker lost a race.
struct Dispatch {
  std::size_t n = 0;
  const TaskFn* fn = nullptr;
  const CancelToken* cancel = nullptr;
  const HintFn* hints = nullptr;
  std::vector<std::size_t> order;
  std::uint64_t epoch = 0;

  std::exception_ptr first_error = nullptr;
  std::size_t first_error_index = 0;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::atomic<bool> cancelled{false};

  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> prefetches{0};

  /// Run one claimed unit, honoring the drain rules: after a failure the
  /// pool drains fast; after a cancellation no new unit starts (a unit is
  /// "started" the moment fn is entered — claimed-but-skipped is fine).
  void run_unit(std::size_t unit) {
    if (failed.load(std::memory_order_relaxed)) return;
    if (cancel != nullptr && cancel->requested()) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    try {
      (*fn)(unit);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error == nullptr || unit < first_error_index) {
        first_error = std::current_exception();
        first_error_index = unit;
      }
      failed.store(true, std::memory_order_relaxed);
    }
  }

  /// Prefetch `unit`'s annotated resource; returns 1 when a hint was
  /// issued (the per-backend loops pipeline this: the next unit's
  /// resource is prefetched before the current unit runs).
  std::uint64_t prefetch_unit(std::size_t unit) const {
    if (hints == nullptr || unit == kNoUnit) return 0;
    return prefetch_resource((*hints)(unit)) != 0 ? 1 : 0;
  }
};

// ---- fork-join backend ----------------------------------------------------

void forkjoin_worker(Dispatch& d, std::atomic<std::size_t>& next, int worker) {
  t_worker_index = worker;
  std::uint64_t local_hints = 0;
  std::size_t pending = kNoUnit;
  for (;;) {
    const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
    const std::size_t unit = slot < d.n ? d.order[slot] : kNoUnit;
    local_hints += d.prefetch_unit(unit);  // overlap with pending's run
    if (pending != kNoUnit) d.run_unit(pending);
    pending = unit;
    if (unit == kNoUnit) break;
  }
  if (local_hints != 0) {
    d.prefetches.fetch_add(local_hints, std::memory_order_relaxed);
  }
  t_worker_index = -1;
}

// ---- work-stealing backend ------------------------------------------------

/// One bounded per-worker deque: the current block [begin, end) of the
/// claim permutation, with the owner's pop cursor. Owners pop the front;
/// thieves scan from the back. All crossings (owner vs thief, stale block
/// views after a refill) are resolved by the per-task claim words — a
/// deque is routing metadata, never the source of truth on ownership.
struct alignas(64) Deque {
  std::atomic<std::size_t> begin{0};
  std::atomic<std::size_t> end{0};
  std::atomic<std::size_t> front{0};
};

struct StealState {
  std::unique_ptr<std::atomic<std::uint64_t>[]> claims;  // 0 or the epoch
  std::vector<Deque> deques;
  std::atomic<std::size_t> pool_next{0};  // next unhanded block start
};

/// Claim a task: CAS its claim word from 0 to the fan-out's epoch. The
/// winner (exactly one) runs the task.
bool try_claim(StealState& s, const Dispatch& d, std::size_t unit) {
  std::uint64_t expected = 0;
  return s.claims[unit].compare_exchange_strong(expected, d.epoch,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed);
}

/// Next unit for worker `w`: own deque front, then a block refill from the
/// shared pool (touched once per kStealDequeCapacity tasks, not once per
/// task), then a steal from the back of each victim in seeded order.
/// kNoUnit means every task has been claimed (or is resident only in a
/// just-refilled deque whose owner will run it) — the worker can retire.
std::size_t acquire_unit(const Dispatch& d, StealState& s, std::size_t w,
                         const std::vector<std::size_t>& victims,
                         std::uint64_t& local_steals) {
  Deque& own = s.deques[w];
  for (;;) {
    std::size_t f = own.front.load(std::memory_order_relaxed);
    const std::size_t e = own.end.load(std::memory_order_relaxed);
    while (f < e) {
      const std::size_t unit = d.order[f];
      own.front.store(f + 1, std::memory_order_release);
      ++f;
      if (try_claim(s, d, unit)) return unit;
    }
    const std::size_t block =
        s.pool_next.fetch_add(kStealDequeCapacity, std::memory_order_relaxed);
    if (block >= d.n) break;  // pool dry: go steal
    own.begin.store(block, std::memory_order_relaxed);
    own.front.store(block, std::memory_order_relaxed);
    own.end.store(std::min(block + kStealDequeCapacity, d.n),
                  std::memory_order_release);
  }
  for (const std::size_t v : victims) {
    Deque& victim = s.deques[v];
    const std::size_t e = victim.end.load(std::memory_order_acquire);
    const std::size_t f = victim.front.load(std::memory_order_acquire);
    const std::size_t b = victim.begin.load(std::memory_order_acquire);
    const std::size_t lo = std::max(f, b);
    if (e > d.n || lo >= e) continue;  // empty (or torn view of a refill)
    for (std::size_t i = e; i > lo; --i) {
      const std::size_t unit = d.order[i - 1];
      if (try_claim(s, d, unit)) {
        ++local_steals;
        return unit;
      }
    }
  }
  return kNoUnit;
}

void steal_worker(Dispatch& d, StealState& s, std::size_t workers,
                  std::size_t w, std::uint64_t seed) {
  t_worker_index = static_cast<int>(w);
  const std::vector<std::size_t> victims = victim_order(workers, w, seed);
  std::uint64_t local_steals = 0;
  std::uint64_t local_hints = 0;
  std::size_t pending = kNoUnit;
  for (;;) {
    const std::size_t unit = acquire_unit(d, s, w, victims, local_steals);
    local_hints += d.prefetch_unit(unit);  // overlap with pending's run
    if (pending != kNoUnit) d.run_unit(pending);
    pending = unit;
    if (unit == kNoUnit) break;
  }
  if (local_steals != 0) {
    d.steals.fetch_add(local_steals, std::memory_order_relaxed);
  }
  if (local_hints != 0) {
    d.prefetches.fetch_add(local_hints, std::memory_order_relaxed);
  }
  t_worker_index = -1;
}

}  // namespace

const char* scheduler_backend_name(SchedulerBackend backend) {
  switch (backend) {
    case SchedulerBackend::kForkJoin:
      return "forkjoin";
    case SchedulerBackend::kSteal:
      return "steal";
  }
  return "forkjoin";
}

bool parse_scheduler_backend(const std::string& name, SchedulerBackend* out) {
  if (name == "forkjoin") {
    *out = SchedulerBackend::kForkJoin;
    return true;
  }
  if (name == "steal") {
    *out = SchedulerBackend::kSteal;
    return true;
  }
  return false;
}

std::size_t prefetch_resource(const ResourceHint& hint) {
  if (hint.empty() || hint.mode == PrefetchMode::kNone) return 0;
  const char* base = static_cast<const char*>(hint.data);
  const std::size_t span = std::min(hint.bytes, kMaxPrefetchBytes);
  std::size_t lines = 0;
  for (std::size_t off = 0; off < span; off += kCacheLineBytes) {
#if defined(__GNUC__) || defined(__clang__)
    if (hint.mode == PrefetchMode::kNTA) {
      __builtin_prefetch(base + off, /*rw=*/0, /*locality=*/0);
    } else {
      __builtin_prefetch(base + off, /*rw=*/0, /*locality=*/3);
    }
#endif
    ++lines;
  }
  return lines;
}

int current_worker() { return t_worker_index; }

std::uint64_t current_epoch() {
  return g_epoch.load(std::memory_order_relaxed);
}

void run_parallel(const SchedulerConfig& config, std::size_t n,
                  const TaskFn& fn, const CancelToken* cancel,
                  const HintFn* hints, SchedulerStats* stats) {
  if (n == 0) return;
  const std::size_t workers = std::max<std::size_t>(
      2, std::min(config.workers, n));  // the serial path lives in Executor

  Dispatch d;
  d.n = n;
  d.fn = &fn;
  d.cancel = cancel;
  d.hints = hints;
  d.order = claim_order(n, config.seed);
  d.epoch = 1 + g_epoch.fetch_add(1, std::memory_order_relaxed);

  // The calling thread is worker 0; save/restore its worker mark so a
  // direct call from a pool thread (the executor prevents this, tests may
  // not) cannot leak state.
  const int caller_mark = t_worker_index;

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  if (config.backend == SchedulerBackend::kSteal) {
    StealState s;
    s.claims = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.claims[i].store(0, std::memory_order_relaxed);
    }
    s.deques = std::vector<Deque>(workers);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(
          [&, w] { steal_worker(d, s, workers, w, config.seed); });
    }
    steal_worker(d, s, workers, 0, config.seed);
  } else {
    std::atomic<std::size_t> next{0};
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(
          [&, w] { forkjoin_worker(d, next, static_cast<int>(w)); });
    }
    forkjoin_worker(d, next, 0);
  }
  for (std::thread& t : pool) t.join();
  t_worker_index = caller_mark;

  if (stats != nullptr) {
    stats->tasks = n;
    stats->steals = d.steals.load(std::memory_order_relaxed);
    stats->prefetch_hints = d.prefetches.load(std::memory_order_relaxed);
    stats->epoch = d.epoch;
  }

  // Unit errors outrank cancellation: they describe work that actually ran
  // and the lowest-index selection keeps them deterministic.
  if (d.first_error != nullptr) std::rethrow_exception(d.first_error);
  if (d.cancelled.load(std::memory_order_relaxed)) throw Cancelled();
}

}  // namespace re::engine
