// Task scheduling backends for the deterministic executor, with
// resource-annotated self-prefetching.
//
// Two dispatch strategies share one contract — every unit of a fan-out
// runs exactly once, artifacts are byte-identical at any worker count
// (ordered reduction: units write only their own slots), and among failing
// units the lowest-indexed exception wins:
//
//   kForkJoin — the original pool: one shared claim counter over a seeded
//               permutation of [0, n). Simple, but every claim serializes
//               all workers on one cache line.
//   kSteal    — mxtasking-style work stealing: each worker owns a bounded
//               deque (capacity kStealDequeCapacity) refilled in blocks
//               from the seeded permutation, so the shared cursor is
//               touched once per block instead of once per task. An idle
//               worker walks its seeded steal-victim permutation and takes
//               tasks from the back of a victim's deque. Per-task claim
//               words tagged with the fan-out's epoch make claims
//               exactly-once even when owner and thief race on the same
//               slot, and make a stale deque view harmless — a claim
//               either wins the task or loses to whoever ran it.
//
// Self-prefetching: a task may be annotated with the resource it will
// touch (pointer + span + T0/NTA mode). The dispatcher claims the *next*
// task before running the current one and issues software prefetches for
// the next task's resource — the analysis engine prefetching its own
// artifacts, exactly the discipline the paper asks of application code.
// Hints are a perf action only; they can never affect artifact bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "engine/cancel.hh"

namespace re::engine {

enum class SchedulerBackend : std::uint8_t { kForkJoin, kSteal };

/// Stable lowercase name ("forkjoin", "steal").
const char* scheduler_backend_name(SchedulerBackend backend);
/// Parse a backend name; false (and *out untouched) on anything else.
bool parse_scheduler_backend(const std::string& name, SchedulerBackend* out);

/// Cache hint for a resource prefetch: T0 pulls into the whole hierarchy
/// (data the task will touch repeatedly), NTA bypasses (read-once data
/// that should not evict the task's working set).
enum class PrefetchMode : std::uint8_t { kNone, kT0, kNTA };

/// The resource a task is annotated with: the span of memory it will
/// touch, prefetched by the dispatcher before the task runs.
struct ResourceHint {
  const void* data = nullptr;
  std::size_t bytes = 0;
  PrefetchMode mode = PrefetchMode::kT0;

  bool empty() const { return data == nullptr || bytes == 0; }
};

using TaskFn = std::function<void(std::size_t)>;
/// Annotation callback: the resource hint for unit i. Must be pure with
/// respect to artifacts (it may read shared state, never write it).
using HintFn = std::function<ResourceHint(std::size_t)>;

/// Issue the prefetch instructions for a hint, line by line, capped at
/// kMaxPrefetchBytes (an oversized span prefetches its head — by the time
/// the task streams past it, the hardware prefetcher has taken over).
/// Returns the number of cache lines touched.
std::size_t prefetch_resource(const ResourceHint& hint);

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kMaxPrefetchBytes = 4096;
/// Bounded per-worker deque: at most this many tasks are resident in a
/// worker's deque; refills pull the next block of the permutation.
inline constexpr std::size_t kStealDequeCapacity = 64;

/// Per-fan-out dispatch counters (perf observability; never artifacts).
struct SchedulerStats {
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  std::uint64_t prefetch_hints = 0;
  /// The process-wide epoch this fan-out's task claims were tagged with.
  std::uint64_t epoch = 0;
};

struct SchedulerConfig {
  std::size_t workers = 1;  // >= 2 (the serial path lives in Executor)
  std::uint64_t seed = 0;
  SchedulerBackend backend = SchedulerBackend::kForkJoin;
};

/// Run fn(i) for every i in [0, n) across config.workers threads (the
/// calling thread is worker 0). Exactly-once; deterministic error
/// selection (lowest-indexed unit that threw); cooperative cancellation
/// (armed token stops new units, in-flight units drain, Cancelled is
/// thrown unless a unit error outranks it). `hints`, when non-null, is
/// consulted for every unit and the dispatcher prefetches the next unit's
/// resource before running the current one. `stats`, when non-null,
/// receives this fan-out's dispatch counters.
void run_parallel(const SchedulerConfig& config, std::size_t n,
                  const TaskFn& fn, const CancelToken* cancel,
                  const HintFn* hints, SchedulerStats* stats);

/// Worker index of the calling thread within a live fan-out, -1 outside.
int current_worker();

/// The last epoch handed out (monotone, process-wide; each parallel
/// fan-out takes the next one — the tag that keeps a stale steal from a
/// previous fan-out from ever claiming into the current one).
std::uint64_t current_epoch();

}  // namespace re::engine
