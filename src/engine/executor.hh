// Deterministic thread-pool executor for the analysis engine.
//
// The engine's determinism contract (DESIGN.md §11) is enforced here: a
// fan-out over n independent units produces artifacts that are
// byte-identical to the serial path at any worker count, because
//
//   * every unit writes only its own slot — results are collected into a
//     vector indexed by the unit's original position (ordered reduction;
//     scheduling order never leaks into the output), and
//   * the order in which idle workers *claim* units is a seeded
//     pseudo-random permutation of [0, n) (seeded work-splitting): load
//     balancing is reproducible run-to-run instead of depending on which
//     thread won a race, and a perf anomaly reproduces from the seed.
//
// jobs <= 1 runs inline on the calling thread with zero threading overhead
// — the serial path is the parallel path with one worker, not a separate
// code path that could drift. Nested map()/for_each() calls from inside a
// worker run inline on that worker for the same reason (and to avoid
// deadlocking a fixed-size pool).
//
// Exceptions thrown by units are captured and the one from the
// lowest-indexed unit is rethrown after all workers join, so error
// reporting is deterministic too.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "engine/cancel.hh"

namespace re::engine {

class Executor {
 public:
  /// `jobs` is clamped to at least 1. The seed drives work-splitting only;
  /// it can never affect artifact bytes.
  explicit Executor(int jobs, std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  int jobs() const { return jobs_; }
  std::uint64_t seed() const { return seed_; }

  /// Run fn(i) for every i in [0, n), spreading units over the workers.
  /// fn must only touch state owned by unit i (or immutable shared state).
  /// When `cancel` is armed, workers stop claiming units and Cancelled is
  /// thrown after the in-flight units drain — unless some unit also threw,
  /// in which case that error wins (it describes work that actually ran).
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn,
                const CancelToken* cancel = nullptr) const;

  /// Ordered map: returns {fn(0), fn(1), ..., fn(n-1)} — always in index
  /// order, regardless of which worker computed which unit.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn, const CancelToken* cancel = nullptr) const
      -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<R> results(n);
    for_each(n, [&](std::size_t i) { results[i] = fn(i); }, cancel);
    return results;
  }

  /// True while the calling thread is one of this executor's workers
  /// (nested fan-outs run inline).
  static bool in_worker();

 private:
  int jobs_ = 1;
  std::uint64_t seed_ = 0;
};

}  // namespace re::engine
