// Deterministic thread-pool executor for the analysis engine.
//
// The engine's determinism contract (DESIGN.md §11) is enforced here: a
// fan-out over n independent units produces artifacts that are
// byte-identical to the serial path at any worker count, because
//
//   * every unit writes only its own slot — results are collected into a
//     vector indexed by the unit's original position (ordered reduction;
//     scheduling order never leaks into the output), and
//   * the order in which idle workers *claim* units is a seeded
//     pseudo-random permutation of [0, n) (seeded work-splitting): load
//     balancing is reproducible run-to-run instead of depending on which
//     thread won a race, and a perf anomaly reproduces from the seed.
//
// Dispatch is delegated to a scheduler backend (engine/scheduler.hh):
// kForkJoin shares one claim counter over the permutation; kSteal gives
// each worker a bounded deque refilled in blocks, with seeded victim
// selection and epoch-tagged exactly-once task claims. Both backends
// honor the same contract, so the backend choice — like the seed — can
// never affect artifact bytes.
//
// jobs <= 1 runs inline on the calling thread with zero threading overhead
// — the serial path is the parallel path with one worker, not a separate
// code path that could drift. Nested map()/for_each() calls from inside a
// worker run inline on that worker for the same reason (and to avoid
// deadlocking a fixed-size pool).
//
// Exceptions thrown by units are captured and the one from the
// lowest-indexed unit is rethrown after all workers join, so error
// reporting is deterministic too.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/cancel.hh"
#include "engine/scheduler.hh"

namespace re::engine {

inline constexpr std::uint64_t kDefaultExecutorSeed = 0x9E3779B97F4A7C15ull;

class Executor {
 public:
  /// `jobs` is clamped to at least 1. The seed drives work-splitting (and
  /// steal-victim selection) only; neither it nor the backend can ever
  /// affect artifact bytes.
  explicit Executor(int jobs, std::uint64_t seed = kDefaultExecutorSeed,
                    SchedulerBackend backend = SchedulerBackend::kForkJoin);

  int jobs() const { return jobs_; }
  std::uint64_t seed() const { return seed_; }
  SchedulerBackend backend() const { return backend_; }

  /// Run fn(i) for every i in [0, n), spreading units over the workers.
  /// fn must only touch state owned by unit i (or immutable shared state).
  /// When `cancel` is armed, workers stop claiming units and Cancelled is
  /// thrown after the in-flight units drain — unless some unit also threw,
  /// in which case that error wins (it describes work that actually ran).
  /// `hints`, when non-null, annotates each unit with the resource it will
  /// touch; the dispatcher prefetches the next unit's resource before
  /// running the current one (a perf action only — never artifacts).
  void for_each(std::size_t n, const TaskFn& fn,
                const CancelToken* cancel = nullptr,
                const HintFn* hints = nullptr) const;

  /// Ordered map: returns {fn(0), fn(1), ..., fn(n-1)} — always in index
  /// order, regardless of which worker computed which unit. R need not be
  /// default-constructible: units emplace into optional slots that are
  /// unwrapped (moved out) on return.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn, const CancelToken* cancel = nullptr,
           const HintFn* hints = nullptr) const
      -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<std::optional<R>> slots(n);
    for_each(
        n, [&](std::size_t i) { slots[i].emplace(fn(i)); }, cancel, hints);
    std::vector<R> results;
    results.reserve(n);
    for (std::optional<R>& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// True while the calling thread is one of this executor's workers
  /// (nested fan-outs run inline).
  static bool in_worker();

  /// Dispatch counters accumulated across this executor's fan-outs (perf
  /// observability only — steals and prefetches never affect artifacts).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  std::uint64_t prefetch_hints() const {
    return prefetch_hints_.load(std::memory_order_relaxed);
  }
  /// Epoch of this executor's most recent parallel fan-out (0 before any).
  std::uint64_t last_epoch() const {
    return last_epoch_.load(std::memory_order_relaxed);
  }

 private:
  int jobs_ = 1;
  std::uint64_t seed_ = 0;
  SchedulerBackend backend_ = SchedulerBackend::kForkJoin;
  // Counters mutate under const for_each; an Executor is shared by
  // reference across the engine and is never copied.
  mutable std::atomic<std::uint64_t> steals_{0};
  mutable std::atomic<std::uint64_t> prefetch_hints_{0};
  mutable std::atomic<std::uint64_t> last_epoch_{0};
};

/// One-line audit description of an executor's execution config:
/// "jobs=4 seed=0x... scheduler=steal deque=64 numa=plain(1 node)".
std::string describe_executor(const Executor& executor);

}  // namespace re::engine
