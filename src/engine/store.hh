// Artifact store: allocation-reuse backing for repeated engine solves.
//
// The online runtime re-runs the StatStack solve every few thousand
// references on small windowed sub-profiles; rebuilding the per-PC
// grouping map and its inner vectors from scratch each window dominated
// the solve's allocation cost. The store keeps two things alive across
// solves:
//
//   * an interned PC table — hot PCs recur window after window, so each
//     gets a stable dense index assigned on first sight; grouping then
//     indexes a flat vector instead of rehashing an unordered_map, and
//   * histogram/grouping buffers backed by a NUMA-aware SlabArena
//     (engine/arena.hh) — per-PC sample buffers whose capacity survives
//     clear(), so steady-state windows allocate nothing, and whose pages
//     are placed by the arena's policy (interleaved across nodes, or
//     pinned to the worker that first touches them). A buffer that
//     outgrows its capacity bump-allocates a larger one; the old bytes
//     stay in the slab (growth is doubling, so the waste is bounded by
//     the steady-state footprint).
//
// A store is NOT thread-safe; it belongs to one solve at a time. Parallel
// solves (e.g. the engine-stress test's 64 concurrent windows) use one
// store per unit — the executor's ordered reduction keeps artifacts
// deterministic either way, and a store first touched on its solving
// worker gets node-local pages for free.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/arena.hh"
#include "support/types.hh"

namespace re::engine {

/// Stable Pc -> dense-index interning table.
class PcInterner {
 public:
  /// Index for `pc`, assigning the next dense id on first sight.
  std::uint32_t intern(Pc pc) {
    auto [it, inserted] =
        ids_.emplace(pc, static_cast<std::uint32_t>(pcs_.size()));
    if (inserted) pcs_.push_back(pc);
    return it->second;
  }

  /// The Pc for a dense index (must have been interned).
  Pc pc_of(std::uint32_t index) const { return pcs_[index]; }

  /// Const lookup (must have been interned). Safe to call concurrently —
  /// parallel curve builders resolve their PC's slot through this, never
  /// through intern().
  std::uint32_t index_of(Pc pc) const { return ids_.at(pc); }

  std::size_t size() const { return pcs_.size(); }

 private:
  std::unordered_map<Pc, std::uint32_t> ids_;
  std::vector<Pc> pcs_;
};

/// Reusable per-solve scratch. clear() empties the buffers but keeps their
/// capacity (and the interner's learned PC table) for the next solve.
class ArtifactStore {
 public:
  explicit ArtifactStore(ArenaPlacement placement = ArenaPlacement::kAuto)
      : arena_(placement) {}

  PcInterner& pc_table() { return pc_table_; }
  const PcInterner& pc_table() const { return pc_table_; }

  /// Per-dense-PC sample groups, grown on demand. Buffers come back empty
  /// but with their previous capacity, living in the store's arena.
  std::vector<ArenaVector<RefCount>>& reuse_groups(std::size_t pc_count) {
    while (reuse_groups_.size() < pc_count) {
      reuse_groups_.emplace_back(ArenaAllocator<RefCount>(&arena_));
    }
    return reuse_groups_;
  }

  /// Scratch list of the dense PC ids touched by the current solve.
  std::vector<std::uint32_t>& touched_pcs() { return touched_pcs_; }

  /// Reset per-solve state; interned PCs and buffer capacities survive.
  void clear() {
    for (const std::uint32_t id : touched_pcs_) {
      if (id < reuse_groups_.size()) reuse_groups_[id].clear();
    }
    touched_pcs_.clear();
  }

  /// The arena backing the reuse-group buffers (placement/usage stats).
  const SlabArena& arena() const { return arena_; }

 private:
  PcInterner pc_table_;
  SlabArena arena_;
  std::vector<ArenaVector<RefCount>> reuse_groups_;
  std::vector<std::uint32_t> touched_pcs_;
};

}  // namespace re::engine
