#include "engine/executor.hh"

#include <algorithm>
#include <cstdio>

#include "engine/arena.hh"

namespace re::engine {

Executor::Executor(int jobs, std::uint64_t seed, SchedulerBackend backend)
    : jobs_(std::max(1, jobs)), seed_(seed), backend_(backend) {}

bool Executor::in_worker() { return current_worker() >= 0; }

void Executor::for_each(std::size_t n, const TaskFn& fn,
                        const CancelToken* cancel, const HintFn* hints) const {
  if (n == 0) return;

  // Serial path, and the nested-fan-out path: run inline. A worker that
  // fans out again would deadlock a fixed pool and gains nothing on a
  // machine already saturated by the outer fan-out. Hints are still
  // honored — the serial path pipelines exactly like one worker would.
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1 || in_worker()) {
    std::uint64_t local_hints = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->requested()) {
        if (local_hints != 0) {
          prefetch_hints_.fetch_add(local_hints, std::memory_order_relaxed);
        }
        throw Cancelled();
      }
      if (hints != nullptr && i + 1 < n) {
        local_hints += prefetch_resource((*hints)(i + 1)) != 0 ? 1 : 0;
      }
      fn(i);
    }
    if (local_hints != 0) {
      prefetch_hints_.fetch_add(local_hints, std::memory_order_relaxed);
    }
    return;
  }

  SchedulerConfig config;
  config.workers = workers;
  config.seed = seed_;
  config.backend = backend_;
  SchedulerStats stats;
  run_parallel(config, n, fn, cancel, hints, &stats);
  steals_.fetch_add(stats.steals, std::memory_order_relaxed);
  prefetch_hints_.fetch_add(stats.prefetch_hints, std::memory_order_relaxed);
  last_epoch_.store(stats.epoch, std::memory_order_relaxed);
}

std::string describe_executor(const Executor& executor) {
  const NumaTopology& topo = NumaTopology::cached();
  const SlabArena probe(ArenaPlacement::kAuto);  // the store's default
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "jobs=%d seed=0x%016llx scheduler=%s deque=%zu numa=%s(%d "
                "node%s)",
                executor.jobs(),
                static_cast<unsigned long long>(executor.seed()),
                scheduler_backend_name(executor.backend()),
                kStealDequeCapacity, placement_name(probe.placement()),
                topo.nodes, topo.nodes == 1 ? "" : "s");
  return std::string(buffer);
}

}  // namespace re::engine
