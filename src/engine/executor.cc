#include "engine/executor.hh"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

namespace re::engine {

namespace {

thread_local bool t_in_worker = false;

/// splitmix64 — the standard cheap seeded mixer (same family as
/// support/rng.hh); used only to derive the work-claim permutation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Seeded Fisher-Yates permutation of [0, n): the order in which workers
/// claim units. Deterministic in (n, seed); independent of scheduling.
std::vector<std::size_t> claim_order(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::uint64_t state = seed;
  for (std::size_t i = n; i > 1; --i) {
    state = mix64(state);
    std::swap(order[i - 1], order[state % i]);
  }
  return order;
}

}  // namespace

Executor::Executor(int jobs, std::uint64_t seed)
    : jobs_(std::max(1, jobs)), seed_(seed) {}

bool Executor::in_worker() { return t_in_worker; }

void Executor::for_each(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        const CancelToken* cancel) const {
  if (n == 0) return;

  // Serial path, and the nested-fan-out path: run inline. A worker that
  // fans out again would deadlock a fixed pool and gains nothing on a
  // machine already saturated by the outer fan-out.
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1 || t_in_worker) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->requested()) throw Cancelled();
      fn(i);
    }
    return;
  }

  const std::vector<std::size_t> order = claim_order(n, seed_);
  std::atomic<std::size_t> next{0};

  // Among the units that threw, the lowest-indexed one is rethrown — error
  // selection depends on unit identity, never on which worker lost a race.
  // (Units not yet started when the first failure lands are skipped.)
  std::exception_ptr first_error = nullptr;
  std::size_t first_error_index = 0;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;

  std::atomic<bool> cancelled{false};

  const auto work = [&]() {
    t_in_worker = true;
    for (;;) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= n) break;
      const std::size_t unit = order[slot];
      if (failed.load(std::memory_order_relaxed)) continue;  // drain fast
      if (cancel != nullptr && cancel->requested()) {
        cancelled.store(true, std::memory_order_relaxed);
        continue;  // stop starting new units; in-flight ones finish
      }
      try {
        fn(unit);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr || unit < first_error_index) {
          first_error = std::current_exception();
          first_error_index = unit;
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
    t_in_worker = false;
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  // Unit errors outrank cancellation: they describe work that actually ran
  // and the lowest-index selection keeps them deterministic.
  if (first_error != nullptr) std::rethrow_exception(first_error);
  if (cancelled.load(std::memory_order_relaxed)) throw Cancelled();
}

}  // namespace re::engine
