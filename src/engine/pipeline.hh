// The shared analysis engine: the paper's dataflow as a stage graph.
//
// Every analysis consumer in the repo — core::optimize_program /
// optimize_with_profile, the stride-centric baseline, the adaptive
// controller's per-window refinement, differential verification's
// estimator side, and the experiment drivers — runs one of the graph
// configurations below instead of a hand-rolled call chain. The stages:
//
//   sample    — integrated reuse/stride sampling pass over the program
//   validate  — profile sanitation (skip-not-guess; PR 1's gates)
//   delta     — Δ resolution: assumed > measured > baseline-sim
//   statstack — stack-distance solve + per-PC MRCs + reuse graph
//               (fans out per-PC curve construction across workers)
//   mddli     — delinquent-load identification (cost-benefit filter)
//   stride    — per-load numerics gate, stride analysis, prefetch distance
//               (fans out per delinquent load, ordered reduction)
//   bypass    — non-temporal (cache bypass) decision per selected load
//   insert    — plan assembly + prefetch insertion into the program
//
// Determinism contract: a graph's OptimizationReport is byte-identical at
// any Executor worker count (golden plans are the oracle; see
// serialize_report and DESIGN.md §11).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine/delta.hh"
#include "engine/stage.hh"

namespace re::engine {

/// Artifact set flowing through the optimization graphs. Bound inputs are
/// pointers (owned by the caller); everything else is produced by stages.
struct OptimizeArtifacts {
  // -- bound inputs
  const workloads::Program* program = nullptr;
  const sim::MachineConfig* machine = nullptr;
  core::OptimizerOptions options;
  /// True when the caller supplied `report.profile` directly (replayed or
  /// fault-injected profiles); the `sample` stage is skipped.
  bool profile_bound = false;

  // -- produced artifacts
  /// `validate`: false means the profile was unusable; downstream analysis
  /// stages are skipped and `insert` degrades to a pass-through.
  bool profile_usable = true;
  /// `delta`: where the resolved Δ came from (reporting only).
  DeltaSource delta_source = DeltaSource::kBaselineSim;
  /// `statstack`: the fast cache model and the data-reuse graph.
  std::unique_ptr<core::StatStack> model;
  std::unique_ptr<core::ReuseGraph> reuse_graph;

  /// Per-delinquent-load working state carried from `mddli` through
  /// `insert`; index-parallel with report.delinquent_loads.
  struct LoadState {
    bool selected = false;          // survived every gate so far
    std::int64_t distance_bytes = 0;  // `stride`
    workloads::PrefetchHint hint = workloads::PrefetchHint::T0;  // `bypass`
  };
  std::vector<LoadState> loads;

  /// The final artifact (profile, Δ, delinquent loads, stride infos,
  /// plans, degradation log, optimized program).
  core::OptimizationReport report;
};

/// The full resource-efficient pipeline (Figure 1): sample → validate →
/// delta → statstack → mddli → stride → bypass → insert.
const StageGraph<OptimizeArtifacts>& optimize_graph();

/// The stride-centric baseline (Section VI-D): sample → delta →
/// stride-all → insert. No cache model, no cost-benefit filter, no NT.
const StageGraph<OptimizeArtifacts>& stride_centric_graph();

/// The estimator used by differential verification: statstack → mddli over
/// a bound profile (the exact-LRU side judges the same artifacts).
const StageGraph<OptimizeArtifacts>& estimator_graph();

/// Run `graph` over a fully bound artifact set.
void run_graph(const StageGraph<OptimizeArtifacts>& graph,
               OptimizeArtifacts& artifacts, const EngineContext& ctx);

// -- convenience entry points (what the thin core:: wrappers call) --------

core::OptimizationReport run_optimize(const workloads::Program& program,
                                      const sim::MachineConfig& machine,
                                      const core::OptimizerOptions& options,
                                      const EngineContext& ctx = {});

core::OptimizationReport run_optimize_with_profile(
    const workloads::Program& program, core::Profile profile,
    const sim::MachineConfig& machine, const core::OptimizerOptions& options,
    const EngineContext& ctx = {});

core::OptimizationReport run_stride_centric(
    const workloads::Program& program, const sim::MachineConfig& machine,
    const core::OptimizerOptions& options, const EngineContext& ctx = {});

/// Stable, complete text serialization of a report — the equality witness
/// for the engine's determinism contract (property tests compare these
/// byte-for-byte across worker counts).
std::string serialize_report(const core::OptimizationReport& report);

}  // namespace re::engine
