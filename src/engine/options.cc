#include "engine/options.hh"

#include <cstdio>

namespace re::engine {

core::SamplerConfig make_sampler_config(const AnalysisKnobs& knobs) {
  core::SamplerConfig config;
  config.sample_period = knobs.sample_period;
  config.seed = knobs.sample_seed;
  return config;
}

core::OptimizerOptions make_optimizer_options(const AnalysisKnobs& knobs) {
  core::OptimizerOptions options;
  options.sampler = make_sampler_config(knobs);
  options.mddli = knobs.mddli;
  options.stride = knobs.stride;
  options.bypass = knobs.bypass;
  if (knobs.llc_effective_bytes != 0) {
    // One audited knob fans into both LLC-capacity consumers; a nonzero
    // per-pass override in mddli/bypass themselves still wins (they are
    // passed through unchanged above when this knob is unset).
    options.mddli.llc_effective_bytes = knobs.llc_effective_bytes;
    options.bypass.llc_effective_bytes = knobs.llc_effective_bytes;
  }
  options.enable_non_temporal = knobs.enable_non_temporal;
  options.profile_max_refs = knobs.profile_max_refs;
  options.assumed_cycles_per_memop = knobs.assumed_cycles_per_memop;
  options.measured_cycles_per_memop = knobs.measured_cycles_per_memop;
  return options;
}

std::string describe_knobs(const AnalysisKnobs& knobs) {
  std::string out;
  char buf[128];
  const auto line = [&out, &buf](const char* format, auto... args) {
    std::snprintf(buf, sizeof buf, format, args...);
    out += buf;
  };
  line("sample_period=%llu\n",
       static_cast<unsigned long long>(knobs.sample_period));
  line("sample_seed=%llu\n",
       static_cast<unsigned long long>(knobs.sample_seed));
  line("profile_max_refs=%llu\n",
       static_cast<unsigned long long>(knobs.profile_max_refs));
  line("enable_non_temporal=%d\n", knobs.enable_non_temporal ? 1 : 0);
  line("assumed_cycles_per_memop=%g\n", knobs.assumed_cycles_per_memop);
  line("measured_cycles_per_memop=%g\n", knobs.measured_cycles_per_memop);
  line("llc_effective_bytes=%llu\n",
       static_cast<unsigned long long>(knobs.llc_effective_bytes));
  line("mddli.alpha=%g\n", knobs.mddli.alpha);
  line("stride.min_samples=%llu\n",
       static_cast<unsigned long long>(knobs.stride.min_samples));
  line("stride.dominance_threshold=%g\n", knobs.stride.dominance_threshold);
  line("bypass.drop_threshold=%g\n", knobs.bypass.drop_threshold);
  line("bypass.min_edge_weight=%g\n", knobs.bypass.min_edge_weight);
  return out;
}

}  // namespace re::engine
