// Stage-graph core: named stages over a typed artifact set.
//
// The paper's framework is one fixed dataflow — sampling → StatStack →
// MDDLI → stride/distance → bypass → insertion — but the repo had grown
// five hand-rolled copies of that chain. A StageGraph makes the chain a
// value: each pipeline step is a named Stage that reads and writes declared
// slots of an artifact struct, and every entry point (offline optimize,
// windowed refinement, differential verification, experiment drivers) is a
// *configuration* — a selection of stages over the same artifact type —
// instead of a re-plumbing.
//
// Stages run in declared order on the calling thread; parallelism lives
// *inside* stages (fan-out over independent units via EngineContext's
// Executor, with ordered reduction), never between them. That keeps the
// determinism contract trivially checkable: a graph's output is a pure
// function of its bound inputs, at any worker count.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/executor.hh"
#include "engine/store.hh"

namespace re::engine {

/// Shared execution resources threaded through every stage. All members
/// are optional: null executor = serial, null store = fresh allocations,
/// null cancel = the solve runs to completion.
struct EngineContext {
  const Executor* executor = nullptr;
  ArtifactStore* store = nullptr;
  /// Cooperative cancellation: checked before every stage and before every
  /// fanned-out unit; an armed token unwinds the solve with Cancelled.
  const CancelToken* cancel = nullptr;

  /// Throw Cancelled when the bound token (if any) has been requested.
  void check_cancel() const {
    if (cancel != nullptr && cancel->requested()) throw Cancelled();
  }

  /// Fan out `n` independent units, or run them inline when no executor is
  /// bound. Units must only write state they own; reductions happen by
  /// index afterwards. `hints` (optional) annotates each unit with the
  /// resource it will touch so the dispatcher can prefetch ahead — a perf
  /// action only; the contextless serial fallback ignores it.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn,
                const HintFn* hints = nullptr) const {
    if (executor != nullptr) {
      executor->for_each(n, fn, cancel, hints);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        check_cancel();
        fn(i);
      }
    }
  }
};

/// One named pipeline step over artifact set `A`. `inputs`/`outputs` name
/// the artifact slots the stage reads/writes — they are the graph's
/// self-description (rendered by describe() and DESIGN.md §11's table),
/// kept next to the code they document.
template <typename A>
struct Stage {
  std::string name;
  std::string inputs;
  std::string outputs;
  /// Optional gate: a stage may be skipped based on upstream artifacts
  /// (e.g. everything after `validate` when the profile is unusable).
  std::function<bool(const A&)> enabled;
  std::function<void(A&, const EngineContext&)> run;
};

/// A linear pipeline of stages, run in declared order.
template <typename A>
class StageGraph {
 public:
  StageGraph& add(Stage<A> stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }

  void run(A& artifacts, const EngineContext& ctx) const {
    for (const Stage<A>& stage : stages_) {
      ctx.check_cancel();
      if (stage.enabled && !stage.enabled(artifacts)) continue;
      stage.run(artifacts, ctx);
    }
  }

  const std::vector<Stage<A>>& stages() const { return stages_; }

  /// "name(inputs -> outputs)" per line; the graph's self-description.
  std::string describe() const {
    std::string out;
    for (const Stage<A>& stage : stages_) {
      out += stage.name + "(" + stage.inputs + " -> " + stage.outputs + ")\n";
    }
    return out;
  }

 private:
  std::vector<Stage<A>> stages_;
};

}  // namespace re::engine
