#include "engine/pipeline.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "engine/delta.hh"
#include "workloads/dsl.hh"

namespace re::engine {

namespace {

/// The validator mirrors the stride-analysis gates (PR 1): a clean profile
/// yields byte-identical plans; degraded evidence only ever removes
/// prefetches. Built identically wherever a stage needs it.
core::ProfileValidator make_validator(const core::OptimizerOptions& options) {
  core::ValidatorOptions vopts;
  vopts.min_stride_samples = options.stride.min_samples;
  vopts.dominance_threshold = options.stride.dominance_threshold;
  return core::ProfileValidator(vopts);
}

/// Index stride samples by PC once (read-only under the per-load fan-out).
std::unordered_map<Pc, std::vector<core::StrideSample>> strides_by_pc(
    const core::Profile& profile) {
  std::unordered_map<Pc, std::vector<core::StrideSample>> by_pc;
  for (const core::StrideSample& s : profile.stride_samples) {
    by_pc[s.pc].push_back(s);
  }
  return by_pc;
}

// ---- stages ---------------------------------------------------------------

Stage<OptimizeArtifacts> sample_stage() {
  return {
      "sample",
      "program, options.sampler",
      "report.profile",
      [](const OptimizeArtifacts& a) { return !a.profile_bound; },
      [](OptimizeArtifacts& a, const EngineContext&) {
        a.report.profile = core::profile_program(
            *a.program, a.options.sampler, a.options.profile_max_refs);
      },
  };
}

Stage<OptimizeArtifacts> validate_stage() {
  return {
      "validate",
      "report.profile",
      "report.profile (sanitized), profile_usable, report.degradation",
      nullptr,
      [](OptimizeArtifacts& a, const EngineContext&) {
        const core::ProfileValidator validator = make_validator(a.options);
        Expected<core::Profile> sanitized =
            validator.sanitize(a.report.profile, &a.report.degradation);
        if (!sanitized) {
          // Unusable profile: degrade to "do nothing" — never prefetch on
          // evidence we cannot trust. The unsanitized profile stays in the
          // report for post-mortems.
          a.profile_usable = false;
          return;
        }
        a.report.profile = std::move(*sanitized);
      },
  };
}

Stage<OptimizeArtifacts> delta_stage() {
  return {
      "delta",
      "options.{assumed,measured}_cycles_per_memop | baseline sim",
      "report.cycles_per_memop, delta_source",
      nullptr,
      [](OptimizeArtifacts& a, const EngineContext&) {
        const DeltaEstimate delta = resolve_delta(
            a.options.assumed_cycles_per_memop,
            a.options.measured_cycles_per_memop, [&a] {
              return core::measure_cycles_per_memop(*a.program, *a.machine);
            });
        a.report.cycles_per_memop = delta.cycles_per_memop;
        a.delta_source = delta.source;
      },
  };
}

Stage<OptimizeArtifacts> statstack_stage() {
  return {
      "statstack",
      "report.profile",
      "model (per-PC MRCs), reuse_graph",
      [](const OptimizeArtifacts& a) { return a.profile_usable; },
      [](OptimizeArtifacts& a, const EngineContext& ctx) {
        a.model = std::make_unique<core::StatStack>(a.report.profile,
                                                    ctx.executor, ctx.store);
        a.reuse_graph = std::make_unique<core::ReuseGraph>(a.report.profile);
      },
  };
}

Stage<OptimizeArtifacts> mddli_stage() {
  return {
      "mddli",
      "model, report.profile, machine, options.mddli",
      "report.delinquent_loads, loads",
      [](const OptimizeArtifacts& a) { return a.profile_usable; },
      [](OptimizeArtifacts& a, const EngineContext&) {
        a.report.delinquent_loads = core::identify_delinquent_loads(
            *a.model, a.report.profile, *a.machine, a.options.mddli);
        a.loads.assign(a.report.delinquent_loads.size(),
                       OptimizeArtifacts::LoadState{});
      },
  };
}

Stage<OptimizeArtifacts> stride_stage() {
  return {
      "stride",
      "report.delinquent_loads, report.{profile,cycles_per_memop}",
      "report.stride_infos, loads.{selected,distance_bytes}, "
      "report.degradation",
      [](const OptimizeArtifacts& a) { return a.profile_usable; },
      [](OptimizeArtifacts& a, const EngineContext& ctx) {
        const core::ProfileValidator validator = make_validator(a.options);
        const auto by_pc = strides_by_pc(a.report.profile);

        // Per-load outcome, computed in parallel; each unit owns its slot.
        // The serial merge below re-establishes delinquent-load order, so
        // stride infos, degradation records and selections land exactly as
        // the serial path would emit them.
        struct Outcome {
          bool has_info = false;
          core::StrideInfo info;
          bool has_record = false;
          core::DegradationReason reason{};
          std::string detail;
          bool selected = false;
          std::int64_t distance = 0;
        };
        std::vector<Outcome> outcomes(a.report.delinquent_loads.size());

        // Each unit streams its load's stride samples exactly once —
        // annotate with NTA so the prefetch does not evict the shared
        // model state the other units are reading.
        const HintFn hints = [&](std::size_t i) {
          auto it = by_pc.find(a.report.delinquent_loads[i].pc);
          if (it == by_pc.end()) return ResourceHint{};
          return ResourceHint{it->second.data(),
                              it->second.size() * sizeof(core::StrideSample),
                              PrefetchMode::kNTA};
        };

        ctx.for_each(a.report.delinquent_loads.size(), [&](std::size_t i) {
          const core::DelinquentLoad& load = a.report.delinquent_loads[i];
          Outcome& out = outcomes[i];

          const core::LoadVerdict numerics =
              validator.classify_model_numerics(
                  load.l1_miss_ratio, load.l2_miss_ratio, load.llc_miss_ratio,
                  load.avg_miss_latency, a.report.cycles_per_memop);
          if (numerics.confidence != core::LoadConfidence::kOk) {
            out.has_record = true;
            out.reason = numerics.reason;
            out.detail = numerics.detail;
            return;
          }

          auto it = by_pc.find(load.pc);
          if (it == by_pc.end()) {
            out.has_record = true;
            out.reason = core::DegradationReason::kNoStrideSamples;
            return;
          }
          out.info = core::analyze_strides(load.pc, it->second,
                                           a.options.stride);
          out.has_info = true;
          const core::LoadVerdict stride_verdict =
              validator.classify_stride_evidence(out.info, it->second.size());
          if (stride_verdict.confidence != core::LoadConfidence::kOk) {
            out.has_record = true;
            out.reason = stride_verdict.reason;
            out.detail = stride_verdict.detail;
            return;
          }

          core::PrefetchDistanceParams params;
          params.latency = load.avg_miss_latency;
          params.cycles_per_memop = a.report.cycles_per_memop;
          params.loop_references = a.report.profile.executions_of(load.pc);
          const Expected<std::int64_t> distance =
              core::prefetch_distance_checked(out.info, params);
          if (!distance) {
            out.has_record = true;
            out.reason = core::DegradationReason::kDistanceUnavailable;
            out.detail = distance.status().to_string();
            return;
          }
          out.selected = true;
          out.distance = *distance;
        }, &hints);

        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          Outcome& out = outcomes[i];
          if (out.has_info) {
            a.report.stride_infos.push_back(std::move(out.info));
          }
          if (out.has_record) {
            a.report.degradation.record(a.report.delinquent_loads[i].pc,
                                        out.reason, std::move(out.detail));
          }
          a.loads[i].selected = out.selected;
          a.loads[i].distance_bytes = out.distance;
        }
      },
  };
}

Stage<OptimizeArtifacts> bypass_stage() {
  return {
      "bypass",
      "loads.selected, reuse_graph, model, options.{bypass,enable_nt}",
      "loads.hint",
      [](const OptimizeArtifacts& a) { return a.profile_usable; },
      [](OptimizeArtifacts& a, const EngineContext& ctx) {
        ctx.for_each(a.loads.size(), [&](std::size_t i) {
          if (!a.loads[i].selected) return;
          const Pc pc = a.report.delinquent_loads[i].pc;
          a.loads[i].hint =
              a.options.enable_non_temporal &&
                      core::should_bypass(pc, *a.reuse_graph, *a.model,
                                          *a.machine, a.options.bypass)
                  ? workloads::PrefetchHint::NTA
                  : workloads::PrefetchHint::T0;
        });
      },
  };
}

Stage<OptimizeArtifacts> insert_stage() {
  return {
      "insert",
      "loads, program",
      "report.plans, report.optimized",
      nullptr,
      [](OptimizeArtifacts& a, const EngineContext&) {
        if (!a.profile_usable) {
          // Degraded pass-through: the input program, untouched.
          a.report.optimized = *a.program;
          return;
        }
        for (std::size_t i = 0; i < a.loads.size(); ++i) {
          if (!a.loads[i].selected) continue;
          core::PrefetchPlan plan;
          plan.pc = a.report.delinquent_loads[i].pc;
          plan.distance_bytes = a.loads[i].distance_bytes;
          plan.hint = a.loads[i].hint;
          a.report.plans.push_back(plan);
        }
        a.report.optimized =
            core::insert_prefetches(*a.program, a.report.plans);
      },
  };
}

/// Stride-centric "analysis": every regular-strided load gets a prefetch
/// with a constant assumed memory latency, no cost-benefit, no loop cap.
Stage<OptimizeArtifacts> stride_all_stage() {
  return {
      "stride-all",
      "report.profile, machine.dram_latency",
      "report.stride_infos, report.plans",
      nullptr,
      [](OptimizeArtifacts& a, const EngineContext&) {
        a.report.stride_infos =
            core::analyze_all_strides(a.report.profile, a.options.stride);
        for (const core::StrideInfo& info : a.report.stride_infos) {
          if (!info.regular) continue;
          core::PrefetchDistanceParams params;
          params.latency = static_cast<double>(a.machine->dram_latency);
          params.cycles_per_memop = a.report.cycles_per_memop;
          params.loop_references = ~std::uint64_t{0};  // no cap
          const auto distance = core::prefetch_distance_bytes(info, params);
          if (!distance) continue;

          core::PrefetchPlan plan;
          plan.pc = info.pc;
          plan.distance_bytes = *distance;
          plan.hint = workloads::PrefetchHint::T0;
          a.report.plans.push_back(plan);
        }
      },
  };
}

Stage<OptimizeArtifacts> stride_centric_insert_stage() {
  return {
      "insert",
      "report.plans, program",
      "report.optimized",
      nullptr,
      [](OptimizeArtifacts& a, const EngineContext&) {
        a.report.optimized =
            core::insert_prefetches(*a.program, a.report.plans);
      },
  };
}

}  // namespace

const StageGraph<OptimizeArtifacts>& optimize_graph() {
  static const StageGraph<OptimizeArtifacts> graph = [] {
    StageGraph<OptimizeArtifacts> g;
    g.add(sample_stage())
        .add(validate_stage())
        .add(delta_stage())
        .add(statstack_stage())
        .add(mddli_stage())
        .add(stride_stage())
        .add(bypass_stage())
        .add(insert_stage());
    return g;
  }();
  return graph;
}

const StageGraph<OptimizeArtifacts>& stride_centric_graph() {
  static const StageGraph<OptimizeArtifacts> graph = [] {
    StageGraph<OptimizeArtifacts> g;
    g.add(sample_stage())
        .add(delta_stage())
        .add(stride_all_stage())
        .add(stride_centric_insert_stage());
    return g;
  }();
  return graph;
}

const StageGraph<OptimizeArtifacts>& estimator_graph() {
  static const StageGraph<OptimizeArtifacts> graph = [] {
    StageGraph<OptimizeArtifacts> g;
    g.add(statstack_stage()).add(mddli_stage());
    return g;
  }();
  return graph;
}

void run_graph(const StageGraph<OptimizeArtifacts>& graph,
               OptimizeArtifacts& artifacts, const EngineContext& ctx) {
  if (ctx.store != nullptr) ctx.store->clear();
  graph.run(artifacts, ctx);
}

core::OptimizationReport run_optimize(const workloads::Program& program,
                                      const sim::MachineConfig& machine,
                                      const core::OptimizerOptions& options,
                                      const EngineContext& ctx) {
  OptimizeArtifacts a;
  a.program = &program;
  a.machine = &machine;
  a.options = options;
  a.report.benchmark = program.name;
  run_graph(optimize_graph(), a, ctx);
  return std::move(a.report);
}

core::OptimizationReport run_optimize_with_profile(
    const workloads::Program& program, core::Profile profile,
    const sim::MachineConfig& machine, const core::OptimizerOptions& options,
    const EngineContext& ctx) {
  OptimizeArtifacts a;
  a.program = &program;
  a.machine = &machine;
  a.options = options;
  a.profile_bound = true;
  a.report.profile = std::move(profile);
  a.report.benchmark = program.name;
  run_graph(optimize_graph(), a, ctx);
  return std::move(a.report);
}

core::OptimizationReport run_stride_centric(
    const workloads::Program& program, const sim::MachineConfig& machine,
    const core::OptimizerOptions& options, const EngineContext& ctx) {
  OptimizeArtifacts a;
  a.program = &program;
  a.machine = &machine;
  a.options = options;
  a.report.benchmark = program.name;
  run_graph(stride_centric_graph(), a, ctx);
  return std::move(a.report);
}

std::string serialize_report(const core::OptimizationReport& report) {
  std::string out;
  char buf[256];
  const auto append = [&out, &buf](const char* format, auto... args) {
    std::snprintf(buf, sizeof buf, format, args...);
    out += buf;
  };

  append("report %s\n", report.benchmark.c_str());
  append("delta %.17g\n", report.cycles_per_memop);
  append("profile refs=%" PRIu64 " reuse=%zu dangling=%" PRIu64
         " strides=%zu period=%" PRIu64 "\n",
         report.profile.total_references, report.profile.reuse_samples.size(),
         report.profile.dangling_reuse_samples,
         report.profile.stride_samples.size(), report.profile.sample_period);
  for (const core::DelinquentLoad& d : report.delinquent_loads) {
    append("delinquent pc%u l1=%.17g l2=%.17g llc=%.17g lat=%.17g "
           "misses=%.17g\n",
           d.pc, d.l1_miss_ratio, d.l2_miss_ratio, d.llc_miss_ratio,
           d.avg_miss_latency, d.estimated_l1_misses);
  }
  for (const core::StrideInfo& s : report.stride_infos) {
    append("stride pc%u regular=%d stride=%" PRId64 " dom=%.17g rec=%.17g\n",
           s.pc, s.regular ? 1 : 0, s.stride, s.dominance,
           s.mean_recurrence);
  }
  for (const core::PrefetchPlan& p : report.plans) {
    append("plan pc%u %s %+" PRId64 "\n", p.pc, core::hint_mnemonic(p.hint),
           p.distance_bytes);
  }
  out += "degradation:\n";
  out += report.degradation.to_string();
  out += "optimized:\n";
  out += workloads::print_program(report.optimized);
  return out;
}

}  // namespace re::engine

// ---- thin core:: wrappers -------------------------------------------------
//
// The historical entry points keep their exact signatures and semantics;
// they are now one-line stage-graph configurations (DESIGN.md §11 maps each
// old entry point to its graph).

namespace re::core {

OptimizationReport optimize_program(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const OptimizerOptions& options) {
  return engine::run_optimize(program, machine, options);
}

OptimizationReport optimize_with_profile(const workloads::Program& program,
                                         Profile profile,
                                         const sim::MachineConfig& machine,
                                         const OptimizerOptions& options) {
  return engine::run_optimize_with_profile(program, std::move(profile),
                                           machine, options);
}

OptimizationReport stride_centric_optimize(const workloads::Program& program,
                                           const sim::MachineConfig& machine,
                                           const OptimizerOptions& options) {
  return engine::run_stride_centric(program, machine, options);
}

}  // namespace re::core
