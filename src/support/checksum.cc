#include "support/checksum.hh"

#include <array>

namespace re::support {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::string_view data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = kCrcTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace re::support
