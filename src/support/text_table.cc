#include "support/text_table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace re {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        out << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        out << "  " << std::string(widths[c] - cell.size(), ' ') << cell;
      }
    }
    out << '\n';
  };

  std::size_t total_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total_width += widths[c] + (c == 0 ? 0 : 2);
  }

  std::ostringstream out;
  emit_row(out, header_);
  out << std::string(total_width, '-') << '\n';
  for (const Row& row : rows_) {
    if (row.separator) {
      out << std::string(total_width, '-') << '\n';
    } else {
      emit_row(out, row.cells);
    }
  }
  return out.str();
}

namespace {
std::string format_with(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}
}  // namespace

std::string format_percent(double fraction, int decimals) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df%%%%", decimals);
  return format_with(fmt, fraction * 100.0);
}

std::string format_double(double value, int decimals) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", decimals);
  return format_with(fmt, value);
}

std::string format_gbps(double gigabytes_per_second, int decimals) {
  return format_double(gigabytes_per_second, decimals) + " GB/s";
}

std::string format_speedup_percent(double speedup_ratio, int decimals) {
  return format_percent(speedup_ratio - 1.0, decimals);
}

}  // namespace re
