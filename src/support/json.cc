#include "support/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>

// GCC 12 issues spurious -Wmaybe-uninitialized warnings for the recursive
// std::variant's inlined destructor chains in the parser below (the
// moved-from Value temporaries are fully constructed on every path); the
// misdiagnosis survives out-of-lining, so silence it for this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace re::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Value> run() {
    skip_ws();
    Expected<Value> v = parse_value();
    if (!v) return v;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return v;
  }

 private:
  Status make_error(const std::string& what) const {
    return Status(StatusCode::kDataLoss,
                  "json: " + what + " at offset " + std::to_string(pos_));
  }
  Expected<Value> error(const std::string& what) const {
    return Expected<Value>(make_error(what));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Expected<Value> parse_value() {
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Expected<std::string> s = parse_string();
      if (!s) return Expected<Value>(s.status());
      return Expected<Value>(Value(std::move(*s)));
    }
    if (consume_word("true")) return Expected<Value>(Value(true));
    if (consume_word("false")) return Expected<Value>(Value(false));
    if (consume_word("null")) return Expected<Value>(Value(nullptr));
    return parse_number();
  }

  static Expected<Value> finish_value(Value v) {
    return Expected<Value>(std::move(v));
  }

  Expected<Value> parse_object() {
    ++pos_;  // '{'
    Object out;
    skip_ws();
    if (consume('}')) return finish_value(Value(std::move(out)));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      Expected<std::string> key = parse_string();
      if (!key) return Expected<Value>(key.status());
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      skip_ws();
      Expected<Value> value = parse_value();
      if (!value) return value;
      out.insert_or_assign(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return finish_value(Value(std::move(out)));
      return error("expected ',' or '}'");
    }
  }

  Expected<Value> parse_array() {
    ++pos_;  // '['
    Array out;
    skip_ws();
    if (consume(']')) return finish_value(Value(std::move(out)));
    while (true) {
      skip_ws();
      Expected<Value> value = parse_value();
      if (!value) return value;
      out.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return finish_value(Value(std::move(out)));
      return error("expected ',' or ']'");
    }
  }

  Expected<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Pass the sequence through verbatim; the repo's writers never
            // emit \u escapes.
            out += "\\u";
            break;
          default:
            return Expected<std::string>(make_error("bad escape"));
        }
        continue;
      }
      out += c;
    }
    return Expected<std::string>(make_error("unterminated string"));
  }

  Expected<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected a value");
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_) {
      pos_ = start;
      return error("malformed number");
    }
    return Expected<Value>(Value(value));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Value> parse(std::string_view text) { return Parser(text).run(); }

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace re::json
