#include "support/histogram.hh"

#include <algorithm>

namespace re {

CumulativeDistribution::CumulativeDistribution(
    std::vector<std::pair<std::uint64_t, double>> sorted_counts, double total)
    : total_(total) {
  keys_.reserve(sorted_counts.size());
  cumulative_.reserve(sorted_counts.size());
  double running = 0.0;
  for (const auto& [key, count] : sorted_counts) {
    running += count;
    keys_.push_back(key);
    cumulative_.push_back(running);
  }
}

double CumulativeDistribution::count_le(std::uint64_t x) const {
  auto it = std::upper_bound(keys_.begin(), keys_.end(), x);
  if (it == keys_.begin()) return 0.0;
  return cumulative_[static_cast<std::size_t>(it - keys_.begin()) - 1];
}

double CumulativeDistribution::cdf(std::uint64_t x) const {
  if (total_ <= 0.0) return 1.0;
  return count_le(x) / total_;
}

std::uint64_t CumulativeDistribution::quantile(double q) const {
  if (keys_.empty()) return 0;
  const double target = q * total_;
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) return keys_.back();
  return keys_[static_cast<std::size_t>(it - cumulative_.begin())];
}

std::pair<std::uint64_t, double> Histogram::mode() const {
  std::uint64_t best_key = 0;
  double best_count = 0.0;
  for (const auto& [key, count] : counts_) {
    if (count > best_count || (count == best_count && key < best_key)) {
      best_key = key;
      best_count = count;
    }
  }
  return {best_key, best_count};
}

double Histogram::mean() const {
  if (total_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& [key, count] : counts_) {
    sum += static_cast<double>(key) * count;
  }
  return sum / total_;
}

CumulativeDistribution Histogram::cumulative() const {
  return CumulativeDistribution(sorted(), total_);
}

std::vector<std::pair<std::uint64_t, double>> Histogram::sorted() const {
  std::vector<std::pair<std::uint64_t, double>> out(counts_.begin(),
                                                    counts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [key, count] : other.counts_) add(key, count);
}

void Histogram::clear() {
  counts_.clear();
  total_ = 0.0;
}

}  // namespace re
