#include "support/atomic_file.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace re::support {

namespace {

/// fsync the directory containing `path` so the rename that just landed
/// there is durable. POSIX persists a rename only once the parent
/// directory's metadata reaches the disk; without this a crash immediately
/// after rename() can forget the whole commit even though the data blocks
/// of the temp file were synced.
Status sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  "cannot open directory " + dir + " for fsync: " +
                      std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    // Some filesystems refuse fsync on directories (EINVAL); the rename is
    // still atomic there, just not durability-ordered — not a data loss.
    if (saved_errno == EINVAL || saved_errno == ENOSYS) return Status::Ok();
    return Status(StatusCode::kUnavailable,
                  "fsync " + dir + ": " + std::strerror(saved_errno));
  }
  return Status::Ok();
}

}  // namespace

Status write_file_atomic(const std::string& path,
                         const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  "cannot open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + written,
                              contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return Status(StatusCode::kDataLoss,
                    "short write to " + tmp + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // The temp file's data must be on disk before the rename publishes it —
  // otherwise the rename can survive a crash while the bytes do not, and
  // the "old or new, never torn" contract breaks with a zero-length file.
  if (::fsync(fd) != 0) {
    const Status status(StatusCode::kDataLoss,
                        "fsync " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    std::remove(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kDataLoss,
                  "close " + tmp + ": " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kUnavailable,
                  "cannot rename " + tmp + " to " + path);
  }
  // Persist the rename itself (see sync_parent_dir). The commit point for
  // callers is this fsync, not the rename.
  return sync_parent_dir(path);
}

Expected<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kUnavailable, "cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace re::support
