#include "support/atomic_file.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace re::support {

Status write_file_atomic(const std::string& path,
                         const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status(StatusCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status(StatusCode::kDataLoss, "short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kUnavailable,
                  "cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

Expected<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kUnavailable, "cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace re::support
