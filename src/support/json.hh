// Minimal JSON reader for persistence formats (plan-cache snapshots, bench
// reports). No external dependencies are available in the build image, so
// this is a small hand-rolled recursive-descent parser covering the JSON
// subset the repo emits: objects, arrays, strings (with \uXXXX left as-is),
// finite numbers, booleans and null. Writers format their JSON by hand; the
// shared escape helper below keeps the two sides consistent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "support/status.hh"

namespace re::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps key order deterministic for round-trip tests.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}        // NOLINT(runtime/explicit)
  Value(bool b) : data_(b) {}                      // NOLINT(runtime/explicit)
  Value(double d) : data_(d) {}                    // NOLINT(runtime/explicit)
  Value(std::string s) : data_(std::move(s)) {}    // NOLINT(runtime/explicit)
  Value(Array a) : data_(std::move(a)) {}          // NOLINT(runtime/explicit)
  Value(Object o) : data_(std::move(o)) {}         // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Errors carry the byte offset of the failure.
Expected<Value> parse(std::string_view text);

/// Escape a string for embedding in a JSON document (quotes not included).
std::string escape(std::string_view raw);

}  // namespace re::json
