// Deterministic random number generation.
//
// Every source of randomness in the framework flows through a seeded Rng so
// that all experiments are exactly reproducible run-to-run. Benches derive
// sub-seeds from a fixed master seed.
#pragma once

#include <cstdint>
#include <random>

namespace re {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t next(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Geometric inter-arrival gap with mean `mean` (>= 1). Used by the
  /// sampler to pick the next memory reference to sample.
  std::uint64_t geometric_gap(double mean) {
    if (mean <= 1.0) return 1;
    std::geometric_distribution<std::uint64_t> dist(1.0 / mean);
    return dist(engine_) + 1;
  }

  /// Derive an independent child seed (for sub-components).
  std::uint64_t fork() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace re
