// ASCII rendering of figure-style output: grouped bar charts (Fig. 4-6) and
// sorted distribution functions (Fig. 7/9).
#pragma once

#include <string>
#include <vector>

namespace re {

/// A named series of y-values over shared x-labels.
struct ChartSeries {
  std::string name;
  std::vector<double> values;
};

/// Grouped horizontal bar chart: one block per x-label, one bar per series.
/// Values are rendered as percentage bars around zero (negative bars extend
/// left). Used to echo the paper's grouped bar figures in text form.
std::string render_grouped_bars(const std::vector<std::string>& labels,
                                const std::vector<ChartSeries>& series,
                                double value_scale = 100.0,
                                const std::string& unit = "%");

/// Sorted distribution function (the paper's Fig. 7/9 style): each series is
/// sorted ascending and printed at the given percentile steps.
std::string render_distribution(const std::vector<ChartSeries>& series,
                                int steps = 10);

}  // namespace re
