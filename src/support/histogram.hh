// Sparse histogram over 64-bit keys.
//
// Used for reuse-distance distributions, stride distributions and stack
// distance distributions. Supports conversion to a sorted CDF for the
// StatStack math (P(reuse distance > x) queries need prefix sums).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace re {

/// A sorted (key, cumulative-count) representation of a histogram, built
/// once and then queried many times. Supports O(log n) rank queries.
class CumulativeDistribution {
 public:
  CumulativeDistribution() = default;
  CumulativeDistribution(std::vector<std::pair<std::uint64_t, double>> sorted_counts,
                         double total);

  /// Number of samples with key <= x.
  double count_le(std::uint64_t x) const;

  /// Number of samples with key > x.
  double count_gt(std::uint64_t x) const { return total_ - count_le(x); }

  /// P(key <= x); returns 1.0 for an empty distribution.
  double cdf(std::uint64_t x) const;

  /// P(key > x).
  double survival(std::uint64_t x) const { return 1.0 - cdf(x); }

  double total() const { return total_; }
  bool empty() const { return total_ <= 0.0; }

  /// Smallest key with CDF >= q (quantile); 0 for empty distributions.
  std::uint64_t quantile(double q) const;

  /// Largest key present (0 if empty).
  std::uint64_t max_key() const { return keys_.empty() ? 0 : keys_.back(); }

 private:
  std::vector<std::uint64_t> keys_;     // sorted unique keys
  std::vector<double> cumulative_;      // cumulative counts, parallel to keys_
  double total_ = 0.0;
};

/// Sparse histogram: key -> count. Weighted increments are allowed so that
/// sampled distributions can be scaled to full-execution estimates.
class Histogram {
 public:
  void add(std::uint64_t key, double weight = 1.0) {
    counts_[key] += weight;
    total_ += weight;
  }

  double total() const { return total_; }
  bool empty() const { return counts_.empty(); }
  std::size_t distinct_keys() const { return counts_.size(); }

  double count_of(std::uint64_t key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0.0 : it->second;
  }

  /// Key with the highest count; (0, 0.0) if empty. Ties resolve to the
  /// smallest key so results are deterministic.
  std::pair<std::uint64_t, double> mode() const;

  /// Mean of the distribution (0 for empty).
  double mean() const;

  /// Build the sorted cumulative form for repeated queries.
  CumulativeDistribution cumulative() const;

  /// Sorted (key, count) pairs, ascending by key.
  std::vector<std::pair<std::uint64_t, double>> sorted() const;

  void merge(const Histogram& other);
  void clear();

 private:
  std::unordered_map<std::uint64_t, double> counts_;
  double total_ = 0.0;
};

}  // namespace re
