// Structured error handling for the analysis pipeline.
//
// The profiling/modeling chain consumes sampled data that real hardware
// frameworks deliver degraded (dropped watchpoints, multiplexed counters,
// truncated runs). Failures along that chain are expected operating
// conditions, not programming errors, so they are reported as values — a
// `Status` carrying a machine-readable code plus context — rather than as
// exceptions. `Expected<T>` is the usual value-or-status union.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace re {

enum class StatusCode {
  kOk = 0,
  /// Caller handed in something structurally unusable (e.g. a null profile).
  kInvalidArgument,
  /// A value fell outside its legal range (negative latency, NaN ratio...).
  kOutOfRange,
  /// An invariant the computation depends on does not hold (e.g. zero
  /// references in a profile that claims samples).
  kFailedPrecondition,
  /// Input data is present but corrupt or too degraded to trust.
  kDataLoss,
  /// A component (file, runtime domain, circuit) is down right now; the
  /// operation may succeed later or on another domain. Used by the recovery
  /// paths: a tripped circuit breaker, an unreadable snapshot file.
  kUnavailable,
  /// A bug in this library (should never be produced by degraded input).
  kInternal,
};

/// Stable lower-case token for a code, suitable for logs and tests.
constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "ok";
    std::string out = status_code_name(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error: holds a T on success, a non-ok Status on failure.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(Status status) : data_(std::move(status)) {  // NOLINT
    // An ok status carries no value; normalize to an internal error so the
    // invariant "has_value() || !status().ok()" always holds.
    if (std::get<Status>(data_).ok()) {
      data_ = Status(StatusCode::kInternal, "Expected constructed from ok");
    }
  }

  bool has_value() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return has_value(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Ok when a value is held; the stored error otherwise.
  Status status() const {
    return has_value() ? Status::Ok() : std::get<Status>(data_);
  }

  T value_or(T fallback) const& {
    return has_value() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace re
