// Atomic file writes: the one tested temp-file + rename code path.
//
// Both the bench JSON reports and the plan-cache journal must never leave a
// torn file behind — a reader that races a writer (or a process killed
// mid-write) sees either the complete old contents or the complete new
// contents, never a prefix. POSIX rename(2) within one directory gives the
// atomicity; durability needs two fsyncs on top: the temp file's data
// before the rename (so the published file can never be empty after a
// crash) and the parent directory after it (rename() lands in directory
// metadata, and a crash immediately after rename can otherwise forget the
// whole commit). This helper owns the temp-file naming, the short-write
// check, both fsyncs and the cleanup so every persistence site shares one
// code path.
#pragma once

#include <string>

#include "support/status.hh"

namespace re::support {

/// Write `contents` to `path` atomically and durably: write `path`.tmp,
/// fsync it, rename over `path`, fsync the parent directory. On any failure
/// the temp file is removed and `path` is left untouched (old contents
/// intact). Errors carry kUnavailable (cannot open, rename or sync the
/// directory) or kDataLoss (short write / failed data sync).
Status write_file_atomic(const std::string& path, const std::string& contents);

/// Read a whole file. kUnavailable when it cannot be opened.
Expected<std::string> read_file(const std::string& path);

}  // namespace re::support
