// Payload checksums for crash-consistent persistence.
//
// The plan-cache journal (and any future on-disk state) guards each record
// with a CRC so a torn write, bit rot, or a truncated tail is detected and
// quarantined instead of silently feeding garbage back into the runtime.
// CRC-32 (the IEEE 802.3 polynomial, as used by zip/png) is plenty for
// record-level corruption detection and keeps the format inspectable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace re::support {

/// CRC-32 (reflected, polynomial 0xEDB88320) of `data`. Matches the common
/// zlib/png checksum: crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Fixed-width lower-case hex rendering of a CRC ("00000000".."ffffffff");
/// keeps journal lines byte-stable across platforms and printf quirks.
std::string crc32_hex(std::uint32_t crc);

}  // namespace re::support
