// Plain-text table rendering for bench output.
//
// Every table/figure harness prints paper-style rows through this renderer so
// output is aligned and diffable.
#pragma once

#include <string>
#include <vector>

namespace re {

/// Column-aligned text table. Left-aligns the first column, right-aligns the
/// rest (numeric convention).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void add_separator();

  /// Render with a column gap of two spaces and a header underline.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format helpers shared by benches.
std::string format_percent(double fraction, int decimals = 1);
std::string format_double(double value, int decimals = 2);
std::string format_gbps(double gigabytes_per_second, int decimals = 2);
std::string format_speedup_percent(double speedup_ratio, int decimals = 1);

}  // namespace re
