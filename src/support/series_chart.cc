#include "support/series_chart.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/text_table.hh"

namespace re {

namespace {
constexpr int kBarWidth = 40;

std::string bar_for(double value, double max_abs) {
  if (max_abs <= 0.0) max_abs = 1.0;
  const int cells = static_cast<int>(
      std::lround(std::min(1.0, std::fabs(value) / max_abs) * kBarWidth));
  std::string bar(static_cast<std::size_t>(cells), value < 0 ? '-' : '#');
  return bar;
}
}  // namespace

std::string render_grouped_bars(const std::vector<std::string>& labels,
                                const std::vector<ChartSeries>& series,
                                double value_scale, const std::string& unit) {
  double max_abs = 0.0;
  std::size_t name_width = 0;
  for (const ChartSeries& s : series) {
    name_width = std::max(name_width, s.name.size());
    for (double v : s.values) max_abs = std::max(max_abs, std::fabs(v));
  }

  std::ostringstream out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out << labels[i] << '\n';
    for (const ChartSeries& s : series) {
      if (i >= s.values.size()) continue;
      const double v = s.values[i];
      char value_buf[64];
      std::snprintf(value_buf, sizeof(value_buf), "%8.1f%s", v * value_scale,
                    unit.c_str());
      out << "  " << s.name << std::string(name_width - s.name.size(), ' ')
          << ' ' << value_buf << "  |" << bar_for(v, max_abs) << '\n';
    }
  }
  return out.str();
}

std::string render_distribution(const std::vector<ChartSeries>& series,
                                int steps) {
  std::vector<std::string> header{"Runs"};
  std::vector<ChartSeries> sorted = series;
  for (ChartSeries& s : sorted) {
    std::sort(s.values.begin(), s.values.end());
    header.push_back(s.name);
  }

  TextTable table(header);
  for (int step = 0; step <= steps; ++step) {
    const double q = static_cast<double>(step) / steps;
    std::vector<std::string> row{format_percent(q, 0)};
    for (const ChartSeries& s : sorted) {
      if (s.values.empty()) {
        row.push_back("-");
        continue;
      }
      // Quantile by nearest-rank over the sorted run results.
      const std::size_t idx = std::min(
          s.values.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(s.values.size())));
      row.push_back(format_percent(s.values[idx]));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace re
