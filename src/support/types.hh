// Basic shared typedefs and constants for the resource-efficient
// prefetching framework.
#pragma once

#include <cstdint>

namespace re {

/// Byte address in the simulated address space.
using Addr = std::uint64_t;

/// Simulated processor cycle count.
using Cycle = std::uint64_t;

/// Identifier of a static instruction ("program counter").
using Pc = std::uint32_t;

/// Number of memory references (used for reuse/stack distances).
using RefCount = std::uint64_t;

/// Sentinel for "no reuse observed" (cold / dangling sample).
inline constexpr RefCount kInfiniteDistance = ~RefCount{0};

/// Cache line size used throughout (both paper machines use 64 B lines).
inline constexpr std::uint32_t kLineSize = 64;
inline constexpr std::uint32_t kLineShift = 6;

/// Convert a byte address to a cache-line address (line index).
constexpr Addr line_of(Addr addr) { return addr >> kLineShift; }

/// Convert a cache-line index back to the base byte address of that line.
constexpr Addr line_base(Addr line) { return line << kLineShift; }

}  // namespace re
