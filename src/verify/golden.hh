// Golden-plan snapshots: the full pipeline's prefetch plans for the
// 12-benchmark suite, rendered in a stable text format and committed under
// tests/golden/. A plan change — a new distance, a hint flip, a load
// appearing or vanishing — shows up as a readable diff instead of silently
// shifting downstream performance numbers. Re-blessing is deliberate:
// `repf verify --bless` rewrites the snapshot after a reviewed change.
#pragma once

#include <string>
#include <vector>

#include "core/insertion.hh"
#include "sim/config.hh"

namespace re::engine {
class Executor;
}  // namespace re::engine

namespace re::verify {

struct GoldenEntry {
  std::string benchmark;
  std::vector<core::PrefetchPlan> plans;
};

/// Run the full optimization pipeline (default options, Reference inputs)
/// over the whole suite on `machine`, in Table I order. With an executor,
/// benchmarks fan out over its workers; entries stay in Table I order and
/// are byte-identical to the serial path at any worker count — this is the
/// oracle `repf verify --golden --jobs N` checks.
std::vector<GoldenEntry> compute_suite_plans(
    const sim::MachineConfig& machine,
    const engine::Executor* executor = nullptr);

/// Render entries in the golden format. Comment lines (leading '#') carry
/// the machine tag and the re-bless instructions; they are ignored by
/// comparison so they can evolve freely.
std::string render_golden(const std::vector<GoldenEntry>& entries,
                          const std::string& machine_name);

/// Snapshot file name for a machine: "plans_<machine>.golden".
std::string golden_filename(const std::string& machine_name);

/// Compare two renderings, ignoring comments and blank lines. Returns an
/// empty string when equivalent, else a line-oriented -expected/+actual
/// diff suitable for test failure messages.
std::string diff_golden(const std::string& expected, const std::string& actual);

}  // namespace re::verify
