// Golden-plan snapshots: the full pipeline's prefetch plans for the
// 12-benchmark suite, rendered in a stable text format and committed under
// tests/golden/. A plan change — a new distance, a hint flip, a load
// appearing or vanishing — shows up as a readable diff instead of silently
// shifting downstream performance numbers. Re-blessing is deliberate:
// `repf verify --bless` rewrites the snapshot after a reviewed change.
#pragma once

#include <string>
#include <vector>

#include "core/insertion.hh"
#include "sim/config.hh"

namespace re::engine {
class Executor;
}  // namespace re::engine

namespace re::verify {

struct GoldenEntry {
  std::string benchmark;
  std::vector<core::PrefetchPlan> plans;
};

/// Run the full optimization pipeline (default options, Reference inputs)
/// over the whole suite on `machine`, in Table I order. With an executor,
/// benchmarks fan out over its workers; entries stay in Table I order and
/// are byte-identical to the serial path at any worker count — this is the
/// oracle `repf verify --golden --jobs N` checks.
std::vector<GoldenEntry> compute_suite_plans(
    const sim::MachineConfig& machine,
    const engine::Executor* executor = nullptr);

/// Render entries in the golden format. Comment lines (leading '#') carry
/// the machine tag and the re-bless instructions; they are ignored by
/// comparison so they can evolve freely.
std::string render_golden(const std::vector<GoldenEntry>& entries,
                          const std::string& machine_name);

/// Snapshot file name for a machine: "plans_<machine>.golden".
std::string golden_filename(const std::string& machine_name);

/// Compare two renderings, ignoring comments and blank lines. Returns an
/// empty string when equivalent, else a line-oriented -expected/+actual
/// diff suitable for test failure messages.
std::string diff_golden(const std::string& expected, const std::string& actual);

// ---- co-run golden plans ------------------------------------------------
//
// Contention-adjusted snapshot: every suite benchmark runs as the victim on
// core 0 against three deterministic streaming aggressors, through the full
// co-run pipeline (analysis::run_corun), and its core-0 prefetch plan —
// solved with the composed effective-LLC-share knob — is snapshotted. A
// composition change that shifts any victim's plan shows up as a readable
// diff, exactly like the solo plans_<machine>.golden.

/// Compute the co-run victim plans for the whole suite on `machine`, in
/// Table I order. With an executor, benchmarks fan out over its workers;
/// output is byte-identical to the serial path at any worker count.
std::vector<GoldenEntry> compute_corun_suite_plans(
    const sim::MachineConfig& machine,
    const engine::Executor* executor = nullptr);

/// Render co-run entries (same body format as render_golden, with co-run
/// re-bless instructions in the comment header).
std::string render_corun_golden(const std::vector<GoldenEntry>& entries,
                                const std::string& machine_name);

/// Snapshot file name for a machine: "corun_plans_<machine>.golden".
std::string corun_golden_filename(const std::string& machine_name);

}  // namespace re::verify
