// Exact shared-LLC reference model for co-running cores.
//
// Runs ONE true LRU stack (verify::StackDistanceClock) over the interleaved
// multi-core access stream and attributes every hit/miss to the core that
// issued it. This is the ground truth the composed co-run MRCs
// (analysis::CoRunModel) are held against by the co-run differential
// harness: the shared stack sees the real interleaving, so thrashing by one
// core genuinely inflates its neighbours' stack distances, with no modeling
// assumptions at all.
//
// Miss counts are integer-exact (ExactMrc::miss_count_lines), so the
// attribution identity — per-core misses summing to the shared total at
// every cache size — holds exactly, not within floating-point slack.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hh"
#include "verify/exact_lru.hh"

namespace re::verify {

/// One fully-associative LRU cache shared by `cores` co-running cores.
/// Feed the interleaved access stream via observe(core, pc, addr) in global
/// (interleaved) order, then finalize() once before querying.
class ExactSharedLruModel {
 public:
  explicit ExactSharedLruModel(int cores);

  /// Feed one memory reference issued by `core`, in interleaved order.
  void observe(int core, Pc pc, Addr addr);

  /// Build the queryable curves. Must be called (once) before the query
  /// methods; observe() may not be called afterwards.
  void finalize();

  int cores() const { return static_cast<int>(per_core_raw_.size()); }

  /// Whole-stream curve over every access from every core.
  const ExactMrc& application_mrc() const { return application_; }

  /// Curve over the accesses issued by `core`, with stack distances
  /// measured in the *shared* stack — i.e. core `core`'s effective MRC
  /// under this co-run's contention.
  const ExactMrc& core_mrc(int core) const { return per_core_[core]; }

  std::uint64_t accesses() const { return clock_.accesses(); }
  std::uint64_t accesses_of(int core) const {
    return per_core_raw_[core].accesses;
  }

  /// Integer-exact shared miss count at `cache_lines` lines.
  std::uint64_t misses_at(std::uint64_t cache_lines) const {
    return application_.miss_count_lines(cache_lines);
  }

  /// Integer-exact misses attributed to `core` at `cache_lines` lines.
  /// Summed over all cores this equals misses_at(cache_lines) exactly.
  std::uint64_t core_misses_at(int core, std::uint64_t cache_lines) const {
    return per_core_[core].miss_count_lines(cache_lines);
  }

 private:
  struct CoreAccumulator {
    std::vector<RefCount> distances;
    std::uint64_t cold = 0;
    std::uint64_t accesses = 0;
  };

  StackDistanceClock clock_;
  std::vector<CoreAccumulator> per_core_raw_;

  std::vector<RefCount> app_distances_;
  std::uint64_t app_cold_ = 0;

  bool finalized_ = false;
  ExactMrc application_;
  std::vector<ExactMrc> per_core_;
};

}  // namespace re::verify
