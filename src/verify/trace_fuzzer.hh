// Deterministic trace fuzzer: seeded generators of access-pattern families
// with known analytic ground truth.
//
// Each family builds a workloads::Program (so the fuzzed trace flows
// through the identical cursor/replay machinery as the real workloads)
// whose parameters — footprints, strides, loop counts — are pseudo-random
// functions of (seed, variant). The generator also emits *analytic
// expectations*: points of the application miss-ratio curve that follow
// from first principles (e.g. a cyclic sweep over N lines misses everything
// below N lines and only compulsory misses above). The layering is:
//
//   analytic truth  -> validates ->  ExactLruModel  -> validates -> StatStack
//
// so the oracle itself is pinned before it is trusted to judge the
// estimator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/program.hh"

namespace re::verify {

/// The fuzzed access-stream families. Kept order-stable: tools print and
/// iterate them by this order.
enum class TraceFamily : std::uint8_t {
  kStrided,       // one long cyclic stride sweep per load
  kSubLine,       // sub-line strides (intra-line reuse, i = C/stride)
  kPointerChase,  // serial xorshift walk, no regular stride
  kBlocked,       // tiled kernel: repeated sweeps over one block at a time
  kPhaseMixed,    // alternating strided / gather phases
  kHotCold,       // L1-resident hot buffer + streaming cold loads
};

const std::vector<TraceFamily>& all_trace_families();
const char* trace_family_name(TraceFamily family);

/// One analytically-known point of the application miss-ratio curve.
struct MrcExpectation {
  std::uint64_t cache_lines = 0;
  double miss_ratio = 0.0;
  double tolerance = 0.0;  // absolute
};

struct FuzzedTrace {
  TraceFamily family = TraceFamily::kStrided;
  std::uint64_t seed = 0;
  std::uint64_t variant = 0;
  workloads::Program program;
  /// Analytic ground-truth MRC points (empty for families whose exact
  /// shape is not closed-form, e.g. pointer chasing).
  std::vector<MrcExpectation> expectations;
};

/// Build one deterministic fuzzed trace. The same (family, seed, variant)
/// always yields the identical program; different seeds/variants vary the
/// parameters within family-appropriate ranges.
FuzzedTrace make_trace(TraceFamily family, std::uint64_t seed,
                       std::uint64_t variant = 0);

}  // namespace re::verify
