#include "verify/trace_fuzzer.hh"

#include <algorithm>
#include <sstream>

namespace re::verify {

namespace {

using workloads::BlockedPattern;
using workloads::GatherPattern;
using workloads::HotBufferPattern;
using workloads::Loop;
using workloads::PointerChasePattern;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

/// Deterministic parameter stream: every family draw advances the same
/// mix64 chain, so (family, seed, variant) pins every parameter.
class ParamPicker {
 public:
  ParamPicker(TraceFamily family, std::uint64_t seed, std::uint64_t variant)
      : state_(workloads::mix64(
            seed ^ (static_cast<std::uint64_t>(family) << 56) ^
            workloads::mix64(variant + 0x51ed270b9f6cd57bULL))) {}

  std::uint64_t next() {
    state_ = workloads::mix64(state_ + 0x9e3779b97f4a7c15ULL);
    return state_;
  }

  /// Uniform draw in [lo, hi], inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

 private:
  std::uint64_t state_;
};

StaticInst load(Pc pc, workloads::AccessPattern pattern) {
  StaticInst inst;
  inst.pc = pc;
  inst.pattern = std::move(pattern);
  return inst;
}

std::string trace_name(TraceFamily family, std::uint64_t seed,
                       std::uint64_t variant) {
  std::ostringstream out;
  out << "fuzz_" << trace_family_name(family) << "_s" << seed << "v"
      << variant;
  return out.str();
}

// One long cyclic stride sweep: N distinct lines revisited R times, so the
// true MRC is a step: 1.0 below N lines, compulsory-only (1/R) at or above.
// The working-set size class is itself drawn, so across seeds the knee lands
// below L1, between L1 and LLC, and beyond the LLC.
FuzzedTrace make_strided(ParamPicker& pick, FuzzedTrace trace) {
  std::uint64_t lines = 0;
  switch (pick.next() % 3) {
    case 0: lines = pick.range(256, 900); break;        // fits in L1
    case 1: lines = pick.range(1400, 3000); break;      // L2-resident
    default: lines = pick.range(16384, 28000); break;   // spills the LLC
  }
  const std::int64_t stride =
      static_cast<std::int64_t>(kLineSize) * (1 + pick.next() % 2);
  // Keep every trace at >= ~50k references so the differential harness
  // samples it sparsely rather than wall-to-wall; extra sweeps only move
  // the compulsory-miss floor, which the expectations account for.
  const std::uint64_t sweeps =
      std::max<std::uint64_t>(pick.range(3, 5), (50000 + lines - 1) / lines);

  Loop loop;
  loop.iterations = lines * sweeps;
  loop.body.push_back(load(
      1, StreamPattern{0, stride,
                       lines * static_cast<std::uint64_t>(stride)}));
  trace.program.loops.push_back(std::move(loop));

  const double steady = 1.0 / static_cast<double>(sweeps);
  trace.expectations = {
      {std::max<std::uint64_t>(1, lines / 2), 1.0, 1e-9},
      {lines, steady, 1e-9},
      {2 * lines, steady, 1e-9},
  };
  return trace;
}

// Sub-line strides: c = 64/stride consecutive touches land on each line, so
// only every c-th access can miss. MRC: 1/c below the footprint, 1/(c*R)
// at or above it.
FuzzedTrace make_subline(ParamPicker& pick, FuzzedTrace trace) {
  const std::uint64_t stride = std::uint64_t{8} << (pick.next() % 3);  // 8..32
  const std::uint64_t per_line = kLineSize / stride;
  const std::uint64_t lines = pick.range(512, 3000);
  const std::uint64_t sweeps = std::max<std::uint64_t>(
      pick.range(2, 3), (50000 + lines * per_line - 1) / (lines * per_line));

  Loop loop;
  loop.iterations = lines * per_line * sweeps;
  loop.body.push_back(load(
      1, StreamPattern{0, static_cast<std::int64_t>(stride),
                       lines * kLineSize}));
  trace.program.loops.push_back(std::move(loop));

  const double warm = 1.0 / static_cast<double>(per_line);
  const double steady = warm / static_cast<double>(sweeps);
  trace.expectations = {
      {std::max<std::uint64_t>(1, lines / 2), warm, 1e-9},
      {lines, steady, 1e-9},
      {4 * lines, steady, 1e-9},
  };
  return trace;
}

// Serial pointer chase over a random-walk footprint. No closed-form MRC
// (the xorshift walk's revisit distribution is not analytic), so this family
// only exercises exact-vs-estimated agreement, not analytic truth.
FuzzedTrace make_chase(ParamPicker& pick, FuzzedTrace trace) {
  const std::uint64_t lines = pick.range(2048, 10000);
  Loop loop;
  // Trace length scales with the footprint: at trace end ~footprint open
  // watches are censored into dangling (= miss) samples, a StatStack bias
  // of order footprint/length for stationary working sets. 16 revisits per
  // line keeps that censoring well inside the 2 % acceptance bound while
  // still judging the MRC at the steep part of its survival function.
  loop.iterations = std::clamp<std::uint64_t>(16 * lines, 80000, 200000);
  StaticInst inst =
      load(1, PointerChasePattern{0, lines * kLineSize, kLineSize});
  inst.serial_dependent = true;
  loop.body.push_back(std::move(inst));
  trace.program.loops.push_back(std::move(loop));
  return trace;
}

// Tiled kernel: each block of Nb lines is swept `revisits` times before the
// walk moves on and never returns (iterations cover the footprint exactly
// once). MRC knee sits at the block size: 1.0 below Nb, 1/revisits above.
FuzzedTrace make_blocked(ParamPicker& pick, FuzzedTrace trace) {
  const std::uint64_t block_lines = pick.range(256, 2048);
  const std::uint32_t revisits = static_cast<std::uint32_t>(pick.range(3, 6));
  const std::uint64_t blocks = std::max<std::uint64_t>(
      pick.range(4, 8),
      (50000 + block_lines * revisits - 1) / (block_lines * revisits));

  Loop loop;
  loop.iterations = block_lines * blocks * revisits;
  loop.body.push_back(
      load(1, BlockedPattern{0, static_cast<std::int64_t>(kLineSize),
                             block_lines * kLineSize,
                             block_lines * kLineSize * blocks, revisits}));
  trace.program.loops.push_back(std::move(loop));

  const double steady = 1.0 / static_cast<double>(revisits);
  trace.expectations = {
      {std::max<std::uint64_t>(1, block_lines / 2), 1.0, 1e-9},
      {block_lines, steady, 1e-9},
      {2 * block_lines, steady, 1e-9},
  };
  return trace;
}

// Two heterogeneous phases run in sequence and repeat: a cache-friendly
// strided loop followed by a large sparse gather. This is the family where
// StatStack's *global* reuse-survival assumption is known to bias the
// per-size mapping (the phases' reuse-distance distributions differ), so no
// tight analytic points are attached; the differential harness grants it a
// documented looser error bound instead.
FuzzedTrace make_phase_mixed(ParamPicker& pick, FuzzedTrace trace) {
  const std::uint64_t hot_lines = pick.range(700, 1800);
  const std::uint64_t gather_lines = pick.range(6144, 16384);

  Loop strided;
  strided.iterations = hot_lines * 4;
  strided.body.push_back(load(
      1, StreamPattern{0, static_cast<std::int64_t>(kLineSize),
                       hot_lines * kLineSize}));

  Loop gather;
  gather.iterations = gather_lines;
  gather.body.push_back(
      load(2, GatherPattern{1 << 28, gather_lines * kLineSize,
                            static_cast<std::uint32_t>(kLineSize)}));

  trace.program.loops.push_back(std::move(strided));
  trace.program.loops.push_back(std::move(gather));
  trace.program.outer_reps = 2;
  return trace;
}

// Hot/cold interleave inside ONE loop body: a small hot buffer (one line per
// iteration, cyclic) plus a cold stream that never wraps. Every hot revisit
// has stack distance exactly 2*Nh - 1 (the other hot lines plus the stream
// lines touched in between), so the MRC is 1.0 below that and ~0.5 above —
// and the stream load is the canonical non-temporal bypass candidate.
FuzzedTrace make_hot_cold(ParamPicker& pick, FuzzedTrace trace) {
  const std::uint64_t hot_lines = pick.range(96, 256);
  const std::uint64_t iters = pick.range(40000, 60000);

  Loop loop;
  loop.iterations = iters;
  loop.body.push_back(load(
      1, HotBufferPattern{0, static_cast<std::int64_t>(kLineSize),
                          hot_lines * kLineSize}));
  loop.body.push_back(load(
      2, StreamPattern{1 << 28, static_cast<std::int64_t>(kLineSize),
                       iters * kLineSize}));
  trace.program.loops.push_back(std::move(loop));

  const double total = 2.0 * static_cast<double>(iters);
  const double steady =
      (static_cast<double>(iters) + static_cast<double>(hot_lines)) / total;
  trace.expectations = {
      {hot_lines, 1.0, 1e-9},
      {4 * hot_lines, steady, 1e-9},
  };
  return trace;
}

}  // namespace

const std::vector<TraceFamily>& all_trace_families() {
  static const std::vector<TraceFamily> families = {
      TraceFamily::kStrided,      TraceFamily::kSubLine,
      TraceFamily::kPointerChase, TraceFamily::kBlocked,
      TraceFamily::kPhaseMixed,   TraceFamily::kHotCold,
  };
  return families;
}

const char* trace_family_name(TraceFamily family) {
  switch (family) {
    case TraceFamily::kStrided: return "strided";
    case TraceFamily::kSubLine: return "subline";
    case TraceFamily::kPointerChase: return "chase";
    case TraceFamily::kBlocked: return "blocked";
    case TraceFamily::kPhaseMixed: return "phasemix";
    case TraceFamily::kHotCold: return "hotcold";
  }
  return "?";
}

FuzzedTrace make_trace(TraceFamily family, std::uint64_t seed,
                       std::uint64_t variant) {
  ParamPicker pick(family, seed, variant);
  FuzzedTrace trace;
  trace.family = family;
  trace.seed = seed;
  trace.variant = variant;
  trace.program.name = trace_name(family, seed, variant);
  trace.program.seed = workloads::mix64(seed ^ (variant << 1) ^ 0xf00dULL);

  switch (family) {
    case TraceFamily::kStrided: return make_strided(pick, std::move(trace));
    case TraceFamily::kSubLine: return make_subline(pick, std::move(trace));
    case TraceFamily::kPointerChase: return make_chase(pick, std::move(trace));
    case TraceFamily::kBlocked: return make_blocked(pick, std::move(trace));
    case TraceFamily::kPhaseMixed:
      return make_phase_mixed(pick, std::move(trace));
    case TraceFamily::kHotCold: return make_hot_cold(pick, std::move(trace));
  }
  return trace;
}

}  // namespace re::verify
