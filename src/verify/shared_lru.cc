#include "verify/shared_lru.hh"

#include <algorithm>
#include <cassert>

namespace re::verify {

ExactSharedLruModel::ExactSharedLruModel(int cores)
    : per_core_raw_(static_cast<std::size_t>(cores)) {
  assert(cores > 0);
}

void ExactSharedLruModel::observe(int core, Pc pc, Addr addr) {
  (void)pc;  // attribution is per core; PCs are core-local labels here
  assert(!finalized_);
  const Addr line = line_of(addr);
  const RefCount distance = clock_.observe(line);

  CoreAccumulator& acc = per_core_raw_[static_cast<std::size_t>(core)];
  ++acc.accesses;
  if (distance == kInfiniteDistance) {
    ++app_cold_;
    ++acc.cold;
  } else {
    app_distances_.push_back(distance);
    acc.distances.push_back(distance);
  }
}

void ExactSharedLruModel::finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::sort(app_distances_.begin(), app_distances_.end());
  application_ = ExactMrc(std::move(app_distances_), app_cold_);
  per_core_.reserve(per_core_raw_.size());
  for (CoreAccumulator& acc : per_core_raw_) {
    std::sort(acc.distances.begin(), acc.distances.end());
    per_core_.emplace_back(std::move(acc.distances), acc.cold);
  }
}

}  // namespace re::verify
