// Exact-LRU reference model: ground truth for StatStack.
//
// Computes *true* stack distances for every access of a full (unsampled)
// trace with the classic Fenwick-tree algorithm (Bennett & Kruskal '75 /
// Almási et al. '02): maintain a 0/1 tree over timestamps where a 1 marks
// the most recent access to some line; the stack distance of an access is
// the number of marked positions after the line's previous access. An
// access to a fully-associative LRU cache of S lines hits iff its stack
// distance is < S, so true miss-ratio curves — application-level and
// per-instruction — follow with no modeling assumptions at all.
//
// This is the oracle the differential harness (verify::run_differential)
// holds the StatStack estimator against, the same bar PPT-Multicore and
// Barai et al. use to validate their analytical MRC models.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/types.hh"
#include "workloads/program.hh"

namespace re::verify {

/// Exact miss-ratio curve over one population of accesses: the multiset of
/// their true stack distances plus the cold (first-touch) accesses, which
/// miss at every cache size.
class ExactMrc {
 public:
  ExactMrc() = default;
  ExactMrc(std::vector<RefCount> sorted_distances, std::uint64_t cold);

  /// Exact miss *count* for a fully-associative cache of `cache_lines`
  /// lines: cold accesses plus accesses whose stack distance reaches the
  /// cache size. Integer-exact, so attribution identities (per-core misses
  /// summing to the total) can be asserted without rounding slack.
  std::uint64_t miss_count_lines(std::uint64_t cache_lines) const;

  /// True LRU miss ratio for a fully-associative cache of `cache_lines`
  /// lines. 0 for an empty population.
  double miss_ratio_lines(std::uint64_t cache_lines) const;
  double miss_ratio_bytes(std::uint64_t bytes) const {
    return miss_ratio_lines(bytes / kLineSize);
  }

  std::uint64_t access_count() const {
    return distances_.size() + cold_;
  }
  std::uint64_t cold_count() const { return cold_; }
  bool empty() const { return access_count() == 0; }

 private:
  std::vector<RefCount> distances_;  // ascending
  std::uint64_t cold_ = 0;
};

/// Incremental true-stack-distance clock over a cache-line access stream:
/// the Fenwick-tree core of the exact models, reusable by any oracle that
/// needs per-access ground truth (ExactLruModel for one core's trace,
/// ExactSharedLruModel for the interleaved multi-core trace).
class StackDistanceClock {
 public:
  StackDistanceClock();

  /// Observe one access to `line` (a line index, not a byte address).
  /// Returns the access's true LRU stack distance — the number of distinct
  /// lines touched since the previous access to `line` — or
  /// kInfiniteDistance on first touch (a cold miss at every cache size).
  RefCount observe(Addr line);

  /// Accesses observed so far.
  std::uint64_t accesses() const { return time_; }

 private:
  void fenwick_add(std::uint64_t pos, int delta);
  std::uint64_t fenwick_sum(std::uint64_t pos) const;  // prefix [1, pos]

  std::uint64_t time_ = 0;          // accesses observed (1-based stamps)
  std::vector<std::uint32_t> bit_;  // Fenwick tree over timestamps
  std::unordered_map<Addr, std::uint64_t> last_time_;  // line -> stamp
};

/// Full-trace exact-LRU model: application and per-PC miss-ratio curves
/// plus the exact data-reuse successor graph (which PC touches a line next
/// after each PC — ground truth for the bypass analysis).
class ExactLruModel {
 public:
  ExactLruModel();

  /// Feed one memory reference, in program order.
  void observe(Pc pc, Addr addr);

  /// Build the queryable curves from everything observed so far. Must be
  /// called (once) before the query methods; observe() may not be called
  /// afterwards.
  void finalize();

  /// Whole-trace curve (cold misses included).
  const ExactMrc& application_mrc() const { return application_; }

  /// Per-instruction curve of the accesses *executed by* `pc` (empty curve
  /// for unknown PCs) — the exact analogue of StatStack::pc_mrc.
  const ExactMrc& pc_mrc(Pc pc) const;

  /// PCs that executed at least one access, ascending.
  const std::vector<Pc>& pcs() const { return pcs_; }

  std::uint64_t accesses() const { return clock_.accesses(); }
  std::uint64_t accesses_of(Pc pc) const;

  /// Exact reuse successor counts: edge (a -> b) counts the times a line
  /// last touched by `a` was next touched by `b`.
  std::uint64_t reuse_edge_count(Pc from, Pc to) const;
  std::uint64_t reuse_out_degree(Pc from) const;

  /// Successor PCs of `pc` carrying at least `min_fraction` of its outgoing
  /// reuse edges, ascending (mirrors core::ReuseGraph::reusers_of).
  std::vector<Pc> reusers_of(Pc pc, double min_fraction) const;

 private:
  struct PcAccumulator {
    std::vector<RefCount> distances;
    std::uint64_t cold = 0;
    std::uint64_t accesses = 0;
  };

  StackDistanceClock clock_;
  std::unordered_map<Addr, Pc> last_pc_;  // line -> last PC

  std::vector<RefCount> app_distances_;
  std::uint64_t app_cold_ = 0;
  std::unordered_map<Pc, PcAccumulator> per_pc_raw_;
  std::unordered_map<Pc, std::unordered_map<Pc, std::uint64_t>> edges_;
  std::unordered_map<Pc, std::uint64_t> edge_totals_;

  bool finalized_ = false;
  ExactMrc application_;
  std::unordered_map<Pc, ExactMrc> per_pc_;
  std::vector<Pc> pcs_;
  ExactMrc empty_;
};

/// Convenience: replay one full run of `program` (capped at `max_refs`)
/// through a fresh model and finalize it.
ExactLruModel exact_model_of(const workloads::Program& program,
                             std::uint64_t max_refs = ~std::uint64_t{0});

}  // namespace re::verify
