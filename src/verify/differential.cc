#include "verify/differential.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "analysis/corun.hh"
#include "core/statstack.hh"
#include "core/trace_replay.hh"
#include "engine/pipeline.hh"
#include "verify/exact_lru.hh"
#include "verify/shared_lru.hh"
#include "workloads/mix.hh"

namespace re::verify {

namespace {

void append_f(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_f(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
}

/// Exact-side flatness test mirroring core::mrc_flat_between_l1_and_llc,
/// also reporting the drop fraction for the dead-band check.
bool exact_flat(const ExactMrc& mrc, const sim::MachineConfig& machine,
                double drop_threshold, double* drop_out) {
  *drop_out = 0.0;
  if (mrc.empty()) return true;
  const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
  if (mr_l1 <= 0.0) return true;
  const double mr_llc = mrc.miss_ratio_bytes(machine.llc.size_bytes);
  *drop_out = (mr_l1 - mr_llc) / mr_l1;
  return *drop_out <= drop_threshold;
}

double estimated_drop(const core::MissRatioCurve& mrc,
                      const sim::MachineConfig& machine) {
  if (mrc.empty()) return 0.0;
  const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
  if (mr_l1 <= 0.0) return 0.0;
  return (mr_l1 - mrc.miss_ratio_bytes(machine.llc.size_bytes)) / mr_l1;
}

}  // namespace

double family_app_error_bound(TraceFamily family) {
  return family == TraceFamily::kPhaseMixed ? 0.10 : 0.02;
}

double DifferentialResult::max_application_error() const {
  double worst = 0.0;
  for (const MrcComparison& c : application) {
    worst = std::max(worst, c.abs_error());
  }
  return worst;
}

double DifferentialResult::mddli_agreement() const {
  if (loads.empty()) return 1.0;
  std::size_t agree = 0;
  for (const LoadComparison& l : loads) agree += l.mddli_agrees() ? 1 : 0;
  return static_cast<double>(agree) / static_cast<double>(loads.size());
}

double DifferentialResult::bypass_agreement() const {
  if (loads.empty()) return 1.0;
  std::size_t agree = 0;
  for (const LoadComparison& l : loads) agree += l.bypass_agrees() ? 1 : 0;
  return static_cast<double>(agree) / static_cast<double>(loads.size());
}

std::string DifferentialResult::to_string() const {
  std::string out;
  append_f(out, "differential %s machine=%s\n", trace.c_str(),
           machine.c_str());
  append_f(out, "  references=%llu reuse_samples=%llu period=%llu\n",
           static_cast<unsigned long long>(references),
           static_cast<unsigned long long>(reuse_samples),
           static_cast<unsigned long long>(sample_period));
  for (const MrcComparison& c : application) {
    append_f(out,
             "  app-mrc %-3s lines=%-6llu exact=%.6f est=%.6f err=%.6f\n",
             c.level, static_cast<unsigned long long>(c.cache_lines), c.exact,
             c.estimated, c.abs_error());
  }
  for (const LoadComparison& l : loads) {
    append_f(out,
             "  load pc%-3llu l1 exact=%.4f est=%.4f"
             " mddli=%c/%c%s bypass=%c/%c%s\n",
             static_cast<unsigned long long>(l.pc), l.exact_l1,
             l.estimated_l1, l.exact_delinquent ? 'D' : '-',
             l.estimated_delinquent ? 'D' : '-',
             l.mddli_borderline ? "~" : "", l.exact_bypass ? 'B' : '-',
             l.estimated_bypass ? 'B' : '-', l.bypass_borderline ? "~" : "");
  }
  append_f(out,
           "  summary max_app_err=%.6f mddli_agree=%.4f bypass_agree=%.4f\n",
           max_application_error(), mddli_agreement(), bypass_agreement());
  return out;
}

DifferentialResult run_differential(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const DifferentialOptions& options) {
  const std::uint64_t refs =
      std::min(program.total_references(), options.max_refs);

  core::SamplerConfig sampler_config = options.sampler;
  if (sampler_config.sample_period == 0) {
    sampler_config.sample_period = std::max<std::uint64_t>(1, refs / 16384);
  }

  // One replay feeds both sides, so they judge the identical stream.
  core::Sampler sampler(sampler_config);
  ExactLruModel exact;
  core::replay_program(
      program,
      [&](Pc pc, Addr addr) {
        sampler.observe(pc, addr);
        exact.observe(pc, addr);
      },
      options.max_refs);
  exact.finalize();

  // The estimator side is the production engine verbatim: the same
  // statstack → mddli stage configuration every optimize entry point runs
  // (engine/pipeline.hh), bound to the sampled profile.
  engine::OptimizeArtifacts artifacts;
  artifacts.program = &program;
  artifacts.machine = &machine;
  artifacts.options.mddli = options.mddli;
  artifacts.profile_bound = true;
  artifacts.report.profile = sampler.finish();
  engine::run_graph(engine::estimator_graph(), artifacts, {});
  const core::Profile& profile = artifacts.report.profile;
  const core::StatStack& model = *artifacts.model;
  const core::ReuseGraph& graph = *artifacts.reuse_graph;

  DifferentialResult result;
  result.trace = program.name;
  result.machine = machine.name;
  result.references = exact.accesses();
  result.reuse_samples =
      profile.reuse_samples.size() + profile.dangling_reuse_samples;
  result.sample_period = sampler_config.sample_period;

  const struct {
    const char* level;
    std::uint64_t lines;
  } levels[] = {{"L1", machine.l1.num_lines()},
                {"L2", machine.l2.num_lines()},
                {"LLC", machine.llc.num_lines()}};
  for (const auto& [level, lines] : levels) {
    result.application.push_back(
        {level, lines, exact.application_mrc().miss_ratio_lines(lines),
         model.application_mrc().miss_ratio_lines(lines)});
  }

  const std::vector<core::DelinquentLoad>& delinquent =
      artifacts.report.delinquent_loads;

  // Compare every static load of the program (sorted, deduplicated).
  std::set<Pc> pcs;
  for (const workloads::Loop& loop : program.loops) {
    for (const workloads::StaticInst& inst : loop.body) pcs.insert(inst.pc);
  }

  const double eps = options.decision_epsilon;
  for (Pc pc : pcs) {
    LoadComparison cmp;
    cmp.pc = pc;

    // --- MDDLI: exact side re-derives the paper's cost-benefit test from
    // ground-truth curves; estimator side is the production pass verbatim.
    const ExactMrc& exact_mrc = exact.pc_mrc(pc);
    cmp.exact_l1 = exact_mrc.miss_ratio_bytes(machine.l1.size_bytes);
    const double exact_l2 = exact_mrc.miss_ratio_bytes(machine.l2.size_bytes);
    const double exact_llc =
        exact_mrc.miss_ratio_bytes(machine.llc.size_bytes);
    const double exact_lat =
        core::average_miss_latency(machine, cmp.exact_l1, exact_l2, exact_llc);
    cmp.exact_delinquent =
        exact_lat > 0.0 &&
        cmp.exact_l1 > options.mddli.alpha / exact_lat;

    const core::MissRatioCurve& est_mrc = model.pc_mrc(pc);
    cmp.estimated_l1 = est_mrc.miss_ratio_bytes(machine.l1.size_bytes);
    const double est_lat = core::average_miss_latency(
        machine, cmp.estimated_l1,
        est_mrc.miss_ratio_bytes(machine.l2.size_bytes),
        est_mrc.miss_ratio_bytes(machine.llc.size_bytes));
    cmp.estimated_delinquent =
        std::any_of(delinquent.begin(), delinquent.end(),
                    [pc](const core::DelinquentLoad& d) { return d.pc == pc; });

    cmp.mddli_borderline =
        (exact_lat > 0.0 &&
         std::abs(cmp.exact_l1 - options.mddli.alpha / exact_lat) <= eps) ||
        (est_lat > 0.0 &&
         std::abs(cmp.estimated_l1 - options.mddli.alpha / est_lat) <= eps);

    // --- Bypass: same structure. The exact reuse graph plays the role of
    // the sampled one; a reuser whose MRC drop sits within the dead band of
    // the flatness threshold makes the whole decision borderline.
    cmp.estimated_bypass =
        core::should_bypass(pc, graph, model, machine, options.bypass);

    std::vector<Pc> exact_reusers =
        exact.reusers_of(pc, options.bypass.min_edge_weight);
    if (std::find(exact_reusers.begin(), exact_reusers.end(), pc) ==
        exact_reusers.end()) {
      exact_reusers.push_back(pc);
    }
    cmp.exact_bypass = true;
    for (Pc reuser : exact_reusers) {
      double drop = 0.0;
      const bool flat = exact_flat(exact.pc_mrc(reuser), machine,
                                   options.bypass.drop_threshold, &drop);
      if (!flat) cmp.exact_bypass = false;
      if (std::abs(drop - options.bypass.drop_threshold) <= eps) {
        cmp.bypass_borderline = true;
      }
    }
    std::vector<Pc> est_reusers =
        graph.reusers_of(pc, options.bypass.min_edge_weight);
    if (std::find(est_reusers.begin(), est_reusers.end(), pc) ==
        est_reusers.end()) {
      est_reusers.push_back(pc);
    }
    for (Pc reuser : est_reusers) {
      const double drop = estimated_drop(model.pc_mrc(reuser), machine);
      if (std::abs(drop - options.bypass.drop_threshold) <= eps) {
        cmp.bypass_borderline = true;
      }
    }

    result.loads.push_back(cmp);
  }
  return result;
}

double corun_family_error_bound(TraceFamily family, int cores) {
  // Calibrated against the observed worst-case errors of the seeded
  // 2/4/8-core matrix (DESIGN.md §13, "differential bounds"); each bound is
  // the observed ceiling plus headroom, so a regression that worsens the
  // known composition bias still fails. Solo StatStack bias
  // (family_app_error_bound) is the floor; interleaving-ratio error adds a
  // per-core term on top.
  const double base =
      family == TraceFamily::kPhaseMixed ? 0.12 : 0.06;
  return base + 0.01 * cores;
}

std::vector<CoRunScenario> corun_scenarios(int cores) {
  using F = TraceFamily;
  std::vector<CoRunScenario> matrix = {
      // Homogeneous rows: every core runs the same family, so the composed
      // shares should split the LLC near-evenly.
      {"streaming_uniform", {F::kStrided}},
      {"chase_uniform", {F::kPointerChase}},
      // Adversarial mixes: core 0 is the victim, the rest are aggressors.
      {"streaming_vs_chase", {F::kPointerChase, F::kStrided}},
      {"stencil_vs_streaming", {F::kBlocked, F::kStrided}},
      {"hotcold_vs_chase", {F::kHotCold, F::kPointerChase}},
      {"phase_mixed", {F::kPhaseMixed, F::kStrided}},
  };
  for (CoRunScenario& scenario : matrix) {
    // Cycle the row out to the core count; aggressors repeat.
    std::vector<TraceFamily> families;
    families.reserve(static_cast<std::size_t>(cores));
    for (int i = 0; i < cores; ++i) {
      families.push_back(
          scenario.families[static_cast<std::size_t>(i) %
                            scenario.families.size()]);
    }
    scenario.families = std::move(families);
  }
  return matrix;
}

double CoRunCoreComparison::max_error() const {
  double worst = 0.0;
  for (const CoRunPoint& p : points) worst = std::max(worst, p.error);
  return worst;
}

double CoRunDifferentialResult::max_error() const {
  double worst = 0.0;
  for (const CoRunCoreComparison& c : per_core) {
    worst = std::max(worst, c.max_error());
  }
  return worst;
}

std::string CoRunDifferentialResult::to_string() const {
  std::string out;
  append_f(out, "corun-differential %s machine=%s cores=%d seed=%llu hw=%d\n",
           scenario.c_str(), machine.c_str(), cores,
           static_cast<unsigned long long>(seed), hw_prefetch ? 1 : 0);
  for (const CoRunCoreComparison& c : per_core) {
    append_f(out, "  core%d %-12s accesses=%-8llu eff_llc_lines=%llu\n",
             c.core, c.family.c_str(),
             static_cast<unsigned long long>(c.accesses),
             static_cast<unsigned long long>(c.effective_llc_lines));
    for (const CoRunPoint& p : c.points) {
      append_f(out,
               "    mrc lines=%-6llu exact=%.6f composed=%.6f err=%.6f "
               "raw=%.6f\n",
               static_cast<unsigned long long>(p.cache_lines), p.exact,
               p.composed, p.error, p.abs_error());
    }
  }
  append_f(out, "  summary max_err=%.6f attribution=%s\n", max_error(),
           attribution_exact ? "exact" : "BROKEN");
  return out;
}

CoRunDifferentialResult run_corun_differential(
    const CoRunScenario& scenario, const sim::MachineConfig& machine,
    std::uint64_t seed, const CoRunDifferentialOptions& options) {
  const int cores = static_cast<int>(scenario.families.size());

  // Per-core fuzzed programs: variant = core id keeps co-runners of the
  // same family distinct; rebasing makes the address spaces disjoint (no
  // sharing — the composition assumes it, the oracle would model it).
  std::vector<workloads::Program> programs;
  programs.reserve(static_cast<std::size_t>(cores));
  for (int core = 0; core < cores; ++core) {
    FuzzedTrace fuzzed =
        make_trace(scenario.families[static_cast<std::size_t>(core)], seed,
                   static_cast<std::uint64_t>(core));
    workloads::rebase_program(fuzzed.program,
                              workloads::core_address_offset(core));
    programs.push_back(std::move(fuzzed.program));
  }

  // Composed side: the production co-run pipeline verbatim.
  analysis::CoRunArtifacts artifacts;
  artifacts.programs = &programs;
  artifacts.machine = &machine;
  artifacts.model_hw_prefetch = options.model_hw_prefetch;
  artifacts.max_refs_per_core = options.max_refs_per_core;
  analysis::run_corun(artifacts);

  // Exact side: one true LRU stack over the identical interleaved trace.
  ExactSharedLruModel oracle(cores);
  analysis::interleave_traces(
      artifacts.traces, [&](int core, const analysis::CoreAccess& access) {
        oracle.observe(core, access.pc, access.addr);
      });
  oracle.finalize();

  CoRunDifferentialResult result;
  result.scenario = scenario.name;
  result.machine = machine.name;
  result.cores = cores;
  result.seed = seed;
  result.hw_prefetch = options.model_hw_prefetch;

  const std::uint64_t llc = machine.llc.num_lines();
  const std::uint64_t sizes[] = {llc / 2, llc, llc * 2};

  // Vertical miss-ratio distance is ill-posed on a working-set cliff: both
  // curves step between the same two plateaus, and a probe that lands
  // mid-transition reads the full step height even when the composition
  // localizes the cliff within a few percent of cache size (observed on the
  // intel stencil_vs_streaming cells, where the strided core's cliff sits
  // right at 2·LLC). Score each probe with ±1/8 of horizontal slack: the
  // error is the smallest vertical distance after shifting either curve by
  // at most one slack step. Away from cliffs both curves are flat across
  // the slack window and this reduces to the plain vertical error.
  const auto point_error = [&](int core, std::uint64_t lines, double exact_mr,
                               double composed_mr) {
    double err = std::abs(exact_mr - composed_mr);
    for (const std::uint64_t shifted : {lines - lines / 8, lines + lines / 8}) {
      err = std::min(
          err, std::abs(artifacts.corun->shared_miss_ratio_lines(
                            core, shifted) -
                        exact_mr));
      err = std::min(
          err, std::abs(composed_mr -
                        oracle.core_mrc(core).miss_ratio_lines(shifted)));
    }
    return err;
  };

  for (int core = 0; core < cores; ++core) {
    CoRunCoreComparison cmp;
    cmp.core = core;
    cmp.family =
        trace_family_name(scenario.families[static_cast<std::size_t>(core)]);
    cmp.accesses = oracle.accesses_of(core);
    cmp.effective_llc_lines =
        artifacts.effective_llc_lines[static_cast<std::size_t>(core)];
    for (const std::uint64_t lines : sizes) {
      const double exact_mr = oracle.core_mrc(core).miss_ratio_lines(lines);
      const double composed_mr =
          artifacts.corun->shared_miss_ratio_lines(core, lines);
      cmp.points.push_back(
          {lines, exact_mr, composed_mr,
           point_error(core, lines, exact_mr, composed_mr)});
    }
    result.per_core.push_back(std::move(cmp));
  }

  // Attribution identity: per-core misses sum to the shared total, exactly.
  for (const std::uint64_t lines : sizes) {
    std::uint64_t sum = 0;
    for (int core = 0; core < cores; ++core) {
      sum += oracle.core_misses_at(core, lines);
    }
    if (sum != oracle.misses_at(lines)) result.attribution_exact = false;
  }
  return result;
}

namespace {

/// Sparse streaming aggressor for the interference experiment: a cyclic
/// 2-line-stride sweep over 2·LLC worth of *touched* lines. The skipped
/// buddy lines are what the adjacent-line prefetcher pollutes the shared
/// LLC with.
workloads::Program make_sparse_stream_aggressor(
    const sim::MachineConfig& machine, int core) {
  workloads::Program program;
  program.name = "sparse_stream_aggressor";
  program.seed = 0xA66 + static_cast<std::uint64_t>(core);
  workloads::StaticInst inst;
  inst.pc = 1;
  const std::int64_t stride = 2 * kLineSize;
  const std::uint64_t footprint =
      4 * machine.llc.size_bytes;  // bytes spanned; lines touched = 2·LLC
  inst.pattern = workloads::StreamPattern{0, stride, footprint};
  workloads::Loop loop;
  loop.iterations =
      3 * (footprint / static_cast<std::uint64_t>(stride));  // ~3 sweeps
  loop.body.push_back(std::move(inst));
  program.loops.push_back(std::move(loop));
  return program;
}

struct InterferenceRun {
  double victim_mr = 0.0;
  double exact_mr = 0.0;
  std::uint64_t share = 0;
};

InterferenceRun run_interference_once(
    std::vector<workloads::Program>& programs,
    const sim::MachineConfig& machine, std::uint64_t max_refs_per_core,
    bool hw_on_aggressors) {
  const int cores = static_cast<int>(programs.size());

  analysis::CoRunArtifacts artifacts;
  artifacts.programs = &programs;
  artifacts.machine = &machine;
  artifacts.max_refs_per_core = max_refs_per_core;
  sim::HwPrefetcherConfig aggressive = machine.hw_prefetcher;
  if (hw_on_aggressors) {
    // The paper's speculative engines: stream + adjacent-line overfetch.
    aggressive.adjacent_line = true;
    artifacts.hw_config = &aggressive;
    artifacts.hw_prefetch_core.assign(static_cast<std::size_t>(cores), 1);
    artifacts.hw_prefetch_core[0] = 0;  // the victim does not prefetch
  }
  analysis::run_corun(artifacts);

  ExactSharedLruModel oracle(cores);
  analysis::interleave_traces(
      artifacts.traces, [&](int core, const analysis::CoreAccess& access) {
        oracle.observe(core, access.pc, access.addr);
      });
  oracle.finalize();

  InterferenceRun run;
  const std::uint64_t llc = machine.llc.num_lines();
  run.victim_mr = artifacts.corun->shared_miss_ratio_lines(0, llc);
  run.exact_mr = oracle.core_mrc(0).miss_ratio_lines(llc);
  run.share = artifacts.effective_llc_lines[0];
  return run;
}

}  // namespace

std::string CoRunInterference::to_string() const {
  std::string out;
  append_f(out, "corun-interference machine=%s cores=%d seed=%llu\n",
           machine.c_str(), cores, static_cast<unsigned long long>(seed));
  append_f(out, "  victim mr  off=%.6f on=%.6f (composed)\n", victim_mr_off,
           victim_mr_on);
  append_f(out, "  victim mr  off=%.6f on=%.6f (exact)\n", exact_mr_off,
           exact_mr_on);
  append_f(out, "  victim share off=%llu on=%llu of %llu lines\n",
           static_cast<unsigned long long>(share_off),
           static_cast<unsigned long long>(share_on),
           static_cast<unsigned long long>(llc_lines));
  append_f(out, "  composed_err=%.6f predicted=%d confirmed=%d\n",
           max_composed_error, predicted() ? 1 : 0, confirmed() ? 1 : 0);
  return out;
}

CoRunInterference run_corun_interference(const sim::MachineConfig& machine,
                                         int cores, std::uint64_t seed,
                                         std::uint64_t max_refs_per_core) {
  // Chase victim on core 0 (fuzzed, so RE_TEST_SEED varies it), sparse
  // streaming aggressors on the rest. Both runs share the same programs.
  std::vector<workloads::Program> programs;
  programs.reserve(static_cast<std::size_t>(cores));
  FuzzedTrace victim = make_trace(TraceFamily::kPointerChase, seed, 0);
  programs.push_back(std::move(victim.program));
  for (int core = 1; core < cores; ++core) {
    workloads::Program aggressor = make_sparse_stream_aggressor(machine, core);
    workloads::rebase_program(aggressor,
                              workloads::core_address_offset(core));
    programs.push_back(std::move(aggressor));
  }

  const InterferenceRun off =
      run_interference_once(programs, machine, max_refs_per_core, false);
  const InterferenceRun on =
      run_interference_once(programs, machine, max_refs_per_core, true);

  CoRunInterference result;
  result.machine = machine.name;
  result.cores = cores;
  result.seed = seed;
  result.llc_lines = machine.llc.num_lines();
  result.victim_mr_off = off.victim_mr;
  result.victim_mr_on = on.victim_mr;
  result.exact_mr_off = off.exact_mr;
  result.exact_mr_on = on.exact_mr;
  result.share_off = off.share;
  result.share_on = on.share;
  result.max_composed_error =
      std::max(std::abs(off.victim_mr - off.exact_mr),
               std::abs(on.victim_mr - on.exact_mr));
  return result;
}

}  // namespace re::verify
