#include "verify/differential.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "core/statstack.hh"
#include "core/trace_replay.hh"
#include "engine/pipeline.hh"
#include "verify/exact_lru.hh"

namespace re::verify {

namespace {

void append_f(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_f(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
}

/// Exact-side flatness test mirroring core::mrc_flat_between_l1_and_llc,
/// also reporting the drop fraction for the dead-band check.
bool exact_flat(const ExactMrc& mrc, const sim::MachineConfig& machine,
                double drop_threshold, double* drop_out) {
  *drop_out = 0.0;
  if (mrc.empty()) return true;
  const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
  if (mr_l1 <= 0.0) return true;
  const double mr_llc = mrc.miss_ratio_bytes(machine.llc.size_bytes);
  *drop_out = (mr_l1 - mr_llc) / mr_l1;
  return *drop_out <= drop_threshold;
}

double estimated_drop(const core::MissRatioCurve& mrc,
                      const sim::MachineConfig& machine) {
  if (mrc.empty()) return 0.0;
  const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
  if (mr_l1 <= 0.0) return 0.0;
  return (mr_l1 - mrc.miss_ratio_bytes(machine.llc.size_bytes)) / mr_l1;
}

}  // namespace

double family_app_error_bound(TraceFamily family) {
  return family == TraceFamily::kPhaseMixed ? 0.10 : 0.02;
}

double DifferentialResult::max_application_error() const {
  double worst = 0.0;
  for (const MrcComparison& c : application) {
    worst = std::max(worst, c.abs_error());
  }
  return worst;
}

double DifferentialResult::mddli_agreement() const {
  if (loads.empty()) return 1.0;
  std::size_t agree = 0;
  for (const LoadComparison& l : loads) agree += l.mddli_agrees() ? 1 : 0;
  return static_cast<double>(agree) / static_cast<double>(loads.size());
}

double DifferentialResult::bypass_agreement() const {
  if (loads.empty()) return 1.0;
  std::size_t agree = 0;
  for (const LoadComparison& l : loads) agree += l.bypass_agrees() ? 1 : 0;
  return static_cast<double>(agree) / static_cast<double>(loads.size());
}

std::string DifferentialResult::to_string() const {
  std::string out;
  append_f(out, "differential %s machine=%s\n", trace.c_str(),
           machine.c_str());
  append_f(out, "  references=%llu reuse_samples=%llu period=%llu\n",
           static_cast<unsigned long long>(references),
           static_cast<unsigned long long>(reuse_samples),
           static_cast<unsigned long long>(sample_period));
  for (const MrcComparison& c : application) {
    append_f(out,
             "  app-mrc %-3s lines=%-6llu exact=%.6f est=%.6f err=%.6f\n",
             c.level, static_cast<unsigned long long>(c.cache_lines), c.exact,
             c.estimated, c.abs_error());
  }
  for (const LoadComparison& l : loads) {
    append_f(out,
             "  load pc%-3llu l1 exact=%.4f est=%.4f"
             " mddli=%c/%c%s bypass=%c/%c%s\n",
             static_cast<unsigned long long>(l.pc), l.exact_l1,
             l.estimated_l1, l.exact_delinquent ? 'D' : '-',
             l.estimated_delinquent ? 'D' : '-',
             l.mddli_borderline ? "~" : "", l.exact_bypass ? 'B' : '-',
             l.estimated_bypass ? 'B' : '-', l.bypass_borderline ? "~" : "");
  }
  append_f(out,
           "  summary max_app_err=%.6f mddli_agree=%.4f bypass_agree=%.4f\n",
           max_application_error(), mddli_agreement(), bypass_agreement());
  return out;
}

DifferentialResult run_differential(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const DifferentialOptions& options) {
  const std::uint64_t refs =
      std::min(program.total_references(), options.max_refs);

  core::SamplerConfig sampler_config = options.sampler;
  if (sampler_config.sample_period == 0) {
    sampler_config.sample_period = std::max<std::uint64_t>(1, refs / 16384);
  }

  // One replay feeds both sides, so they judge the identical stream.
  core::Sampler sampler(sampler_config);
  ExactLruModel exact;
  core::replay_program(
      program,
      [&](Pc pc, Addr addr) {
        sampler.observe(pc, addr);
        exact.observe(pc, addr);
      },
      options.max_refs);
  exact.finalize();

  // The estimator side is the production engine verbatim: the same
  // statstack → mddli stage configuration every optimize entry point runs
  // (engine/pipeline.hh), bound to the sampled profile.
  engine::OptimizeArtifacts artifacts;
  artifacts.program = &program;
  artifacts.machine = &machine;
  artifacts.options.mddli = options.mddli;
  artifacts.profile_bound = true;
  artifacts.report.profile = sampler.finish();
  engine::run_graph(engine::estimator_graph(), artifacts, {});
  const core::Profile& profile = artifacts.report.profile;
  const core::StatStack& model = *artifacts.model;
  const core::ReuseGraph& graph = *artifacts.reuse_graph;

  DifferentialResult result;
  result.trace = program.name;
  result.machine = machine.name;
  result.references = exact.accesses();
  result.reuse_samples =
      profile.reuse_samples.size() + profile.dangling_reuse_samples;
  result.sample_period = sampler_config.sample_period;

  const struct {
    const char* level;
    std::uint64_t lines;
  } levels[] = {{"L1", machine.l1.num_lines()},
                {"L2", machine.l2.num_lines()},
                {"LLC", machine.llc.num_lines()}};
  for (const auto& [level, lines] : levels) {
    result.application.push_back(
        {level, lines, exact.application_mrc().miss_ratio_lines(lines),
         model.application_mrc().miss_ratio_lines(lines)});
  }

  const std::vector<core::DelinquentLoad>& delinquent =
      artifacts.report.delinquent_loads;

  // Compare every static load of the program (sorted, deduplicated).
  std::set<Pc> pcs;
  for (const workloads::Loop& loop : program.loops) {
    for (const workloads::StaticInst& inst : loop.body) pcs.insert(inst.pc);
  }

  const double eps = options.decision_epsilon;
  for (Pc pc : pcs) {
    LoadComparison cmp;
    cmp.pc = pc;

    // --- MDDLI: exact side re-derives the paper's cost-benefit test from
    // ground-truth curves; estimator side is the production pass verbatim.
    const ExactMrc& exact_mrc = exact.pc_mrc(pc);
    cmp.exact_l1 = exact_mrc.miss_ratio_bytes(machine.l1.size_bytes);
    const double exact_l2 = exact_mrc.miss_ratio_bytes(machine.l2.size_bytes);
    const double exact_llc =
        exact_mrc.miss_ratio_bytes(machine.llc.size_bytes);
    const double exact_lat =
        core::average_miss_latency(machine, cmp.exact_l1, exact_l2, exact_llc);
    cmp.exact_delinquent =
        exact_lat > 0.0 &&
        cmp.exact_l1 > options.mddli.alpha / exact_lat;

    const core::MissRatioCurve& est_mrc = model.pc_mrc(pc);
    cmp.estimated_l1 = est_mrc.miss_ratio_bytes(machine.l1.size_bytes);
    const double est_lat = core::average_miss_latency(
        machine, cmp.estimated_l1,
        est_mrc.miss_ratio_bytes(machine.l2.size_bytes),
        est_mrc.miss_ratio_bytes(machine.llc.size_bytes));
    cmp.estimated_delinquent =
        std::any_of(delinquent.begin(), delinquent.end(),
                    [pc](const core::DelinquentLoad& d) { return d.pc == pc; });

    cmp.mddli_borderline =
        (exact_lat > 0.0 &&
         std::abs(cmp.exact_l1 - options.mddli.alpha / exact_lat) <= eps) ||
        (est_lat > 0.0 &&
         std::abs(cmp.estimated_l1 - options.mddli.alpha / est_lat) <= eps);

    // --- Bypass: same structure. The exact reuse graph plays the role of
    // the sampled one; a reuser whose MRC drop sits within the dead band of
    // the flatness threshold makes the whole decision borderline.
    cmp.estimated_bypass =
        core::should_bypass(pc, graph, model, machine, options.bypass);

    std::vector<Pc> exact_reusers =
        exact.reusers_of(pc, options.bypass.min_edge_weight);
    if (std::find(exact_reusers.begin(), exact_reusers.end(), pc) ==
        exact_reusers.end()) {
      exact_reusers.push_back(pc);
    }
    cmp.exact_bypass = true;
    for (Pc reuser : exact_reusers) {
      double drop = 0.0;
      const bool flat = exact_flat(exact.pc_mrc(reuser), machine,
                                   options.bypass.drop_threshold, &drop);
      if (!flat) cmp.exact_bypass = false;
      if (std::abs(drop - options.bypass.drop_threshold) <= eps) {
        cmp.bypass_borderline = true;
      }
    }
    std::vector<Pc> est_reusers =
        graph.reusers_of(pc, options.bypass.min_edge_weight);
    if (std::find(est_reusers.begin(), est_reusers.end(), pc) ==
        est_reusers.end()) {
      est_reusers.push_back(pc);
    }
    for (Pc reuser : est_reusers) {
      const double drop = estimated_drop(model.pc_mrc(reuser), machine);
      if (std::abs(drop - options.bypass.drop_threshold) <= eps) {
        cmp.bypass_borderline = true;
      }
    }

    result.loads.push_back(cmp);
  }
  return result;
}

}  // namespace re::verify
