#include "verify/exact_lru.hh"

#include <algorithm>

#include "core/trace_replay.hh"

namespace re::verify {

ExactMrc::ExactMrc(std::vector<RefCount> sorted_distances, std::uint64_t cold)
    : distances_(std::move(sorted_distances)), cold_(cold) {}

std::uint64_t ExactMrc::miss_count_lines(std::uint64_t cache_lines) const {
  // An access hits iff stack distance < cache size; cold accesses always
  // miss. A zero-line cache misses everything.
  auto it = std::lower_bound(distances_.begin(), distances_.end(),
                             static_cast<RefCount>(cache_lines));
  return cold_ + static_cast<std::uint64_t>(distances_.end() - it);
}

double ExactMrc::miss_ratio_lines(std::uint64_t cache_lines) const {
  const std::uint64_t total = access_count();
  if (total == 0) return 0.0;
  return static_cast<double>(miss_count_lines(cache_lines)) /
         static_cast<double>(total);
}

StackDistanceClock::StackDistanceClock() : bit_(1, 0) {}

void StackDistanceClock::fenwick_add(std::uint64_t pos, int delta) {
  for (; pos < bit_.size(); pos += pos & (~pos + 1)) {
    bit_[pos] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(bit_[pos]) + delta);
  }
}

std::uint64_t StackDistanceClock::fenwick_sum(std::uint64_t pos) const {
  std::uint64_t sum = 0;
  for (; pos > 0; pos -= pos & (~pos + 1)) sum += bit_[pos];
  return sum;
}

RefCount StackDistanceClock::observe(Addr line) {
  const std::uint64_t now = ++time_;
  // Append position `now` to the Fenwick tree. A plain zero-extend would be
  // wrong: node `now` covers the range (now - lowbit(now), now], and earlier
  // positions in that range were added while this node did not exist yet, so
  // their counts must be folded in at append time.
  const std::uint64_t low = now & (~now + 1);
  bit_.push_back(static_cast<std::uint32_t>(
      fenwick_sum(now - 1) - fenwick_sum(now - low)));

  RefCount distance = kInfiniteDistance;
  auto it = last_time_.find(line);
  if (it != last_time_.end()) {
    // Stack distance = distinct lines touched since the previous access =
    // marked last-access stamps in (prev, now).
    const std::uint64_t prev = it->second;
    distance = fenwick_sum(now - 1) - fenwick_sum(prev);
    fenwick_add(prev, -1);
  }
  fenwick_add(now, +1);
  last_time_[line] = now;
  return distance;
}

ExactLruModel::ExactLruModel() = default;

void ExactLruModel::observe(Pc pc, Addr addr) {
  const Addr line = line_of(addr);
  const RefCount distance = clock_.observe(line);

  PcAccumulator& acc = per_pc_raw_[pc];
  ++acc.accesses;

  if (distance == kInfiniteDistance) {
    // First touch: cold miss at every cache size.
    ++app_cold_;
    ++acc.cold;
  } else {
    app_distances_.push_back(distance);
    acc.distances.push_back(distance);

    const Pc from = last_pc_[line];
    ++edges_[from][pc];
    ++edge_totals_[from];
  }
  last_pc_[line] = pc;
}

void ExactLruModel::finalize() {
  if (finalized_) return;
  finalized_ = true;
  std::sort(app_distances_.begin(), app_distances_.end());
  application_ = ExactMrc(std::move(app_distances_), app_cold_);
  pcs_.reserve(per_pc_raw_.size());
  for (auto& [pc, acc] : per_pc_raw_) {
    std::sort(acc.distances.begin(), acc.distances.end());
    per_pc_.emplace(pc, ExactMrc(std::move(acc.distances), acc.cold));
    pcs_.push_back(pc);
  }
  std::sort(pcs_.begin(), pcs_.end());
}

const ExactMrc& ExactLruModel::pc_mrc(Pc pc) const {
  auto it = per_pc_.find(pc);
  return it == per_pc_.end() ? empty_ : it->second;
}

std::uint64_t ExactLruModel::accesses_of(Pc pc) const {
  auto it = per_pc_raw_.find(pc);
  return it == per_pc_raw_.end() ? 0 : it->second.accesses;
}

std::uint64_t ExactLruModel::reuse_edge_count(Pc from, Pc to) const {
  auto it = edges_.find(from);
  if (it == edges_.end()) return 0;
  auto jt = it->second.find(to);
  return jt == it->second.end() ? 0 : jt->second;
}

std::uint64_t ExactLruModel::reuse_out_degree(Pc from) const {
  auto it = edge_totals_.find(from);
  return it == edge_totals_.end() ? 0 : it->second;
}

std::vector<Pc> ExactLruModel::reusers_of(Pc pc, double min_fraction) const {
  std::vector<Pc> out;
  auto it = edges_.find(pc);
  if (it == edges_.end()) return out;
  const double total = static_cast<double>(edge_totals_.at(pc));
  for (const auto& [to, count] : it->second) {
    if (static_cast<double>(count) / total >= min_fraction) {
      out.push_back(to);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ExactLruModel exact_model_of(const workloads::Program& program,
                             std::uint64_t max_refs) {
  ExactLruModel model;
  core::replay_program(
      program, [&](Pc pc, Addr addr) { model.observe(pc, addr); }, max_refs);
  model.finalize();
  return model;
}

}  // namespace re::verify
