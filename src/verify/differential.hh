// Differential oracle: StatStack-from-sparse-samples vs the exact-LRU
// reference model, on the same trace.
//
// One replay of the program feeds both sides — the production sampler
// (whose profile builds the StatStack estimator) and the ExactLruModel
// (true stack distances of every reference). The harness then compares:
//
//   * the application miss-ratio curve at the machine's L1/L2/LLC points,
//   * the MDDLI delinquent-load verdict per static load, and
//   * the cache-bypass (non-temporal) decision per static load,
//
// where the estimator side runs the *production* passes
// (core::identify_delinquent_loads / core::should_bypass) and the exact
// side re-derives the same decisions from ground-truth curves. Decisions
// whose underlying quantity sits within `decision_epsilon` of the
// threshold are "borderline": a disagreement there reflects threshold
// quantization, not model error, and counts as agreement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bypass.hh"
#include "core/mddli.hh"
#include "core/sampler.hh"
#include "sim/config.hh"
#include "support/types.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/program.hh"

namespace re::verify {

/// Acceptance bound on the absolute application-MRC error for one fuzzer
/// family. 2 % absolute for every family except phase-mixed: StatStack fits
/// ONE global reuse-survival function, and a trace whose phases have
/// genuinely different reuse statistics (the phase-mixed family, by design)
/// biases the reuse→stack-distance mapping at intermediate cache sizes.
/// That family gets a looser documented bound instead of a free pass, so a
/// regression that worsens the known bias still fails.
double family_app_error_bound(TraceFamily family);

/// Acceptance floor on per-trace MDDLI / bypass decision agreement.
inline constexpr double kMinDecisionAgreement = 0.95;

struct DifferentialOptions {
  /// Sampler driving the estimator side. A zero period auto-scales to
  /// ~4096 samples over the replayed window.
  core::SamplerConfig sampler{0, 42};
  core::MddliOptions mddli;
  core::BypassOptions bypass;
  std::uint64_t max_refs = ~std::uint64_t{0};
  /// Dead band around the MDDLI / bypass decision thresholds.
  double decision_epsilon = 0.02;
};

/// Exact vs estimated application miss ratio at one cache level.
struct MrcComparison {
  const char* level = "";
  std::uint64_t cache_lines = 0;
  double exact = 0.0;
  double estimated = 0.0;

  double abs_error() const {
    const double d = exact - estimated;
    return d < 0 ? -d : d;
  }
};

/// Decision agreement for one static load.
struct LoadComparison {
  Pc pc = 0;
  double exact_l1 = 0.0;
  double estimated_l1 = 0.0;

  bool exact_delinquent = false;
  bool estimated_delinquent = false;
  bool mddli_borderline = false;

  bool exact_bypass = false;
  bool estimated_bypass = false;
  bool bypass_borderline = false;

  bool mddli_agrees() const {
    return mddli_borderline || exact_delinquent == estimated_delinquent;
  }
  bool bypass_agrees() const {
    return bypass_borderline || exact_bypass == estimated_bypass;
  }
};

struct DifferentialResult {
  std::string trace;
  std::string machine;
  std::uint64_t references = 0;
  std::uint64_t reuse_samples = 0;
  std::uint64_t sample_period = 0;

  std::vector<MrcComparison> application;  // L1, L2, LLC
  std::vector<LoadComparison> loads;       // ascending pc

  /// Largest absolute application-MRC error across the compared levels.
  double max_application_error() const;
  /// Fraction of loads whose MDDLI / bypass verdicts agree (1.0 if none).
  double mddli_agreement() const;
  double bypass_agreement() const;

  /// Deterministic multi-line report (no timestamps, fixed formatting).
  std::string to_string() const;
};

/// Run the differential oracle: replay `program` once into both models and
/// compare them on `machine`.
DifferentialResult run_differential(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const DifferentialOptions& options = {});

// ---- co-run differential: composed CoRunModel vs ExactSharedLruModel ----
//
// The composed side is analysis::run_corun verbatim (solo profiles →
// composed per-core shared MRCs); the exact side runs one true LRU stack
// over the interleaved trace (verify::ExactSharedLruModel). Both sides see
// the identical per-core traces and the identical proportional-progress
// interleaving, so every deviation is composition/model error, never trace
// skew.

/// Acceptance bound on the absolute per-core shared-MRC error for one
/// fuzzer family at one co-run core count. On top of StatStack's solo bias
/// (family_app_error_bound) the composition assumes a uniform interleave
/// ratio and independent per-core reuse statistics, so bounds grow with
/// core count; phase-mixed traces violate the uniformity assumption by
/// design and carry the loosest documented bound (DESIGN.md §13 tabulates
/// the observed errors these were calibrated from).
double corun_family_error_bound(TraceFamily family, int cores);

/// One multi-programmed co-run scenario: `families[i]` runs on core i
/// (cycled when a matrix row is shorter than the core count).
struct CoRunScenario {
  std::string name;
  std::vector<TraceFamily> families;
};

/// The scenario matrix at `cores` cores: homogeneous rows (streaming,
/// chase) plus adversarial mixes (streaming-vs-chase victim, blocked
/// stencil vs streaming, hot/cold vs chase, phase-mixed).
std::vector<CoRunScenario> corun_scenarios(int cores);

struct CoRunDifferentialOptions {
  /// Demand-reference cap per core (memory bound; sanitizer-friendly).
  std::uint64_t max_refs_per_core = std::uint64_t{1} << 16;
  /// Augment every core with its hardware-prefetcher fill stream.
  bool model_hw_prefetch = false;
};

/// Composed vs exact shared miss ratio for one core at one cache size.
struct CoRunPoint {
  std::uint64_t cache_lines = 0;
  double exact = 0.0;
  double composed = 0.0;
  /// Cliff-tolerant error: the smallest vertical distance after shifting
  /// either curve horizontally by at most 1/8 of the probed size. Equals
  /// abs_error() wherever both curves are flat across the slack window;
  /// on a shared working-set cliff it scores the cliff-localization error
  /// instead of the (ill-posed) mid-transition step height.
  double error = 0.0;

  /// Raw vertical distance at the probe, kept for reports.
  double abs_error() const {
    const double d = exact - composed;
    return d < 0 ? -d : d;
  }
};

struct CoRunCoreComparison {
  int core = 0;
  std::string family;
  std::uint64_t accesses = 0;            // interleaved-trace accesses
  std::uint64_t effective_llc_lines = 0; // composed capacity share
  std::vector<CoRunPoint> points;        // LLC/2, LLC, 2·LLC

  double max_error() const;
};

struct CoRunDifferentialResult {
  std::string scenario;
  std::string machine;
  int cores = 0;
  std::uint64_t seed = 0;
  bool hw_prefetch = false;
  std::vector<CoRunCoreComparison> per_core;
  /// Integer identity: per-core attributed misses summed over cores equal
  /// the shared total at every compared size. Exact by construction; false
  /// means the oracle itself is broken.
  bool attribution_exact = true;

  /// Largest absolute composed-vs-exact error across cores and sizes.
  double max_error() const;
  /// Deterministic multi-line report (no timestamps, fixed formatting).
  std::string to_string() const;
};

/// Run one scenario: fuzz per-core programs from (family, seed, core),
/// rebase them into disjoint address spaces, feed the co-run pipeline and
/// the shared-LRU oracle, and compare per-core shared MRCs at LLC/2, LLC
/// and 2·LLC lines.
CoRunDifferentialResult run_corun_differential(
    const CoRunScenario& scenario, const sim::MachineConfig& machine,
    std::uint64_t seed, const CoRunDifferentialOptions& options = {});

// ---- interference prediction (the paper's co-run pathology) -------------
//
// A pointer-chase victim (core 0) shares the LLC with sparse streaming
// aggressors (2-line stride, footprint ≫ LLC). Turning on the aggressors'
// hardware prefetcher — with the speculative adjacent-line engine that the
// paper blames for overfetch — fills the skipped buddy lines: pure
// pollution that roughly doubles each aggressor's distinct-line pressure.
// The composed model must *predict* the victim's degradation (higher
// shared-LLC miss ratio, no larger capacity share) before any run, and the
// exact oracle must confirm it. Note the converse is also meaningful: a
// perfectly *accurate* prefetcher touches only lines the demand stream
// covers anyway, so it leaves LRU distinct-line pressure unchanged — only
// useless fills degrade co-runners in a stack-distance model (DESIGN.md
// §13).

struct CoRunInterference {
  std::string machine;
  int cores = 0;
  std::uint64_t seed = 0;
  std::uint64_t llc_lines = 0;

  double victim_mr_off = 0.0;  // composed victim miss ratio at the LLC
  double victim_mr_on = 0.0;
  double exact_mr_off = 0.0;   // oracle's victim miss ratio at the LLC
  double exact_mr_on = 0.0;
  std::uint64_t share_off = 0;  // composed effective victim share (lines)
  std::uint64_t share_on = 0;
  /// Largest |composed - exact| victim error across both runs.
  double max_composed_error = 0.0;

  /// The composition predicts the degradation.
  bool predicted() const {
    return victim_mr_on > victim_mr_off && share_on <= share_off;
  }
  /// The exact interleaved-LRU oracle confirms it.
  bool confirmed() const { return exact_mr_on > exact_mr_off; }

  /// Deterministic multi-line report (no timestamps, fixed formatting).
  std::string to_string() const;
};

/// Run the chase-victim-vs-streaming-aggressors experiment at `cores`
/// cores, hardware prefetching off then on (aggressors only).
CoRunInterference run_corun_interference(
    const sim::MachineConfig& machine, int cores, std::uint64_t seed,
    std::uint64_t max_refs_per_core = std::uint64_t{1} << 16);

}  // namespace re::verify
