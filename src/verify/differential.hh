// Differential oracle: StatStack-from-sparse-samples vs the exact-LRU
// reference model, on the same trace.
//
// One replay of the program feeds both sides — the production sampler
// (whose profile builds the StatStack estimator) and the ExactLruModel
// (true stack distances of every reference). The harness then compares:
//
//   * the application miss-ratio curve at the machine's L1/L2/LLC points,
//   * the MDDLI delinquent-load verdict per static load, and
//   * the cache-bypass (non-temporal) decision per static load,
//
// where the estimator side runs the *production* passes
// (core::identify_delinquent_loads / core::should_bypass) and the exact
// side re-derives the same decisions from ground-truth curves. Decisions
// whose underlying quantity sits within `decision_epsilon` of the
// threshold are "borderline": a disagreement there reflects threshold
// quantization, not model error, and counts as agreement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bypass.hh"
#include "core/mddli.hh"
#include "core/sampler.hh"
#include "sim/config.hh"
#include "support/types.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/program.hh"

namespace re::verify {

/// Acceptance bound on the absolute application-MRC error for one fuzzer
/// family. 2 % absolute for every family except phase-mixed: StatStack fits
/// ONE global reuse-survival function, and a trace whose phases have
/// genuinely different reuse statistics (the phase-mixed family, by design)
/// biases the reuse→stack-distance mapping at intermediate cache sizes.
/// That family gets a looser documented bound instead of a free pass, so a
/// regression that worsens the known bias still fails.
double family_app_error_bound(TraceFamily family);

/// Acceptance floor on per-trace MDDLI / bypass decision agreement.
inline constexpr double kMinDecisionAgreement = 0.95;

struct DifferentialOptions {
  /// Sampler driving the estimator side. A zero period auto-scales to
  /// ~4096 samples over the replayed window.
  core::SamplerConfig sampler{0, 42};
  core::MddliOptions mddli;
  core::BypassOptions bypass;
  std::uint64_t max_refs = ~std::uint64_t{0};
  /// Dead band around the MDDLI / bypass decision thresholds.
  double decision_epsilon = 0.02;
};

/// Exact vs estimated application miss ratio at one cache level.
struct MrcComparison {
  const char* level = "";
  std::uint64_t cache_lines = 0;
  double exact = 0.0;
  double estimated = 0.0;

  double abs_error() const {
    const double d = exact - estimated;
    return d < 0 ? -d : d;
  }
};

/// Decision agreement for one static load.
struct LoadComparison {
  Pc pc = 0;
  double exact_l1 = 0.0;
  double estimated_l1 = 0.0;

  bool exact_delinquent = false;
  bool estimated_delinquent = false;
  bool mddli_borderline = false;

  bool exact_bypass = false;
  bool estimated_bypass = false;
  bool bypass_borderline = false;

  bool mddli_agrees() const {
    return mddli_borderline || exact_delinquent == estimated_delinquent;
  }
  bool bypass_agrees() const {
    return bypass_borderline || exact_bypass == estimated_bypass;
  }
};

struct DifferentialResult {
  std::string trace;
  std::string machine;
  std::uint64_t references = 0;
  std::uint64_t reuse_samples = 0;
  std::uint64_t sample_period = 0;

  std::vector<MrcComparison> application;  // L1, L2, LLC
  std::vector<LoadComparison> loads;       // ascending pc

  /// Largest absolute application-MRC error across the compared levels.
  double max_application_error() const;
  /// Fraction of loads whose MDDLI / bypass verdicts agree (1.0 if none).
  double mddli_agreement() const;
  double bypass_agreement() const;

  /// Deterministic multi-line report (no timestamps, fixed formatting).
  std::string to_string() const;
};

/// Run the differential oracle: replay `program` once into both models and
/// compare them on `machine`.
DifferentialResult run_differential(const workloads::Program& program,
                                    const sim::MachineConfig& machine,
                                    const DifferentialOptions& options = {});

}  // namespace re::verify
