#include "verify/golden.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "analysis/corun.hh"
#include "core/pipeline.hh"
#include "engine/executor.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/mix.hh"
#include "workloads/suite.hh"

namespace re::verify {

namespace {

/// Seed of the deterministic streaming aggressors in the co-run snapshot.
constexpr std::uint64_t kCoRunGoldenSeed = 0x5eed;

void append_plan_body(std::ostringstream& out,
                      const std::vector<GoldenEntry>& entries) {
  for (const GoldenEntry& entry : entries) {
    out << "benchmark " << entry.benchmark << "\n";
    if (entry.plans.empty()) {
      out << "  none\n";
      continue;
    }
    for (const core::PrefetchPlan& plan : entry.plans) {
      out << "  pc" << plan.pc << " " << core::hint_mnemonic(plan.hint) << " "
          << (plan.distance_bytes >= 0 ? "+" : "") << plan.distance_bytes
          << "\n";
    }
  }
}

std::vector<std::string> significant_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

std::vector<GoldenEntry> compute_suite_plans(
    const sim::MachineConfig& machine, const engine::Executor* executor) {
  const std::vector<std::string> names = workloads::suite_names();
  const auto compute = [&](std::size_t i) {
    const workloads::Program program =
        workloads::make_benchmark(names[i], workloads::InputSet::Reference);
    core::OptimizationReport report = core::optimize_program(program, machine);
    return GoldenEntry{names[i], std::move(report.plans)};
  };
  if (executor != nullptr) return executor->map(names.size(), compute);
  std::vector<GoldenEntry> entries;
  entries.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    entries.push_back(compute(i));
  }
  return entries;
}

std::string render_golden(const std::vector<GoldenEntry>& entries,
                          const std::string& machine_name) {
  std::ostringstream out;
  out << "# golden prefetch plans | machine=" << machine_name
      << " | format=1\n";
  out << "# Regenerate after a reviewed pipeline change:\n";
  out << "#   tools/check.sh verify --bless\n";
  out << "#   (or: repf verify --bless --golden tests/golden"
         " [--machine intel])\n";
  append_plan_body(out, entries);
  return out.str();
}

std::string golden_filename(const std::string& machine_name) {
  std::string slug;
  for (char c : machine_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  return "plans_" + slug + ".golden";
}

std::vector<GoldenEntry> compute_corun_suite_plans(
    const sim::MachineConfig& machine, const engine::Executor* executor) {
  const std::vector<std::string> names = workloads::suite_names();
  const auto compute = [&](std::size_t i) {
    // Victim on core 0, three deterministic streaming aggressors on the
    // remaining cores, each in a disjoint address space.
    std::vector<workloads::Program> programs;
    programs.reserve(sim::kNumCores);
    programs.push_back(
        workloads::make_benchmark(names[i], workloads::InputSet::Reference));
    for (int core = 1; core < sim::kNumCores; ++core) {
      FuzzedTrace aggressor =
          make_trace(TraceFamily::kStrided, kCoRunGoldenSeed,
                     static_cast<std::uint64_t>(core));
      workloads::rebase_program(aggressor.program,
                                workloads::core_address_offset(core));
      programs.push_back(std::move(aggressor.program));
    }
    analysis::CoRunArtifacts artifacts;
    artifacts.programs = &programs;
    artifacts.machine = &machine;
    analysis::run_corun(artifacts);
    return GoldenEntry{names[i], std::move(artifacts.reports[0].plans)};
  };
  if (executor != nullptr) return executor->map(names.size(), compute);
  std::vector<GoldenEntry> entries;
  entries.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    entries.push_back(compute(i));
  }
  return entries;
}

std::string render_corun_golden(const std::vector<GoldenEntry>& entries,
                                const std::string& machine_name) {
  std::ostringstream out;
  out << "# golden co-run victim plans | machine=" << machine_name
      << " | format=1\n";
  out << "# Core 0 victim vs 3 streaming aggressors; plans solved with the\n";
  out << "# composed effective-LLC-share knob. Regenerate after a reviewed\n";
  out << "# composition change:\n";
  out << "#   repf corun --bless --golden tests/golden [--machine intel]\n";
  append_plan_body(out, entries);
  return out.str();
}

std::string corun_golden_filename(const std::string& machine_name) {
  return "corun_" + golden_filename(machine_name);
}

std::string diff_golden(const std::string& expected,
                        const std::string& actual) {
  const std::vector<std::string> want = significant_lines(expected);
  const std::vector<std::string> got = significant_lines(actual);
  std::ostringstream diff;
  const std::size_t n = std::max(want.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* w = i < want.size() ? &want[i] : nullptr;
    const std::string* g = i < got.size() ? &got[i] : nullptr;
    if (w && g && *w == *g) continue;
    if (w) diff << "-" << *w << "\n";
    if (g) diff << "+" << *g << "\n";
  }
  return diff.str();
}

}  // namespace re::verify
