#include "analysis/corun.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/sampler.hh"
#include "core/trace_replay.hh"
#include "engine/pipeline.hh"
#include "sim/hw_prefetcher.hh"

namespace re::analysis {

namespace {

/// Small direct-mapped line filter standing in for the private cache in
/// front of the hardware prefetcher: only filter misses train the engines
/// and only filter-missing candidates become fill pseudo-accesses, so the
/// augmented trace does not explode with duplicate fills of hot lines.
class LineFilter {
 public:
  bool touch(Addr line) {
    const std::size_t slot = static_cast<std::size_t>(line) & (kSlots - 1);
    if (table_[slot] == line) return true;
    table_[slot] = line;
    return false;
  }

 private:
  static constexpr std::size_t kSlots = 1024;
  Addr table_[kSlots] = {};
};

}  // namespace

CoreTrace collect_core_trace(const workloads::Program& program,
                             std::uint64_t max_refs,
                             const sim::HwPrefetcherConfig* hw) {
  CoreTrace trace;
  if (hw == nullptr) {
    core::replay_program(
        program, [&](Pc pc, Addr addr) { trace.push_back({pc, addr}); },
        max_refs);
    return trace;
  }

  sim::HwPrefetcherConfig config = *hw;
  config.enabled = true;
  sim::HwPrefetcher prefetcher(config);
  LineFilter filter;
  std::vector<Addr> candidates;
  core::replay_program(
      program,
      [&](Pc pc, Addr addr) {
        trace.push_back({pc, addr});
        // Line 0 is a real address for core 0's first pattern, so seed the
        // filter lazily: a filter hit suppresses both training and fills.
        if (filter.touch(line_of(addr))) return;
        candidates.clear();
        prefetcher.observe(pc, addr, /*l2_hit=*/false,
                           /*dram_queue_delay=*/0, candidates);
        for (Addr line : candidates) {
          if (filter.touch(line)) continue;
          trace.push_back({kHwPrefetchPc, line_base(line)});
        }
      },
      max_refs);
  return trace;
}

void interleave_traces(
    const std::vector<CoreTrace>& traces,
    const std::function<void(int core, const CoreAccess&)>& fn) {
  const std::size_t n = traces.size();
  std::vector<std::size_t> pos(n, 0);
  for (;;) {
    // Next reference: the core with the smallest fractional progress
    // (pos + 1) / len, compared exactly by cross-multiplication; ties go
    // to the lowest core id.
    int next = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (pos[i] >= traces[i].size()) continue;
      if (next < 0) {
        next = static_cast<int>(i);
        continue;
      }
      const auto lhs = static_cast<unsigned __int128>(pos[i] + 1) *
                       traces[static_cast<std::size_t>(next)].size();
      const auto rhs =
          static_cast<unsigned __int128>(pos[static_cast<std::size_t>(next)] +
                                         1) *
          traces[i].size();
      if (lhs < rhs) next = static_cast<int>(i);
    }
    if (next < 0) return;
    const auto c = static_cast<std::size_t>(next);
    fn(next, traces[c][pos[c]]);
    ++pos[c];
  }
}

CoRunModel::CoRunModel(std::vector<CoRunCoreInput> cores) {
  cores_.reserve(cores.size());
  for (const CoRunCoreInput& input : cores) {
    assert(input.profile != nullptr && input.model != nullptr);
    CoreState state;
    state.solver = &input.model->solver();
    state.distances.reserve(input.profile->reuse_samples.size());
    for (const core::ReuseSample& s : input.profile->reuse_samples) {
      state.distances.push_back(s.distance);
    }
    std::sort(state.distances.begin(), state.distances.end());
    state.dangling =
        static_cast<double>(input.profile->dangling_reuse_samples);
    state.weight = input.weight > 0.0 ? input.weight : 1.0;
    cores_.push_back(std::move(state));
  }
}

double CoRunModel::shared_stack_distance(int core,
                                         RefCount reuse_distance) const {
  const auto i = static_cast<std::size_t>(core);
  if (reuse_distance == kInfiniteDistance) {
    return std::numeric_limits<double>::infinity();
  }
  double sd = cores_[i].solver->stack_distance(reuse_distance);
  for (std::size_t j = 0; j < cores_.size(); ++j) {
    if (j == i) continue;
    // Core j advances w_j / w_i references per reference of core i.
    const double scaled = static_cast<double>(reuse_distance) *
                          cores_[j].weight / cores_[i].weight;
    // Truncation keeps the composed function monotone in reuse_distance;
    // clamp below the RefCount sentinel before converting.
    const double clamped = std::min(scaled, 9.0e18);
    sd += cores_[j].solver->stack_distance(static_cast<RefCount>(clamped));
  }
  return sd;
}

RefCount CoRunModel::critical_reuse_distance(int core,
                                             double shared_lines) const {
  if (shared_lines <= 0.0) return 0;
  if (cores_.size() == 1) {
    // Solo run: the composed function IS the core's own solver, so invert
    // it exactly — composed results match StatStack's MRC bit-for-bit.
    return cores_[0].solver->reuse_distance_for(shared_lines);
  }
  // The composed function is monotone non-decreasing: exponential search
  // for an upper bracket, then binary search for the smallest reaching D.
  constexpr RefCount kCap = RefCount{1} << 62;
  RefCount hi = 1;
  while (hi < kCap && shared_stack_distance(core, hi) < shared_lines) {
    hi <<= 1;
  }
  if (shared_stack_distance(core, hi) < shared_lines) {
    return kInfiniteDistance;  // the co-run set never fills the cache
  }
  RefCount lo = hi >> 1;  // SD(lo) < shared_lines (or lo == 0)
  while (lo + 1 < hi) {
    const RefCount mid = lo + (hi - lo) / 2;
    if (shared_stack_distance(core, mid) < shared_lines) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double CoRunModel::shared_miss_ratio_lines(int core,
                                           std::uint64_t cache_lines) const {
  const CoreState& state = cores_[static_cast<std::size_t>(core)];
  const double samples =
      static_cast<double>(state.distances.size()) + state.dangling;
  if (samples <= 0.0) return 0.0;
  const RefCount critical =
      critical_reuse_distance(core, static_cast<double>(cache_lines));
  double misses = state.dangling;
  if (critical != kInfiniteDistance) {
    auto it = std::lower_bound(state.distances.begin(), state.distances.end(),
                               critical);
    misses += static_cast<double>(state.distances.end() - it);
  }
  return misses / samples;
}

std::uint64_t CoRunModel::effective_llc_lines(int core,
                                              std::uint64_t llc_lines) const {
  if (llc_lines == 0) return 0;
  const RefCount critical =
      critical_reuse_distance(core, static_cast<double>(llc_lines));
  if (critical == kInfiniteDistance) return llc_lines;  // cache never fills
  const double own =
      cores_[static_cast<std::size_t>(core)].solver->stack_distance(critical);
  // Floor is the conservative direction: a smaller share predicts more
  // misses, so the planner never undersells contention.
  const auto floored = static_cast<std::uint64_t>(std::floor(own));
  return std::clamp<std::uint64_t>(floored, 1, llc_lines);
}

core::Profile demand_only_profile(const core::Profile& augmented) {
  core::Profile demand;
  demand.sample_period = augmented.sample_period;
  demand.reuse_samples.reserve(augmented.reuse_samples.size());
  for (const core::ReuseSample& s : augmented.reuse_samples) {
    if (s.first_pc == kHwPrefetchPc || s.second_pc == kHwPrefetchPc) continue;
    demand.reuse_samples.push_back(s);
  }
  demand.stride_samples.reserve(augmented.stride_samples.size());
  for (const core::StrideSample& s : augmented.stride_samples) {
    if (s.pc == kHwPrefetchPc) continue;
    demand.stride_samples.push_back(s);
  }
  demand.dangling_reuse_samples = augmented.dangling_reuse_samples;
  for (const auto& [pc, count] : augmented.dangling_by_pc) {
    if (pc == kHwPrefetchPc) {
      demand.dangling_reuse_samples -= count;
      continue;
    }
    demand.dangling_by_pc.emplace(pc, count);
  }
  demand.total_references = augmented.total_references;
  for (const auto& [pc, count] : augmented.pc_execution_counts) {
    if (pc == kHwPrefetchPc) {
      demand.total_references -= count;
      continue;
    }
    demand.pc_execution_counts.emplace(pc, count);
  }
  return demand;
}

namespace {

std::uint64_t auto_sample_period(std::size_t trace_len) {
  // The corun pipeline samples short synthetic traces (max_refs_per_core is
  // 2^16 by default, vs ~10^6 for the solo pipeline), so the solo default
  // period would leave a few dozen samples per core. Target ~16k samples
  // instead, matching the differential harness's auto period.
  return std::max<std::uint64_t>(1, trace_len / 16384);
}

engine::StageGraph<CoRunArtifacts> build_corun_graph() {
  engine::StageGraph<CoRunArtifacts> graph;

  graph.add({"corun_trace", "programs, machine", "traces", {},
             [](CoRunArtifacts& a, const engine::EngineContext& ctx) {
               const std::size_t n = a.programs->size();
               a.traces.resize(n);
               ctx.for_each(n, [&](std::size_t i) {
                 const bool hw_on = i < a.hw_prefetch_core.size()
                                        ? a.hw_prefetch_core[i] != 0
                                        : a.model_hw_prefetch;
                 if (hw_on) {
                   const sim::HwPrefetcherConfig hw =
                       a.hw_config ? *a.hw_config : a.machine->hw_prefetcher;
                   a.traces[i] = collect_core_trace((*a.programs)[i],
                                                    a.max_refs_per_core, &hw);
                 } else {
                   a.traces[i] = collect_core_trace((*a.programs)[i],
                                                    a.max_refs_per_core);
                 }
               });
             }});

  graph.add({"corun_sample", "traces", "profiles", {},
             [](CoRunArtifacts& a, const engine::EngineContext& ctx) {
               const std::size_t n = a.traces.size();
               a.profiles.resize(n);
               ctx.for_each(n, [&](std::size_t i) {
                 core::SamplerConfig config;
                 config.sample_period = auto_sample_period(a.traces[i].size());
                 config.seed = a.knobs.sample_seed + i;
                 core::Sampler sampler(config);
                 for (const CoreAccess& access : a.traces[i]) {
                   sampler.observe(access.pc, access.addr);
                 }
                 a.profiles[i] = sampler.finish();
               });
             }});

  graph.add({"corun_statstack", "profiles", "models", {},
             [](CoRunArtifacts& a, const engine::EngineContext& ctx) {
               const std::size_t n = a.profiles.size();
               a.models.resize(n);
               ctx.for_each(n, [&](std::size_t i) {
                 a.models[i] =
                     std::make_unique<core::StatStack>(a.profiles[i]);
               });
             }});

  graph.add({"corun_compose", "profiles, models, machine",
             "corun, effective_llc_lines", {},
             [](CoRunArtifacts& a, const engine::EngineContext& ctx) {
               ctx.check_cancel();
               const std::size_t n = a.profiles.size();
               std::vector<CoRunCoreInput> inputs(n);
               for (std::size_t i = 0; i < n; ++i) {
                 inputs[i].profile = &a.profiles[i];
                 inputs[i].model = a.models[i].get();
                 inputs[i].weight = static_cast<double>(a.traces[i].size());
               }
               a.corun = std::make_unique<CoRunModel>(std::move(inputs));
               const std::uint64_t llc_lines = a.machine->llc.num_lines();
               a.effective_llc_lines.resize(n);
               for (std::size_t i = 0; i < n; ++i) {
                 a.effective_llc_lines[i] = a.corun->effective_llc_lines(
                     static_cast<int>(i), llc_lines);
               }
             }});

  graph.add({"corun_mddli", "programs, profiles, effective_llc_lines",
             "reports", {},
             [](CoRunArtifacts& a, const engine::EngineContext& ctx) {
               const std::size_t n = a.profiles.size();
               a.reports.resize(n);
               ctx.for_each(n, [&](std::size_t i) {
                 engine::AnalysisKnobs knobs = a.knobs;
                 knobs.llc_effective_bytes =
                     a.effective_llc_lines[i] * kLineSize;
                 // Nested solves run serially inside the per-core fan-out;
                 // determinism comes from index-owned writes.
                 engine::EngineContext inner;
                 inner.cancel = ctx.cancel;
                 a.reports[i] = engine::run_optimize_with_profile(
                     (*a.programs)[i], demand_only_profile(a.profiles[i]),
                     *a.machine, engine::make_optimizer_options(knobs),
                     inner);
               });
             }});

  return graph;
}

}  // namespace

const engine::StageGraph<CoRunArtifacts>& corun_graph() {
  static const engine::StageGraph<CoRunArtifacts> graph = build_corun_graph();
  return graph;
}

void run_corun(CoRunArtifacts& artifacts, const engine::EngineContext& ctx) {
  assert(artifacts.programs != nullptr && artifacts.machine != nullptr);
  corun_graph().run(artifacts, ctx);
}

}  // namespace re::analysis
