// Mixed-workload study driver shared by the Figure 7/9/10/11 benches:
// evaluates N random 4-app mixes under Baseline / Hardware / SoftwareNT on
// one machine and collects the per-mix metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/experiments.hh"

namespace re::analysis {

struct MixOutcome {
  workloads::MixSpec spec;
  double ws_hw = 0.0;       // weighted speedup, hardware prefetching
  double ws_nt = 0.0;       // weighted speedup, Soft Pref.+NT
  double fs_hw = 0.0;       // fair speedup
  double fs_nt = 0.0;
  double qos_hw = 0.0;      // QoS degradation (<= 0)
  double qos_nt = 0.0;
  double traffic_hw = 0.0;  // off-chip traffic increase vs baseline
  double traffic_nt = 0.0;
};

struct MixStudy {
  std::vector<MixOutcome> outcomes;

  std::vector<double> collect(double MixOutcome::* field) const;
  double average(double MixOutcome::* field) const;
  /// Fraction of mixes where `field` of NT beats HW (or any predicate).
  int count_if(bool (*pred)(const MixOutcome&)) const;
};

/// The paper's standard study: `count` mixes of 4 random benchmarks.
/// `run_input` selects original or different inputs (Section VII-D); the
/// prefetch plans always come from Reference-input profiles.
MixStudy run_mix_study(const sim::MachineConfig& machine, PlanCache& cache,
                       int count, workloads::InputSet run_input,
                       std::uint64_t seed = 0x180);

}  // namespace re::analysis
