#include "analysis/metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace re::analysis {

namespace {
void check(const MixTimes& times) {
  if (times.baseline.size() != times.policy.size() ||
      times.baseline.empty()) {
    throw std::invalid_argument("MixTimes sizes must match and be non-empty");
  }
  for (std::size_t i = 0; i < times.baseline.size(); ++i) {
    if (times.baseline[i] <= 0.0 || times.policy[i] <= 0.0) {
      throw std::invalid_argument("MixTimes entries must be positive");
    }
  }
}
}  // namespace

double weighted_speedup(const MixTimes& times) {
  check(times);
  double sum = 0.0;
  for (std::size_t i = 0; i < times.baseline.size(); ++i) {
    sum += times.baseline[i] / times.policy[i];
  }
  return sum / static_cast<double>(times.baseline.size());
}

double fair_speedup(const MixTimes& times) {
  check(times);
  double denom = 0.0;
  for (std::size_t i = 0; i < times.baseline.size(); ++i) {
    denom += times.policy[i] / times.baseline[i];
  }
  return static_cast<double>(times.baseline.size()) / denom;
}

double qos_degradation(const MixTimes& times) {
  check(times);
  double sum = 0.0;
  for (std::size_t i = 0; i < times.baseline.size(); ++i) {
    sum += std::min(0.0, times.baseline[i] / times.policy[i] - 1.0);
  }
  return sum;
}

double traffic_increase(std::uint64_t base_bytes,
                        std::uint64_t policy_bytes) {
  if (base_bytes == 0) return 0.0;
  return static_cast<double>(policy_bytes) /
             static_cast<double>(base_bytes) -
         1.0;
}

double statstack_miss_coverage(const core::StatStack& model,
                               const core::Profile& profile,
                               const FunctionalSimResult& simulated,
                               std::uint64_t cache_lines) {
  double covered = 0.0;
  double total = 0.0;
  for (const auto& [pc, sim_misses] : simulated.misses_by_pc) {
    total += static_cast<double>(sim_misses);
    const double modeled = model.estimated_misses(pc, cache_lines, profile);
    covered += std::min(modeled, static_cast<double>(sim_misses));
  }
  return total > 0.0 ? covered / total : 0.0;
}

}  // namespace re::analysis
