// Shared experiment harness for the bench binaries: evaluates benchmarks
// and workload mixes under the paper's prefetching policies.
//
// Policies (paper Figures 4-7):
//   Baseline      — original program, hardware prefetcher off. All speedups
//                   and traffic numbers are relative to this.
//   Hardware      — original program, hardware prefetcher on.
//   Software      — MDDLI-optimized program without NT, HW prefetcher off.
//   SoftwareNT    — MDDLI-optimized with cache bypassing ("Soft Pref.+NT").
//   StrideCentric — the stride-centric baseline, HW prefetcher off.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine/executor.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "workloads/mix.hh"
#include "workloads/suite.hh"

namespace re::analysis {

enum class Policy { Baseline, Hardware, Software, SoftwareNT, StrideCentric };

const char* policy_name(Policy policy);

/// Caches optimization reports per (machine, benchmark, policy variant) so
/// each bench binary profiles and optimizes a benchmark exactly once.
/// Profiling always uses the Reference input (paper Section VII-D: a single
/// input profile is used for both target architectures and all runs).
///
/// Thread-safe: evaluate_suite fans benchmark evaluations out over engine
/// workers that share one cache. Each key's report is computed exactly once
/// (call_once) outside the map lock, so distinct benchmarks optimize in
/// parallel, and returned references stay stable (entries never move).
class PlanCache {
 public:
  explicit PlanCache(core::OptimizerOptions options = {});

  const core::OptimizationReport& report(const sim::MachineConfig& machine,
                                         const std::string& benchmark,
                                         Policy policy);

  /// Program for `benchmark` with `input` data, optimized per `policy`
  /// (plans trained on the Reference input), rebased by `base_offset`.
  workloads::Program prepare(const sim::MachineConfig& machine,
                             const std::string& benchmark,
                             workloads::InputSet input, Policy policy,
                             Addr base_offset = 0);

  const core::OptimizerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::once_flag once;
    core::OptimizationReport report;
  };

  core::OptimizerOptions options_;
  std::mutex mutex_;  // guards the map shape only, never the optimize
  std::map<std::string, std::unique_ptr<Entry>> reports_;
};

/// Single-benchmark evaluation (Figures 4-6): one run per policy.
struct BenchmarkEvaluation {
  std::string name;
  std::map<Policy, sim::RunResult> runs;

  double speedup(Policy policy) const;           // vs Baseline
  double traffic_increase(Policy policy) const;  // vs Baseline
  double bandwidth_gbps(Policy policy) const;
};

BenchmarkEvaluation evaluate_benchmark(
    const sim::MachineConfig& machine, const std::string& benchmark,
    PlanCache& cache,
    workloads::InputSet input = workloads::InputSet::Reference);

/// Evaluate a whole suite, fanning the per-benchmark work (profile,
/// optimize under every policy, five simulated runs) out over `executor`'s
/// workers. Ordered reduction: results arrive in `benchmarks` order and are
/// byte-identical to the serial loop at any worker count. Null executor =
/// serial.
std::vector<BenchmarkEvaluation> evaluate_suite(
    const sim::MachineConfig& machine,
    const std::vector<std::string>& benchmarks, PlanCache& cache,
    const engine::Executor* executor = nullptr,
    workloads::InputSet input = workloads::InputSet::Reference);

/// Mixed-workload evaluation (Figures 7-11): Baseline, Hardware and
/// SoftwareNT runs of a 4-app mix.
struct MixEvaluation {
  workloads::MixSpec spec;
  std::map<Policy, sim::RunResult> runs;

  std::vector<double> times(Policy policy) const;
  double weighted_speedup(Policy policy) const;
  double fair_speedup(Policy policy) const;
  double qos(Policy policy) const;
  double traffic_increase(Policy policy) const;
  double bandwidth_gbps(Policy policy) const;
};

MixEvaluation evaluate_mix(
    const sim::MachineConfig& machine, const workloads::MixSpec& spec,
    PlanCache& cache,
    workloads::InputSet run_input = workloads::InputSet::Reference,
    const std::vector<Policy>& policies = {Policy::Baseline, Policy::Hardware,
                                           Policy::SoftwareNT});

}  // namespace re::analysis
