#include "analysis/mix_study.hh"

namespace re::analysis {

std::vector<double> MixStudy::collect(double MixOutcome::* field) const {
  std::vector<double> out;
  out.reserve(outcomes.size());
  for (const MixOutcome& o : outcomes) out.push_back(o.*field);
  return out;
}

double MixStudy::average(double MixOutcome::* field) const {
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const MixOutcome& o : outcomes) sum += o.*field;
  return sum / static_cast<double>(outcomes.size());
}

int MixStudy::count_if(bool (*pred)(const MixOutcome&)) const {
  int n = 0;
  for (const MixOutcome& o : outcomes) {
    if (pred(o)) ++n;
  }
  return n;
}

MixStudy run_mix_study(const sim::MachineConfig& machine, PlanCache& cache,
                       int count, workloads::InputSet run_input,
                       std::uint64_t seed) {
  const std::vector<workloads::MixSpec> mixes =
      workloads::generate_mixes(count, sim::kNumCores, seed);

  MixStudy study;
  study.outcomes.reserve(mixes.size());
  for (const workloads::MixSpec& spec : mixes) {
    const MixEvaluation eval = evaluate_mix(machine, spec, cache, run_input);
    MixOutcome o;
    o.spec = spec;
    o.ws_hw = eval.weighted_speedup(Policy::Hardware);
    o.ws_nt = eval.weighted_speedup(Policy::SoftwareNT);
    o.fs_hw = eval.fair_speedup(Policy::Hardware);
    o.fs_nt = eval.fair_speedup(Policy::SoftwareNT);
    o.qos_hw = eval.qos(Policy::Hardware);
    o.qos_nt = eval.qos(Policy::SoftwareNT);
    o.traffic_hw = eval.traffic_increase(Policy::Hardware);
    o.traffic_nt = eval.traffic_increase(Policy::SoftwareNT);
    study.outcomes.push_back(o);
  }
  return study;
}

}  // namespace re::analysis
