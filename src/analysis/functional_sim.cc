#include "analysis/functional_sim.hh"

#include "sim/cache.hh"
#include "workloads/cursor.hh"

namespace re::analysis {

FunctionalSimResult functional_simulate(const workloads::Program& program,
                                        const sim::CacheGeometry& geometry,
                                        std::uint64_t max_refs) {
  sim::SetAssocCache cache(geometry);
  workloads::ProgramCursor cursor(program);
  FunctionalSimResult result;

  while (result.total_references < max_refs) {
    auto event = cursor.next();
    if (!event) break;
    const Pc pc = event->inst->pc;
    const Addr line = line_of(event->addr);

    ++result.total_references;
    ++result.accesses_by_pc[pc];
    if (!cache.access(line, /*demand=*/true)) {
      ++result.total_misses;
      ++result.misses_by_pc[pc];
      cache.fill(line, sim::FillOrigin::Demand);
    }

    if (event->inst->prefetch) {
      ++result.prefetches_executed;
      const Addr target_line = line_of(static_cast<Addr>(
          static_cast<std::int64_t>(event->addr) +
          event->inst->prefetch->distance_bytes));
      if (!cache.access(target_line, /*demand=*/false)) {
        cache.fill(target_line, sim::FillOrigin::SwPrefetch);
      }
    }
  }
  return result;
}

CoverageResult measure_coverage(const workloads::Program& original,
                                const workloads::Program& optimized,
                                const sim::CacheGeometry& geometry,
                                std::uint64_t max_refs) {
  const FunctionalSimResult base =
      functional_simulate(original, geometry, max_refs);
  const FunctionalSimResult opt =
      functional_simulate(optimized, geometry, max_refs);
  CoverageResult result;
  result.base_misses = base.total_misses;
  result.optimized_misses = opt.total_misses;
  result.prefetches_executed = opt.prefetches_executed;
  return result;
}

}  // namespace re::analysis
