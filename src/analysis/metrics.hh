// Multicore throughput metrics (paper Section VII-C/D, after Srikantaiah et
// al. SC'09): weighted speedup, fair speedup, QoS, traffic increase, and
// the model-coverage metric from Section IV.
#pragma once

#include <cstdint>
#include <vector>

#include "core/profile.hh"
#include "core/statstack.hh"
#include "analysis/functional_sim.hh"

namespace re::analysis {

/// Per-app execution times of the same mix under two configurations.
/// Sizes must match and baseline entries must be non-zero.
struct MixTimes {
  std::vector<double> baseline;  // T_i(base)
  std::vector<double> policy;    // T_i(prefetching)
};

/// Throughput / weighted speedup: arithmetic mean over apps of
/// T_base / T_policy (1.0 = baseline throughput).
double weighted_speedup(const MixTimes& times);

/// The paper's Fair-Speedup: harmonic mean of the per-application
/// speedups, FS = N / sum_i(T_policy_i / T_base_i).
double fair_speedup(const MixTimes& times);

/// The paper's QoS metric: cumulative slowdown,
/// sum_i min(0, T_base_i / T_policy_i - 1). Zero means no app slowed down.
double qos_degradation(const MixTimes& times);

/// Relative change of off-chip traffic: policy/base - 1.
double traffic_increase(std::uint64_t base_bytes, std::uint64_t policy_bytes);

/// Section IV model validation: the share of simulated misses the StatStack
/// model accounts for, sum_pc min(modeled, simulated) / sum_pc simulated.
/// Modeled misses for a PC are its modeled miss ratio at `cache_lines`
/// times its execution count.
double statstack_miss_coverage(const core::StatStack& model,
                               const core::Profile& profile,
                               const FunctionalSimResult& simulated,
                               std::uint64_t cache_lines);

}  // namespace re::analysis
