// Exact functional cache simulation — the reproduction's stand-in for the
// paper's Pin-based simulator (Section IV): ground truth per-instruction
// miss counts for a single cache level, and the coverage/overhead
// measurement behind Table I.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/config.hh"
#include "support/types.hh"
#include "workloads/program.hh"

namespace re::analysis {

struct FunctionalSimResult {
  std::uint64_t total_references = 0;
  std::uint64_t total_misses = 0;
  std::unordered_map<Pc, std::uint64_t> misses_by_pc;
  std::unordered_map<Pc, std::uint64_t> accesses_by_pc;
  /// Software prefetch instructions executed (0 for original programs).
  std::uint64_t prefetches_executed = 0;

  double miss_ratio() const {
    return total_references
               ? static_cast<double>(total_misses) /
                     static_cast<double>(total_references)
               : 0.0;
  }
  std::uint64_t misses_of(Pc pc) const {
    auto it = misses_by_pc.find(pc);
    return it == misses_by_pc.end() ? 0 : it->second;
  }
};

/// Run `program` through an exact set-associative LRU cache of the given
/// geometry, honouring any attached software prefetches (a prefetch fills
/// the cache like an access but is not counted as a reference or miss).
FunctionalSimResult functional_simulate(
    const workloads::Program& program, const sim::CacheGeometry& geometry,
    std::uint64_t max_refs = ~std::uint64_t{0});

/// Table I measurement: run original and optimized programs through the
/// same cache and compare.
struct CoverageResult {
  std::uint64_t base_misses = 0;
  std::uint64_t optimized_misses = 0;
  std::uint64_t prefetches_executed = 0;

  /// Fraction of baseline misses removed by the prefetching.
  double miss_coverage() const {
    if (base_misses == 0) return 0.0;
    const std::uint64_t removed =
        base_misses > optimized_misses ? base_misses - optimized_misses : 0;
    return static_cast<double>(removed) / static_cast<double>(base_misses);
  }

  /// The paper's OH column: prefetch instructions executed per miss removed.
  double overhead() const {
    const std::uint64_t removed =
        base_misses > optimized_misses ? base_misses - optimized_misses : 0;
    if (removed == 0) {
      return prefetches_executed > 0
                 ? static_cast<double>(prefetches_executed)
                 : 0.0;
    }
    return static_cast<double>(prefetches_executed) /
           static_cast<double>(removed);
  }
};

CoverageResult measure_coverage(const workloads::Program& original,
                                const workloads::Program& optimized,
                                const sim::CacheGeometry& geometry,
                                std::uint64_t max_refs = ~std::uint64_t{0});

}  // namespace re::analysis
