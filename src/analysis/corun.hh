// Shared-cache co-run composition (PPT-Multicore / Barai et al. style).
//
// A co-run set is N programs pinned to N cores sharing one LLC. Each core's
// solo StatStack profile describes its *private* reuse behaviour; under
// co-running, every reuse window additionally admits the neighbours'
// intervening accesses, inflating the effective stack distance. With a
// uniform interleave ratio — core j issues w_j references for every w_i of
// core i — a reuse of core i spanning D of its own references spans
// D * w_j / w_i references of core j, so the expected number of *distinct
// lines* inside the window is
//
//     SD_shared,i(D) = SD_i(D) + sum_{j != i} SD_j(D * w_j / w_i)
//
// where SD_j is core j's solo expected-stack-distance function (StatStack's
// piecewise-linear solver). Inverting the (monotone) composed function at
// the shared-LLC size S yields the critical reuse distance D*_i(S) — the
// smallest private reuse distance that misses — from which core i's
// effective shared-LLC miss ratio and its effective capacity share
// SD_i(D*) (the fraction of the stack its own lines occupy at the miss
// boundary) both follow analytically, with no interleaved simulation.
//
// Assumptions (checked by the co-run differential harness in src/verify/
// against ExactSharedLruModel, the true interleaved-LRU oracle):
//   * uniform interleave ratio (no phase-correlated bursts across cores),
//   * disjoint address spaces (no sharing, no coherence traffic),
//   * LRU replacement in a fully-associative shared LLC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/pipeline.hh"
#include "core/statstack.hh"
#include "engine/options.hh"
#include "engine/stage.hh"
#include "sim/config.hh"
#include "support/types.hh"
#include "workloads/program.hh"

namespace re::analysis {

/// Sentinel PC attributed to hardware-prefetcher fill pseudo-accesses in an
/// augmented core trace. Never collides with real PCs (workload PCs are
/// small dense integers) and is stripped by demand_only_profile() before
/// any per-core plan solve.
inline constexpr Pc kHwPrefetchPc = 0xFFFFFFFFu;

/// One reference of one core's (possibly hw-prefetch-augmented) trace.
struct CoreAccess {
  Pc pc = 0;
  Addr addr = 0;
};

/// One core's full replayed trace, in program order.
using CoreTrace = std::vector<CoreAccess>;

/// Replay `program` (capped at `max_refs` demand references) into a trace.
/// When `hw` is non-null, a sim::HwPrefetcher shadows the demand stream
/// behind a small L1-like line filter and its fill candidates are spliced
/// in as kHwPrefetchPc pseudo-accesses right after the triggering demand —
/// the prefetcher's LLC footprint becomes part of the core's contention
/// signal, symmetrically visible to the composed model (via the sampler)
/// and to the shared-LRU oracle (via the same trace).
CoreTrace collect_core_trace(const workloads::Program& program,
                             std::uint64_t max_refs,
                             const sim::HwPrefetcherConfig* hw = nullptr);

/// Deterministic proportional-progress interleaving of N core traces: the
/// next reference comes from the core with the smallest fractional progress
/// (t_i + 1) / L_i, ties broken toward the lowest core id. This realizes
/// the uniform-interleave-ratio assumption exactly, and both the oracle and
/// any replay consumer share this one definition of "the interleaved
/// trace". Calls `fn(core, access)` for every reference in global order.
void interleave_traces(
    const std::vector<CoreTrace>& traces,
    const std::function<void(int core, const CoreAccess&)>& fn);

/// Per-core input to the composition: the solo profile and StatStack model
/// (both owned by the caller and outliving the CoRunModel) plus the core's
/// interleave weight (relative reference rate; trace lengths in practice).
struct CoRunCoreInput {
  const core::Profile* profile = nullptr;
  const core::StatStack* model = nullptr;
  double weight = 1.0;
};

/// The composed shared-LLC model over one co-run set.
class CoRunModel {
 public:
  explicit CoRunModel(std::vector<CoRunCoreInput> cores);

  int cores() const { return static_cast<int>(cores_.size()); }

  /// SD_shared,core(D): expected distinct lines in the shared stack across
  /// a window of D of `core`'s own references. Monotone non-decreasing.
  double shared_stack_distance(int core, RefCount reuse_distance) const;

  /// Smallest private reuse distance of `core` whose composed shared stack
  /// distance reaches `shared_lines`; kInfiniteDistance if never reached
  /// (the co-run set cannot fill the cache).
  RefCount critical_reuse_distance(int core, double shared_lines) const;

  /// `core`'s effective miss ratio in a shared fully-associative LRU cache
  /// of `cache_lines` lines under this co-run: the fraction of its sampled
  /// accesses whose private reuse distance reaches the critical distance.
  double shared_miss_ratio_lines(int core, std::uint64_t cache_lines) const;
  double shared_miss_ratio_bytes(int core, std::uint64_t bytes) const {
    return shared_miss_ratio_lines(core, bytes / kLineSize);
  }

  /// `core`'s effective capacity share of a shared LLC of `llc_lines`
  /// lines: the expected number of its *own* lines in the stack at the miss
  /// boundary, SD_core(D*). Clamped to [1, llc_lines]; a core whose co-run
  /// never fills the cache keeps the full capacity. Feeds
  /// engine::AnalysisKnobs::llc_effective_bytes (floor = conservative:
  /// predicts more misses, never fewer).
  std::uint64_t effective_llc_lines(int core, std::uint64_t llc_lines) const;

 private:
  struct CoreState {
    const core::StackDistanceSolver* solver = nullptr;
    std::vector<RefCount> distances;  // sampled private reuse distances, asc
    double dangling = 0.0;
    double weight = 1.0;
  };
  std::vector<CoreState> cores_;
};

/// Copy of `augmented` with every kHwPrefetchPc pseudo-access stripped:
/// reuse/stride samples touching the sentinel are dropped, its dangling and
/// execution counts are subtracted. This is the profile the per-core plan
/// solve runs on — software prefetch decisions are made for demand loads
/// only, while the contention composition above keeps the full augmented
/// stream.
core::Profile demand_only_profile(const core::Profile& augmented);

/// Artifact set flowing through the co-run graph. Bound inputs are
/// pointers/values set by the caller; everything else is produced by
/// stages. All fan-out is per core with index-owned writes, so the whole
/// graph is byte-identical at any Executor worker count.
struct CoRunArtifacts {
  // -- bound inputs
  const std::vector<workloads::Program>* programs = nullptr;
  const sim::MachineConfig* machine = nullptr;
  engine::AnalysisKnobs knobs;
  /// Augment every core's trace with its hardware-prefetcher fill stream
  /// (machine->hw_prefetcher geometry, forced enabled).
  bool model_hw_prefetch = false;
  /// Per-core hw-prefetch enable; when non-empty it overrides
  /// model_hw_prefetch core by core (asymmetric co-runs: streaming
  /// aggressors prefetch, the chase victim does not).
  std::vector<std::uint8_t> hw_prefetch_core;
  /// Optional prefetcher-geometry override for the augmented cores (e.g.
  /// forcing the speculative adjacent-line engine for interference
  /// studies); null = machine->hw_prefetcher.
  const sim::HwPrefetcherConfig* hw_config = nullptr;
  /// Demand-reference cap per core (keeps 8-core differential runs inside
  /// sanitizer-friendly memory).
  std::uint64_t max_refs_per_core = std::uint64_t{1} << 16;

  // -- produced artifacts
  std::vector<CoreTrace> traces;                         // corun_trace
  std::vector<core::Profile> profiles;                   // corun_sample
  std::vector<std::unique_ptr<core::StatStack>> models;  // corun_statstack
  std::unique_ptr<CoRunModel> corun;                     // corun_compose
  std::vector<std::uint64_t> effective_llc_lines;        // corun_compose
  std::vector<core::OptimizationReport> reports;         // corun_mddli
};

/// The co-run pipeline: corun_trace → corun_sample → corun_statstack →
/// corun_compose → corun_mddli. The last stage re-runs the full per-core
/// optimization (MDDLI → stride/distance → bypass → insert) over the
/// demand-only profile with knobs.llc_effective_bytes set to the composed
/// effective share, so every downstream verdict prices LLC misses at the
/// capacity the core actually gets.
const engine::StageGraph<CoRunArtifacts>& corun_graph();

/// Run the co-run graph over a fully bound artifact set.
void run_corun(CoRunArtifacts& artifacts,
               const engine::EngineContext& ctx = {});

}  // namespace re::analysis
