#include "analysis/experiments.hh"

#include <stdexcept>

#include "analysis/metrics.hh"

namespace re::analysis {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::Baseline: return "Baseline";
    case Policy::Hardware: return "Hardware Pref.";
    case Policy::Software: return "Software Pref.";
    case Policy::SoftwareNT: return "Soft Pref.+NT";
    case Policy::StrideCentric: return "Stride-centric";
  }
  return "?";
}

PlanCache::PlanCache(core::OptimizerOptions options)
    : options_(std::move(options)) {}

const core::OptimizationReport& PlanCache::report(
    const sim::MachineConfig& machine, const std::string& benchmark,
    Policy policy) {
  std::string variant;
  switch (policy) {
    case Policy::Software: variant = "sw"; break;
    case Policy::SoftwareNT: variant = "nt"; break;
    case Policy::StrideCentric: variant = "sc"; break;
    default:
      throw std::invalid_argument("no optimization report for this policy");
  }
  const std::string key = machine.name + "/" + benchmark + "/" + variant;

  Entry* entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Entry>& slot = reports_[key];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  // The expensive profile+optimize runs outside the map lock: distinct
  // benchmarks/variants proceed in parallel, the same key computes once.
  std::call_once(entry->once, [&] {
    const workloads::Program reference =
        workloads::make_benchmark(benchmark, workloads::InputSet::Reference);
    core::OptimizerOptions opts = options_;
    if (policy == Policy::StrideCentric) {
      entry->report = core::stride_centric_optimize(reference, machine, opts);
    } else {
      opts.enable_non_temporal = (policy == Policy::SoftwareNT);
      entry->report = core::optimize_program(reference, machine, opts);
    }
  });
  return entry->report;
}

workloads::Program PlanCache::prepare(const sim::MachineConfig& machine,
                                      const std::string& benchmark,
                                      workloads::InputSet input,
                                      Policy policy, Addr base_offset) {
  workloads::Program program = workloads::make_benchmark(benchmark, input);
  if (policy != Policy::Baseline && policy != Policy::Hardware) {
    // Plans are keyed by PC ("binary" location), so they apply unchanged to
    // other inputs of the same program.
    program = core::insert_prefetches(
        program, report(machine, benchmark, policy).plans);
  }
  if (base_offset != 0) workloads::rebase_program(program, base_offset);
  return program;
}

double BenchmarkEvaluation::speedup(Policy policy) const {
  const auto& base = runs.at(Policy::Baseline);
  const auto& run = runs.at(policy);
  return static_cast<double>(base.apps[0].cycles) /
         static_cast<double>(run.apps[0].cycles);
}

double BenchmarkEvaluation::traffic_increase(Policy policy) const {
  return analysis::traffic_increase(
      runs.at(Policy::Baseline).dram.total_bytes(),
      runs.at(policy).dram.total_bytes());
}

double BenchmarkEvaluation::bandwidth_gbps(Policy policy) const {
  return runs.at(policy).bandwidth_gbps();
}

BenchmarkEvaluation evaluate_benchmark(const sim::MachineConfig& machine,
                                       const std::string& benchmark,
                                       PlanCache& cache,
                                       workloads::InputSet input) {
  BenchmarkEvaluation eval;
  eval.name = benchmark;
  for (Policy policy :
       {Policy::Baseline, Policy::Hardware, Policy::Software,
        Policy::SoftwareNT, Policy::StrideCentric}) {
    const workloads::Program program =
        cache.prepare(machine, benchmark, input, policy);
    const bool hw = policy == Policy::Hardware;
    eval.runs.emplace(policy, sim::run_single(machine, program, hw));
  }
  return eval;
}

std::vector<BenchmarkEvaluation> evaluate_suite(
    const sim::MachineConfig& machine,
    const std::vector<std::string>& benchmarks, PlanCache& cache,
    const engine::Executor* executor, workloads::InputSet input) {
  const auto evaluate = [&](std::size_t i) {
    return evaluate_benchmark(machine, benchmarks[i], cache, input);
  };
  if (executor != nullptr) {
    return executor->map(benchmarks.size(), evaluate);
  }
  std::vector<BenchmarkEvaluation> out;
  out.reserve(benchmarks.size());
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    out.push_back(evaluate(i));
  }
  return out;
}

std::vector<double> MixEvaluation::times(Policy policy) const {
  std::vector<double> out;
  for (const sim::AppResult& app : runs.at(policy).apps) {
    out.push_back(static_cast<double>(app.cycles));
  }
  return out;
}

double MixEvaluation::weighted_speedup(Policy policy) const {
  return analysis::weighted_speedup(
      MixTimes{times(Policy::Baseline), times(policy)});
}

double MixEvaluation::fair_speedup(Policy policy) const {
  return analysis::fair_speedup(
      MixTimes{times(Policy::Baseline), times(policy)});
}

double MixEvaluation::qos(Policy policy) const {
  return analysis::qos_degradation(
      MixTimes{times(Policy::Baseline), times(policy)});
}

double MixEvaluation::traffic_increase(Policy policy) const {
  return analysis::traffic_increase(
      runs.at(Policy::Baseline).dram.total_bytes(),
      runs.at(policy).dram.total_bytes());
}

double MixEvaluation::bandwidth_gbps(Policy policy) const {
  return runs.at(policy).bandwidth_gbps();
}

MixEvaluation evaluate_mix(const sim::MachineConfig& machine,
                           const workloads::MixSpec& spec, PlanCache& cache,
                           workloads::InputSet run_input,
                           const std::vector<Policy>& policies) {
  MixEvaluation eval;
  eval.spec = spec;
  for (Policy policy : policies) {
    std::vector<workloads::Program> programs;
    programs.reserve(spec.apps.size());
    for (std::size_t core = 0; core < spec.apps.size(); ++core) {
      programs.push_back(cache.prepare(
          machine, spec.apps[core], run_input, policy,
          workloads::core_address_offset(static_cast<int>(core))));
    }
    std::vector<const workloads::Program*> ptrs;
    for (const auto& p : programs) ptrs.push_back(&p);
    const bool hw = policy == Policy::Hardware;
    eval.runs.emplace(policy, sim::run_mix(machine, ptrs, hw));
  }
  return eval;
}

}  // namespace re::analysis
