// Append-mode shard journals for the advisory service.
//
// PlanCache::save() rewrites the whole journal on every change — fine for a
// controller checkpointing once per run, unaffordable for a service acking
// thousands of inserts. The v2 journal format already permits appending:
// the loader treats records beyond the header's promised count as valid
// (and fewer as a truncated tail), so a shard journal is written once as a
// snapshot (header + current entries) and then grown one CRC-guarded
// record per acked insert.
//
// Durability contract: append() returns Ok only after the record's bytes
// are fsync'd — that is the service's ack point. A crash tears at most the
// one record whose append had not yet returned, which was therefore never
// acked; recovery (PlanCache::load_file) quarantines the torn line and
// reloads every acked entry. A crash mid-snapshot is covered by the atomic
// temp-file + rename writer.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/plan_cache.hh"
#include "support/status.hh"

namespace re::serve {

class ShardJournal {
 public:
  ShardJournal() = default;
  ~ShardJournal();
  ShardJournal(ShardJournal&& other) noexcept;
  ShardJournal& operator=(ShardJournal&& other) noexcept;
  ShardJournal(const ShardJournal&) = delete;
  ShardJournal& operator=(const ShardJournal&) = delete;

  /// Snapshot `cache` to `path` atomically (temp file + rename + directory
  /// fsync), then open the journal for appending. Replaces any previous
  /// journal at `path`. A non-empty `fingerprint` is stamped into the
  /// header; warm-start loaders refuse files whose fingerprint does not
  /// match their own machine-model/knob digest.
  Status create(const std::string& path, const runtime::PlanCache& cache,
                const std::string& fingerprint = {});

  /// Open an existing journal for appending. Only safe on a cleanly closed
  /// journal: a torn final record has no trailing newline, so an append
  /// would concatenate onto it and corrupt both records. After a crash,
  /// use recover() instead.
  Status open_existing(const std::string& path);

  /// The restart path: load the journal at `path` (quarantining any torn
  /// tail), compact the recovered state into a fresh snapshot (an atomic
  /// rewrite — the torn bytes must never survive into the append stream),
  /// and reopen for appending. Returns the load report so the caller can
  /// audit quarantined/missing entries (and the header fingerprint the
  /// file carried). `fingerprint` re-stamps the compacted snapshot.
  Expected<runtime::PlanCache::LoadReport> recover(
      const std::string& path,
      const runtime::PlanCacheOptions& cache_options,
      const std::string& fingerprint = {});

  /// Durably append one entry record. Ok = the entry is acked: it survives
  /// any crash from this point on. On failure the journal stays open; the
  /// caller may retry (the loader skips a torn partial line).
  Status append(const runtime::PlanCache::Entry& entry);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  std::uint64_t appended() const { return appended_; }

  void close();

 private:
  Status open_fd(const std::string& path);

  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
};

}  // namespace re::serve
