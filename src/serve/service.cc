#include "serve/service.hh"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/profile_validator.hh"
#include "support/atomic_file.hh"

namespace re::serve {

const char* answer_kind_name(AnswerKind kind) {
  switch (kind) {
    case AnswerKind::Fresh: return "fresh";
    case AnswerKind::CacheHit: return "cache-hit";
    case AnswerKind::LastKnownGood: return "last-known-good";
    case AnswerKind::NoPrefetch: return "no-prefetch";
  }
  return "unknown";
}

const char* degrade_cause_name(DegradeCause cause) {
  switch (cause) {
    case DegradeCause::None: return "none";
    case DegradeCause::QueueFull: return "queue-full";
    case DegradeCause::DeadlineInfeasible: return "deadline-infeasible";
    case DegradeCause::DeadlineExpired: return "deadline-expired";
    case DegradeCause::ShardDown: return "shard-down";
    case DegradeCause::SolveFault: return "solve-fault";
    case DegradeCause::CacheFault: return "cache-fault";
    case DegradeCause::QuotaExceeded: return "quota-exceeded";
  }
  return "unknown";
}

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t signature_fingerprint(const core::PhaseSignature& signature) {
  // Deterministic over the unordered_map: fold (pc, weight-bits) pairs in
  // sorted-pc order. Weights come from the same deterministic pipeline on
  // every run, so their bit patterns are stable.
  std::vector<std::pair<Pc, double>> items(signature.begin(),
                                           signature.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t h = 0x5E47ED0Full;
  for (const auto& [pc, weight] : items) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof weight);
    std::memcpy(&bits, &weight, sizeof bits);
    h = mix64(h ^ pc);
    h = mix64(h ^ bits);
  }
  return h;
}

/// Admitted-but-unsolved work (also the bookkeeping unit for immediate
/// answers: submit_tick and the absolute deadline travel with the request).
struct AdvisoryService::PendingSolve {
  PlanRequest request;
  std::uint64_t submit_tick = 0;
  std::uint64_t deadline_abs = 0;
  int retries = 0;
};

struct AdvisoryService::InFlight {
  PendingSolve work;
  std::uint64_t start_tick = 0;
  std::uint64_t done_tick = 0;
  /// Armed (deterministically, pre-dispatch) when the solve cannot make
  /// its deadline; the engine unwinds at its next preemption point.
  engine::CancelToken token;
};

struct AdvisoryService::Retry {
  enum class Kind { Lookup, Append } kind = Kind::Lookup;
  std::uint64_t due_tick = 0;
  int attempt = 1;
  // Lookup retries re-route the original request.
  PendingSolve work;
  // Append retries re-append the entry to its shard's journal.
  int shard = 0;
  runtime::PlanCache::Entry entry;
};

struct AdvisoryService::Shard {
  Shard(const runtime::PlanCacheOptions& cache_options,
        const runtime::BreakerOptions& breaker_options, std::uint64_t seed)
      : cache(cache_options), breaker(breaker_options, seed) {}

  runtime::PlanCache cache;
  runtime::Breaker breaker;
  ShardJournal journal;
  bool journaling = false;
};

/// Per-core isolation state (fairness mode only). Created lazily on the
/// core's first request; seeded from the service seed and the core id, so
/// tenant state never perturbs the shared Rng draw order.
struct AdvisoryService::Tenant {
  Tenant(const FairnessOptions& fairness, std::uint64_t now,
         std::uint64_t seed, const runtime::BreakerOptions& breaker_options)
      : bucket(fairness.quota_burst, fairness.quota_rate_milli, now,
               seed % 1000),
        breaker(breaker_options, seed) {}

  TokenBucket bucket;
  runtime::Breaker breaker;
  int consecutive_quota_sheds = 0;
  /// Admitted-but-unanswered requests (outbox mode): together with the
  /// outbox size this bounds the responses that can ever pile up for a
  /// consumer that stopped reading.
  std::size_t outstanding = 0;
  std::deque<PlanResponse> outbox;
};

AdvisoryService::AdvisoryService(const ServiceOptions& options, Solver solver,
                                 const engine::Executor* executor)
    : opts_(options), solver_(std::move(solver)), executor_(executor),
      rng_(options.seed) {
  opts_.shards = std::max(1, opts_.shards);
  opts_.solve_slots = std::max(1, opts_.solve_slots);
  opts_.solve_cost_ticks = std::max<std::uint64_t>(opts_.solve_cost_ticks, 1);
  runtime::BreakerOptions breaker_options = opts_.breaker;
  breaker_options.tick_scale = 1;
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(opts_.cache, breaker_options,
                                              rng_.fork()));
  }
  // Warm before snapshotting: verified prior-run entries land in this run's
  // initial journal snapshots, so the warm state is itself durable.
  if (!opts_.warm_start_dir.empty()) warm_start();
  if (!opts_.journal_dir.empty()) {
    for (int i = 0; i < opts_.shards; ++i) {
      Shard& shard = *shards_[static_cast<std::size_t>(i)];
      const std::string path =
          opts_.journal_dir + "/shard-" + std::to_string(i) + ".journal";
      const Status created =
          shard.journal.create(path, shard.cache, opts_.config_fingerprint);
      if (created.ok()) {
        shard.journaling = true;
      } else {
        ++stats_.journal_append_failures;
      }
    }
  }
}

void AdvisoryService::warm_start() {
  // Trust-but-verify: the directory is untrusted input. Per-file the header
  // must parse and carry the expected fingerprint; per-entry the journal
  // loader's CRC already rejected silent corruption, and the plan-sanity
  // bounds below reject well-formed-but-absurd state (the "hand-edited
  // cache" class). Anything suspect is quarantined and counted — the tenant
  // it would have served simply re-solves fresh.
  const core::ValidatorOptions bounds;  // reuse the validator's plausibility bound
  const std::int64_t max_distance = bounds.max_plausible_stride;
  constexpr std::size_t kMaxPlansPerEntry = 512;  // Supervisor's per-core cap
  constexpr int kScanLimit = 256;  // prior run may have had more shards
  for (int i = 0; i < kScanLimit; ++i) {
    const std::string path =
        opts_.warm_start_dir + "/shard-" + std::to_string(i) + ".journal";
    if (::access(path.c_str(), F_OK) != 0) break;  // shard files are contiguous
    Expected<std::string> text = support::read_file(path);
    if (!text.has_value()) {
      ++stats_.warm_files_rejected;
      continue;
    }
    Expected<runtime::PlanCache::LoadReport> loaded =
        runtime::PlanCache::load(text.value(), opts_.cache);
    if (!loaded.has_value()) {
      ++stats_.warm_files_rejected;
      continue;
    }
    if (!opts_.config_fingerprint.empty() &&
        loaded.value().fingerprint != opts_.config_fingerprint) {
      // Stale or foreign machine-model/knob fingerprint: plans solved under
      // different assumptions must not be served, however well-formed.
      ++stats_.warm_files_rejected;
      continue;
    }
    ++stats_.warm_files_loaded;
    stats_.warm_entries_quarantined += loaded.value().quarantined;
    // Coldest-first re-insertion preserves relative LRU order; entries are
    // re-homed by fingerprint (the prior run's shard count may differ).
    const std::list<runtime::PlanCache::Entry>& entries =
        loaded.value().cache.entries();
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      bool sane = !it->signature.empty() &&
                  it->plans.size() <= kMaxPlansPerEntry;
      for (const core::PrefetchPlan& plan : it->plans) {
        if (plan.distance_bytes > max_distance ||
            plan.distance_bytes < -max_distance) {
          sane = false;
          break;
        }
      }
      if (!sane) {
        ++stats_.warm_entries_quarantined;
        continue;
      }
      shard_for(it->signature).cache.insert(it->signature, it->plans);
      ++stats_.warm_entries_loaded;
    }
  }
}

AdvisoryService::~AdvisoryService() = default;

AdvisoryService::Shard& AdvisoryService::shard_for(
    const core::PhaseSignature& signature) {
  const std::uint64_t fp = signature_fingerprint(signature);
  return *shards_[fp % shards_.size()];
}

AdvisoryService::Tenant& AdvisoryService::tenant_for(int core,
                                                     std::uint64_t now) {
  auto it = tenants_.find(core);
  if (it == tenants_.end()) {
    runtime::BreakerOptions breaker_options = opts_.fairness.tenant_breaker;
    breaker_options.tick_scale = 1;
    // Seeded from (service seed, core id) — not from rng_ — so creating a
    // tenant never shifts the shared fault/jitter draw order.
    const std::uint64_t seed =
        mix64(opts_.seed ^ (0x7E4A47ull + static_cast<std::uint64_t>(core)));
    it = tenants_
             .emplace(core, std::make_unique<Tenant>(opts_.fairness, now,
                                                     seed, breaker_options))
             .first;
    tenant_order_.push_back(core);
  }
  return *it->second;
}

std::size_t AdvisoryService::collect(int core, std::size_t max,
                                     std::vector<PlanResponse>& out) {
  const auto it = tenants_.find(core);
  if (it == tenants_.end()) return 0;
  std::deque<PlanResponse>& box = it->second->outbox;
  std::size_t taken = 0;
  while (taken < max && !box.empty()) {
    out.push_back(std::move(box.front()));
    box.pop_front();
    ++taken;
  }
  return taken;
}

std::size_t AdvisoryService::outbox_depth(int core) const {
  const auto it = tenants_.find(core);
  return it == tenants_.end() ? 0 : it->second->outbox.size();
}

runtime::BreakerState AdvisoryService::tenant_state(int core) const {
  const auto it = tenants_.find(core);
  return it == tenants_.end() ? runtime::BreakerState::Armed
                              : it->second->breaker.state();
}

runtime::BreakerState AdvisoryService::shard_state(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->breaker.state();
}

const runtime::PlanCache& AdvisoryService::shard_cache(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->cache;
}

std::uint64_t AdvisoryService::retry_delay(int attempt) {
  const int exponent = std::min(std::max(attempt - 1, 0), 30);
  std::uint64_t base = opts_.retry_backoff_base_ticks
                       << static_cast<unsigned>(exponent);
  base = std::min(std::max<std::uint64_t>(base, 1),
                  std::max<std::uint64_t>(opts_.retry_backoff_max_ticks, 1));
  const double jitter =
      1.0 + opts_.retry_jitter * (2.0 * rng_.uniform() - 1.0);
  const double ticks = static_cast<double>(base) * std::max(jitter, 0.0);
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(ticks), 1);
}

PlanResponse AdvisoryService::degrade(const PendingSolve& work,
                                      std::uint64_t done,
                                      DegradeCause cause) {
  PlanResponse response;
  response.id = work.request.id;
  response.core = work.request.core;
  response.cause = cause;
  response.submit_tick = work.submit_tick;
  response.complete_tick = done;
  response.latency_ticks = done - work.submit_tick;
  response.deadline_missed = done > work.deadline_abs;
  response.retries = work.retries;
  const auto lkg = lkg_.find(work.request.core);
  if (lkg != lkg_.end()) {
    response.kind = AnswerKind::LastKnownGood;
    response.plans = lkg->second;
  } else {
    response.kind = AnswerKind::NoPrefetch;
  }
  return response;
}

void AdvisoryService::emit(PlanResponse&& response,
                           std::vector<PlanResponse>& out) {
  switch (response.kind) {
    case AnswerKind::Fresh: ++stats_.fresh; break;
    case AnswerKind::CacheHit: ++stats_.cache_hits; break;
    case AnswerKind::LastKnownGood: ++stats_.last_known_good; break;
    case AnswerKind::NoPrefetch: ++stats_.no_prefetch; break;
  }
  if (response.deadline_missed) {
    ++stats_.deadline_missed;
    if (!response.degraded()) ++stats_.stale_fresh_violations;
  }
  if (opts_.fairness.enabled && opts_.fairness.outbox_capacity > 0) {
    // Outbox mode: responses wait in the core's bounded box until the
    // client collect()s them. The submit-side gate guarantees
    // outbox + outstanding <= capacity, so this push never overflows.
    Tenant& tenant = tenant_for(response.core, response.complete_tick);
    if (tenant.outstanding > 0) --tenant.outstanding;
    tenant.outbox.push_back(std::move(response));
    return;
  }
  out.push_back(std::move(response));
}

void AdvisoryService::trip_shard(Shard& shard) {
  shard.breaker.trip();
  ++stats_.breaker_trips;
}

void AdvisoryService::submit(const PlanRequest& request, std::uint64_t now,
                             std::vector<PlanResponse>& out) {
  ++stats_.submitted;
  PendingSolve work;
  work.request = request;
  work.submit_tick = now;
  work.deadline_abs =
      now + (request.deadline_ticks ? request.deadline_ticks
                                    : opts_.deadline_ticks);

  if (opts_.fairness.enabled) {
    // The fairness ladder runs before any shared state is touched, so an
    // offender is shed at its own expense: the slow-consumer gate and the
    // quota gate cost nothing from the shard caches or the solve queue.
    Tenant& tenant = tenant_for(request.core, now);
    if (opts_.fairness.outbox_capacity > 0 &&
        tenant.outbox.size() + tenant.outstanding >=
            opts_.fairness.outbox_capacity) {
      // The core stopped reading its answers; there is nowhere to put a
      // response (even a degraded one), so the request is dropped counted.
      ++stats_.shed_slow_consumer;
      return;
    }
    if (opts_.fairness.outbox_capacity > 0) ++tenant.outstanding;
    if (tenant.breaker.down()) {
      // Tripped-out tenant: zero-cost shed for the backoff window.
      ++stats_.shed_quota;
      emit(degrade(work, now, DegradeCause::QuotaExceeded), out);
      return;
    }
    if (!tenant.bucket.try_take(now)) {
      ++stats_.shed_quota;
      if (++tenant.consecutive_quota_sheds >=
              opts_.fairness.quota_trip_threshold &&
          opts_.fairness.quota_trip_threshold > 0) {
        tenant.breaker.trip();
        ++stats_.quota_breaker_trips;
        tenant.consecutive_quota_sheds = 0;
      }
      emit(degrade(work, now, DegradeCause::QuotaExceeded), out);
      return;
    }
    tenant.consecutive_quota_sheds = 0;
    if (tenant.breaker.state() == runtime::BreakerState::HalfOpen) {
      tenant.breaker.probe_ok();  // a compliant request is a healthy probe
    }
  }

  Shard& shard = shard_for(request.signature);
  if (shard.breaker.down()) {
    // The shard's cache is not consultable and re-solving its whole
    // traffic would double the load the breaker is protecting against —
    // degrade instead (the ladder's whole point).
    ++stats_.shard_down;
    emit(degrade(work, now + opts_.hit_cost_ticks, DegradeCause::ShardDown),
         out);
    return;
  }

  if (opts_.cache_fault_rate > 0.0 && rng_.chance(opts_.cache_fault_rate)) {
    // Transient lookup fault: retry with backoff instead of guessing.
    Retry retry;
    retry.kind = Retry::Kind::Lookup;
    retry.attempt = 1;
    retry.due_tick = now + retry_delay(1);
    retry.work = work;
    retries_.push_back(std::move(retry));
    return;
  }

  lookup_and_route(work, shard, now, out);
}

void AdvisoryService::lookup_and_route(const PendingSolve& work, Shard& shard,
                                       std::uint64_t now,
                                       std::vector<PlanResponse>& out) {
  const std::vector<core::PrefetchPlan>* hit =
      shard.cache.lookup(work.request.signature);
  if (shard.breaker.state() == runtime::BreakerState::HalfOpen) {
    shard.breaker.probe_ok();  // the touch went through: one healthy probe
  }
  if (hit == nullptr) {
    admit(work, now, out);
    return;
  }

  const std::uint64_t done = now + opts_.hit_cost_ticks;
  if (done > work.deadline_abs) {
    // The answer exists but the client's budget is already gone (a lookup
    // that spent its deadline in retries): late answers are degraded, never
    // served as if on time.
    ++stats_.deadline_expired;
    emit(degrade(work, done, DegradeCause::DeadlineExpired), out);
    return;
  }

  PlanResponse response;
  response.id = work.request.id;
  response.core = work.request.core;
  response.kind = AnswerKind::CacheHit;
  response.plans = *hit;
  response.submit_tick = work.submit_tick;
  response.complete_tick = done;
  response.latency_ticks = done - work.submit_tick;
  response.retries = work.retries;
  lkg_[work.request.core] = response.plans;
  emit(std::move(response), out);
}

void AdvisoryService::admit(const PendingSolve& work, std::uint64_t now,
                            std::vector<PlanResponse>& out) {
  if (opts_.fairness.enabled) {
    const int core = work.request.core;
    // Offender-pays ordering: a tenant whose own backlog is full is shed as
    // QuotaExceeded before the shared capacity or feasibility checks — its
    // overflow never competes with anyone else's deadline budget.
    if (fair_queue_.tenant_depth(core) >=
        opts_.fairness.per_core_queue_cap) {
      ++stats_.shed_quota;
      emit(degrade(work, now, DegradeCause::QuotaExceeded), out);
      return;
    }
    if (fair_queue_.size() >= opts_.queue_capacity) {
      ++stats_.shed_queue_full;
      emit(degrade(work, now, DegradeCause::QueueFull), out);
      return;
    }
    // DRR feasibility: the worst-case wait multiplies this tenant's own
    // backlog by the active-tenant count (one quantum each per round), not
    // by the global queue depth — another tenant's long sub-queue does not
    // push this estimate out.
    const std::uint64_t active =
        std::max<std::uint64_t>(fair_queue_.active_tenants(), 1);
    const std::uint64_t ahead =
        fair_queue_.tenant_depth(core) * active + in_flight_.size();
    const std::uint64_t batches =
        1 + ahead / static_cast<std::uint64_t>(opts_.solve_slots);
    const std::uint64_t estimated_done =
        now + batches * opts_.solve_cost_ticks;
    if (estimated_done > work.deadline_abs) {
      ++stats_.shed_infeasible;
      emit(degrade(work, now, DegradeCause::DeadlineInfeasible), out);
      return;
    }
    fair_queue_.push(core, work, opts_.fairness.per_core_queue_cap);
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, fair_queue_.size());
    stats_.max_tenant_queue_depth = fair_queue_.max_tenant_depth();
    return;
  }

  if (queue_.size() >= opts_.queue_capacity) {
    ++stats_.shed_queue_full;
    emit(degrade(work, now, DegradeCause::QueueFull), out);
    return;
  }
  // Feasibility: with everything already queued or in flight ahead of it,
  // would this solve complete inside the budget? If not, shedding now is
  // strictly better than burning a slot on an answer nobody will take.
  const std::uint64_t ahead = queue_.size() + in_flight_.size();
  const std::uint64_t batches =
      1 + ahead / static_cast<std::uint64_t>(opts_.solve_slots);
  const std::uint64_t estimated_done = now + batches * opts_.solve_cost_ticks;
  if (estimated_done > work.deadline_abs) {
    ++stats_.shed_infeasible;
    emit(degrade(work, now, DegradeCause::DeadlineInfeasible), out);
    return;
  }
  queue_.push_back(work);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
}

void AdvisoryService::step(std::uint64_t now,
                           std::vector<PlanResponse>& out) {
  const std::uint64_t elapsed =
      now > last_step_tick_ ? now - last_step_tick_ : 0;
  last_step_tick_ = now;
  for (const auto& shard : shards_) {
    shard->breaker.tick(elapsed);  // Backoff expiry -> HalfOpen probation
  }
  // Deterministic first-seen order, never the hash map.
  for (const int core : tenant_order_) {
    tenants_[core]->breaker.tick(elapsed);
  }
  complete_due_solves(now, out);
  process_due_retries(now, out);
  start_solves(now);
}

void AdvisoryService::complete_due_solves(std::uint64_t now,
                                          std::vector<PlanResponse>& out) {
  // Partition preserving start order: due solves complete this tick.
  std::vector<std::unique_ptr<InFlight>> due;
  std::vector<std::unique_ptr<InFlight>> still_running;
  for (auto& flight : in_flight_) {
    if (flight->done_tick <= now) {
      due.push_back(std::move(flight));
    } else {
      still_running.push_back(std::move(flight));
    }
  }
  in_flight_ = std::move(still_running);
  if (due.empty()) return;

  // Deadline verdicts are decided here, in virtual time, before dispatch —
  // the token is armed deterministically and the engine's cooperative
  // cancellation path does the actual unwinding.
  for (auto& flight : due) {
    if (flight->done_tick > flight->work.deadline_abs) {
      flight->token.request();
    }
  }

  struct Outcome {
    std::vector<core::PrefetchPlan> plans;
    bool cancelled = false;
    bool faulted = false;
  };
  std::vector<Outcome> outcomes(due.size());
  const auto run_one = [&](std::size_t i) {
    // Worker-side: touches only its own slot. All exceptions are absorbed
    // here so the batch always runs every unit (ordered, deterministic).
    try {
      outcomes[i].plans = solver_(due[i]->work.request, &due[i]->token);
    } catch (const engine::Cancelled&) {
      outcomes[i].cancelled = true;
    } catch (...) {
      outcomes[i].faulted = true;
    }
  };
  if (executor_ != nullptr) {
    executor_->for_each(due.size(), run_one);
  } else {
    for (std::size_t i = 0; i < due.size(); ++i) run_one(i);
  }

  for (std::size_t i = 0; i < due.size(); ++i) {
    InFlight& flight = *due[i];
    Outcome& outcome = outcomes[i];
    if (outcome.cancelled) {
      ++stats_.cancelled_solves;
      ++stats_.deadline_expired;
      emit(degrade(flight.work, flight.done_tick,
                   DegradeCause::DeadlineExpired),
           out);
      continue;
    }
    if (outcome.faulted) {
      ++stats_.solve_faults;
      emit(degrade(flight.work, flight.done_tick, DegradeCause::SolveFault),
           out);
      continue;
    }

    // Fresh answer, inside the budget (a solve past its deadline was
    // cancelled above). Install it everywhere it is useful.
    Shard& shard = shard_for(flight.work.request.signature);
    shard.cache.insert(flight.work.request.signature, outcome.plans);
    lkg_[flight.work.request.core] = outcome.plans;
    if (shard.journaling && !shard.breaker.down()) {
      runtime::PlanCache::Entry entry{flight.work.request.signature,
                                      outcome.plans};
      if (opts_.cache_fault_rate > 0.0 &&
          rng_.chance(opts_.cache_fault_rate)) {
        Retry retry;
        retry.kind = Retry::Kind::Append;
        retry.attempt = 1;
        retry.due_tick = now + retry_delay(1);
        retry.shard = static_cast<int>(
            signature_fingerprint(flight.work.request.signature) %
            shards_.size());
        retry.entry = std::move(entry);
        retries_.push_back(std::move(retry));
      } else {
        const Status appended = shard.journal.append(entry);
        if (appended.ok()) {
          ack_entry(shard, entry);
        } else {
          ++stats_.journal_append_failures;
          trip_shard(shard);
        }
      }
    }

    PlanResponse response;
    response.id = flight.work.request.id;
    response.core = flight.work.request.core;
    response.kind = AnswerKind::Fresh;
    response.plans = std::move(outcome.plans);
    response.submit_tick = flight.work.submit_tick;
    response.complete_tick = flight.done_tick;
    response.latency_ticks = flight.done_tick - flight.work.submit_tick;
    response.retries = flight.work.retries;
    emit(std::move(response), out);
  }
}

void AdvisoryService::ack_entry(Shard& shard,
                                const runtime::PlanCache::Entry& entry) {
  ++stats_.journal_appends;
  acked_.push_back(signature_fingerprint(entry.signature));
  if (shard.breaker.state() == runtime::BreakerState::HalfOpen) {
    shard.breaker.probe_ok();
  }
}

void AdvisoryService::process_due_retries(std::uint64_t now,
                                          std::vector<PlanResponse>& out) {
  // Scheduled order is processed in order (stable): same-tick retries
  // resolve in the order they were enqueued.
  std::vector<Retry> keep;
  keep.reserve(retries_.size());
  for (Retry& retry : retries_) {
    if (retry.due_tick > now) {
      keep.push_back(std::move(retry));
      continue;
    }
    ++stats_.retries;
    ++retry.work.retries;
    if (retry.kind == Retry::Kind::Lookup) {
      Shard& shard = shard_for(retry.work.request.signature);
      if (now + opts_.hit_cost_ticks > retry.work.deadline_abs) {
        // The budget ran out while we retried: stop, answer degraded.
        ++stats_.deadline_expired;
        emit(degrade(retry.work, now, DegradeCause::DeadlineExpired), out);
        continue;
      }
      if (shard.breaker.down()) {
        ++stats_.shard_down;
        emit(degrade(retry.work, now, DegradeCause::ShardDown), out);
        continue;
      }
      if (opts_.cache_fault_rate > 0.0 &&
          rng_.chance(opts_.cache_fault_rate)) {
        if (retry.attempt >= opts_.max_retries) {
          ++stats_.cache_faults;
          trip_shard(shard);
          emit(degrade(retry.work, now, DegradeCause::CacheFault), out);
          continue;
        }
        ++retry.attempt;
        retry.due_tick = now + retry_delay(retry.attempt);
        keep.push_back(std::move(retry));
        continue;
      }
      lookup_and_route(retry.work, shard, now, out);
    } else {  // Append
      Shard& shard = *shards_[static_cast<std::size_t>(retry.shard)];
      const bool faulted =
          opts_.cache_fault_rate > 0.0 && rng_.chance(opts_.cache_fault_rate);
      bool appended = false;
      if (!faulted && shard.journaling && !shard.breaker.down()) {
        appended = shard.journal.append(retry.entry).ok();
      }
      if (appended) {
        ack_entry(shard, retry.entry);
        continue;
      }
      if (retry.attempt >= opts_.max_retries) {
        // The entry stays served from memory but was never acked; the
        // journal is suspect — let the breaker take the shard down.
        ++stats_.journal_append_failures;
        trip_shard(shard);
        continue;
      }
      ++retry.attempt;
      retry.due_tick = now + retry_delay(retry.attempt);
      keep.push_back(std::move(retry));
    }
  }
  retries_ = std::move(keep);
}

void AdvisoryService::start_solves(std::uint64_t now) {
  while (in_flight_.size() < static_cast<std::size_t>(opts_.solve_slots)) {
    PendingSolve next;
    if (opts_.fairness.enabled) {
      // DRR: the head tenant spends one unit of deficit per solve and gets
      // drr_quantum more each time it reaches the head — a flood in one
      // sub-queue delays only its owner.
      std::optional<PendingSolve> popped =
          fair_queue_.pop(opts_.fairness.drr_quantum, 1);
      if (!popped.has_value()) return;
      next = std::move(*popped);
    } else {
      if (queue_.empty()) return;
      next = std::move(queue_.front());
      queue_.pop_front();
    }
    auto flight = std::make_unique<InFlight>();
    flight->work = std::move(next);
    flight->start_tick = now;
    flight->done_tick = now + opts_.solve_cost_ticks;
    in_flight_.push_back(std::move(flight));
    ++stats_.solves_started;
  }
}

std::uint64_t AdvisoryService::drain(std::uint64_t now,
                                     std::vector<PlanResponse>& out) {
  // Everything pending resolves in bounded time (solves complete, retries
  // exhaust); the cap is a backstop against a future bug turning this into
  // an infinite loop, not a tuning knob.
  const std::uint64_t limit = now + 10'000'000;
  while ((!queue_.empty() || !fair_queue_.empty() || !in_flight_.empty() ||
          !retries_.empty()) &&
         now < limit) {
    ++now;
    step(now, out);
  }
  return now;
}

}  // namespace re::serve
