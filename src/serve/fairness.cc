#include "serve/fairness.hh"

#include <algorithm>

namespace re::serve {

TokenBucket::TokenBucket(std::uint64_t burst_tokens, std::uint64_t rate_milli,
                         std::uint64_t now, std::uint64_t phase_milli)
    : capacity_milli_(std::max<std::uint64_t>(burst_tokens, 1) * 1000),
      rate_milli_(rate_milli),
      tokens_milli_(capacity_milli_),
      last_tick_(now) {
  // The phase offset pre-spends up to one token so equal-rate tenants hit
  // their first refill boundary at different ticks. Bounded below by zero:
  // a bucket never starts in debt.
  const std::uint64_t offset = std::min<std::uint64_t>(phase_milli, 999);
  tokens_milli_ -= std::min(tokens_milli_, offset);
}

void TokenBucket::refill(std::uint64_t now) {
  if (now <= last_tick_) return;
  const std::uint64_t elapsed = now - last_tick_;
  last_tick_ = now;
  if (rate_milli_ == 0) return;
  // Saturating add: a long idle gap must clamp at burst, not wrap.
  const std::uint64_t earned =
      elapsed > capacity_milli_ / std::max<std::uint64_t>(rate_milli_, 1)
          ? capacity_milli_
          : elapsed * rate_milli_;
  tokens_milli_ = std::min(capacity_milli_, tokens_milli_ + earned);
}

bool TokenBucket::try_take(std::uint64_t now) {
  refill(now);
  if (tokens_milli_ < 1000) return false;
  tokens_milli_ -= 1000;
  return true;
}

std::uint64_t TokenBucket::available_milli(std::uint64_t now) {
  refill(now);
  return tokens_milli_;
}

}  // namespace re::serve
