// Multi-tenant fairness primitives for the advisory service.
//
// PR 6's admission control protected the *service* from overload (bounded
// queue, deadline feasibility) but not the *tenants* from each other: the
// single FIFO solve queue let one chatty core fill every slot and starve
// well-behaved cores into the degradation ladder — exactly the
// uncoordinated-greed failure the paper's resource-efficiency argument is
// about. This header supplies the two mechanisms the service composes into
// per-tenant isolation (DESIGN.md §14):
//
//   * TokenBucket — a per-core admission quota in deterministic integer
//     fixed-point (millitokens), with a burst capacity and a sustained
//     refill rate. Each submitted request costs one token; an empty bucket
//     sheds *that core's* request (QuotaExceeded) before it can touch the
//     shared lookup or solve capacity. Buckets are seeded with a per-core
//     phase offset so refill boundaries de-synchronize across tenants.
//
//   * DrrScheduler — deficit-round-robin dispatch over per-tenant
//     sub-queues, replacing the global FIFO. Each tenant's backlog is
//     bounded separately (its overflow is its own problem), and the
//     dispatcher hands out solve slots one quantum per tenant per round, so
//     a long sub-queue delays only its owner.
//
// Both are plain deterministic value types: no clocks, no randomness beyond
// the seeded phase offset, byte-identical behaviour at any --jobs.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

#include "runtime/breaker.hh"

namespace re::serve {

/// Knobs for per-tenant isolation. Defaults are sized for the serve-tier
/// traffic models (request rates of a few percent per tick per core); see
/// the DESIGN.md §12 parameter table for the derivation.
struct FairnessOptions {
  /// Master switch. Off = PR 6 behaviour (single FIFO, no quotas),
  /// byte-identical to before this layer existed.
  bool enabled = false;
  /// Token-bucket capacity, in whole tokens (requests). The burst a tenant
  /// may submit back-to-back after an idle period.
  std::uint64_t quota_burst = 8;
  /// Sustained refill rate, in millitokens per tick (100 = 0.1 requests
  /// per tick). 0 disables the bucket (burst alone never recovers).
  std::uint64_t quota_rate_milli = 100;
  /// DRR quantum: solves a tenant may start per dispatch round. 1 = strict
  /// round-robin over active tenants (all solves cost the same).
  std::uint64_t drr_quantum = 1;
  /// Per-tenant sub-queue bound; a tenant's overflow beyond this is shed as
  /// QuotaExceeded without touching the shared queue capacity.
  std::size_t per_core_queue_cap = 8;
  /// Consecutive quota sheds (no compliant admit in between) that trip the
  /// tenant's breaker: a tenant still flooding after this many back-to-back
  /// rejections is cut off for a backoff window at zero per-request cost.
  int quota_trip_threshold = 64;
  /// Per-tenant breaker (trip-out ladder: Backoff -> HalfOpen -> Open);
  /// tick_scale is forced to 1 (service ticks).
  runtime::BreakerOptions tenant_breaker;
  /// Bounded per-core response outbox; 0 = responses are emitted directly
  /// to the caller (PR 6 behaviour). When set, a core whose outbox (plus
  /// outstanding work) is full has its new requests shed unanswered — a
  /// consumer that stops reading cannot pin unbounded response memory or
  /// anyone else's budget.
  std::size_t outbox_capacity = 0;
};

/// Deterministic integer token bucket (millitoken fixed point). Refill is
/// computed lazily from the tick delta on each touch, so the bucket costs
/// O(1) per request and nothing per tick.
class TokenBucket {
 public:
  /// `phase_milli` pre-charges up to one token of seeded phase offset so
  /// identical tenants don't cross refill boundaries in lockstep.
  TokenBucket(std::uint64_t burst_tokens, std::uint64_t rate_milli,
              std::uint64_t now, std::uint64_t phase_milli = 0);

  /// Refill to `now` and take one token if available. `now` must be
  /// non-decreasing across calls (virtual service time).
  bool try_take(std::uint64_t now);

  /// Millitokens currently available (after refilling to `now`).
  std::uint64_t available_milli(std::uint64_t now);

 private:
  void refill(std::uint64_t now);

  std::uint64_t capacity_milli_;
  std::uint64_t rate_milli_;
  std::uint64_t tokens_milli_;
  std::uint64_t last_tick_;
};

/// Deficit-round-robin dispatch over per-tenant sub-queues. Tenants become
/// active on their first queued item and leave the ring when their
/// sub-queue drains (deficit resets — an idle tenant cannot bank credit).
/// Iteration order is the deterministic activation ring, never a hash map.
template <typename Work>
class DrrScheduler {
 public:
  /// Queue `work` for `tenant`; fails (returns false) when that tenant's
  /// sub-queue already holds `per_tenant_cap` items.
  bool push(int tenant, Work work, std::size_t per_tenant_cap) {
    Tenant& t = tenants_[tenant];
    if (t.queue.size() >= per_tenant_cap) return false;
    if (t.queue.empty() && !t.in_ring) {
      ring_.push_back(tenant);
      t.in_ring = true;
    }
    t.queue.push_back(std::move(work));
    ++total_;
    max_tenant_depth_ = std::max(max_tenant_depth_, t.queue.size());
    return true;
  }

  /// Dequeue the next item under DRR: the tenant at the head of the ring
  /// spends `cost` deficit per item and is granted `quantum` more each time
  /// it reaches the head. Returns nullopt when nothing is queued.
  std::optional<Work> pop(std::uint64_t quantum, std::uint64_t cost) {
    if (total_ == 0) return std::nullopt;
    if (quantum == 0) quantum = 1;
    if (cost == 0) cost = 1;
    while (true) {
      const int tenant = ring_.front();
      Tenant& t = tenants_[tenant];
      if (!head_charged_) {
        t.deficit += quantum;
        head_charged_ = true;
      }
      if (!t.queue.empty() && t.deficit >= cost) {
        t.deficit -= cost;
        Work work = std::move(t.queue.front());
        t.queue.pop_front();
        --total_;
        if (t.queue.empty()) {
          t.deficit = 0;  // credit does not survive going idle
          t.in_ring = false;
          ring_.pop_front();
          head_charged_ = false;
        }
        return work;
      }
      // Head exhausted its deficit this round: rotate. total_ > 0
      // guarantees progress (some tenant's deficit reaches cost after at
      // most cost/quantum revisits).
      ring_.push_back(ring_.front());
      ring_.pop_front();
      head_charged_ = false;
    }
  }

  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  std::size_t active_tenants() const { return ring_.size(); }
  std::size_t tenant_depth(int tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.queue.size();
  }
  /// High-water mark of any single sub-queue over the scheduler's lifetime.
  std::size_t max_tenant_depth() const { return max_tenant_depth_; }

 private:
  struct Tenant {
    std::deque<Work> queue;
    std::uint64_t deficit = 0;
    bool in_ring = false;
  };

  // Map for O(1) tenant access only; every ordered walk goes via ring_.
  std::unordered_map<int, Tenant> tenants_;
  std::deque<int> ring_;  // active tenants, round-robin order
  bool head_charged_ = false;
  std::size_t total_ = 0;
  std::size_t max_tenant_depth_ = 0;
};

}  // namespace re::serve
