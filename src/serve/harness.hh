// Deterministic request-schedule simulation for the advisory service.
//
// Drives AdvisoryService with seeded mixed hot/cold plan traffic from N
// simulated client cores in virtual time, and reduces the response stream
// to the service-level metrics (p50/p99 admitted latency, shed rate,
// deadline-miss rate) plus a chained CRC digest over every response in
// emission order — the byte-determinism witness bench_serve compares
// across --jobs counts and across runs.
//
// Also home of the serve-tier crash check: run a journaling service, tear
// the journal the way a crash would (a partial in-flight append, a stray
// checkpoint temp file), recover, and account for every acked entry —
// nothing acked may be lost, nothing never-acked may be served.
//
// PR 9 adds the adversarial-tenant side: run_fairness_sim drives a mixed
// population (well-behaved cores, an optional 100×-rate chatty core, an
// optional slow consumer that stops reading its outbox) with per-core
// independent arrival streams, so a victim core's latency/mix can be
// compared against its solo baseline request-for-request. And the
// poisoned-warm-start check: journal a run, damage the directory the way a
// hostile cache would (bit flips, stale fingerprints, truncation), restart
// with --warm-start, and prove the service degrades to fresh solves but
// never serves alien state or crashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "engine/executor.hh"
#include "serve/service.hh"
#include "sim/config.hh"
#include "workloads/program.hh"

namespace re::serve {

/// One phase family a client can request plans for: the cache key (a
/// synthetic signature, pairwise-disjoint across families so distinct
/// families never cross-match) plus the sub-profile program the solver
/// optimizes for it.
struct Family {
  std::uint64_t id = 0;
  core::PhaseSignature signature;
  workloads::Program program;
};

/// Families 0..hot-1 are "hot" (requested with probability hot_fraction,
/// quickly cached); the rest are "cold" (the long tail of mostly-missing
/// phases that exercises the solve/shed path).
std::vector<Family> make_families(int hot, int cold);

/// The real miss path: run the analysis engine's optimize graph over the
/// family's program. Honours the cancel token via the EngineContext.
AdvisoryService::Solver make_engine_solver(const std::vector<Family>& families,
                                           const sim::MachineConfig& machine,
                                           const engine::Executor* executor);

/// A cheap deterministic solver (one plan derived from the family id) for
/// harnesses that stress the service/journal layers, not the engine. Still
/// honours the cancel token.
AdvisoryService::Solver make_synthetic_solver(
    const std::vector<Family>& families);

struct TrafficConfig {
  int cores = 64;
  std::uint64_t ticks = 512;
  /// Per-core per-tick request probability (Bernoulli, seeded).
  double request_rate = 0.02;
  double hot_fraction = 0.9;
  int hot_families = 4;
  int cold_families = 64;
  std::uint64_t seed = 0xC0FFEE;
};

struct ServeRunResult {
  ServiceStats stats;
  std::uint64_t responses = 0;
  std::uint64_t final_tick = 0;
  int shards_open = 0;  // breakers terminally open at end of run
  /// Latency percentiles (ticks) over admitted answers (Fresh + CacheHit).
  double p50_admitted = 0.0;
  double p99_admitted = 0.0;
  double shed_rate = 0.0;
  double deadline_miss_rate = 0.0;
  double hit_rate = 0.0;
  double degraded_rate = 0.0;
  /// Chained CRC-32 over the canonical rendering of every response in
  /// emission order — byte-equality witness across --jobs and runs.
  std::uint64_t digest = 0;
  /// Overload/robustness gates (see ISSUE/DESIGN §12).
  bool queue_bounded = true;   // solve queue never exceeded its cap
  bool no_stale_fresh = true;  // every deadline-missed answer was degraded
  bool degraded_safe = true;   // degraded answers were exactly LKG/no-prefetch
  /// Fingerprints acked to the journal during the run (ground truth for
  /// the crash check; empty when journaling was off).
  std::vector<std::uint64_t> acked;

  bool gates_ok() const {
    return queue_bounded && no_stale_fresh && degraded_safe &&
           stats.stale_fresh_violations == 0;
  }
};

/// Run the full virtual-time simulation: seeded arrivals, one step per
/// tick, drain at the end. Deterministic in (traffic, options, solver
/// outputs) — the executor's worker count never changes a byte.
ServeRunResult run_serve_sim(const TrafficConfig& traffic,
                             const ServiceOptions& options,
                             const AdvisoryService::Solver& solver,
                             const engine::Executor* executor);

struct ServeCrashReport {
  int trials = 0;
  int torn_trials = 0;  // crash mid-append (partial record at the tail)
  int tmp_trials = 0;   // crash mid-checkpoint (stray .tmp left behind)
  std::uint64_t acked_total = 0;
  std::uint64_t recovered_total = 0;
  std::uint64_t quarantined = 0;  // torn/corrupt records skipped on load
  std::uint64_t lost_acked = 0;   // acked entries missing after recovery
  std::uint64_t alien_entries = 0;  // recovered entries that were never acked
  std::uint64_t recovery_failures = 0;  // journal loads that hard-failed
  std::uint64_t append_failures = 0;    // post-recovery appends that failed

  /// The crash gate: every acked entry recovered, nothing corrupt served,
  /// every journal loadable and appendable after the crash.
  bool ok() const {
    return lost_acked == 0 && alien_entries == 0 && recovery_failures == 0 &&
           append_failures == 0;
  }
  std::string to_string() const;
};

/// `trials` crash/restart cycles under `scratch_dir` (created if needed).
/// Each trial runs a short journaling service, damages the journals the
/// way a crash would, recovers, and audits acked-vs-recovered entries.
ServeCrashReport serve_crash_check(std::uint64_t seed, int trials,
                                   const std::string& scratch_dir);

/// Stable hex token identifying the machine model + optimizer knobs a
/// run's plans were solved under. Stamped into shard-journal headers;
/// warm-start refuses files whose token differs (plans solved under other
/// assumptions must not be served, however well-formed).
std::string config_fingerprint(const sim::MachineConfig& machine,
                               const core::OptimizerOptions& knobs);

/// Mixed-population traffic for the fairness isolation scenarios. Each
/// core draws its arrivals from its own seeded stream (seed ^ core), so
/// adding or removing an adversary never changes a well-behaved core's
/// request sequence — solo-vs-adversary comparisons are request-for-request.
struct FairnessTraffic {
  /// Well-behaved cores 0..cores-1.
  int cores = 8;
  std::uint64_t ticks = 512;
  /// Per-core per-tick request probability for well-behaved cores.
  double base_rate = 0.02;
  double hot_fraction = 0.9;
  int hot_families = 4;
  int cold_families = 64;
  /// Adversary: core id `cores` submitting at base_rate *
  /// chatty_multiplier, cold families only (every request is a solve).
  bool chatty = false;
  double chatty_multiplier = 100.0;
  /// Adversary: core id `cores + (chatty ? 1 : 0)` submitting at base_rate
  /// but collecting at most slow_collect_per_tick responses per tick
  /// (0 = never reads until the end). Needs FairnessOptions::outbox_capacity.
  bool slow_consumer = false;
  std::size_t slow_collect_per_tick = 0;
  std::uint64_t seed = 0xFA145EED;
};

/// Per-core reduction of one fairness run.
struct CoreMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;   // Fresh + CacheHit answers
  std::uint64_t degraded = 0;   // LKG + NoPrefetch answers
  std::uint64_t quota_shed = 0;  // answers with cause QuotaExceeded
  double p50 = 0.0;  // admitted latency percentiles, ticks
  double p99 = 0.0;
  double degraded_rate = 0.0;  // degraded / max(submitted collected, 1)
};

struct FairnessRunResult {
  ServiceStats stats;
  /// Indexed by core id (adversaries included, after the well-behaved).
  std::vector<CoreMetrics> per_core;
  std::uint64_t responses = 0;
  std::uint64_t final_tick = 0;
  /// Chained CRC over every collected response in collection order — the
  /// byte-determinism witness across --jobs and replays.
  std::uint64_t digest = 0;
  bool queue_bounded = true;
  bool no_stale_fresh = true;
  bool degraded_safe = true;

  bool gates_ok() const {
    return queue_bounded && no_stale_fresh && degraded_safe &&
           stats.stale_fresh_violations == 0;
  }
};

/// Run the mixed-population virtual-time simulation. With outbox mode on,
/// every core collects its responses each tick (the slow consumer at its
/// throttled rate, draining fully only after the run); with it off,
/// responses are taken directly, as in run_serve_sim.
FairnessRunResult run_fairness_sim(const FairnessTraffic& traffic,
                                   const ServiceOptions& options,
                                   const AdvisoryService::Solver& solver,
                                   const engine::Executor* executor);

/// Poisoned-warm-start sweep: what a hostile cache directory can and
/// cannot do to a restarted service.
struct PoisonReport {
  int trials = 0;
  int bitflip_trials = 0;     // random byte/bit flips in a shard journal
  int stale_fp_trials = 0;    // header rewritten with a foreign fingerprint
  int truncated_trials = 0;   // journal cut at a random byte offset
  std::uint64_t warm_entries_loaded = 0;
  std::uint64_t warm_entries_quarantined = 0;
  std::uint64_t warm_files_rejected = 0;
  std::uint64_t stale_fresh = 0;   // stale_fresh_violations across all runs
  std::uint64_t alien_served = 0;  // cache hits not matching pre-poison truth
  std::uint64_t gate_failures = 0;  // runs whose robustness gates failed
  std::uint64_t acked_then_lost = 0;  // post-poison acks lost on re-recovery
  std::uint64_t recovery_failures = 0;  // post-poison journal recover errors

  /// The poison gate: corruption may only cost cache warmth (quarantines,
  /// rejected files) — never correctness, durability, or the process.
  bool ok() const {
    return stale_fresh == 0 && alien_served == 0 && gate_failures == 0 &&
           acked_then_lost == 0 && recovery_failures == 0;
  }
  std::string to_string() const;
};

/// `trials` poison/restart cycles under `scratch_dir`: journal a clean run,
/// damage the directory (rotating bit-flip / stale-fingerprint / truncation,
/// all seeded), warm-start a second service from it, and audit that nothing
/// suspect was served, the run's gates held, and the second run's own acks
/// are durable.
PoisonReport serve_poison_check(std::uint64_t seed, int trials,
                                const std::string& scratch_dir);

}  // namespace re::serve
