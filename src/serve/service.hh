// The advisory plan service: a long-lived daemon loop that answers
// "what should core C prefetch for this phase?" under a deadline.
//
// ROADMAP item 1 ("repf serve"). N client cores stream windowed
// sub-profiles (phase signatures) at the service; each request is answered
// from a sharded plan cache when a known phase matches, solved fresh on the
// analysis engine when it does not, and *degraded* — never blocked, never
// guessed — when the service cannot do either in time. The degradation
// ladder (DESIGN.md §12) is strict:
//
//   Fresh solve > CacheHit > LastKnownGood (this core's last good answer)
//     > NoPrefetch (the guaranteed-safe baseline)
//
// A deadline-missed answer is always degraded; fresh plans that arrive
// late are still inserted into the cache (the work is not wasted) but are
// never returned as if they were on time. Robustness envelope:
//
//   * admission control — the solve queue is bounded; a request that would
//     overflow it, or whose estimated completion already exceeds its
//     deadline, is shed immediately with a degraded answer.
//   * deadline budgets with cooperative cancellation — a solve that can no
//     longer make its deadline has its engine::CancelToken armed; the
//     engine unwinds at the next stage/unit boundary.
//   * retry with exponential backoff + seeded jitter — transient cache
//     faults (lookup or journal append) retry up to max_retries; exhausted
//     retries trip the shard's breaker.
//   * per-shard circuit breaker — the runtime::Breaker state machine
//     (shared with the Supervisor's failure domains): a down shard is
//     skipped, its traffic degrades to LKG/no-prefetch, and it re-arms
//     through half-open probation.
//   * multi-tenant fairness (FairnessOptions, DESIGN.md §14) — per-core
//     token-bucket quotas, deficit-round-robin dispatch over per-tenant
//     sub-queues, and a per-tenant breaker trip-out, so one chatty core's
//     overflow is shed (QuotaExceeded) before it can touch anyone else's
//     deadline budget. Off by default (byte-identical to the FIFO path).
//   * trust-but-verify warm start — prior-run shard journals load through
//     fingerprint, CRC and plan-sanity revalidation; anything suspect is
//     quarantined (that tenant re-solves fresh), never served.
//
// Determinism contract: the service is a virtual-time discrete-event
// machine. submit()/step() run on one thread and draw all randomness
// (fault rolls, retry jitter) from one seeded Rng in call order; the
// Executor only ever runs the batched solver callbacks, each of which
// writes its own slot (ordered reduction). Responses are therefore
// byte-identical at any --jobs and across runs with the same seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/insertion.hh"
#include "core/phases.hh"
#include "engine/cancel.hh"
#include "engine/executor.hh"
#include "runtime/breaker.hh"
#include "runtime/plan_cache.hh"
#include "serve/fairness.hh"
#include "serve/journal.hh"
#include "support/rng.hh"
#include "support/status.hh"

namespace re::serve {

/// How an answer was produced, best to worst. LastKnownGood and NoPrefetch
/// are the degraded kinds: both are always safe to apply (LKG was a
/// validated answer for this core; no-prefetch is the paper's baseline).
enum class AnswerKind : int {
  Fresh = 0,          // solved on the engine within budget
  CacheHit = 1,       // matched a cached phase
  LastKnownGood = 2,  // degraded: this core's previous good answer
  NoPrefetch = 3,     // degraded: the guaranteed-safe empty plan set
};

const char* answer_kind_name(AnswerKind kind);

/// Why an answer was degraded (None for Fresh/CacheHit).
enum class DegradeCause : int {
  None = 0,
  QueueFull,           // admission: bounded solve queue at capacity
  DeadlineInfeasible,  // admission: estimated completion past the deadline
  DeadlineExpired,     // in-flight solve cancelled at its budget
  ShardDown,           // breaker holds the shard down (backoff/open)
  SolveFault,          // the solver itself failed
  CacheFault,          // cache lookup retries exhausted
  QuotaExceeded,       // fairness: the tenant's own quota/backlog overflowed
};

const char* degrade_cause_name(DegradeCause cause);

/// One advisory request: "core `core` entered the phase described by
/// `signature`; what should it prefetch?" `family` keys the solver's input
/// (which sub-profile/program to optimize) — opaque to the service.
struct PlanRequest {
  std::uint64_t id = 0;
  int core = 0;
  std::uint64_t family = 0;
  core::PhaseSignature signature;
  /// Ticks the client will wait; 0 = ServiceOptions::deadline_ticks.
  std::uint64_t deadline_ticks = 0;
};

struct PlanResponse {
  std::uint64_t id = 0;
  int core = 0;
  AnswerKind kind = AnswerKind::NoPrefetch;
  DegradeCause cause = DegradeCause::None;
  std::vector<core::PrefetchPlan> plans;
  std::uint64_t submit_tick = 0;
  std::uint64_t complete_tick = 0;
  std::uint64_t latency_ticks = 0;
  /// True when the answer arrived past the request's deadline. Invariant
  /// (enforced, counted in stats): deadline_missed implies degraded().
  bool deadline_missed = false;
  int retries = 0;

  bool degraded() const {
    return kind == AnswerKind::LastKnownGood ||
           kind == AnswerKind::NoPrefetch;
  }
};

struct ServiceOptions {
  /// Plan-cache shards; requests map to shards by signature fingerprint.
  int shards = 8;
  /// Per-shard cache configuration.
  runtime::PlanCacheOptions cache;
  /// Bounded solve queue (pending misses across the whole service).
  std::size_t queue_capacity = 64;
  /// Concurrent solve slots (virtual-time capacity; the real callbacks are
  /// batched onto the Executor as they complete).
  int solve_slots = 4;
  /// Default per-request deadline, in virtual ticks.
  std::uint64_t deadline_ticks = 256;
  /// Virtual cost of a cache-hit answer / of one engine solve.
  std::uint64_t hit_cost_ticks = 1;
  std::uint64_t solve_cost_ticks = 48;
  /// Probability a cache touch (lookup or journal append) faults
  /// transiently — the injected fault the retry ladder absorbs.
  double cache_fault_rate = 0.0;
  /// Transient-fault retries before the shard's breaker trips.
  int max_retries = 3;
  /// Retry r waits backoff_base << (r-1) ticks (capped), stretched by
  /// seeded jitter in [1 - retry_jitter, 1 + retry_jitter].
  std::uint64_t retry_backoff_base_ticks = 4;
  std::uint64_t retry_backoff_max_ticks = 64;
  double retry_jitter = 0.25;
  /// Per-shard breaker; tick_scale is forced to 1 (service ticks).
  runtime::BreakerOptions breaker;
  /// Directory for per-shard journals; empty = in-memory only.
  std::string journal_dir;
  /// Multi-tenant isolation knobs (off by default; DESIGN.md §14).
  FairnessOptions fairness;
  /// Directory holding prior-run shard journals to warm the caches from
  /// (trust-but-verify: fingerprint + CRC + plan-sanity revalidation;
  /// anything suspect is quarantined). Empty = cold start.
  std::string warm_start_dir;
  /// Expected machine-model/knob fingerprint, stamped into this run's
  /// journal headers and required of warm-start files. Empty = unstamped
  /// journals, and warm-start accepts any header (caller opted out).
  std::string config_fingerprint;
  std::uint64_t seed = 0xAD115EED;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t fresh = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t last_known_good = 0;
  std::uint64_t no_prefetch = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_infeasible = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t shard_down = 0;
  std::uint64_t solve_faults = 0;
  std::uint64_t cache_faults = 0;
  std::uint64_t cancelled_solves = 0;
  std::uint64_t retries = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_append_failures = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t deadline_missed = 0;
  /// Deadline-missed answers whose kind was NOT degraded — the "stale
  /// answer served as fresh" bug class. Must stay 0.
  std::uint64_t stale_fresh_violations = 0;
  /// High-water mark of the bounded solve queue. Must stay <= capacity.
  std::size_t max_queue_depth = 0;
  std::uint64_t solves_started = 0;
  // --- fairness (zero unless FairnessOptions::enabled) ---
  /// Requests shed with QuotaExceeded: empty token bucket, full per-tenant
  /// sub-queue, or the tenant's breaker holding it down.
  std::uint64_t shed_quota = 0;
  /// Per-tenant breaker trips (quota_trip_threshold consecutive sheds).
  std::uint64_t quota_breaker_trips = 0;
  /// Requests rejected unanswered because the core's bounded outbox (plus
  /// outstanding work) was full — a consumer that stopped reading.
  std::uint64_t shed_slow_consumer = 0;
  /// High-water mark of any single tenant's sub-queue.
  std::size_t max_tenant_queue_depth = 0;
  // --- warm start (zero unless warm_start_dir was set) ---
  std::uint64_t warm_files_loaded = 0;       // journals accepted
  std::uint64_t warm_files_rejected = 0;     // unreadable or bad fingerprint
  std::uint64_t warm_entries_loaded = 0;     // entries verified + installed
  std::uint64_t warm_entries_quarantined = 0;  // CRC/parse/sanity failures
};

/// Deterministic shard key: a mix over the signature's (pc, weight) pairs
/// in sorted-pc order. Also the identity used by the crash check to prove
/// every acked entry survived recovery.
std::uint64_t signature_fingerprint(const core::PhaseSignature& signature);

class AdvisoryService {
 public:
  /// The miss path: solve `request` into a plan set. Runs inside Executor
  /// workers — it must be pure (own its outputs, share only immutables)
  /// and honour `cancel` (pass it into the EngineContext).
  using Solver = std::function<std::vector<core::PrefetchPlan>(
      const PlanRequest&, const engine::CancelToken*)>;

  /// `executor` may be null (solves run inline). When journal_dir is set,
  /// per-shard journals are created eagerly; creation failure counts as a
  /// journal append failure and the shard runs in-memory.
  AdvisoryService(const ServiceOptions& options, Solver solver,
                  const engine::Executor* executor);
  ~AdvisoryService();

  /// Submit one request at virtual time `now`. Answers that need no solve
  /// (hits, sheds, shard-down degrades) are emitted onto `out`
  /// immediately; misses are admitted to the solve queue or shed.
  void submit(const PlanRequest& request, std::uint64_t now,
              std::vector<PlanResponse>& out);

  /// Advance the service to virtual time `now` (call with non-decreasing
  /// ticks): completes due solves, processes due retries, starts queued
  /// solves, ticks the shard breakers. Completed answers append to `out`.
  void step(std::uint64_t now, std::vector<PlanResponse>& out);

  /// Run the clock forward until every queued/in-flight request has been
  /// answered. Returns the tick the service went idle at.
  std::uint64_t drain(std::uint64_t now, std::vector<PlanResponse>& out);

  /// Drain up to `max` responses from `core`'s outbox (fairness outbox mode
  /// only; no-op with direct emission). Models the client actually reading.
  std::size_t collect(int core, std::size_t max,
                      std::vector<PlanResponse>& out);
  /// Responses waiting in `core`'s outbox (0 with direct emission).
  std::size_t outbox_depth(int core) const;
  /// State of `core`'s per-tenant breaker (Armed when the tenant has never
  /// been seen or fairness is off).
  runtime::BreakerState tenant_state(int core) const;

  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return opts_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  runtime::BreakerState shard_state(int shard) const;
  const runtime::PlanCache& shard_cache(int shard) const;
  /// Fingerprints of every entry whose journal append was acked (durable),
  /// in ack order. The crash check's ground truth.
  const std::vector<std::uint64_t>& acked_fingerprints() const {
    return acked_;
  }

 private:
  struct Shard;
  struct InFlight;
  struct PendingSolve;
  struct Retry;
  struct Tenant;

  Shard& shard_for(const core::PhaseSignature& signature);
  Tenant& tenant_for(int core, std::uint64_t now);
  std::uint64_t retry_delay(int attempt);
  void warm_start();
  void emit(PlanResponse&& response, std::vector<PlanResponse>& out);
  /// Build the degraded answer for `work`: LKG when this core has a good
  /// previous answer, NoPrefetch otherwise. `done` stamps completion;
  /// deadline_missed is derived from it.
  PlanResponse degrade(const PendingSolve& work, std::uint64_t done,
                       DegradeCause cause);
  void lookup_and_route(const PendingSolve& work, Shard& shard,
                        std::uint64_t now, std::vector<PlanResponse>& out);
  void admit(const PendingSolve& work, std::uint64_t now,
             std::vector<PlanResponse>& out);
  void trip_shard(Shard& shard);
  void complete_due_solves(std::uint64_t now, std::vector<PlanResponse>& out);
  void process_due_retries(std::uint64_t now, std::vector<PlanResponse>& out);
  void start_solves(std::uint64_t now);
  void ack_entry(Shard& shard, const runtime::PlanCache::Entry& entry);

  ServiceOptions opts_;
  Solver solver_;
  const engine::Executor* executor_;
  Rng rng_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::deque<PendingSolve> queue_;      // FIFO path (fairness off)
  DrrScheduler<PendingSolve> fair_queue_;  // DRR path (fairness on)
  std::unordered_map<int, std::unique_ptr<Tenant>> tenants_;
  std::vector<int> tenant_order_;  // deterministic first-seen iteration order
  std::vector<std::unique_ptr<InFlight>> in_flight_;
  std::vector<Retry> retries_;
  std::unordered_map<int, std::vector<core::PrefetchPlan>> lkg_;
  std::vector<std::uint64_t> acked_;
  ServiceStats stats_;
  std::uint64_t last_step_tick_ = 0;
};

}  // namespace re::serve
