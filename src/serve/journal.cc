#include "serve/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/atomic_file.hh"

namespace re::serve {

ShardJournal::~ShardJournal() { close(); }

ShardJournal::ShardJournal(ShardJournal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      appended_(other.appended_) {
  other.fd_ = -1;
  other.appended_ = 0;
}

ShardJournal& ShardJournal::operator=(ShardJournal&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    appended_ = other.appended_;
    other.fd_ = -1;
    other.appended_ = 0;
  }
  return *this;
}

void ShardJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ShardJournal::open_fd(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  "cannot open journal " + path + " for append: " +
                      std::strerror(errno));
  }
  path_ = path;
  fd_ = fd;
  appended_ = 0;
  return Status::Ok();
}

Status ShardJournal::create(const std::string& path,
                            const runtime::PlanCache& cache,
                            const std::string& fingerprint) {
  const Status snapshot = cache.save(path, fingerprint);
  if (!snapshot.ok()) return snapshot;
  return open_fd(path);
}

Status ShardJournal::open_existing(const std::string& path) {
  return open_fd(path);
}

Expected<runtime::PlanCache::LoadReport> ShardJournal::recover(
    const std::string& path,
    const runtime::PlanCacheOptions& cache_options,
    const std::string& fingerprint) {
  Expected<runtime::PlanCache::LoadReport> loaded =
      runtime::PlanCache::load_file(path, cache_options);
  if (!loaded.has_value()) return loaded;
  // Compact before appending: the snapshot rewrite discards any torn tail
  // (which would otherwise swallow the next appended record) and any stray
  // checkpoint temp file is simply never read.
  const Status compacted = create(path, loaded.value().cache, fingerprint);
  if (!compacted.ok()) return compacted;
  return loaded;
}

Status ShardJournal::append(const runtime::PlanCache::Entry& entry) {
  if (fd_ < 0) {
    return Status(StatusCode::kFailedPrecondition,
                  "journal not open for append");
  }
  const std::string record = runtime::PlanCache::journal_record(entry);
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kDataLoss,
                    "short append to " + path_ + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // The ack point: once these bytes are synced the entry is durable, and a
  // crash any earlier tore (at most) a record nobody was promised.
  if (::fsync(fd_) != 0) {
    return Status(StatusCode::kDataLoss,
                  "fsync " + path_ + ": " + std::strerror(errno));
  }
  ++appended_;
  return Status::Ok();
}

}  // namespace re::serve
