#include "serve/harness.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "engine/pipeline.hh"
#include "support/atomic_file.hh"
#include "support/checksum.hh"

namespace re::serve {

namespace {

/// Base PC for family f's signature; families are pairwise disjoint so
/// signature_distance between any two is 2.0 (never cross-matches).
Pc family_base_pc(std::uint64_t family) {
  return static_cast<Pc>(0x1000 + family * 16);
}

void ensure_dir(const std::string& path) {
  ::mkdir(path.c_str(), 0755);  // EEXIST is fine; creation is best-effort
}

std::uint64_t chain_crc(std::uint64_t digest, const std::string& text) {
  return support::crc32(text + support::crc32_hex(
                                   static_cast<std::uint32_t>(digest)));
}

std::string render_response(const PlanResponse& response) {
  char head[160];
  std::snprintf(head, sizeof head,
                "id=%" PRIu64 " core=%d kind=%s cause=%s lat=%" PRIu64
                " miss=%d retries=%d plans=",
                response.id, response.core,
                answer_kind_name(response.kind),
                degrade_cause_name(response.cause), response.latency_ticks,
                response.deadline_missed ? 1 : 0, response.retries);
  std::string line = head;
  for (const core::PrefetchPlan& plan : response.plans) {
    char item[64];
    std::snprintf(item, sizeof item, "%u:%+lld:%d;", plan.pc,
                  static_cast<long long>(plan.distance_bytes),
                  static_cast<int>(plan.hint));
    line += item;
  }
  return line;
}

bool plans_equal(const std::vector<core::PrefetchPlan>& a,
                 const std::vector<core::PrefetchPlan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pc != b[i].pc || a[i].distance_bytes != b[i].distance_bytes ||
        a[i].hint != b[i].hint) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Family> make_families(int hot, int cold) {
  std::vector<Family> families;
  const int total = std::max(hot, 0) + std::max(cold, 0);
  families.reserve(static_cast<std::size_t>(total));
  for (int f = 0; f < total; ++f) {
    Family family;
    family.id = static_cast<std::uint64_t>(f);
    const Pc base = family_base_pc(family.id);
    family.signature = {{base, 0.5}, {base + 1, 0.3}, {base + 2, 0.2}};

    // Per-family sub-profile: a streaming load over a footprint the L1
    // cannot hold (the delinquent load the solve targets) plus a hot
    // buffer that fits (and should produce no plan). Disjoint address
    // spaces per family keep solves independent.
    workloads::Program& p = family.program;
    p.name = "serve-family-" + std::to_string(f);
    p.seed = 0x5E47E + family.id;
    workloads::StaticInst stream, hot_buf;
    stream.pc = base;
    stream.pattern =
        workloads::StreamPattern{family.id << 36, 64, 1 << 20};
    hot_buf.pc = base + 1;
    hot_buf.pattern =
        workloads::HotBufferPattern{(family.id << 36) + (1 << 30), 64,
                                    16 << 10};
    p.loops.push_back(workloads::Loop{{stream, hot_buf}, 8192});
    p.outer_reps = 1;
    families.push_back(std::move(family));
  }
  return families;
}

AdvisoryService::Solver make_engine_solver(const std::vector<Family>& families,
                                           const sim::MachineConfig& machine,
                                           const engine::Executor* executor) {
  // The solver runs inside Executor workers: it reads only the immutable
  // family table and machine config, and nested engine fan-outs run inline
  // on the worker (Executor's nested-dispatch rule).
  return [&families, machine, executor](const PlanRequest& request,
                                        const engine::CancelToken* cancel)
             -> std::vector<core::PrefetchPlan> {
    const std::size_t index =
        static_cast<std::size_t>(request.family) % families.size();
    engine::EngineContext ctx;
    ctx.executor = executor;
    ctx.cancel = cancel;
    core::OptimizationReport report = engine::run_optimize(
        families[index].program, machine, core::OptimizerOptions{}, ctx);
    return std::move(report.plans);
  };
}

AdvisoryService::Solver make_synthetic_solver(
    const std::vector<Family>& families) {
  return [&families](const PlanRequest& request,
                     const engine::CancelToken* cancel)
             -> std::vector<core::PrefetchPlan> {
    if (cancel != nullptr && cancel->requested()) throw engine::Cancelled();
    const std::size_t index =
        static_cast<std::size_t>(request.family) % families.size();
    core::PrefetchPlan plan;
    plan.pc = family_base_pc(families[index].id);
    plan.distance_bytes =
        static_cast<std::int64_t>(64 * (families[index].id + 1));
    plan.hint = workloads::PrefetchHint::T0;
    return {plan};
  };
}

ServeRunResult run_serve_sim(const TrafficConfig& traffic,
                             const ServiceOptions& options,
                             const AdvisoryService::Solver& solver,
                             const engine::Executor* executor) {
  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);
  AdvisoryService service(options, solver, executor);

  Rng arrivals(traffic.seed);
  std::vector<PlanResponse> responses;
  std::uint64_t next_id = 1;
  for (std::uint64_t tick = 0; tick < traffic.ticks; ++tick) {
    service.step(tick, responses);
    for (int core = 0; core < traffic.cores; ++core) {
      if (!arrivals.chance(traffic.request_rate)) continue;
      std::uint64_t family;
      if (traffic.hot_families > 0 &&
          arrivals.chance(traffic.hot_fraction)) {
        family = arrivals.next(
            static_cast<std::uint64_t>(traffic.hot_families));
      } else {
        family = static_cast<std::uint64_t>(traffic.hot_families) +
                 arrivals.next(static_cast<std::uint64_t>(
                     std::max(traffic.cold_families, 1)));
      }
      PlanRequest request;
      request.id = next_id++;
      request.core = core;
      request.family = family;
      request.signature = families[family % families.size()].signature;
      service.submit(request, tick, responses);
    }
  }
  const std::uint64_t final_tick = service.drain(traffic.ticks, responses);

  ServeRunResult result;
  result.stats = service.stats();
  result.responses = responses.size();
  result.final_tick = final_tick;
  for (int s = 0; s < service.shards(); ++s) {
    if (service.shard_state(s) == runtime::BreakerState::Open) {
      ++result.shards_open;
    }
  }
  result.acked = service.acked_fingerprints();

  std::vector<std::uint64_t> admitted_latency;
  std::unordered_map<int, std::vector<core::PrefetchPlan>> last_good;
  std::uint64_t degraded = 0;
  for (const PlanResponse& response : responses) {
    result.digest = chain_crc(result.digest, render_response(response));
    if (response.deadline_missed && !response.degraded()) {
      result.no_stale_fresh = false;
    }
    switch (response.kind) {
      case AnswerKind::Fresh:
      case AnswerKind::CacheHit:
        admitted_latency.push_back(response.latency_ticks);
        last_good[response.core] = response.plans;
        break;
      case AnswerKind::LastKnownGood:
        ++degraded;
        // A LKG answer must be exactly this core's previous good answer.
        if (response.cause == DegradeCause::None ||
            last_good.find(response.core) == last_good.end() ||
            !plans_equal(response.plans, last_good[response.core])) {
          result.degraded_safe = false;
        }
        break;
      case AnswerKind::NoPrefetch:
        ++degraded;
        // No-prefetch is the empty (guaranteed-safe) plan set, by definition.
        if (response.cause == DegradeCause::None || !response.plans.empty()) {
          result.degraded_safe = false;
        }
        break;
    }
  }

  result.queue_bounded =
      result.stats.max_queue_depth <= options.queue_capacity;
  if (result.stats.stale_fresh_violations > 0) result.no_stale_fresh = false;

  if (!admitted_latency.empty()) {
    std::sort(admitted_latency.begin(), admitted_latency.end());
    const std::size_t n = admitted_latency.size();
    result.p50_admitted = static_cast<double>(admitted_latency[n / 2]);
    result.p99_admitted =
        static_cast<double>(admitted_latency[std::min(n - 1, n * 99 / 100)]);
  }
  const double submitted =
      std::max<double>(static_cast<double>(result.stats.submitted), 1.0);
  result.shed_rate =
      static_cast<double>(result.stats.shed_queue_full +
                          result.stats.shed_infeasible +
                          result.stats.shard_down +
                          result.stats.cache_faults) /
      submitted;
  result.deadline_miss_rate =
      static_cast<double>(result.stats.deadline_missed) / submitted;
  result.hit_rate =
      static_cast<double>(result.stats.cache_hits) / submitted;
  result.degraded_rate = static_cast<double>(degraded) / submitted;
  return result;
}

std::string config_fingerprint(const sim::MachineConfig& machine,
                               const core::OptimizerOptions& knobs) {
  // A stable digest over the state that decides whether a cached plan is
  // still valid: the cache hierarchy the solves modeled and the optimizer
  // knobs that shaped them. Everything is folded as raw bits (doubles via
  // memcpy) so the token is byte-stable across runs and platforms with the
  // same config.
  std::uint64_t h = 0xF17E9A11DC0FFEEull;
  const auto fold = [&h](std::uint64_t v) { h = workloads::mix64(h ^ v); };
  const auto fold_double = [&fold](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    fold(bits);
  };
  for (const char c : machine.name) {
    fold(static_cast<unsigned char>(c));
  }
  fold(machine.l1.size_bytes);
  fold(machine.l1.associativity);
  fold(machine.l2.size_bytes);
  fold(machine.l2.associativity);
  fold(machine.llc.size_bytes);
  fold(machine.llc.associativity);
  fold(machine.l1_latency);
  fold(machine.l2_latency);
  fold(machine.llc_latency);
  fold(machine.dram_latency);
  fold(machine.oo_overlap_cycles);
  fold(machine.prefetch_inst_cost);
  fold_double(machine.freq_ghz);
  fold_double(machine.dram_bytes_per_cycle);
  fold(knobs.enable_non_temporal ? 1 : 0);
  fold(knobs.profile_max_refs);
  fold_double(knobs.assumed_cycles_per_memop);
  fold_double(knobs.measured_cycles_per_memop);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

FairnessRunResult run_fairness_sim(const FairnessTraffic& traffic,
                                   const ServiceOptions& options,
                                   const AdvisoryService::Solver& solver,
                                   const engine::Executor* executor) {
  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);
  AdvisoryService service(options, solver, executor);
  const bool outbox =
      options.fairness.enabled && options.fairness.outbox_capacity > 0;

  const int chatty_core = traffic.chatty ? traffic.cores : -1;
  const int slow_core =
      traffic.slow_consumer ? traffic.cores + (traffic.chatty ? 1 : 0) : -1;
  const int total_cores = traffic.cores + (traffic.chatty ? 1 : 0) +
                          (traffic.slow_consumer ? 1 : 0);

  // Per-core arrival streams: adding an adversary must not perturb a
  // well-behaved core's request sequence, or the solo comparison would be
  // comparing different workloads.
  std::vector<Rng> arrivals;
  arrivals.reserve(static_cast<std::size_t>(total_cores));
  for (int core = 0; core < total_cores; ++core) {
    arrivals.emplace_back(workloads::mix64(
        traffic.seed ^ (0xFA12D00Dull + static_cast<std::uint64_t>(core))));
  }

  std::vector<PlanResponse> responses;  // collection order
  std::vector<std::uint64_t> submitted_per_core(
      static_cast<std::size_t>(total_cores), 0);
  std::uint64_t next_id = 1;
  for (std::uint64_t tick = 0; tick < traffic.ticks; ++tick) {
    service.step(tick, responses);
    for (int core = 0; core < total_cores; ++core) {
      double rate = traffic.base_rate;
      if (core == chatty_core) rate *= traffic.chatty_multiplier;
      Rng& rng = arrivals[static_cast<std::size_t>(core)];
      // Rates above 1/tick submit floor(rate) requests plus a Bernoulli
      // remainder — the chatty core really is 100×, not clamped to 1.
      int n = static_cast<int>(rate);
      const double frac = rate - static_cast<double>(n);
      if (frac > 0.0 && rng.chance(frac)) ++n;
      for (int r = 0; r < n; ++r) {
        std::uint64_t family;
        if (core == chatty_core || traffic.hot_families == 0 ||
            !rng.chance(traffic.hot_fraction)) {
          // The chatty core requests cold families only: every request is
          // a solve, the most queue pressure a tenant can generate.
          family = static_cast<std::uint64_t>(traffic.hot_families) +
                   rng.next(static_cast<std::uint64_t>(
                       std::max(traffic.cold_families, 1)));
        } else {
          family =
              rng.next(static_cast<std::uint64_t>(traffic.hot_families));
        }
        PlanRequest request;
        request.id = next_id++;
        request.core = core;
        request.family = family;
        request.signature = families[family % families.size()].signature;
        service.submit(request, tick, responses);
        ++submitted_per_core[static_cast<std::size_t>(core)];
      }
    }
    if (outbox) {
      for (int core = 0; core < total_cores; ++core) {
        const std::size_t max =
            core == slow_core ? traffic.slow_collect_per_tick
                              : static_cast<std::size_t>(-1);
        if (max > 0) service.collect(core, max, responses);
      }
    }
  }
  FairnessRunResult result;
  result.final_tick = service.drain(traffic.ticks, responses);
  if (outbox) {
    // Final drain of every outbox — including the slow consumer's held
    // responses, so the digest covers every answer the service produced.
    for (int core = 0; core < total_cores; ++core) {
      service.collect(core, static_cast<std::size_t>(-1), responses);
    }
  }

  result.stats = service.stats();
  result.responses = responses.size();
  result.per_core.resize(static_cast<std::size_t>(total_cores));
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(total_cores));
  std::unordered_map<int, std::vector<core::PrefetchPlan>> last_good;
  for (const PlanResponse& response : responses) {
    result.digest = chain_crc(result.digest, render_response(response));
    if (response.deadline_missed && !response.degraded()) {
      result.no_stale_fresh = false;
    }
    const std::size_t core = static_cast<std::size_t>(response.core);
    CoreMetrics& metrics = result.per_core[core];
    if (response.cause == DegradeCause::QuotaExceeded) ++metrics.quota_shed;
    switch (response.kind) {
      case AnswerKind::Fresh:
      case AnswerKind::CacheHit:
        ++metrics.admitted;
        latencies[core].push_back(response.latency_ticks);
        last_good[response.core] = response.plans;
        break;
      case AnswerKind::LastKnownGood:
        ++metrics.degraded;
        if (response.cause == DegradeCause::None ||
            last_good.find(response.core) == last_good.end() ||
            !plans_equal(response.plans, last_good[response.core])) {
          result.degraded_safe = false;
        }
        break;
      case AnswerKind::NoPrefetch:
        ++metrics.degraded;
        if (response.cause == DegradeCause::None || !response.plans.empty()) {
          result.degraded_safe = false;
        }
        break;
    }
  }
  for (int core = 0; core < total_cores; ++core) {
    CoreMetrics& metrics = result.per_core[static_cast<std::size_t>(core)];
    metrics.submitted = submitted_per_core[static_cast<std::size_t>(core)];
    std::vector<std::uint64_t>& lat =
        latencies[static_cast<std::size_t>(core)];
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      const std::size_t n = lat.size();
      metrics.p50 = static_cast<double>(lat[n / 2]);
      metrics.p99 =
          static_cast<double>(lat[std::min(n - 1, n * 99 / 100)]);
    }
    metrics.degraded_rate =
        static_cast<double>(metrics.degraded) /
        std::max<double>(static_cast<double>(metrics.submitted), 1.0);
  }
  result.queue_bounded =
      result.stats.max_queue_depth <= options.queue_capacity;
  if (result.stats.stale_fresh_violations > 0) result.no_stale_fresh = false;
  return result;
}

std::string ServeCrashReport::to_string() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "trials=%d (torn=%d tmp=%d) acked=%" PRIu64 " recovered=%" PRIu64
      " quarantined=%" PRIu64 " lost=%" PRIu64 " alien=%" PRIu64
      " recovery_failures=%" PRIu64 " append_failures=%" PRIu64 " -> %s",
      trials, torn_trials, tmp_trials, acked_total, recovered_total,
      quarantined, lost_acked, alien_entries, recovery_failures,
      append_failures, ok() ? "OK" : "FAIL");
  return buf;
}

ServeCrashReport serve_crash_check(std::uint64_t seed, int trials,
                                   const std::string& scratch_dir) {
  ServeCrashReport report;
  ensure_dir(scratch_dir);

  const std::vector<Family> families = make_families(2, 24);
  const AdvisoryService::Solver solver = make_synthetic_solver(families);

  for (int trial = 0; trial < trials; ++trial) {
    ++report.trials;
    const std::string dir =
        scratch_dir + "/trial-" + std::to_string(trial);
    ensure_dir(dir);

    TrafficConfig traffic;
    traffic.cores = 8;
    traffic.ticks = 128;
    traffic.request_rate = 0.25;
    traffic.hot_fraction = 0.25;
    traffic.hot_families = 2;
    traffic.cold_families = 24;
    traffic.seed = workloads::mix64(seed + 0x9E37 * trial + 1);

    ServiceOptions options;
    options.shards = 2;
    options.cache.capacity = 64;  // no eviction: acked entries stay resident
    options.queue_capacity = 128;
    options.solve_slots = 4;
    options.solve_cost_ticks = 4;
    options.deadline_ticks = 512;
    options.journal_dir = dir;
    options.seed = workloads::mix64(seed + 0xC0DE * trial + 7);

    ServeRunResult run = run_serve_sim(traffic, options, solver, nullptr);
    // Dedup by fingerprint: two concurrent misses of the same family both
    // solve and both ack (the journal holds both records; the loader's
    // signature match collapses them), so unique identities are the
    // comparable ground truth.
    std::unordered_set<std::uint64_t> acked(run.acked.begin(),
                                            run.acked.end());
    report.acked_total += acked.size();

    // Crash. The service's writes are append + fsync, so the only torn
    // state a real crash leaves is (a) a partial final record — an append
    // that never returned, hence never acked — or (b) a stray checkpoint
    // temp file. Inflict one of each shape on shard 0, alternating.
    const std::string victim = dir + "/shard-0.journal";
    const bool torn = trial % 2 == 0;
    if (torn) {
      ++report.torn_trials;
      runtime::PlanCache::Entry in_flight;
      in_flight.signature = {{9999, 1.0}};
      in_flight.plans = {{9999, 64, workloads::PrefetchHint::T0}};
      const std::string record =
          runtime::PlanCache::journal_record(in_flight);
      Expected<std::string> old = support::read_file(victim);
      if (old.has_value()) {
        // Half the record: the bytes a crash mid-write leaves behind.
        std::string text = old.value();
        text.append(record.substr(0, record.size() / 2));
        std::FILE* f = std::fopen(victim.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(text.data(), 1, text.size(), f);
          std::fclose(f);
        }
      }
    } else {
      ++report.tmp_trials;
      std::FILE* f = std::fopen((victim + ".tmp").c_str(), "wb");
      if (f != nullptr) {
        std::fputs("{\"torn\": \"checkpoint\"", f);
        std::fclose(f);
      }
    }

    // Restart: recover every shard (load + quarantine + compact, the
    // ShardJournal::recover path), audit acked-vs-recovered.
    std::unordered_set<std::uint64_t> recovered;
    for (int s = 0; s < options.shards; ++s) {
      const std::string path =
          dir + "/shard-" + std::to_string(s) + ".journal";
      ShardJournal journal;
      Expected<runtime::PlanCache::LoadReport> loaded =
          journal.recover(path, options.cache);
      if (!loaded.has_value()) {
        ++report.recovery_failures;
        continue;
      }
      report.quarantined += loaded.value().quarantined;
      for (const runtime::PlanCache::Entry& entry :
           loaded.value().cache.entries()) {
        const std::uint64_t fp = signature_fingerprint(entry.signature);
        recovered.insert(fp);
        if (acked.find(fp) == acked.end()) ++report.alien_entries;
      }

      // The recovered journal must accept new appends (the restarted
      // service keeps acking), and the appended entry must itself recover.
      runtime::PlanCache::Entry post_crash;
      post_crash.signature = {{static_cast<Pc>(7000 + s), 1.0}};
      post_crash.plans = {
          {static_cast<Pc>(7000 + s), 128, workloads::PrefetchHint::T0}};
      if (!journal.append(post_crash).ok()) {
        ++report.append_failures;
        continue;
      }
      Expected<runtime::PlanCache::LoadReport> reloaded =
          runtime::PlanCache::load_file(path, options.cache);
      if (!reloaded.has_value() ||
          reloaded.value().cache.size() != loaded.value().cache.size() + 1) {
        ++report.append_failures;
      }
    }
    report.recovered_total += recovered.size();
    for (const std::uint64_t fp : acked) {
      if (recovered.find(fp) == recovered.end()) ++report.lost_acked;
    }
  }
  return report;
}

std::string PoisonReport::to_string() const {
  char buf[384];
  std::snprintf(
      buf, sizeof buf,
      "trials=%d (bitflip=%d stale_fp=%d truncated=%d) warm_loaded=%" PRIu64
      " warm_quarantined=%" PRIu64 " files_rejected=%" PRIu64
      " stale_fresh=%" PRIu64 " alien=%" PRIu64 " gate_failures=%" PRIu64
      " acked_then_lost=%" PRIu64 " recovery_failures=%" PRIu64 " -> %s",
      trials, bitflip_trials, stale_fp_trials, truncated_trials,
      warm_entries_loaded, warm_entries_quarantined, warm_files_rejected,
      stale_fresh, alien_served, gate_failures, acked_then_lost,
      recovery_failures, ok() ? "OK" : "FAIL");
  return buf;
}

PoisonReport serve_poison_check(std::uint64_t seed, int trials,
                                const std::string& scratch_dir) {
  PoisonReport report;
  ensure_dir(scratch_dir);

  const std::vector<Family> families = make_families(2, 24);
  const AdvisoryService::Solver solver = make_synthetic_solver(families);
  // Any stable token works as the "current config" identity; the check is
  // that a header carrying anything else is refused wholesale.
  const std::string fp =
      config_fingerprint(sim::amd_phenom_ii(), core::OptimizerOptions{});

  const auto write_bytes = [](const std::string& path,
                              const std::string& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    return true;
  };

  for (int trial = 0; trial < trials; ++trial) {
    ++report.trials;
    Rng damage(workloads::mix64(seed ^ (0xB0150Dull + trial)));
    const std::string base = scratch_dir + "/trial-" + std::to_string(trial);
    const std::string warm_dir = base + "/warm";
    const std::string relaunch_dir = base + "/relaunch";
    ensure_dir(base);
    ensure_dir(warm_dir);
    ensure_dir(relaunch_dir);

    TrafficConfig traffic;
    traffic.cores = 8;
    traffic.ticks = 128;
    traffic.request_rate = 0.25;
    traffic.hot_fraction = 0.25;
    traffic.hot_families = 2;
    traffic.cold_families = 24;
    traffic.seed = workloads::mix64(seed + 0x9E37 * trial + 11);

    ServiceOptions options;
    options.shards = 2;
    options.cache.capacity = 64;
    options.queue_capacity = 128;
    options.solve_slots = 4;
    options.solve_cost_ticks = 4;
    options.deadline_ticks = 512;
    options.journal_dir = warm_dir;
    options.config_fingerprint = fp;
    options.seed = workloads::mix64(seed + 0xC0DE * trial + 17);

    // Phase 1: a clean journaling run — its shard files are tomorrow's
    // warm-start directory, and their entries are the ground truth for the
    // alien-plan audit.
    run_serve_sim(traffic, options, solver, nullptr);
    std::unordered_map<std::uint64_t, std::vector<core::PrefetchPlan>> truth;
    for (int s = 0; s < options.shards; ++s) {
      const std::string path =
          warm_dir + "/shard-" + std::to_string(s) + ".journal";
      Expected<runtime::PlanCache::LoadReport> loaded =
          runtime::PlanCache::load_file(path, options.cache);
      if (!loaded.has_value()) continue;
      for (const runtime::PlanCache::Entry& entry :
           loaded.value().cache.entries()) {
        truth[signature_fingerprint(entry.signature)] = entry.plans;
      }
    }

    // Phase 2: poison one shard file, rotating through the three damage
    // shapes a hostile or rotted cache directory produces.
    const int victim_shard =
        static_cast<int>(damage.next(static_cast<std::uint64_t>(
            std::max(options.shards, 1))));
    const std::string victim =
        warm_dir + "/shard-" + std::to_string(victim_shard) + ".journal";
    Expected<std::string> bytes = support::read_file(victim);
    if (bytes.has_value() && !bytes.value().empty()) {
      std::string text = bytes.value();
      switch (trial % 3) {
        case 0: {
          ++report.bitflip_trials;
          const int flips = 1 + static_cast<int>(damage.next(4));
          for (int f = 0; f < flips; ++f) {
            const std::size_t byte = static_cast<std::size_t>(
                damage.next(static_cast<std::uint64_t>(text.size())));
            text[byte] = static_cast<char>(
                static_cast<unsigned char>(text[byte]) ^
                (1u << damage.next(8)));
          }
          break;
        }
        case 1: {
          ++report.stale_fp_trials;
          // Replace the header with one carrying a foreign fingerprint;
          // every record after it is intact and CRC-clean — only the
          // fingerprint check can refuse this file.
          std::size_t eol = text.find('\n');
          if (eol == std::string::npos) eol = text.size();
          text = runtime::PlanCache::journal_header(0, "00deadc0de5tale0") +
                 text.substr(std::min(eol + 1, text.size()));
          break;
        }
        default: {
          ++report.truncated_trials;
          text.resize(static_cast<std::size_t>(damage.next(
              static_cast<std::uint64_t>(text.size()))));
          break;
        }
      }
      write_bytes(victim, text);
    }

    // Phase 3: restart with --warm-start pointing at the poisoned
    // directory, journaling to a fresh one. The daemon must come up, serve
    // the run inside its gates, and never emit a plan the clean run did
    // not produce.
    std::vector<std::uint64_t> acked;
    {
      ServiceOptions relaunch = options;
      relaunch.journal_dir = relaunch_dir;
      relaunch.warm_start_dir = warm_dir;
      relaunch.seed = workloads::mix64(seed + 0xFEED * trial + 29);
      AdvisoryService service(relaunch, solver, nullptr);

      report.warm_entries_loaded += service.stats().warm_entries_loaded;
      report.warm_entries_quarantined +=
          service.stats().warm_entries_quarantined;
      report.warm_files_rejected += service.stats().warm_files_rejected;

      Rng arrivals(workloads::mix64(seed + 0xA11CE * trial + 31));
      std::vector<PlanResponse> responses;
      std::uint64_t next_id = 1;
      for (std::uint64_t tick = 0; tick < traffic.ticks; ++tick) {
        service.step(tick, responses);
        for (int core = 0; core < traffic.cores; ++core) {
          if (!arrivals.chance(traffic.request_rate)) continue;
          std::uint64_t family;
          if (traffic.hot_families > 0 &&
              arrivals.chance(traffic.hot_fraction)) {
            family = arrivals.next(
                static_cast<std::uint64_t>(traffic.hot_families));
          } else {
            family = static_cast<std::uint64_t>(traffic.hot_families) +
                     arrivals.next(static_cast<std::uint64_t>(
                         std::max(traffic.cold_families, 1)));
          }
          PlanRequest request;
          request.id = next_id++;
          request.core = core;
          request.family = family;
          request.signature = families[family % families.size()].signature;
          service.submit(request, tick, responses);
        }
      }
      service.drain(traffic.ticks, responses);

      if (service.stats().stale_fresh_violations > 0) {
        report.stale_fresh += service.stats().stale_fresh_violations;
      }
      if (service.stats().max_queue_depth > relaunch.queue_capacity) {
        ++report.gate_failures;
      }
      for (const PlanResponse& response : responses) {
        if (response.deadline_missed && !response.degraded()) {
          ++report.gate_failures;
        }
      }
      // Alien audit over the warmed caches directly: every entry the
      // service may serve must match the clean run's plans for that
      // signature. A poisoned record passing CRC and sanity yet carrying
      // different plans would land here; entries the clean run never held
      // are run-2 fresh solves (the same deterministic solver) and safe.
      for (int s = 0; s < service.shards(); ++s) {
        for (const runtime::PlanCache::Entry& entry :
             service.shard_cache(s).entries()) {
          const auto it = truth.find(signature_fingerprint(entry.signature));
          if (it != truth.end() && !plans_equal(entry.plans, it->second)) {
            ++report.alien_served;
          }
        }
      }
      acked = service.acked_fingerprints();
    }

    // Phase 4: the relaunched run's own acks must be durable in the new
    // directory — poison in the warm dir cannot leak forward.
    std::unordered_set<std::uint64_t> recovered;
    for (int s = 0; s < options.shards; ++s) {
      const std::string path =
          relaunch_dir + "/shard-" + std::to_string(s) + ".journal";
      ShardJournal journal;
      Expected<runtime::PlanCache::LoadReport> loaded =
          journal.recover(path, options.cache, fp);
      if (!loaded.has_value()) {
        ++report.recovery_failures;
        continue;
      }
      for (const runtime::PlanCache::Entry& entry :
           loaded.value().cache.entries()) {
        recovered.insert(signature_fingerprint(entry.signature));
      }
    }
    std::unordered_set<std::uint64_t> acked_set(acked.begin(), acked.end());
    for (const std::uint64_t item : acked_set) {
      if (recovered.find(item) == recovered.end()) ++report.acked_then_lost;
    }
  }
  return report;
}

}  // namespace re::serve
