#include "serve/harness.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "engine/pipeline.hh"
#include "support/atomic_file.hh"
#include "support/checksum.hh"

namespace re::serve {

namespace {

/// Base PC for family f's signature; families are pairwise disjoint so
/// signature_distance between any two is 2.0 (never cross-matches).
Pc family_base_pc(std::uint64_t family) {
  return static_cast<Pc>(0x1000 + family * 16);
}

void ensure_dir(const std::string& path) {
  ::mkdir(path.c_str(), 0755);  // EEXIST is fine; creation is best-effort
}

std::uint64_t chain_crc(std::uint64_t digest, const std::string& text) {
  return support::crc32(text + support::crc32_hex(
                                   static_cast<std::uint32_t>(digest)));
}

std::string render_response(const PlanResponse& response) {
  char head[160];
  std::snprintf(head, sizeof head,
                "id=%" PRIu64 " core=%d kind=%s cause=%s lat=%" PRIu64
                " miss=%d retries=%d plans=",
                response.id, response.core,
                answer_kind_name(response.kind),
                degrade_cause_name(response.cause), response.latency_ticks,
                response.deadline_missed ? 1 : 0, response.retries);
  std::string line = head;
  for (const core::PrefetchPlan& plan : response.plans) {
    char item[64];
    std::snprintf(item, sizeof item, "%u:%+lld:%d;", plan.pc,
                  static_cast<long long>(plan.distance_bytes),
                  static_cast<int>(plan.hint));
    line += item;
  }
  return line;
}

bool plans_equal(const std::vector<core::PrefetchPlan>& a,
                 const std::vector<core::PrefetchPlan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pc != b[i].pc || a[i].distance_bytes != b[i].distance_bytes ||
        a[i].hint != b[i].hint) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Family> make_families(int hot, int cold) {
  std::vector<Family> families;
  const int total = std::max(hot, 0) + std::max(cold, 0);
  families.reserve(static_cast<std::size_t>(total));
  for (int f = 0; f < total; ++f) {
    Family family;
    family.id = static_cast<std::uint64_t>(f);
    const Pc base = family_base_pc(family.id);
    family.signature = {{base, 0.5}, {base + 1, 0.3}, {base + 2, 0.2}};

    // Per-family sub-profile: a streaming load over a footprint the L1
    // cannot hold (the delinquent load the solve targets) plus a hot
    // buffer that fits (and should produce no plan). Disjoint address
    // spaces per family keep solves independent.
    workloads::Program& p = family.program;
    p.name = "serve-family-" + std::to_string(f);
    p.seed = 0x5E47E + family.id;
    workloads::StaticInst stream, hot_buf;
    stream.pc = base;
    stream.pattern =
        workloads::StreamPattern{family.id << 36, 64, 1 << 20};
    hot_buf.pc = base + 1;
    hot_buf.pattern =
        workloads::HotBufferPattern{(family.id << 36) + (1 << 30), 64,
                                    16 << 10};
    p.loops.push_back(workloads::Loop{{stream, hot_buf}, 8192});
    p.outer_reps = 1;
    families.push_back(std::move(family));
  }
  return families;
}

AdvisoryService::Solver make_engine_solver(const std::vector<Family>& families,
                                           const sim::MachineConfig& machine,
                                           const engine::Executor* executor) {
  // The solver runs inside Executor workers: it reads only the immutable
  // family table and machine config, and nested engine fan-outs run inline
  // on the worker (Executor's nested-dispatch rule).
  return [&families, machine, executor](const PlanRequest& request,
                                        const engine::CancelToken* cancel)
             -> std::vector<core::PrefetchPlan> {
    const std::size_t index =
        static_cast<std::size_t>(request.family) % families.size();
    engine::EngineContext ctx;
    ctx.executor = executor;
    ctx.cancel = cancel;
    core::OptimizationReport report = engine::run_optimize(
        families[index].program, machine, core::OptimizerOptions{}, ctx);
    return std::move(report.plans);
  };
}

AdvisoryService::Solver make_synthetic_solver(
    const std::vector<Family>& families) {
  return [&families](const PlanRequest& request,
                     const engine::CancelToken* cancel)
             -> std::vector<core::PrefetchPlan> {
    if (cancel != nullptr && cancel->requested()) throw engine::Cancelled();
    const std::size_t index =
        static_cast<std::size_t>(request.family) % families.size();
    core::PrefetchPlan plan;
    plan.pc = family_base_pc(families[index].id);
    plan.distance_bytes =
        static_cast<std::int64_t>(64 * (families[index].id + 1));
    plan.hint = workloads::PrefetchHint::T0;
    return {plan};
  };
}

ServeRunResult run_serve_sim(const TrafficConfig& traffic,
                             const ServiceOptions& options,
                             const AdvisoryService::Solver& solver,
                             const engine::Executor* executor) {
  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);
  AdvisoryService service(options, solver, executor);

  Rng arrivals(traffic.seed);
  std::vector<PlanResponse> responses;
  std::uint64_t next_id = 1;
  for (std::uint64_t tick = 0; tick < traffic.ticks; ++tick) {
    service.step(tick, responses);
    for (int core = 0; core < traffic.cores; ++core) {
      if (!arrivals.chance(traffic.request_rate)) continue;
      std::uint64_t family;
      if (traffic.hot_families > 0 &&
          arrivals.chance(traffic.hot_fraction)) {
        family = arrivals.next(
            static_cast<std::uint64_t>(traffic.hot_families));
      } else {
        family = static_cast<std::uint64_t>(traffic.hot_families) +
                 arrivals.next(static_cast<std::uint64_t>(
                     std::max(traffic.cold_families, 1)));
      }
      PlanRequest request;
      request.id = next_id++;
      request.core = core;
      request.family = family;
      request.signature = families[family % families.size()].signature;
      service.submit(request, tick, responses);
    }
  }
  const std::uint64_t final_tick = service.drain(traffic.ticks, responses);

  ServeRunResult result;
  result.stats = service.stats();
  result.responses = responses.size();
  result.final_tick = final_tick;
  for (int s = 0; s < service.shards(); ++s) {
    if (service.shard_state(s) == runtime::BreakerState::Open) {
      ++result.shards_open;
    }
  }
  result.acked = service.acked_fingerprints();

  std::vector<std::uint64_t> admitted_latency;
  std::unordered_map<int, std::vector<core::PrefetchPlan>> last_good;
  std::uint64_t degraded = 0;
  for (const PlanResponse& response : responses) {
    result.digest = chain_crc(result.digest, render_response(response));
    if (response.deadline_missed && !response.degraded()) {
      result.no_stale_fresh = false;
    }
    switch (response.kind) {
      case AnswerKind::Fresh:
      case AnswerKind::CacheHit:
        admitted_latency.push_back(response.latency_ticks);
        last_good[response.core] = response.plans;
        break;
      case AnswerKind::LastKnownGood:
        ++degraded;
        // A LKG answer must be exactly this core's previous good answer.
        if (response.cause == DegradeCause::None ||
            last_good.find(response.core) == last_good.end() ||
            !plans_equal(response.plans, last_good[response.core])) {
          result.degraded_safe = false;
        }
        break;
      case AnswerKind::NoPrefetch:
        ++degraded;
        // No-prefetch is the empty (guaranteed-safe) plan set, by definition.
        if (response.cause == DegradeCause::None || !response.plans.empty()) {
          result.degraded_safe = false;
        }
        break;
    }
  }

  result.queue_bounded =
      result.stats.max_queue_depth <= options.queue_capacity;
  if (result.stats.stale_fresh_violations > 0) result.no_stale_fresh = false;

  if (!admitted_latency.empty()) {
    std::sort(admitted_latency.begin(), admitted_latency.end());
    const std::size_t n = admitted_latency.size();
    result.p50_admitted = static_cast<double>(admitted_latency[n / 2]);
    result.p99_admitted =
        static_cast<double>(admitted_latency[std::min(n - 1, n * 99 / 100)]);
  }
  const double submitted =
      std::max<double>(static_cast<double>(result.stats.submitted), 1.0);
  result.shed_rate =
      static_cast<double>(result.stats.shed_queue_full +
                          result.stats.shed_infeasible +
                          result.stats.shard_down +
                          result.stats.cache_faults) /
      submitted;
  result.deadline_miss_rate =
      static_cast<double>(result.stats.deadline_missed) / submitted;
  result.hit_rate =
      static_cast<double>(result.stats.cache_hits) / submitted;
  result.degraded_rate = static_cast<double>(degraded) / submitted;
  return result;
}

std::string ServeCrashReport::to_string() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "trials=%d (torn=%d tmp=%d) acked=%" PRIu64 " recovered=%" PRIu64
      " quarantined=%" PRIu64 " lost=%" PRIu64 " alien=%" PRIu64
      " recovery_failures=%" PRIu64 " append_failures=%" PRIu64 " -> %s",
      trials, torn_trials, tmp_trials, acked_total, recovered_total,
      quarantined, lost_acked, alien_entries, recovery_failures,
      append_failures, ok() ? "OK" : "FAIL");
  return buf;
}

ServeCrashReport serve_crash_check(std::uint64_t seed, int trials,
                                   const std::string& scratch_dir) {
  ServeCrashReport report;
  ensure_dir(scratch_dir);

  const std::vector<Family> families = make_families(2, 24);
  const AdvisoryService::Solver solver = make_synthetic_solver(families);

  for (int trial = 0; trial < trials; ++trial) {
    ++report.trials;
    const std::string dir =
        scratch_dir + "/trial-" + std::to_string(trial);
    ensure_dir(dir);

    TrafficConfig traffic;
    traffic.cores = 8;
    traffic.ticks = 128;
    traffic.request_rate = 0.25;
    traffic.hot_fraction = 0.25;
    traffic.hot_families = 2;
    traffic.cold_families = 24;
    traffic.seed = workloads::mix64(seed + 0x9E37 * trial + 1);

    ServiceOptions options;
    options.shards = 2;
    options.cache.capacity = 64;  // no eviction: acked entries stay resident
    options.queue_capacity = 128;
    options.solve_slots = 4;
    options.solve_cost_ticks = 4;
    options.deadline_ticks = 512;
    options.journal_dir = dir;
    options.seed = workloads::mix64(seed + 0xC0DE * trial + 7);

    ServeRunResult run = run_serve_sim(traffic, options, solver, nullptr);
    // Dedup by fingerprint: two concurrent misses of the same family both
    // solve and both ack (the journal holds both records; the loader's
    // signature match collapses them), so unique identities are the
    // comparable ground truth.
    std::unordered_set<std::uint64_t> acked(run.acked.begin(),
                                            run.acked.end());
    report.acked_total += acked.size();

    // Crash. The service's writes are append + fsync, so the only torn
    // state a real crash leaves is (a) a partial final record — an append
    // that never returned, hence never acked — or (b) a stray checkpoint
    // temp file. Inflict one of each shape on shard 0, alternating.
    const std::string victim = dir + "/shard-0.journal";
    const bool torn = trial % 2 == 0;
    if (torn) {
      ++report.torn_trials;
      runtime::PlanCache::Entry in_flight;
      in_flight.signature = {{9999, 1.0}};
      in_flight.plans = {{9999, 64, workloads::PrefetchHint::T0}};
      const std::string record =
          runtime::PlanCache::journal_record(in_flight);
      Expected<std::string> old = support::read_file(victim);
      if (old.has_value()) {
        // Half the record: the bytes a crash mid-write leaves behind.
        std::string text = old.value();
        text.append(record.substr(0, record.size() / 2));
        std::FILE* f = std::fopen(victim.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(text.data(), 1, text.size(), f);
          std::fclose(f);
        }
      }
    } else {
      ++report.tmp_trials;
      std::FILE* f = std::fopen((victim + ".tmp").c_str(), "wb");
      if (f != nullptr) {
        std::fputs("{\"torn\": \"checkpoint\"", f);
        std::fclose(f);
      }
    }

    // Restart: recover every shard (load + quarantine + compact, the
    // ShardJournal::recover path), audit acked-vs-recovered.
    std::unordered_set<std::uint64_t> recovered;
    for (int s = 0; s < options.shards; ++s) {
      const std::string path =
          dir + "/shard-" + std::to_string(s) + ".journal";
      ShardJournal journal;
      Expected<runtime::PlanCache::LoadReport> loaded =
          journal.recover(path, options.cache);
      if (!loaded.has_value()) {
        ++report.recovery_failures;
        continue;
      }
      report.quarantined += loaded.value().quarantined;
      for (const runtime::PlanCache::Entry& entry :
           loaded.value().cache.entries()) {
        const std::uint64_t fp = signature_fingerprint(entry.signature);
        recovered.insert(fp);
        if (acked.find(fp) == acked.end()) ++report.alien_entries;
      }

      // The recovered journal must accept new appends (the restarted
      // service keeps acking), and the appended entry must itself recover.
      runtime::PlanCache::Entry post_crash;
      post_crash.signature = {{static_cast<Pc>(7000 + s), 1.0}};
      post_crash.plans = {
          {static_cast<Pc>(7000 + s), 128, workloads::PrefetchHint::T0}};
      if (!journal.append(post_crash).ok()) {
        ++report.append_failures;
        continue;
      }
      Expected<runtime::PlanCache::LoadReport> reloaded =
          runtime::PlanCache::load_file(path, options.cache);
      if (!reloaded.has_value() ||
          reloaded.value().cache.size() != loaded.value().cache.size() + 1) {
        ++report.append_failures;
      }
    }
    report.recovered_total += recovered.size();
    for (const std::uint64_t fp : acked) {
      if (recovered.find(fp) == recovered.end()) ++report.lost_acked;
    }
  }
  return report;
}

}  // namespace re::serve
