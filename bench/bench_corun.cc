// Co-run interference acceptance gate (shared-LLC composition).
//
// The paper's motivating multicore pathology: a pointer-chase victim
// sharing the LLC with streaming co-runners whose speculative hardware
// prefetcher (stream + adjacent-line) overfetches. The composed co-run
// model (analysis::CoRunModel over solo StatStack profiles) must *predict*
// the victim's degradation before any interleaved run, and the exact
// shared-LRU oracle (verify::ExactSharedLruModel) must confirm both the
// prediction and the model's accuracy.
//
// Gates (enforced in smoke mode too — the experiment is already small):
//   1. prediction: with hardware prefetching on the aggressors, the
//      composed model predicts a higher victim shared-LLC miss ratio and
//      no larger capacity share, on both machine models,
//   2. confirmation: the exact interleaved-LRU oracle agrees the victim's
//      miss ratio rose,
//   3. accuracy: composed-vs-exact victim error stays under the documented
//      interference bound at every cell, and the streaming-vs-chase
//      scenario's full differential stays inside its per-family bounds
//      with the integer miss-attribution identity intact,
//   4. determinism: the co-run graph's serialized plans and effective
//      shares are byte-identical at 1 and 8 executor workers.
//
// Exits non-zero on any violation — CI gate, same contract as
// bench_chaos_recovery. Writes BENCH_corun.json.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/corun.hh"
#include "bench_common.hh"
#include "engine/executor.hh"
#include "engine/pipeline.hh"
#include "support/text_table.hh"
#include "verify/differential.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/mix.hh"
#include "workloads/program.hh"

namespace {

using namespace re;

constexpr std::uint64_t kSeed = 42;

/// Composed-vs-exact victim error bound for the interference experiment.
/// Observed errors sit under 0.6 % across machines and core counts
/// (DESIGN.md §13); 2 % absolute leaves slack without hiding regressions.
constexpr double kInterferenceErrorBound = 0.02;

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("VIOLATION: %s\n", what);
    ++violations;
  }
}

/// Serialize everything the co-run graph decides for one scenario: the
/// per-core optimization plans plus the composed effective shares. Two
/// runs at different worker counts must produce identical bytes.
std::string corun_decisions(const std::vector<workloads::Program>& programs,
                            const sim::MachineConfig& machine, int jobs,
                            std::uint64_t max_refs) {
  analysis::CoRunArtifacts artifacts;
  artifacts.programs = &programs;
  artifacts.machine = &machine;
  artifacts.max_refs_per_core = max_refs;
  const engine::Executor executor(jobs);
  engine::EngineContext ctx;
  ctx.executor = &executor;
  analysis::run_corun(artifacts, ctx);

  std::string out;
  for (std::size_t i = 0; i < artifacts.reports.size(); ++i) {
    out += "core " + std::to_string(i) + " share " +
           std::to_string(artifacts.effective_llc_lines[i]) + "\n";
    out += engine::serialize_report(artifacts.reports[i]);
  }
  return out;
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  bench::print_header(
      "Co-run interference: prefetch-induced victim degradation, predicted",
      "Composed shared-LLC model vs exact interleaved-LRU oracle; chase "
      "victim vs sparse streaming aggressors, hw prefetch off/on");
  if (smoke) std::printf("[smoke mode: 2-core cells only]\n\n");

  bench::JsonReport report("corun");
  report.set("seed", kSeed);
  const std::uint64_t max_refs =
      smoke ? (std::uint64_t{1} << 14) : (std::uint64_t{1} << 16);
  const std::vector<int> core_counts = smoke ? std::vector<int>{2}
                                             : std::vector<int>{2, 4};
  const std::vector<sim::MachineConfig> machines =
      smoke ? std::vector<sim::MachineConfig>{sim::amd_phenom_ii()}
            : std::vector<sim::MachineConfig>{sim::amd_phenom_ii(),
                                              sim::intel_sandybridge()};

  // Gates 1-3a: the interference matrix.
  TextTable table({"machine", "cores", "mr off", "mr on", "exact off",
                   "exact on", "share off", "share on", "max err"});
  double worst_error = 0.0;
  double headline_degradation = 0.0;
  for (const sim::MachineConfig& machine : machines) {
    for (const int cores : core_counts) {
      const verify::CoRunInterference r =
          verify::run_corun_interference(machine, cores, kSeed, max_refs);
      check(r.predicted(),
            "composed model predicts victim degradation under prefetch");
      check(r.confirmed(), "exact shared-LRU oracle confirms degradation");
      check(r.max_composed_error <= kInterferenceErrorBound,
            "composed victim miss ratio tracks the exact oracle");
      worst_error = std::max(worst_error, r.max_composed_error);
      if (headline_degradation == 0.0) {
        headline_degradation = r.victim_mr_on - r.victim_mr_off;
      }
      char err[32];
      std::snprintf(err, sizeof err, "%.4f", r.max_composed_error);
      auto pct = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * v);
        return std::string(buf);
      };
      table.add_row({machine.name, std::to_string(cores),
                     pct(r.victim_mr_off), pct(r.victim_mr_on),
                     pct(r.exact_mr_off), pct(r.exact_mr_on),
                     std::to_string(r.share_off), std::to_string(r.share_on),
                     err});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Gate 3b: the streaming-vs-chase differential inside its family bounds.
  verify::CoRunDifferentialOptions options;
  options.max_refs_per_core = max_refs;
  const std::vector<verify::CoRunScenario> scenarios =
      verify::corun_scenarios(core_counts.back());
  double differential_error = 0.0;
  for (const verify::CoRunScenario& scenario : scenarios) {
    if (scenario.name != "streaming_vs_chase") continue;
    const verify::CoRunDifferentialResult diff = verify::run_corun_differential(
        scenario, machines.front(), kSeed, options);
    check(diff.attribution_exact,
          "per-core attributed misses sum exactly to the shared total");
    for (std::size_t core = 0; core < diff.per_core.size(); ++core) {
      const double bound = verify::corun_family_error_bound(
          scenario.families[core % scenario.families.size()],
          core_counts.back());
      check(diff.per_core[core].max_error() <= bound,
            "streaming_vs_chase differential within per-family bound");
    }
    differential_error = diff.max_error();
    std::printf("\nstreaming_vs_chase differential (%d cores): max err %.4f, "
                "attribution %s\n",
                core_counts.back(), diff.max_error(),
                diff.attribution_exact ? "exact" : "BROKEN");
  }

  // Gate 4: worker-count determinism of the full co-run graph.
  std::vector<workloads::Program> programs;
  for (int core = 0; core < core_counts.back(); ++core) {
    const verify::TraceFamily family = core % 2 == 0
                                           ? verify::TraceFamily::kPointerChase
                                           : verify::TraceFamily::kStrided;
    verify::FuzzedTrace fuzzed = verify::make_trace(family, kSeed, core);
    workloads::rebase_program(fuzzed.program,
                              workloads::core_address_offset(core));
    programs.push_back(std::move(fuzzed.program));
  }
  const std::string serial =
      corun_decisions(programs, machines.front(), 1, max_refs);
  const std::string parallel =
      corun_decisions(programs, machines.front(), 8, max_refs);
  check(serial == parallel,
        "co-run plans byte-identical at 1 and 8 executor workers");
  std::printf("determinism: %zu plan bytes, jobs 1 vs 8 %s\n", serial.size(),
              serial == parallel ? "identical" : "DIFFER");

  report.set("victim_degradation", headline_degradation);
  report.set("worst_composed_error", worst_error);
  report.set("differential_max_error", differential_error);
  report.set("plan_bytes", static_cast<std::uint64_t>(serial.size()));
  report.set("violations", static_cast<std::uint64_t>(violations));
  report.write();

  if (violations != 0) {
    std::printf("\nbench_corun: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("\nbench_corun: all gates hold\n");
  return 0;
}
