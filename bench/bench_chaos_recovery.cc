// Chaos recovery acceptance gate (supervised runtime).
//
// Replays seeded fault schedules — sampling-window drops, clock skew,
// governor signal loss, mid-run profile corruption — through the
// per-core failure domains of runtime::Supervisor while a multi-core mix
// runs on a shared memory system, and checks that the recovery machinery
// (watchdog, LKG rollback, exponential backoff, half-open probes, circuit
// breaker) preserves the paper's never-hurts contract under fire.
//
// Three runs per fault rate: an unmanaged no-prefetch baseline, a clean
// supervised run (no faults) and the chaotic supervised run. Gates
// (skipped under RE_BENCH_SMOKE, where runs are too short):
//   1. never-hurts: no app in the chaotic run loses more than 1 % against
//      the no-prefetch baseline, at any fault rate in the 0-50 % sweep,
//   2. bounded recovery: every domain that recovered did so within 64
//      windows of its last trip,
//   3. no domain's circuit opens permanently at these fault rates,
//   4. a zero-fault schedule causes zero trips (the watchdog and health
//      checks have no false positives),
//   5. faults actually exercise the machinery (trips > 0 at rates >= 10 %),
//   6. the crash-consistent plan-cache journal quarantines corruption and
//      survives torn writes (kill-and-restart of the cache file).
//
// Exits non-zero on any violation — CI gate, same contract as
// bench_online_adaptation.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "runtime/chaos.hh"
#include "runtime/supervisor.hh"
#include "support/text_table.hh"
#include "workloads/program.hh"

namespace {

using namespace re;

constexpr std::uint64_t kSeed = 42;

/// Per-core stream + hot-buffer mix in disjoint address spaces: enough
/// locality structure for the adaptive pipeline to chew on, small enough
/// that a 3-run sweep over four fault rates stays quick.
workloads::Program chaos_mix_program(std::uint64_t core,
                                     std::uint64_t iterations) {
  using workloads::HotBufferPattern;
  using workloads::Loop;
  using workloads::StaticInst;
  using workloads::StreamPattern;

  workloads::Program p;
  p.name = "chaos-app-" + std::to_string(core);
  p.seed = kSeed + core;
  StaticInst a, b;
  a.pc = 1;
  a.pattern = StreamPattern{core << 36, 64, 4 << 20};
  b.pc = 2;
  b.pattern = HotBufferPattern{(core + 8) << 36, 64, 16 << 10};
  p.loops.push_back(Loop{{a, b}, iterations});
  p.outer_reps = 2;
  return p;
}

runtime::SupervisorOptions supervisor_options() {
  runtime::SupervisorOptions opts;
  opts.adaptive.window_refs = 1024;
  opts.adaptive.sampler = core::SamplerConfig{50, 42};
  opts.adaptive.phases.hysteresis_windows = 1;
  opts.adaptive.min_reoptimize_refs = 8192;
  opts.heartbeat_grace_windows = 4;
  opts.backoff_base_windows = 2;
  opts.half_open_probe_windows = 2;
  // Back-to-back episodes chain trips before a probe completes; the budget
  // is sized to the densest (50 %) schedule in the sweep.
  opts.max_trips = 8;
  opts.seed = kSeed;
  return opts;
}

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("VIOLATION: %s\n", what);
    ++violations;
  }
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  const bool enforce = !smoke;
  bench::print_header(
      "Chaos recovery: per-core failure domains under seeded fault schedules",
      "Supervised adaptive runtime vs no-prefetch baseline across a 0-50 % "
      "fault-rate sweep (AMD config)");
  if (smoke) std::printf("[smoke mode: tiny runs, gates not enforced]\n\n");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  bench::JsonReport report("chaos_recovery");
  report.set("seed", kSeed);

  const int cores = smoke ? 2 : 4;
  const std::uint64_t iterations = smoke ? 8192 : 32768;
  std::vector<workloads::Program> storage;
  storage.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    storage.push_back(
        chaos_mix_program(static_cast<std::uint64_t>(c), iterations));
  }
  std::vector<const workloads::Program*> programs;
  for (const workloads::Program& p : storage) programs.push_back(&p);

  const runtime::SupervisorOptions sopts = supervisor_options();
  const std::vector<double> rates = {0.0, 0.1, 0.25, 0.5};

  TextTable table({"fault rate", "episodes", "trips", "rollbacks",
                   "recoveries", "opens", "worst rec (win)", "vs no-pf"});
  std::uint64_t trips_at_low_rates = 0;
  for (const double rate : rates) {
    runtime::ChaosConfig config;
    config.fault_rate = rate;
    config.horizon_refs = storage[0].total_references();
    config.mean_episode_refs = 8192;
    config.cores = cores;
    config.seed = kSeed;

    const runtime::ChaosRunResult result =
        runtime::run_chaos_mix(machine, programs, false, config, sopts);

    int opens = 0;
    std::uint64_t rollbacks = 0, recoveries = 0;
    for (const runtime::DomainStats& d : result.domains) {
      if (d.state == runtime::DomainState::Open) ++opens;
      rollbacks += d.rollbacks;
      recoveries += d.recoveries;
    }
    if (rate > 0.0) trips_at_low_rates += result.total_trips;

    table.add_row({format_percent(rate, 0),
                   std::to_string(result.schedule.episodes().size()),
                   std::to_string(result.total_trips),
                   std::to_string(rollbacks), std::to_string(recoveries),
                   std::to_string(opens),
                   std::to_string(result.worst_recovery_windows),
                   format_double(result.worst_vs_baseline, 4)});

    const std::string tag =
        "rate_" + std::to_string(static_cast<int>(rate * 100.0));
    report.set(tag + "_worst_vs_baseline", result.worst_vs_baseline);
    report.set(tag + "_trips",
               static_cast<std::uint64_t>(result.total_trips));
    report.set(tag + "_recovery_windows", result.worst_recovery_windows);

    if (enforce) {
      check(result.worst_vs_baseline <= 1.01,
            "chaotic run lost more than 1 % to the no-prefetch baseline");
      check(result.worst_recovery_windows <= 64,
            "a domain needed more than 64 windows to recover");
      check(opens == 0, "a domain's circuit opened permanently");
      if (rate == 0.0) {
        check(result.total_trips == 0,
              "zero-fault schedule tripped a domain (false positive)");
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(chaos seed %llu; worst rec = windows from last trip to "
              "re-arm)\n\n",
              static_cast<unsigned long long>(kSeed));
  if (enforce) {
    check(trips_at_low_rates > 0,
          "fault sweep never tripped a domain (chaos harness inert)");
  }

  // Crash consistency of the plan-cache journal: corruption past the header
  // is quarantined entry by entry, and a kill mid-save leaves the previous
  // snapshot fully loadable.
  const runtime::CacheCrashReport crash = runtime::chaos_cache_crash_check(
      kSeed, smoke ? 8 : 64, "BENCH_chaos_recovery_cache.json");
  std::printf("%s\n\n", crash.to_string().c_str());
  report.set("crash_trials", static_cast<std::uint64_t>(crash.trials));
  report.set("crash_failed_loads",
             static_cast<std::uint64_t>(crash.failed_loads));
  report.set("crash_entries_recovered",
             static_cast<std::uint64_t>(crash.entries_recovered));
  if (enforce) {
    check(crash.failed_loads == 0,
          "body corruption made a plan-cache load fail outright");
    check(crash.accounting_errors == 0,
          "a quarantined load lost track of an entry");
    check(crash.survives_torn_write,
          "a torn cache write destroyed the previous snapshot");
  }

  report.write();

  if (violations > 0) {
    std::printf("FAILED: %d chaos-recovery invariant violation(s) "
                "(reproduce with seed %llu)\n",
                violations, static_cast<unsigned long long>(kSeed));
    return 1;
  }
  std::printf("All chaos-recovery invariants hold.\n");
  return 0;
}
