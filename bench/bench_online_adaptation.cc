// Online adaptation acceptance gate (runtime subsystem).
//
// Compares five ways of running a phase-alternating workload whose hot PC
// changes behaviour between phases (streaming with one stride in phase A,
// L1-resident with another in phase B). The merged profile sees a bimodal
// stride for that PC and the stride-dominance gate rejects it, so the
// offline static plan forfeits the streaming phase; phase-aware profiles
// recover it:
//
//   baseline      no prefetching
//   static        offline merged plan (optimize_program), baked in
//   oracle        per-phase plans switched by a ScheduledPlanAgent that
//                 knows the segment boundaries from an offline phase profile
//   online cold   AdaptiveController starting with an empty plan cache
//   online warm   AdaptiveController warm-started from the cold run's plan
//                 cache via the JSON snapshot (save -> load round trip)
//
// Gates (skipped under RE_BENCH_SMOKE, where runs are too short to be
// meaningful):
//   1. warm online IPC within 2 % of the per-phase oracle,
//   2. warm online beats the static merged plan outright,
//   3. the plan cache actually serves hot swaps (hits on the warm run),
//   4. a stable single-phase workload (milc) loses < 1 % vs static,
//   5. the bandwidth governor engages on a saturated 4-core streaming mix
//      without costing > 2 % vs the static mix.
//
// Exits non-zero on any violation — CI gate, same contract as
// bench_robustness_faults.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/phases.hh"
#include "core/pipeline.hh"
#include "runtime/adaptive_controller.hh"
#include "runtime/plan_cache.hh"
#include "runtime/scheduled_agent.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

namespace {

using namespace re;

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * KB;

/// Two alternating phases sharing pc 1 with conflicting behaviour. In the
/// streaming phase pc 1 walks an 8 MB array with a 64-byte stride (every
/// access a cold miss -> prefetch pays off); in the hot phase the same pc
/// cycles a 16 kB L1-resident buffer with a 16-byte stride. The merged
/// profile therefore sees pc 1 with a bimodal stride (50/50 between 64 and
/// 16), which fails the stride-dominance gate: the offline static plan
/// cannot prefetch pc 1 at all and forfeits the streaming phase. Per-phase
/// profiles — offline segments for the oracle, online windowed sub-profiles
/// for the controller — each see a clean dominant stride and recover it.
workloads::Program phase_alternating_program(std::uint64_t iterations,
                                             std::uint64_t reps) {
  using workloads::HotBufferPattern;
  using workloads::Loop;
  using workloads::StaticInst;
  using workloads::StreamPattern;

  workloads::Program p;
  p.name = "phasetick";
  p.seed = 17;

  StaticInst a1, a2;
  a1.pc = 1;
  a1.pattern = StreamPattern{0, 64, 8 * MB};
  a1.compute_cycles = 14;
  a2.pc = 2;
  a2.pattern = StreamPattern{1ULL << 32, 8, 4 * MB};
  a2.compute_cycles = 14;
  p.loops.push_back(Loop{{a1, a2}, iterations});

  StaticInst b1;
  b1.pc = 1;  // same pc, different stride and locality
  b1.pattern = HotBufferPattern{2ULL << 32, 16, 16 * KB};
  b1.compute_cycles = 2;
  p.loops.push_back(Loop{{b1}, iterations});

  p.outer_reps = reps;
  return p;
}

double ipc(const sim::RunResult& r) {
  if (r.apps.empty() || r.apps[0].cycles == 0) return 0.0;
  return static_cast<double>(r.apps[0].references) /
         static_cast<double>(r.apps[0].cycles);
}

runtime::AdaptiveOptions adaptive_options() {
  runtime::AdaptiveOptions opts;
  // Small windows so switch lag (>= 1 window per phase change by
  // construction: the detector needs one full window of the new phase) is a
  // fraction of a percent of the run. Fingerprints use exact per-PC counts,
  // so tiny windows stay sharp; only re-optimization needs samples, and
  // those accumulate across windows up to min_reoptimize_refs.
  opts.window_refs = 1024;
  opts.sampler = core::SamplerConfig{50, 42};
  opts.phases.hysteresis_windows = 1;
  opts.min_reoptimize_refs = 16384;
  return opts;
}

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("VIOLATION: %s\n", what);
    ++violations;
  }
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  const bool enforce = !smoke;
  bench::print_header(
      "Online adaptation: windowed sampling + plan cache + governor",
      "Adaptive controller vs offline static plan vs per-phase oracle "
      "(AMD config)");
  if (smoke) std::printf("[smoke mode: tiny runs, gates not enforced]\n\n");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  bench::JsonReport report("online_adaptation");
  report.set("seed", std::uint64_t{17});  // the workload generator seed

  // ---------------------------------------------------------------- phase
  // alternation scenario
  const std::uint64_t iters = smoke ? 16384 : 131072;
  const std::uint64_t reps = smoke ? 2 : 4;
  const workloads::Program program = phase_alternating_program(iters, reps);

  const sim::RunResult base = sim::run_single(machine, program, false);

  const core::OptimizationReport merged =
      core::optimize_program(program, machine);
  const sim::RunResult stat =
      sim::run_single(machine, merged.optimized, false);

  const core::PhasedOptimizationReport phased =
      core::phase_aware_optimize(program, machine);
  runtime::ScheduledPlanAgent oracle_agent(phased.phases.segments,
                                           phased.per_phase_plans);
  const sim::RunResult oracle =
      sim::run_single_adaptive(machine, program, false, oracle_agent);

  const runtime::AdaptiveOptions aopts = adaptive_options();
  runtime::AdaptiveController cold_ctl(program, machine, aopts);
  const sim::RunResult cold =
      sim::run_single_adaptive(machine, program, false, cold_ctl);
  const runtime::AdaptiveStats cold_stats = cold_ctl.stats();

  // Warm start: JSON round trip through the snapshot format, exactly what
  // `repf adapt --save-cache / --load-cache` does between runs.
  const std::string snapshot = cold_ctl.plan_cache().to_json();
  runtime::AdaptiveController warm_ctl(program, machine, aopts);
  auto loaded = runtime::PlanCache::from_json(snapshot, aopts.cache);
  check(loaded.has_value(), "plan-cache JSON snapshot failed to reload");
  if (loaded.has_value()) {
    warm_ctl.plan_cache() = std::move(loaded.value());
  }
  const sim::RunResult warm =
      sim::run_single_adaptive(machine, program, false, warm_ctl);
  const runtime::AdaptiveStats warm_stats = warm_ctl.stats();

  TextTable table({"configuration", "cycles", "IPC", "vs oracle"});
  const double oracle_cycles = static_cast<double>(oracle.apps[0].cycles);
  const auto row = [&](const char* name, const sim::RunResult& r) {
    table.add_row({name, std::to_string(r.apps[0].cycles),
                   format_double(ipc(r), 4),
                   format_percent(static_cast<double>(r.apps[0].cycles) /
                                      oracle_cycles -
                                  1.0)});
  };
  row("baseline (no pf)", base);
  row("static merged", stat);
  row("per-phase oracle", oracle);
  row("online cold", cold);
  row("online warm", warm);
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "cold: windows=%llu phases=%d switches=%llu reopt=%llu (refine=%llu) "
      "hot_swaps=%llu cache_hit_rate=%.2f\n",
      static_cast<unsigned long long>(cold_stats.windows), cold_stats.phases,
      static_cast<unsigned long long>(cold_stats.phase_switches),
      static_cast<unsigned long long>(cold_stats.reoptimizations),
      static_cast<unsigned long long>(cold_stats.refinements),
      static_cast<unsigned long long>(cold_stats.hot_swaps),
      cold_stats.cache.hit_rate());
  std::printf(
      "warm: windows=%llu phases=%d reopt=%llu hot_swaps=%llu "
      "cache_hit_rate=%.2f governor_peak_util=%.2f\n\n",
      static_cast<unsigned long long>(warm_stats.windows), warm_stats.phases,
      static_cast<unsigned long long>(warm_stats.reoptimizations),
      static_cast<unsigned long long>(warm_stats.hot_swaps),
      warm_stats.cache.hit_rate(), warm_stats.governor.peak_utilization);

  report.set("alt_baseline_ipc", ipc(base));
  report.set("alt_static_ipc", ipc(stat));
  report.set("alt_oracle_ipc", ipc(oracle));
  report.set("alt_online_cold_ipc", ipc(cold));
  report.set("alt_online_warm_ipc", ipc(warm));
  report.set("alt_cold_reoptimizations", cold_stats.reoptimizations);
  report.set("alt_cold_refinements", cold_stats.refinements);
  report.set("alt_cold_hot_swaps", cold_stats.hot_swaps);
  report.set("alt_warm_hot_swaps", warm_stats.hot_swaps);
  report.set("alt_warm_cache_hit_rate", warm_stats.cache.hit_rate());

  if (enforce) {
    check(ipc(warm) >= 0.98 * ipc(oracle),
          "warm online IPC not within 2 % of the per-phase oracle");
    check(ipc(warm) > ipc(stat),
          "warm online does not beat the static merged plan");
    check(cold_stats.phases >= 2, "cold run detected fewer than 2 phases");
    check(cold_stats.reoptimizations >= 2,
          "cold run re-optimized fewer than 2 phases");
    check(cold_stats.hot_swaps >= 1,
          "cold run never hot-swapped from the plan cache on a revisit");
    check(warm_stats.cache.hits >= 2,
          "warm run did not hit the preloaded plan cache");
  }

  // ---------------------------------------------------------------- stable
  // single-phase scenario: adaptation must not tax a workload with nothing
  // to adapt to.
  if (!smoke) {
    const workloads::Program milc = workloads::make_benchmark("milc");
    const core::OptimizationReport milc_merged =
        core::optimize_program(milc, machine);
    const sim::RunResult milc_static =
        sim::run_single(machine, milc_merged.optimized, false);

    runtime::AdaptiveController milc_cold(milc, machine, aopts);
    const sim::RunResult milc_cold_run =
        sim::run_single_adaptive(machine, milc, false, milc_cold);

    runtime::AdaptiveController milc_warm(milc, machine, aopts);
    auto milc_loaded = runtime::PlanCache::from_json(
        milc_cold.plan_cache().to_json(), aopts.cache);
    check(milc_loaded.has_value(), "milc plan-cache snapshot failed to reload");
    if (milc_loaded.has_value()) {
      milc_warm.plan_cache() = std::move(milc_loaded.value());
    }
    const sim::RunResult milc_warm_run =
        sim::run_single_adaptive(machine, milc, false, milc_warm);

    const double ratio = static_cast<double>(milc_warm_run.apps[0].cycles) /
                         static_cast<double>(milc_static.apps[0].cycles);
    std::printf(
        "stable workload (milc): static %llu cy, online cold %llu cy, "
        "online warm %llu cy (warm/static = %.4f, phases=%d)\n\n",
        static_cast<unsigned long long>(milc_static.apps[0].cycles),
        static_cast<unsigned long long>(milc_cold_run.apps[0].cycles),
        static_cast<unsigned long long>(milc_warm_run.apps[0].cycles), ratio,
        milc_warm.stats().phases);

    report.set("milc_static_ipc", ipc(milc_static));
    report.set("milc_online_cold_ipc", ipc(milc_cold_run));
    report.set("milc_online_warm_ipc", ipc(milc_warm_run));
    report.set("milc_warm_vs_static", ratio);

    check(ratio <= 1.01,
          "warm online regresses the stable workload by more than 1 %");
  }

  // ---------------------------------------------------------------- mix
  // scenario: saturated shared channel, the governor must engage.
  if (!smoke) {
    const workloads::Program lbm = workloads::make_benchmark("lbm");
    const core::OptimizationReport lbm_merged =
        core::optimize_program(lbm, machine);
    const std::vector<const workloads::Program*> static_mix(
        4, &lbm_merged.optimized);
    const sim::RunResult mix_static =
        sim::run_mix(machine, static_mix, false);

    std::vector<std::unique_ptr<runtime::AdaptiveController>> controllers;
    std::vector<sim::CoreAgent*> agents;
    const std::vector<const workloads::Program*> base_mix(4, &lbm);
    for (int i = 0; i < 4; ++i) {
      controllers.push_back(
          std::make_unique<runtime::AdaptiveController>(lbm, machine, aopts));
      agents.push_back(controllers.back().get());
    }
    const sim::RunResult mix_adaptive =
        sim::run_mix_adaptive(machine, base_mix, false, agents);

    std::uint64_t governed_windows = 0;
    double peak_util = 0.0;
    for (const auto& c : controllers) {
      const runtime::GovernorStats& g = c->stats().governor;
      governed_windows += g.demote_windows + g.suppress_windows;
      if (g.peak_utilization > peak_util) peak_util = g.peak_utilization;
    }
    const double mix_ratio =
        static_cast<double>(mix_adaptive.elapsed_cycles) /
        static_cast<double>(mix_static.elapsed_cycles);
    std::printf(
        "contended mix (4x lbm): static %llu cy @ %.1f GB/s, adaptive %llu "
        "cy @ %.1f GB/s (adaptive/static = %.4f)\n"
        "governor: %llu demoted/suppressed windows across 4 cores, peak "
        "utilization %.2f\n\n",
        static_cast<unsigned long long>(mix_static.elapsed_cycles),
        mix_static.bandwidth_gbps(),
        static_cast<unsigned long long>(mix_adaptive.elapsed_cycles),
        mix_adaptive.bandwidth_gbps(), mix_ratio,
        static_cast<unsigned long long>(governed_windows), peak_util);

    report.set("mix_static_gbps", mix_static.bandwidth_gbps());
    report.set("mix_adaptive_gbps", mix_adaptive.bandwidth_gbps());
    report.set("mix_adaptive_vs_static", mix_ratio);
    report.set("mix_governed_windows", governed_windows);
    report.set("mix_peak_utilization", peak_util);

    check(governed_windows >= 1,
          "governor never engaged on a saturated 4-core mix");
    check(mix_ratio <= 1.02,
          "adaptive mix loses more than 2 % vs the static mix");
  }

  report.write();

  if (violations > 0) {
    std::printf("FAILED: %d online-adaptation invariant violation(s)\n",
                violations);
    return 1;
  }
  std::printf("All online-adaptation invariants hold.\n");
  return 0;
}
