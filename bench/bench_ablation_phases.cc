// Ablation A5 — phase-guided vs whole-run profiling (Sembrant'12, the
// framework the paper's sampler builds on). On single-phase workloads the
// two match; on programs with alternating behaviour the per-phase analysis
// can pick different distances/hints per phase region.
#include <cstdio>

#include "bench_common.hh"
#include "core/phases.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main() {
  using namespace re;
  bench::print_header("Ablation: phase-guided profiling",
                      "Whole-run vs per-phase analysis (AMD config)");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  TextTable table({"Benchmark", "phases", "segments", "global plans",
                   "phased plans", "global speedup", "phased speedup"});
  for (const std::string& name : workloads::suite_names()) {
    const workloads::Program program = workloads::make_benchmark(name);
    const sim::RunResult base = sim::run_single(machine, program, false);

    const core::OptimizationReport global =
        core::optimize_program(program, machine);
    const core::PhasedOptimizationReport phased =
        core::phase_aware_optimize(program, machine);

    const sim::RunResult g = sim::run_single(machine, global.optimized,
                                             false);
    const sim::RunResult p =
        sim::run_single(machine, phased.merged.optimized, false);

    table.add_row(
        {name, std::to_string(phased.phases.num_phases),
         std::to_string(phased.phases.segments.size()),
         std::to_string(global.plans.size()),
         std::to_string(phased.merged.plans.size()),
         format_speedup_percent(static_cast<double>(base.apps[0].cycles) /
                                static_cast<double>(g.apps[0].cycles)),
         format_speedup_percent(static_cast<double>(base.apps[0].cycles) /
                                static_cast<double>(p.apps[0].cycles))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The suite's models alternate a long main loop with short\n"
              "workspace phases; both analyses find the same stream loads,\n"
              "so phase awareness is insurance rather than a win here — it\n"
              "matters for programs whose *prefetchable* behaviour changes\n"
              "between phases.\n");
  return 0;
}
