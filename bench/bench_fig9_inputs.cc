// Figure 9 — Speedup distribution across the mixed workloads when the apps
// run with *different inputs* than the ones used for profiling (paper
// Section VII-D). The prefetch plans are trained on the Reference inputs
// and applied unchanged to the Alternate inputs. Paper finding: the method
// stays stable — ~6 % (AMD) / ~4 % (Intel) better than hardware prefetching
// on average, while hardware prefetching varies widely and degrades ~10 %
// of the mixes.
#include <cstdio>
#include <cstdlib>

#include "analysis/mix_study.hh"
#include "bench_common.hh"
#include "support/series_chart.hh"

namespace {
int mix_count() {
  if (const char* env = std::getenv("RE_MIX_COUNT")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 180;
}
}  // namespace

int main() {
  using namespace re;
  const int count = mix_count();
  bench::print_header(
      "Figure 9: Mixed workloads with different inputs",
      "Plans profiled on Reference inputs, mixes run on Alternate inputs (" +
          std::to_string(count) + " mixes)");

  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    analysis::PlanCache cache;
    const analysis::MixStudy study = analysis::run_mix_study(
        machine, cache, count, workloads::InputSet::Alternate);

    std::printf("--- %s: weighted speedup over baseline ---\n",
                machine.name.c_str());
    std::vector<ChartSeries> speedups = {
        {"Soft Pref.+NT", study.collect(&analysis::MixOutcome::ws_nt)},
        {"Hardware Pref.", study.collect(&analysis::MixOutcome::ws_hw)}};
    for (ChartSeries& s : speedups) {
      for (double& v : s.values) v -= 1.0;
    }
    std::printf("%s\n", render_distribution(speedups).c_str());

    int nt_slow = 0, hw_slow = 0;
    for (const analysis::MixOutcome& o : study.outcomes) {
      if (o.ws_nt < 1.0) ++nt_slow;
      if (o.ws_hw < 1.0) ++hw_slow;
    }
    std::printf("summary: avg NT %+.1f%% vs HW %+.1f%% | slowdowns: NT %d, "
                "HW %d | avg traffic NT %+.1f%% vs HW %+.1f%%\n\n",
                (study.average(&analysis::MixOutcome::ws_nt) - 1.0) * 100.0,
                (study.average(&analysis::MixOutcome::ws_hw) - 1.0) * 100.0,
                nt_slow, hw_slow,
                study.average(&analysis::MixOutcome::traffic_nt) * 100.0,
                study.average(&analysis::MixOutcome::traffic_hw) * 100.0);
  }
  return 0;
}
