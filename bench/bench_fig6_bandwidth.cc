// Figure 6 — Average off-chip memory bandwidth (GB/s) consumed by the
// benchmarks under each policy. Paper finding: software prefetching with
// cache bypassing consumes ~19 % (AMD) / ~38 % (Intel) less bandwidth than
// hardware prefetching at comparable performance.
#include <cstdio>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "engine/executor.hh"
#include "support/text_table.hh"

int main() {
  using namespace re;
  bench::print_header("Figure 6: Average off-chip bandwidth (GB/s)",
                      "Single-threaded runs");

  bench::JsonReport report("fig6_bandwidth");
  report.set("seed", std::uint64_t{0});  // seedless: fully deterministic inputs
  const engine::Executor executor(bench::bench_jobs());
  analysis::PlanCache cache;
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    std::printf("--- %s ---\n", machine.name.c_str());
    TextTable table({"Benchmark", "Baseline", "Hardware Pref.",
                     "Soft Pref.+NT", "Stride-centric"});
    double sums[4] = {0, 0, 0, 0};
    int n = 0;
    for (const analysis::BenchmarkEvaluation& eval : analysis::evaluate_suite(
             machine, workloads::suite_names(), cache, &executor)) {
      const std::string& name = eval.name;
      const double base = eval.bandwidth_gbps(analysis::Policy::Baseline);
      const double hw = eval.bandwidth_gbps(analysis::Policy::Hardware);
      const double nt = eval.bandwidth_gbps(analysis::Policy::SoftwareNT);
      const double sc = eval.bandwidth_gbps(analysis::Policy::StrideCentric);
      table.add_row({name, format_gbps(base), format_gbps(hw),
                     format_gbps(nt), format_gbps(sc)});
      sums[0] += base;
      sums[1] += hw;
      sums[2] += nt;
      sums[3] += sc;
      ++n;
    }
    table.add_separator();
    table.add_row({"average", format_gbps(sums[0] / n),
                   format_gbps(sums[1] / n), format_gbps(sums[2] / n),
                   format_gbps(sums[3] / n)});
    std::printf("%s\n", table.render().c_str());
    if (sums[1] > 0.0) {
      std::printf("Soft Pref.+NT uses %.1f%% less bandwidth than hardware "
                  "prefetching on %s (paper: 19%% AMD / 38%% Intel).\n\n",
                  (1.0 - sums[2] / sums[1]) * 100.0, machine.name.c_str());
    }
    report.set(machine.name + " avg_baseline_gbps", sums[0] / n);
    report.set(machine.name + " avg_hw_gbps", sums[1] / n);
    report.set(machine.name + " avg_sw_nt_gbps", sums[2] / n);
    report.set(machine.name + " avg_stride_centric_gbps", sums[3] / n);
  }
  report.write();
  return 0;
}
