// Figure 4 — Speedup of the selected benchmarks with different prefetching
// policies, run in isolation on both machines. Baseline: original program,
// hardware prefetching off.
#include <cstdio>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "engine/executor.hh"
#include "support/series_chart.hh"
#include "support/text_table.hh"

int main() {
  using namespace re;
  bench::print_header(
      "Figure 4: Speedup with different prefetching policies",
      "Single-threaded runs; speedup relative to no-prefetching baseline");

  bench::JsonReport report("fig4_speedup");
  report.set("seed", std::uint64_t{0});  // seedless: fully deterministic inputs
  // RE_BENCH_JOBS fans the per-benchmark work out over the engine executor;
  // the output is byte-identical at any value (ordered reduction).
  const engine::Executor executor(bench::bench_jobs());
  analysis::PlanCache cache;
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    std::printf("--- %s ---\n", machine.name.c_str());
    TextTable table({"Benchmark", "Hardware Pref.", "Software Pref.",
                     "Soft Pref.+NT", "Stride-centric"});
    std::vector<ChartSeries> series = {
        {"Hardware Pref.", {}}, {"Soft Pref.+NT", {}}};
    std::vector<std::string> labels;

    double sums[4] = {0, 0, 0, 0};
    int n = 0;
    for (const analysis::BenchmarkEvaluation& eval : analysis::evaluate_suite(
             machine, workloads::suite_names(), cache, &executor)) {
      const std::string& name = eval.name;
      const double hw = eval.speedup(analysis::Policy::Hardware);
      const double sw = eval.speedup(analysis::Policy::Software);
      const double nt = eval.speedup(analysis::Policy::SoftwareNT);
      const double sc = eval.speedup(analysis::Policy::StrideCentric);
      table.add_row({name, format_speedup_percent(hw),
                     format_speedup_percent(sw), format_speedup_percent(nt),
                     format_speedup_percent(sc)});
      labels.push_back(name);
      series[0].values.push_back(hw - 1.0);
      series[1].values.push_back(nt - 1.0);
      sums[0] += hw;
      sums[1] += sw;
      sums[2] += nt;
      sums[3] += sc;
      ++n;
    }
    table.add_separator();
    table.add_row({"average", format_speedup_percent(sums[0] / n),
                   format_speedup_percent(sums[1] / n),
                   format_speedup_percent(sums[2] / n),
                   format_speedup_percent(sums[3] / n)});
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n", render_grouped_bars(labels, series).c_str());

    report.set(machine.name + " avg_hw", sums[0] / n);
    report.set(machine.name + " avg_sw", sums[1] / n);
    report.set(machine.name + " avg_sw_nt", sums[2] / n);
    report.set(machine.name + " avg_stride_centric", sums[3] / n);
  }
  report.write();
  return 0;
}
