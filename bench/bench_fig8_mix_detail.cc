// Figure 8 — Detailed look at the mix where software prefetching has the
// largest benefit over hardware prefetching on the Intel machine. The paper
// examines {cigar, gcc, lbm, libquantum}: individually all four prefer
// hardware prefetching, but together the aggressive prefetcher saturates
// the channel (13.6 GB/s achieved vs 25.3 GB/s wanted) while the software
// scheme needs less than it gets (10 GB/s) — 20 % higher mix throughput.
#include <cstdio>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "support/text_table.hh"

int main() {
  using namespace re;
  bench::print_header("Figure 8: Per-app speedup in the cigar/gcc/lbm/"
                      "libquantum mix (Intel)",
                      "The bandwidth-saturation case study");

  const sim::MachineConfig machine = sim::intel_sandybridge();
  analysis::PlanCache cache;
  const workloads::MixSpec spec{{"cigar", "gcc", "lbm", "libquantum"}};
  const analysis::MixEvaluation eval = analysis::evaluate_mix(
      machine, spec, cache, workloads::InputSet::Reference);

  TextTable table({"App", "Soft Pref.+NT", "Hardware Pref."});
  const auto base = eval.times(analysis::Policy::Baseline);
  const auto nt = eval.times(analysis::Policy::SoftwareNT);
  const auto hw = eval.times(analysis::Policy::Hardware);
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    table.add_row({spec.apps[i], format_percent(base[i] / nt[i] - 1.0),
                   format_percent(base[i] / hw[i] - 1.0)});
  }
  table.add_separator();
  table.add_row(
      {"average (weighted speedup)",
       format_speedup_percent(
           eval.weighted_speedup(analysis::Policy::SoftwareNT)),
       format_speedup_percent(
           eval.weighted_speedup(analysis::Policy::Hardware))});
  std::printf("%s\n", table.render().c_str());

  std::printf("achieved off-chip bandwidth: Soft Pref.+NT %s | "
              "Hardware Pref. %s | baseline %s\n",
              format_gbps(eval.bandwidth_gbps(analysis::Policy::SoftwareNT))
                  .c_str(),
              format_gbps(eval.bandwidth_gbps(analysis::Policy::Hardware))
                  .c_str(),
              format_gbps(eval.bandwidth_gbps(analysis::Policy::Baseline))
                  .c_str());
  std::printf("machine peak: %s\n",
              format_gbps(machine.peak_bandwidth_gbps()).c_str());
  std::printf("\nmix throughput: Soft Pref.+NT is %.1f%% over hardware "
              "prefetching (paper: 20%%)\n",
              (eval.weighted_speedup(analysis::Policy::SoftwareNT) /
                   eval.weighted_speedup(analysis::Policy::Hardware) -
               1.0) * 100.0);
  return 0;
}
