// Table I — Prefetch Coverage & Minimization.
//
// For each benchmark, compares the MDDLI-filtered prefetching against the
// stride-centric baseline: L1 miss coverage (fraction of baseline misses
// removed, measured by exact functional simulation of the machine's L1) and
// OH (prefetch instructions executed per miss removed). Paper finding: the
// MDDLI filter removes a similar share of misses while executing ~35 %
// fewer prefetch instructions.
#include <cstdio>

#include "analysis/experiments.hh"
#include "analysis/functional_sim.hh"
#include "bench_common.hh"
#include "support/text_table.hh"

int main() {
  using namespace re;
  bench::print_header("Table I: Prefetch Coverage & Minimization",
                      "MDDLI-filtered vs stride-centric prefetch insertion "
                      "(ground truth: functional L1 simulation)");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  analysis::PlanCache cache;

  TextTable table({"Benchmark", "MDDLI Cov.", "MDDLI OH", "Centric Cov.",
                   "Centric OH", "MDDLI pf", "Centric pf"});
  double sum_cov_mddli = 0.0, sum_cov_centric = 0.0;
  double sum_oh_mddli = 0.0, sum_oh_centric = 0.0;
  std::uint64_t total_pf_mddli = 0, total_pf_centric = 0;
  int n = 0;

  for (const std::string& name : workloads::suite_names()) {
    const workloads::Program original = workloads::make_benchmark(name);
    const workloads::Program mddli = cache.prepare(
        machine, name, workloads::InputSet::Reference,
        analysis::Policy::SoftwareNT);
    const workloads::Program centric = cache.prepare(
        machine, name, workloads::InputSet::Reference,
        analysis::Policy::StrideCentric);

    const analysis::CoverageResult cov_mddli =
        analysis::measure_coverage(original, mddli, machine.l1);
    const analysis::CoverageResult cov_centric =
        analysis::measure_coverage(original, centric, machine.l1);

    table.add_row({name, format_percent(cov_mddli.miss_coverage()),
                   format_double(cov_mddli.overhead(), 1),
                   format_percent(cov_centric.miss_coverage()),
                   format_double(cov_centric.overhead(), 1),
                   std::to_string(cov_mddli.prefetches_executed),
                   std::to_string(cov_centric.prefetches_executed)});

    sum_cov_mddli += cov_mddli.miss_coverage();
    sum_cov_centric += cov_centric.miss_coverage();
    sum_oh_mddli += cov_mddli.overhead();
    sum_oh_centric += cov_centric.overhead();
    total_pf_mddli += cov_mddli.prefetches_executed;
    total_pf_centric += cov_centric.prefetches_executed;
    ++n;
  }

  table.add_separator();
  table.add_row({"Average", format_percent(sum_cov_mddli / n),
                 format_double(sum_oh_mddli / n, 1),
                 format_percent(sum_cov_centric / n),
                 format_double(sum_oh_centric / n, 1),
                 std::to_string(total_pf_mddli),
                 std::to_string(total_pf_centric)});
  std::printf("%s\n", table.render().c_str());

  if (total_pf_centric > 0) {
    std::printf("MDDLI executes %.1f%% fewer prefetch instructions than "
                "stride-centric (paper: ~35%% fewer).\n",
                (1.0 - static_cast<double>(total_pf_mddli) /
                           static_cast<double>(total_pf_centric)) * 100.0);
  }

  bench::JsonReport report("table1_coverage");
  report.set("seed", std::uint64_t{0});  // seedless: fully deterministic inputs
  report.set("avg_coverage_mddli", sum_cov_mddli / n);
  report.set("avg_coverage_stride_centric", sum_cov_centric / n);
  report.set("avg_overhead_mddli", sum_oh_mddli / n);
  report.set("avg_overhead_stride_centric", sum_oh_centric / n);
  report.set("total_prefetches_mddli", total_pf_mddli);
  report.set("total_prefetches_stride_centric", total_pf_centric);
  report.write();
  return 0;
}
