// Figure 7 — Distribution functions of throughput (weighted speedup) and
// off-chip traffic increase across 180 randomly generated 4-app mixes, on
// both machines. Paper findings: Soft Pref.+NT beats hardware prefetching
// by 16 % on average on AMD (max 24 %) and ~5 % on Intel (higher throughput
// in 79 % of mixes), never hurts throughput, and reduces off-chip traffic
// in every case — below baseline in 73 % of the Intel mixes.
#include <cstdio>
#include <cstdlib>

#include "analysis/mix_study.hh"
#include "bench_common.hh"
#include "support/series_chart.hh"
#include "support/text_table.hh"

namespace {

int mix_count() {
  // Paper uses 180 mixes; RE_MIX_COUNT overrides for quick runs.
  if (const char* env = std::getenv("RE_MIX_COUNT")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 180;
}

}  // namespace

int main() {
  using namespace re;
  const int count = mix_count();
  bench::print_header(
      "Figure 7: Mixed-workload throughput and off-chip traffic",
      "Distribution across " + std::to_string(count) +
          " random 4-app mixes (sorted per series, paper style)");

  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    analysis::PlanCache cache;
    const analysis::MixStudy study = analysis::run_mix_study(
        machine, cache, count, workloads::InputSet::Reference);

    std::printf("--- %s: weighted speedup over baseline ---\n",
                machine.name.c_str());
    std::vector<ChartSeries> speedups = {
        {"Soft Pref.+NT", study.collect(&analysis::MixOutcome::ws_nt)},
        {"Hardware Pref.", study.collect(&analysis::MixOutcome::ws_hw)}};
    for (ChartSeries& s : speedups) {
      for (double& v : s.values) v -= 1.0;  // report as +x%
    }
    std::printf("%s\n", render_distribution(speedups).c_str());

    std::printf("--- %s: off-chip traffic increase ---\n",
                machine.name.c_str());
    const std::vector<ChartSeries> traffic = {
        {"Soft Pref.+NT", study.collect(&analysis::MixOutcome::traffic_nt)},
        {"Hardware Pref.", study.collect(&analysis::MixOutcome::traffic_hw)}};
    std::printf("%s\n", render_distribution(traffic).c_str());

    int nt_beats_hw = 0, hw_slowdowns = 0, nt_slowdowns = 0;
    int nt_traffic_below_base = 0, nt_less_traffic = 0;
    double max_nt_adv = 0.0;
    for (const analysis::MixOutcome& o : study.outcomes) {
      if (o.ws_nt > o.ws_hw) ++nt_beats_hw;
      if (o.ws_hw < 1.0) ++hw_slowdowns;
      if (o.ws_nt < 1.0) ++nt_slowdowns;
      if (o.traffic_nt < 0.0) ++nt_traffic_below_base;
      if (o.traffic_nt < o.traffic_hw) ++nt_less_traffic;
      max_nt_adv = std::max(max_nt_adv, o.ws_nt / o.ws_hw - 1.0);
    }
    std::printf("summary: avg speedup NT %+.1f%%, HW %+.1f%% | NT > HW in "
                "%d/%d mixes (max advantage %.1f%%)\n",
                (study.average(&analysis::MixOutcome::ws_nt) - 1.0) * 100.0,
                (study.average(&analysis::MixOutcome::ws_hw) - 1.0) * 100.0,
                nt_beats_hw, count, max_nt_adv * 100.0);
    std::printf("         HW slows %d mixes below baseline; NT slows %d\n",
                hw_slowdowns, nt_slowdowns);
    std::printf("         avg traffic NT %+.1f%%, HW %+.1f%% | NT below "
                "baseline in %d mixes, NT < HW in %d/%d\n\n",
                study.average(&analysis::MixOutcome::traffic_nt) * 100.0,
                study.average(&analysis::MixOutcome::traffic_hw) * 100.0,
                nt_traffic_below_base, nt_less_traffic, count);
  }
  return 0;
}
