// Figure 10 — Fair-Speedup (harmonic mean of per-app speedups, normalized
// to baseline), averaged over the mixed workloads: original and different
// inputs, both machines. Paper finding: FS mirrors weighted speedup — the
// resource-efficient method stays clearly ahead of hardware prefetching.
#include <cstdio>
#include <cstdlib>

#include "analysis/mix_study.hh"
#include "bench_common.hh"
#include "support/text_table.hh"

namespace {
int mix_count() {
  if (const char* env = std::getenv("RE_MIX_COUNT")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  // Averages converge well before the paper's 180 mixes; this binary
  // evaluates four full studies (2 machines x 2 input sets).
  return 60;
}
}  // namespace

int main() {
  using namespace re;
  const int count = mix_count();
  bench::print_header("Figure 10: Fair-Speedup (normalized to baseline)",
                      "Average over " + std::to_string(count) +
                          " mixes; original and different inputs");

  TextTable table({"Config", "Soft Pref.+NT", "Hardware Pref."});
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    analysis::PlanCache cache;
    for (const auto input :
         {workloads::InputSet::Reference, workloads::InputSet::Alternate}) {
      const analysis::MixStudy study =
          analysis::run_mix_study(machine, cache, count, input);
      const std::string label =
          std::string(machine.name == "AMD Phenom II" ? "AMD" : "Intel") +
          (input == workloads::InputSet::Reference ? "-avg" : " avg-diff-in");
      table.add_row({label,
                     format_double(study.average(&analysis::MixOutcome::fs_nt),
                                   3),
                     format_double(study.average(&analysis::MixOutcome::fs_hw),
                                   3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper Fig. 10: NT ~1.14-1.19 vs HW ~1.02-1.08, both "
              "machines, both input sets)\n");
  return 0;
}
