// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/config.hh"
#include "support/atomic_file.hh"
#include "support/json.hh"

namespace re::bench {

/// True when RE_BENCH_SMOKE is set: benches shrink to tiny iteration counts
/// so the CI smoke lane (tools/check.sh bench) can execute every binary
/// quickly without letting them rot.
inline bool smoke_mode() { return std::getenv("RE_BENCH_SMOKE") != nullptr; }

/// Engine worker count for benches that fan out over the deterministic
/// executor. RE_BENCH_JOBS overrides (clamped to [1, 256]); default 1 keeps
/// every bench's default output byte-identical to the serial path.
inline int bench_jobs() {
  const char* env = std::getenv("RE_BENCH_JOBS");
  if (env == nullptr) return 1;
  const long jobs = std::strtol(env, nullptr, 10);
  if (jobs < 1) return 1;
  if (jobs > 256) return 256;
  return static_cast<int>(jobs);
}

/// Machine-readable bench output: collects headline metrics and writes them
/// as `BENCH_<name>.json` in the working directory, giving the repo a
/// tracked perf trajectory alongside the human-readable tables.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double value) {
    metrics_.emplace_back(key, Metric(value));
  }
  void set(const std::string& key, std::uint64_t value) {
    metrics_.emplace_back(key, Metric(static_cast<double>(value)));
  }
  void set(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, Metric(value));
  }

  /// Write BENCH_<name>.json; prints a warning and returns false on I/O
  /// failure (benches should not fail CI over a report file). The name is
  /// sanitized for the filename (a bench name is free text and must not be
  /// able to escape the working directory or produce an unopenable path),
  /// and the write goes through the shared atomic temp-file + rename helper
  /// (support/atomic_file.hh) so a crashed or concurrent bench never leaves
  /// a truncated report behind.
  bool write() const {
    const std::string path = "BENCH_" + filename_slug(name_) + ".json";
    std::string doc = "{\"bench\": \"" + json::escape(name_) +
                      "\", \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i) doc += ", ";
      doc += '"' + json::escape(metrics_[i].first) + "\": ";
      if (std::holds_alternative<double>(metrics_[i].second)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g",
                      std::get<double>(metrics_[i].second));
        doc += buf;
      } else {
        doc += '"' + json::escape(std::get<std::string>(metrics_[i].second)) +
               '"';
      }
    }
    doc += "}}\n";
    const Status status = support::write_file_atomic(path, doc);
    if (!status.ok()) {
      std::fprintf(stderr, "warning: %s\n", status.to_string().c_str());
      return false;
    }
    return true;
  }

 private:
  /// Keep [A-Za-z0-9._-]; any other byte (separators, spaces, shell
  /// metacharacters) becomes '_'. Leading dots are also replaced so the
  /// report can never be a hidden file or a ".." path component.
  static std::string filename_slug(const std::string& name) {
    std::string slug;
    slug.reserve(name.size());
    for (char c : name) {
      const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        (c == '.' && !slug.empty());
      slug.push_back(safe ? c : '_');
    }
    return slug.empty() ? "unnamed" : slug;
  }

  using Metric = std::variant<double, std::string>;
  std::string name_;
  std::vector<std::pair<std::string, Metric>> metrics_;
};

/// Print the standard header: which paper artifact this binary regenerates
/// and the (scaled) machine configurations in Table II form.
inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", artifact.c_str(), description.c_str());
  std::printf("================================================================\n");
  for (const sim::MachineConfig& m :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    std::printf(
        "%-16s L1 %3llu kB  L2 %4llu kB  LLC %5llu kB  %.1f GHz  "
        "%.1f GB/s peak\n",
        m.name.c_str(),
        static_cast<unsigned long long>(m.l1.size_bytes >> 10),
        static_cast<unsigned long long>(m.l2.size_bytes >> 10),
        static_cast<unsigned long long>(m.llc.size_bytes >> 10),
        m.freq_ghz, m.peak_bandwidth_gbps());
  }
  std::printf("(geometries scaled from the paper's Table II; see DESIGN.md)\n\n");
}

}  // namespace re::bench
