// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "sim/config.hh"

namespace re::bench {

/// Print the standard header: which paper artifact this binary regenerates
/// and the (scaled) machine configurations in Table II form.
inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n%s\n", artifact.c_str(), description.c_str());
  std::printf("================================================================\n");
  for (const sim::MachineConfig& m :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    std::printf(
        "%-16s L1 %3llu kB  L2 %4llu kB  LLC %5llu kB  %.1f GHz  "
        "%.1f GB/s peak\n",
        m.name.c_str(),
        static_cast<unsigned long long>(m.l1.size_bytes >> 10),
        static_cast<unsigned long long>(m.l2.size_bytes >> 10),
        static_cast<unsigned long long>(m.llc.size_bytes >> 10),
        m.freq_ghz, m.peak_bandwidth_gbps());
  }
  std::printf("(geometries scaled from the paper's Table II; see DESIGN.md)\n\n");
}

}  // namespace re::bench
