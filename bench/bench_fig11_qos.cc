// Figure 11 — QoS degradation (cumulative per-app slowdown per mix,
// sum_i min(0, T_base/T_pref - 1)), averaged over the mixed workloads.
// Closer to zero is better. Paper findings: the software method degrades
// QoS far less than hardware prefetching, and its QoS *improves* when
// moving to different inputs (less optimal prefetching perturbs the mix's
// resource balance less).
#include <cstdio>
#include <cstdlib>

#include "analysis/mix_study.hh"
#include "bench_common.hh"
#include "support/text_table.hh"

namespace {
int mix_count() {
  if (const char* env = std::getenv("RE_MIX_COUNT")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 60;
}
}  // namespace

int main() {
  using namespace re;
  const int count = mix_count();
  bench::print_header("Figure 11: QoS degradation",
                      "Average over " + std::to_string(count) +
                          " mixes; original and different inputs; closer to "
                          "zero is better");

  TextTable table({"Config", "Soft Pref.+NT", "Hardware Pref."});
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    analysis::PlanCache cache;
    for (const auto input :
         {workloads::InputSet::Reference, workloads::InputSet::Alternate}) {
      const analysis::MixStudy study =
          analysis::run_mix_study(machine, cache, count, input);
      const std::string label =
          std::string(machine.name == "AMD Phenom II" ? "AMD" : "Intel") +
          (input == workloads::InputSet::Reference ? "-avg" : " avg-diff-in");
      table.add_row(
          {label,
           format_percent(study.average(&analysis::MixOutcome::qos_nt)),
           format_percent(study.average(&analysis::MixOutcome::qos_hw))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper Fig. 11: NT around -3%% to -8%%, HW around -10%% to "
              "-21%%)\n");
  return 0;
}
