// Ablation A4 — sampling rate vs model fidelity and plan stability. The
// paper samples 1 in 100,000 references of full SPEC runs; our runs are
// ~10^6 references, so the period is the knob that sets samples per static
// instruction. The model (and the resulting plans) should be stable until
// samples get scarce.
#include <cstdio>

#include "analysis/functional_sim.hh"
#include "analysis/metrics.hh"
#include "bench_common.hh"
#include "core/pipeline.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main() {
  using namespace re;
  bench::print_header("Ablation: sampling period",
                      "StatStack coverage and plan stability vs sampling "
                      "rate (AMD config)");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  for (const std::string& name :
       {std::string("libquantum"), std::string("mcf"), std::string("gcc")}) {
    const workloads::Program program = workloads::make_benchmark(name);
    const analysis::FunctionalSimResult sim_l1 =
        analysis::functional_simulate(program, machine.l1);

    std::printf("--- %s ---\n", name.c_str());
    TextTable table({"period", "reuse samples", "L1 model coverage", "plans",
                     "miss coverage"});
    for (std::uint64_t period :
         {100ull, 300ull, 1000ull, 3000ull, 10000ull, 30000ull}) {
      core::OptimizerOptions options;
      options.sampler.sample_period = period;
      const core::OptimizationReport report =
          core::optimize_program(program, machine, options);
      const core::StatStack model(report.profile);
      const double model_cov = analysis::statstack_miss_coverage(
          model, report.profile, sim_l1, machine.l1.num_lines());
      const analysis::CoverageResult cov = analysis::measure_coverage(
          program, report.optimized, machine.l1);
      table.add_row({std::to_string(period),
                     std::to_string(report.profile.reuse_samples.size()),
                     format_percent(model_cov),
                     std::to_string(report.plans.size()),
                     format_percent(cov.miss_coverage())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
