// Advisory-service overload acceptance gate (repf serve tier).
//
// Drives the long-lived plan service with seeded mixed hot/cold traffic
// from 10k simulated client cores in virtual time, sized so that cache
// misses arrive at roughly 2x the solve capacity — the overload regime the
// degradation ladder exists for. The miss path runs the real analysis
// engine (run_optimize with cooperative cancellation), fanned over the
// deterministic executor.
//
// Gates (enforced outside RE_BENCH_SMOKE):
//   1. bounded queue: the solve queue's high-water mark never exceeds its
//      configured capacity, at 2x saturation,
//   2. no stale-as-fresh: zero deadline-missed answers returned with a
//      non-degraded kind (stale_fresh_violations == 0),
//   3. degraded answers are safe: every degraded response is exactly the
//      core's last-known-good plan set or the empty no-prefetch set,
//   4. p99 admitted latency (fresh + cache hits) stays within the deadline,
//   5. overload actually sheds (shed + degraded > 0 at 2x saturation —
//      otherwise the bench is not testing what it claims),
//   6. byte-determinism: the chained response digest and headline counters
//      are identical across --jobs 1 vs --jobs 8 and across two identical
//      runs.
//
// Reports p50/p99 admitted latency, shed rate, and deadline-miss rate to
// BENCH_serve.json. Exits non-zero on any violation — CI gate, same
// contract as bench_chaos_recovery.
#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "engine/executor.hh"
#include "serve/harness.hh"
#include "serve/service.hh"
#include "sim/config.hh"
#include "support/text_table.hh"

namespace {

using namespace re;

constexpr std::uint64_t kSeed = 42;

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("VIOLATION: %s\n", what);
    ++violations;
  }
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  const bool enforce = !smoke;
  bench::print_header(
      "Advisory service under overload: 10k cores at 2x solve saturation",
      "Deadline budgets, admission control, and the degradation ladder "
      "(AMD config)");
  if (smoke) std::printf("[smoke mode: tiny runs, gates not enforced]\n\n");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  bench::JsonReport report("serve");
  report.set("seed", kSeed);

  // Sizing for ~2x saturation: solve capacity is solve_slots / solve_cost
  // = 8/48 ~ 0.17 solves/tick. With a 90 % hot mix over 4 quickly-cached
  // hot families and a 4096-family cold tail (mostly never seen twice),
  // miss arrivals ~ 0.1 * cores * request_rate ~ 0.33/tick — twice what
  // the solver can retire.
  serve::TrafficConfig traffic;
  traffic.cores = smoke ? 500 : 10000;
  traffic.ticks = smoke ? 128 : 1024;
  traffic.request_rate = smoke ? 0.007 : 0.00033;
  traffic.hot_fraction = 0.9;
  traffic.hot_families = 4;
  traffic.cold_families = smoke ? 256 : 4096;
  traffic.seed = kSeed;

  serve::ServiceOptions sopts;
  sopts.solve_slots = 8;
  sopts.solve_cost_ticks = 48;
  sopts.deadline_ticks = 256;
  sopts.queue_capacity = 64;
  sopts.seed = kSeed ^ 0xAD115EEDull;

  const std::vector<serve::Family> families =
      serve::make_families(traffic.hot_families, traffic.cold_families);

  // Three runs: jobs=1 twice (run-to-run determinism) and jobs=8
  // (executor-width determinism). Identical bytes or bust.
  struct Run {
    const char* label;
    int jobs;
  };
  const Run runs[] = {{"jobs=1", 1}, {"jobs=1 (replay)", 1}, {"jobs=8", 8}};
  serve::ServeRunResult results[3];
  for (int i = 0; i < 3; ++i) {
    const engine::Executor executor(runs[i].jobs);
    const serve::AdvisoryService::Solver solver =
        serve::make_engine_solver(families, machine, &executor);
    results[i] = serve::run_serve_sim(traffic, sopts, solver, &executor);
  }
  const serve::ServeRunResult& r = results[0];
  const serve::ServiceStats& s = r.stats;

  TextTable table({"metric", "value"});
  table.add_row({"client cores", std::to_string(traffic.cores)});
  table.add_row({"virtual ticks", std::to_string(traffic.ticks)});
  table.add_row({"requests", std::to_string(s.submitted)});
  table.add_row({"  fresh solves", std::to_string(s.fresh)});
  table.add_row({"  cache hits", std::to_string(s.cache_hits)});
  table.add_row({"  last-known-good", std::to_string(s.last_known_good)});
  table.add_row({"  no-prefetch", std::to_string(s.no_prefetch)});
  table.add_row({"shed (queue full / infeasible)",
                 std::to_string(s.shed_queue_full) + " / " +
                     std::to_string(s.shed_infeasible)});
  table.add_row({"cancelled solves", std::to_string(s.cancelled_solves)});
  table.add_row({"p50 admitted (ticks)", format_double(r.p50_admitted, 1)});
  table.add_row({"p99 admitted (ticks)", format_double(r.p99_admitted, 1)});
  table.add_row({"shed rate", format_percent(r.shed_rate)});
  table.add_row({"deadline-miss rate", format_percent(r.deadline_miss_rate)});
  table.add_row({"degraded rate", format_percent(r.degraded_rate)});
  table.add_row({"max queue depth",
                 std::to_string(s.max_queue_depth) + " / " +
                     std::to_string(sopts.queue_capacity)});
  table.add_row({"stale-as-fresh", std::to_string(s.stale_fresh_violations)});
  std::fputs(table.render().c_str(), stdout);

  std::printf("determinism:");
  for (int i = 0; i < 3; ++i) {
    std::printf(" %s digest=%016llx", runs[i].label,
                static_cast<unsigned long long>(results[i].digest));
  }
  std::printf("\n\n");

  report.set("cores", static_cast<std::uint64_t>(traffic.cores));
  report.set("requests", s.submitted);
  report.set("p50_admitted_ticks", r.p50_admitted);
  report.set("p99_admitted_ticks", r.p99_admitted);
  report.set("shed_rate", r.shed_rate);
  report.set("deadline_miss_rate", r.deadline_miss_rate);
  report.set("hit_rate", r.hit_rate);
  report.set("degraded_rate", r.degraded_rate);
  report.set("fresh", s.fresh);
  report.set("cache_hits", s.cache_hits);
  report.set("last_known_good", s.last_known_good);
  report.set("no_prefetch", s.no_prefetch);
  report.set("cancelled_solves", s.cancelled_solves);
  report.set("max_queue_depth", static_cast<std::uint64_t>(s.max_queue_depth));
  report.set("stale_fresh_violations", s.stale_fresh_violations);
  report.set("digest", r.digest);

  if (enforce) {
    check(r.queue_bounded,
          "solve queue exceeded its configured capacity under overload");
    check(r.no_stale_fresh && s.stale_fresh_violations == 0,
          "a deadline-missed answer was returned as if fresh");
    check(r.degraded_safe,
          "a degraded answer was not last-known-good or no-prefetch");
    check(r.p99_admitted <= static_cast<double>(sopts.deadline_ticks),
          "p99 admitted latency exceeded the deadline budget");
    check(s.shed_queue_full + s.shed_infeasible + s.last_known_good +
                  s.no_prefetch >
              0,
          "2x saturation produced no shedding (bench mis-sized)");
    check(s.fresh > 0 && s.cache_hits > 0,
          "traffic mix produced no fresh solves or no cache hits");
    for (int i = 1; i < 3; ++i) {
      check(results[i].digest == r.digest &&
                results[i].stats.submitted == s.submitted &&
                results[i].stats.fresh == s.fresh &&
                results[i].stats.cache_hits == s.cache_hits &&
                results[i].stats.last_known_good == s.last_known_good &&
                results[i].stats.no_prefetch == s.no_prefetch,
            "response stream diverged across runs/--jobs (determinism "
            "contract broken)");
    }
  }

  report.write();

  if (violations > 0) {
    std::printf("FAILED: %d serve invariant violation(s) (reproduce with "
                "seed %llu)\n",
                violations, static_cast<unsigned long long>(kSeed));
    return 1;
  }
  std::printf("All serve overload invariants hold.\n");
  return 0;
}
