// Robustness sweep — graceful degradation under profile faults.
//
// Real hardware-watchpoint sampling (Sembrant et al., CGO'12) drops
// watchpoints, multiplexes PMU counters, and truncates runs. This harness
// injects those fault models into every suite benchmark's profile at rates
// from 0 % to 50 % and checks the pipeline's degradation guarantee
// end-to-end: the optimized program must never underperform the no-prefetch
// baseline by more than ε = 1 % simulated cycles, every suppressed prefetch
// must appear in the DegradationLog, and at 0 % faults the plans must be
// byte-identical to the clean pipeline's.
//
// Exits non-zero if any invariant is violated, so it doubles as a CI gate.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/fault_injection.hh"
#include "core/pipeline.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

namespace {

constexpr double kEpsilon = 0.01;  // max tolerated slowdown vs baseline

bool plans_identical(const std::vector<re::core::PrefetchPlan>& a,
                     const std::vector<re::core::PrefetchPlan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pc != b[i].pc || a[i].distance_bytes != b[i].distance_bytes ||
        a[i].hint != b[i].hint) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace re;
  bench::print_header(
      "Robustness: fault-injected profiles",
      "Degradation invariant: faulted pipeline never loses > 1 % vs the "
      "no-prefetch baseline; suppressions are logged (AMD config)");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const std::vector<double> rates = {0.0, 0.05, 0.2, 0.5};
  int violations = 0;
  bench::JsonReport json("robustness_faults");
  json.set("seed", std::uint64_t{0xFA57});  // FaultConfig::uniform default
  double worst_delta = 0.0;

  for (const std::string& name : workloads::suite_names()) {
    const workloads::Program program = workloads::make_benchmark(name);
    const sim::RunResult base = sim::run_single(machine, program, false);
    const double base_cycles = static_cast<double>(base.apps[0].cycles);

    const core::Profile profile =
        core::profile_program(program, core::SamplerConfig{});
    const core::OptimizationReport clean =
        core::optimize_program(program, machine);

    std::printf("--- %s ---\n", name.c_str());
    TextTable table({"fault rate", "plans", "suppressed", "speedup",
                     "vs baseline", "verdict"});
    for (const double rate : rates) {
      const core::FaultInjector injector(core::FaultConfig::uniform(rate));
      const core::OptimizationReport report = core::optimize_with_profile(
          program, injector.inject(profile), machine);
      const sim::RunResult opt =
          sim::run_single(machine, report.optimized, false);
      const double opt_cycles = static_cast<double>(opt.apps[0].cycles);
      const double delta = opt_cycles / base_cycles - 1.0;

      bool ok = delta <= kEpsilon;
      // Every delinquent load without a plan must carry a logged reason.
      for (const core::DelinquentLoad& load : report.delinquent_loads) {
        const bool planned = std::any_of(
            report.plans.begin(), report.plans.end(),
            [&](const core::PrefetchPlan& p) { return p.pc == load.pc; });
        if (!planned && !report.degradation.contains(load.pc)) ok = false;
      }
      // Zero faults must reproduce the clean pipeline bit-for-bit.
      if (rate == 0.0 && !plans_identical(report.plans, clean.plans)) {
        ok = false;
      }
      if (!ok) ++violations;
      worst_delta = std::max(worst_delta, delta);

      table.add_row({format_percent(rate), std::to_string(report.plans.size()),
                     std::to_string(report.degradation.size()),
                     format_double(base_cycles / opt_cycles, 3),
                     format_percent(delta), ok ? "OK" : "VIOLATION"});
    }
    std::printf("%s\n", table.render().c_str());
  }

  json.set("violations", static_cast<double>(violations));
  json.set("worst_delta_vs_baseline", worst_delta);
  json.set("epsilon", kEpsilon);
  json.write();

  if (violations > 0) {
    std::printf("FAILED: %d degradation-invariant violation(s)\n", violations);
    return 1;
  }
  std::printf("All degradation invariants hold (epsilon = %.0f %%).\n",
              kEpsilon * 100.0);
  return 0;
}
