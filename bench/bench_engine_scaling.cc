// Engine scaling — wall-clock scaling of the analysis engine's
// deterministic executor on the Figure 4 suite, plus the determinism gate
// that makes the parallelism safe to use anywhere: artifacts at every
// worker count must be byte-identical to the serial path.
//
// For each worker count (serial, 2, 4, 8) the full suite is re-analyzed
// from a cold PlanCache on both machines (profile + optimize under every
// policy + five simulated runs per benchmark, fanned out by
// evaluate_suite), and every OptimizationReport is serialized into a
// per-worker-count fingerprint.
//
// Gates (exit 1 on violation):
//   * 0-diff: every fingerprint equals the serial one — always enforced.
//   * speedup >= 2.5x at 4 workers — enforced only when the host actually
//     has >= 4 hardware threads and the bench is not in smoke mode (on a
//     1-core CI box the fan-out cannot beat the serial path; the numbers
//     are still reported).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "engine/executor.hh"
#include "engine/pipeline.hh"
#include "engine/store.hh"
#include "support/text_table.hh"

namespace {

using namespace re;

/// One cold full-suite analysis pass at `jobs` workers. Returns the
/// concatenated serialized reports (the determinism witness) and the
/// simulated cycle counts (so the parallel simulations are checked too).
struct PassResult {
  std::string fingerprint;
  double millis = 0.0;
};

PassResult run_pass(int jobs, const std::vector<std::string>& names) {
  const engine::Executor executor(jobs);
  const auto start = std::chrono::steady_clock::now();

  std::string fingerprint;
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    // Cold cache per pass: every worker count redoes the identical work.
    analysis::PlanCache cache;
    const std::vector<analysis::BenchmarkEvaluation> evals =
        analysis::evaluate_suite(machine, names, cache, &executor);
    for (const analysis::BenchmarkEvaluation& eval : evals) {
      for (const auto& [policy, run] : eval.runs) {
        fingerprint += machine.name + "/" + eval.name + "/" +
                       analysis::policy_name(policy) + ": " +
                       std::to_string(run.apps[0].cycles) + " cycles\n";
      }
    }
    // The optimize artifacts themselves, via the engine's stable
    // serialization (per-PC MRC construction fans out inside StatStack).
    engine::ArtifactStore store;
    for (const std::string& name : names) {
      const workloads::Program program = workloads::make_benchmark(name);
      fingerprint += engine::serialize_report(
          engine::run_optimize(program, machine, {},
                               engine::EngineContext{&executor, &store}));
    }
  }

  const auto end = std::chrono::steady_clock::now();
  PassResult result;
  result.fingerprint = std::move(fingerprint);
  result.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Engine scaling: deterministic executor, serial vs 2/4/8 workers",
      "Full fig4-suite analysis per worker count; artifacts must be 0-diff");

  std::vector<std::string> names = workloads::suite_names();
  if (bench::smoke_mode() && names.size() > 2) names.resize(2);

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n\n", hw_threads,
              hw_threads >= 4 ? "" : " (speedup gate reports only)");

  const std::vector<int> worker_counts = {1, 2, 4, 8};
  std::vector<PassResult> passes;
  for (const int jobs : worker_counts) passes.push_back(run_pass(jobs, names));

  bench::JsonReport report("engine_scaling");
  report.set("seed", std::uint64_t{0});  // seedless: fully deterministic inputs
  report.set("hw_threads", static_cast<std::uint64_t>(hw_threads));
  report.set("benchmarks", static_cast<std::uint64_t>(names.size()));

  bool identical = true;
  TextTable table({"workers", "wall (ms)", "speedup vs serial", "artifacts"});
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const bool same = passes[i].fingerprint == passes[0].fingerprint;
    if (!same) identical = false;
    const double speedup = passes[0].millis / passes[i].millis;
    table.add_row({std::to_string(worker_counts[i]),
                   format_double(passes[i].millis, 1),
                   format_double(speedup, 2),
                   same ? "identical" : "DIFFER"});
    report.set("ms_jobs" + std::to_string(worker_counts[i]),
               passes[i].millis);
    report.set("speedup_jobs" + std::to_string(worker_counts[i]), speedup);
  }
  std::printf("%s\n", table.render().c_str());
  report.set("artifacts_identical", std::uint64_t{identical ? 1u : 0u});

  const double speedup4 = passes[0].millis / passes[2].millis;
  const bool gate_speedup = hw_threads >= 4 && !bench::smoke_mode();
  bool failed = false;
  if (!identical) {
    std::printf("FAILED: artifacts differ across worker counts "
                "(determinism contract violated)\n");
    failed = true;
  }
  if (gate_speedup && speedup4 < 2.5) {
    std::printf("FAILED: %.2fx at 4 workers (< 2.5x gate)\n", speedup4);
    failed = true;
  }
  if (!failed) {
    std::printf(gate_speedup
                    ? "engine scaling gates hold (0-diff, %.2fx at 4 workers)\n"
                    : "engine determinism gate holds (0-diff; speedup gate "
                      "skipped: %.2fx at 4 workers)\n",
                speedup4);
  }
  report.write();
  return failed ? 1 : 0;
}
