// Engine scaling — wall-clock scaling of the analysis engine's
// deterministic executor on the Figure 4 suite, for both scheduler
// backends, plus the determinism gate that makes the parallelism safe to
// use anywhere: artifacts at every worker count, under either backend,
// must be byte-identical to the serial path.
//
// For each backend (forkjoin, steal) and worker count (1, 2, 4, 8, 16)
// the full suite is re-analyzed from a cold PlanCache on both machines
// (profile + optimize under every policy + five simulated runs per
// benchmark, fanned out by evaluate_suite), and every OptimizationReport
// is serialized into a per-pass fingerprint. Steal and prefetch-hint
// counters are reported per pass (observability only — they vary with
// scheduling; the artifacts never do).
//
// Gates (exit 1 on violation):
//   * 0-diff: every fingerprint — both backends, every worker count —
//     equals the serial forkjoin one. Always enforced.
//   * speedup >= 2.5x at 4 workers (forkjoin, the long-standing gate) —
//     enforced only when the host has >= 4 hardware threads and the bench
//     is not in smoke mode.
//   * steal >= 0.95x forkjoin at 8 and 16 workers — enforced only when
//     the host has >= 8 hardware threads and not in smoke mode (stealing
//     exists to win at high worker counts; on narrow hosts the numbers
//     are reported without judgment).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "engine/executor.hh"
#include "engine/pipeline.hh"
#include "engine/store.hh"
#include "support/text_table.hh"

namespace {

using namespace re;

/// One cold full-suite analysis pass at `jobs` workers under `backend`.
/// Returns the concatenated serialized reports (the determinism witness),
/// the wall time, and the pass's dispatch counters.
struct PassResult {
  std::string fingerprint;
  double millis = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t prefetch_hints = 0;
};

PassResult run_pass(int jobs, engine::SchedulerBackend backend,
                    const std::vector<std::string>& names) {
  const engine::Executor executor(jobs, engine::kDefaultExecutorSeed, backend);
  const auto start = std::chrono::steady_clock::now();

  std::string fingerprint;
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    // Cold cache per pass: every worker count redoes the identical work.
    analysis::PlanCache cache;
    const std::vector<analysis::BenchmarkEvaluation> evals =
        analysis::evaluate_suite(machine, names, cache, &executor);
    for (const analysis::BenchmarkEvaluation& eval : evals) {
      for (const auto& [policy, run] : eval.runs) {
        fingerprint += machine.name + "/" + eval.name + "/" +
                       analysis::policy_name(policy) + ": " +
                       std::to_string(run.apps[0].cycles) + " cycles\n";
      }
    }
    // The optimize artifacts themselves, via the engine's stable
    // serialization (per-PC MRC construction fans out inside StatStack).
    engine::ArtifactStore store;
    for (const std::string& name : names) {
      const workloads::Program program = workloads::make_benchmark(name);
      fingerprint += engine::serialize_report(
          engine::run_optimize(program, machine, {},
                               engine::EngineContext{&executor, &store}));
    }
  }

  const auto end = std::chrono::steady_clock::now();
  PassResult result;
  result.fingerprint = std::move(fingerprint);
  result.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.steals = executor.steals();
  result.prefetch_hints = executor.prefetch_hints();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Engine scaling: forkjoin vs steal backends, 1/2/4/8/16 workers",
      "Full fig4-suite analysis per pass; artifacts must be 0-diff");

  std::vector<std::string> names = workloads::suite_names();
  if (bench::smoke_mode() && names.size() > 2) names.resize(2);

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n\n", hw_threads,
              hw_threads >= 4 ? "" : " (speedup gates report only)");

  const std::vector<int> worker_counts = {1, 2, 4, 8, 16};
  const engine::SchedulerBackend backends[] = {
      engine::SchedulerBackend::kForkJoin, engine::SchedulerBackend::kSteal};

  bench::JsonReport report("engine_scaling");
  report.set("seed", engine::kDefaultExecutorSeed);
  report.set("hw_threads", static_cast<std::uint64_t>(hw_threads));
  report.set("benchmarks", static_cast<std::uint64_t>(names.size()));

  // passes[backend][i] is the pass at worker_counts[i]; the serial
  // forkjoin pass (backend 0, jobs 1) is the reference fingerprint.
  std::vector<std::vector<PassResult>> passes(2);
  for (std::size_t b = 0; b < 2; ++b) {
    for (const int jobs : worker_counts) {
      passes[b].push_back(run_pass(jobs, backends[b], names));
    }
  }
  const PassResult& reference = passes[0][0];

  bool identical = true;
  TextTable table({"scheduler", "workers", "wall (ms)", "speedup", "steals",
                   "hints", "artifacts"});
  for (std::size_t b = 0; b < 2; ++b) {
    const std::string bname = engine::scheduler_backend_name(backends[b]);
    for (std::size_t i = 0; i < passes[b].size(); ++i) {
      const PassResult& pass = passes[b][i];
      const bool same = pass.fingerprint == reference.fingerprint;
      if (!same) identical = false;
      const double speedup = reference.millis / pass.millis;
      table.add_row({bname, std::to_string(worker_counts[i]),
                     format_double(pass.millis, 1), format_double(speedup, 2),
                     std::to_string(pass.steals),
                     std::to_string(pass.prefetch_hints),
                     same ? "identical" : "DIFFER"});
      const std::string key = "_" + bname + "_jobs" +
                              std::to_string(worker_counts[i]);
      report.set("ms" + key, pass.millis);
      report.set("speedup" + key, speedup);
      report.set("steals" + key, pass.steals);
      report.set("prefetch_hints" + key, pass.prefetch_hints);
    }
  }
  std::printf("%s\n", table.render().c_str());
  report.set("artifacts_identical", std::uint64_t{identical ? 1u : 0u});

  const double speedup4 = reference.millis / passes[0][2].millis;
  const bool gate_speedup = hw_threads >= 4 && !bench::smoke_mode();
  const bool gate_steal = hw_threads >= 8 && !bench::smoke_mode();
  bool failed = false;
  if (!identical) {
    std::printf("FAILED: artifacts differ across backends/worker counts "
                "(determinism contract violated)\n");
    failed = true;
  }
  if (gate_speedup && speedup4 < 2.5) {
    std::printf("FAILED: %.2fx at 4 workers (< 2.5x gate)\n", speedup4);
    failed = true;
  }
  if (gate_steal) {
    // Stealing must not lose to fork-join where it is meant to win; 0.95
    // absorbs run-to-run noise without letting a real regression through.
    for (const std::size_t i : {std::size_t{3}, std::size_t{4}}) {
      const double ratio = passes[0][i].millis / passes[1][i].millis;
      if (ratio < 0.95) {
        std::printf("FAILED: steal is %.2fx of forkjoin at %d workers "
                    "(< 0.95x gate)\n",
                    ratio, worker_counts[i]);
        failed = true;
      }
    }
  }
  if (!failed) {
    std::printf(gate_speedup
                    ? "engine scaling gates hold (0-diff, %.2fx at 4 workers)\n"
                    : "engine determinism gate holds (0-diff; speedup gates "
                      "skipped: %.2fx at 4 workers)\n",
                speedup4);
  }
  report.write();
  return failed ? 1 : 0;
}
