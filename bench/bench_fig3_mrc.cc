// Figure 3 — Miss-ratio modeling: the StatStack-modeled miss ratio curve of
// the mcf model, both the whole-application average and one frequently
// executed (delinquent) load, across cache sizes from 8 kB to 8 MB, with
// the AMD Phenom II L1/L2/LLC sizes marked.
#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "core/mddli.hh"
#include "core/sampler.hh"
#include "core/statstack.hh"
#include "sim/config.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main() {
  using namespace re;
  bench::print_header("Figure 3: Miss-ratio modeling (mcf)",
                      "StatStack-modeled MRC: application average and one "
                      "frequently executed load");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const workloads::Program program = workloads::make_benchmark("mcf");
  const core::Profile profile = core::profile_program(program, {});
  const core::StatStack model(profile);

  // The paper plots a frequently executed delinquent load; pick the one
  // with the highest estimated miss count.
  const auto delinquent =
      core::identify_delinquent_loads(model, profile, machine);
  const Pc load_pc = delinquent.empty() ? model.sampled_pcs().front()
                                        : delinquent.front().pc;
  const core::MissRatioCurve& load_mrc = model.pc_mrc(load_pc);
  const core::MissRatioCurve& app_mrc = model.application_mrc();

  TextTable table({"Cache size", "per-instruction", "application avg", ""});
  for (std::uint64_t kb = 8; kb <= 8192; kb *= 2) {
    const std::uint64_t bytes = kb << 10;
    std::string mark;
    if (bytes == machine.l1.size_bytes) mark = "<- L1$";
    if (bytes == machine.l2.size_bytes) mark = "<- L2$";
    if (bytes == machine.llc.size_bytes) mark = "<- (scaled) LLC";
    const std::string label =
        kb >= 1024 ? std::to_string(kb / 1024) + "M" : std::to_string(kb) + "k";
    table.add_row({label, format_percent(load_mrc.miss_ratio_bytes(bytes)),
                   format_percent(app_mrc.miss_ratio_bytes(bytes)), mark});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("per-instruction curve: pc%u (%s), %zu reuse samples\n",
              load_pc,
              delinquent.empty() ? "most sampled" : "top delinquent load",
              static_cast<std::size_t>(load_mrc.sample_count()));
  return 0;
}
