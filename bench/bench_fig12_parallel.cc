// Figure 12 — Parallel (OpenMP-style) workloads with 1, 2 and 4 threads on
// the Intel machine: swim* and cg* are the highest-bandwidth codes of their
// suites; fma3d and dc are ordinary compute-bound cases. Paper finding:
// software prefetching wins when off-chip bandwidth demand is high (the
// starred workloads at 4 threads) and matches hardware prefetching
// elsewhere, because the parallel codes do not saturate the channel.
#include <cstdio>

#include "bench_common.hh"
#include "core/pipeline.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/parallel.hh"

int main() {
  using namespace re;
  bench::print_header("Figure 12: Parallel workloads, 1/2/4 threads (Intel)",
                      "Speedup vs single-threaded no-prefetch baseline; "
                      "bandwidth-bound workloads are starred");

  const sim::MachineConfig machine = sim::intel_sandybridge();

  TextTable table({"Workload", "Threads", "Soft Pref.+NT", "Hardware Pref.",
                   "NT bandwidth", "HW bandwidth"});
  for (const std::string& name : workloads::parallel_names()) {
    // Profile the single-threaded shard once; apply its plans to every
    // shard at every thread count (same static PCs, the paper's
    // single-profile methodology).
    const std::vector<workloads::Program> profile_shards =
        workloads::make_parallel(name, 1);
    const core::OptimizationReport report =
        core::optimize_program(profile_shards[0], machine);

    const sim::RunResult base1 =
        sim::run_parallel(machine, profile_shards, /*hw_prefetch=*/false);
    const double base_cycles = static_cast<double>(base1.elapsed_cycles);

    for (int threads : {1, 2, 4}) {
      std::vector<workloads::Program> nt_shards;
      for (workloads::Program& shard : workloads::make_parallel(name, threads)) {
        nt_shards.push_back(core::insert_prefetches(shard, report.plans));
      }
      const sim::RunResult nt =
          sim::run_parallel(machine, nt_shards, /*hw_prefetch=*/false);

      const std::vector<workloads::Program> hw_shards =
          workloads::make_parallel(name, threads);
      const sim::RunResult hw =
          sim::run_parallel(machine, hw_shards, /*hw_prefetch=*/true);

      const std::string label =
          name + (workloads::parallel_is_bandwidth_bound(name) ? "*" : "");
      table.add_row(
          {threads == 1 ? label : "", std::to_string(threads),
           format_double(base_cycles / static_cast<double>(nt.elapsed_cycles),
                         2),
           format_double(base_cycles / static_cast<double>(hw.elapsed_cycles),
                         2),
           format_gbps(nt.bandwidth_gbps()), format_gbps(hw.bandwidth_gbps())});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("machine peak bandwidth: %s (paper: streams peaked at 15.6 "
              "GB/s; swim used about half of it)\n",
              format_gbps(machine.peak_bandwidth_gbps()).c_str());
  return 0;
}
