// Section IV validation — StatStack miss coverage against exact functional
// cache simulation. The paper reports that, at a 1-in-100,000 sampling
// rate over full SPEC runs, the model accounts for 88 % of all misses
// against a 64 kB 2-way D$ and 94 % against a 512 kB L2. Our runs are
// ~10^6 references, so the default period is scaled to keep samples per
// static instruction in the same regime (see core/sampler.hh); the
// sampling-rate ablation sweeps this knob.
#include <cstdio>

#include "analysis/functional_sim.hh"
#include "analysis/metrics.hh"
#include "bench_common.hh"
#include "core/sampler.hh"
#include "core/statstack.hh"
#include "sim/config.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main() {
  using namespace re;
  bench::print_header("Section IV: StatStack model validation",
                      "Share of simulated misses the model accounts for "
                      "(paper: 88% at L1, 94% at L2)");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const sim::CacheGeometry l1 = machine.l1;  // 64 kB 2-way, as in the paper
  const sim::CacheGeometry l2 = machine.l2;

  TextTable table({"Benchmark", "L1 coverage", "L2 coverage", "samples",
                   "sim L1 MR", "model L1 MR"});
  double sum_l1 = 0.0, sum_l2 = 0.0;
  int n = 0;
  for (const std::string& name : workloads::suite_names()) {
    const workloads::Program program = workloads::make_benchmark(name);
    const core::Profile profile = core::profile_program(program, {});
    const core::StatStack model(profile);

    const analysis::FunctionalSimResult sim_l1 =
        analysis::functional_simulate(program, l1);
    const analysis::FunctionalSimResult sim_l2 =
        analysis::functional_simulate(program, l2);

    const double cov_l1 = analysis::statstack_miss_coverage(
        model, profile, sim_l1, l1.num_lines());
    const double cov_l2 = analysis::statstack_miss_coverage(
        model, profile, sim_l2, l2.num_lines());

    table.add_row({name, format_percent(cov_l1), format_percent(cov_l2),
                   std::to_string(profile.reuse_samples.size()),
                   format_percent(sim_l1.miss_ratio()),
                   format_percent(model.application_mrc().miss_ratio_bytes(
                       l1.size_bytes))});
    sum_l1 += cov_l1;
    sum_l2 += cov_l2;
    ++n;
  }
  table.add_separator();
  table.add_row({"Average", format_percent(sum_l1 / n),
                 format_percent(sum_l2 / n), "", "", ""});
  std::printf("%s\n", table.render().c_str());
  return 0;
}
