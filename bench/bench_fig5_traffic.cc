// Figure 5 — Increase in data volume fetched from DRAM over the lifetime of
// the benchmarks (relative to the no-prefetching baseline), both machines.
// Paper finding: software prefetching with cache bypassing is strictly
// better than hardware prefetching; on average it lowers off-chip traffic
// by 44 % (AMD) / 64 % (Intel) relative to hardware prefetching.
#include <cstdio>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "engine/executor.hh"
#include "support/text_table.hh"

int main() {
  using namespace re;
  bench::print_header(
      "Figure 5: Increase in data volume fetched from DRAM",
      "Single-threaded runs; increase relative to no-prefetching baseline");

  const engine::Executor executor(bench::bench_jobs());
  analysis::PlanCache cache;
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    std::printf("--- %s ---\n", machine.name.c_str());
    TextTable table({"Benchmark", "Hardware Pref.", "Software Pref.",
                     "Soft Pref.+NT", "Stride-centric", "Base MB"});
    double sums[4] = {0, 0, 0, 0};
    double hw_bytes = 0.0, nt_bytes = 0.0;
    int n = 0;
    for (const analysis::BenchmarkEvaluation& eval : analysis::evaluate_suite(
             machine, workloads::suite_names(), cache, &executor)) {
      const std::string& name = eval.name;
      const double hw = eval.traffic_increase(analysis::Policy::Hardware);
      const double sw = eval.traffic_increase(analysis::Policy::Software);
      const double nt = eval.traffic_increase(analysis::Policy::SoftwareNT);
      const double sc =
          eval.traffic_increase(analysis::Policy::StrideCentric);
      const double base_mb =
          static_cast<double>(
              eval.runs.at(analysis::Policy::Baseline).dram.total_bytes()) /
          (1024.0 * 1024.0);
      table.add_row({name, format_percent(hw), format_percent(sw),
                     format_percent(nt), format_percent(sc),
                     format_double(base_mb, 1)});
      sums[0] += hw;
      sums[1] += sw;
      sums[2] += nt;
      sums[3] += sc;
      hw_bytes += static_cast<double>(
          eval.runs.at(analysis::Policy::Hardware).dram.total_bytes());
      nt_bytes += static_cast<double>(
          eval.runs.at(analysis::Policy::SoftwareNT).dram.total_bytes());
      ++n;
    }
    table.add_separator();
    table.add_row({"average", format_percent(sums[0] / n),
                   format_percent(sums[1] / n), format_percent(sums[2] / n),
                   format_percent(sums[3] / n), ""});
    std::printf("%s\n", table.render().c_str());
    if (hw_bytes > 0.0) {
      std::printf("Soft Pref.+NT moves %.1f%% less data than hardware "
                  "prefetching on %s (paper: 44%% AMD / 64%% Intel).\n\n",
                  (1.0 - nt_bytes / hw_bytes) * 100.0, machine.name.c_str());
    }
  }
  return 0;
}
