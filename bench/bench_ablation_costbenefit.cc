// Ablation A2 — the MDDLI cost-benefit threshold (paper Section V,
// MR > alpha/latency). Sweeping alpha shows the filter's role: alpha -> 0
// degenerates towards stride-centric insertion (more prefetches, more
// overhead), large alpha starves coverage.
#include <cstdio>

#include "analysis/functional_sim.hh"
#include "bench_common.hh"
#include "core/pipeline.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/suite.hh"

int main() {
  using namespace re;
  bench::print_header("Ablation: MDDLI cost-benefit threshold (alpha)",
                      "Prefetch-instruction cost assumed by the filter; "
                      "the paper measured alpha = 1 cycle");

  const sim::MachineConfig machine = sim::amd_phenom_ii();
  for (const std::string& name :
       {std::string("gcc"), std::string("libquantum"), std::string("mcf"),
        std::string("omnetpp"), std::string("soplex")}) {
    const workloads::Program program = workloads::make_benchmark(name);
    const sim::RunResult base = sim::run_single(machine, program, false);

    std::printf("--- %s ---\n", name.c_str());
    TextTable table({"alpha", "loads selected", "prefetches", "coverage",
                     "OH", "speedup"});
    // The suite's miss-ratio distribution is bimodal (streams miss hard,
    // hot data barely misses), so the filter's bite shows at the high end:
    // alpha/latency must climb past the marginal loads' miss ratios.
    for (double alpha : {0.25, 1.0, 4.0, 16.0, 32.0, 64.0, 128.0}) {
      core::OptimizerOptions options;
      options.mddli.alpha = alpha;
      const core::OptimizationReport report =
          core::optimize_program(program, machine, options);
      const analysis::CoverageResult cov = analysis::measure_coverage(
          program, report.optimized, machine.l1);
      const sim::RunResult run =
          sim::run_single(machine, report.optimized, false);
      table.add_row({format_double(alpha, 2),
                     std::to_string(report.delinquent_loads.size()),
                     std::to_string(cov.prefetches_executed),
                     format_percent(cov.miss_coverage()),
                     format_double(cov.overhead(), 1),
                     format_speedup_percent(
                         static_cast<double>(base.apps[0].cycles) /
                         static_cast<double>(run.apps[0].cycles))});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
