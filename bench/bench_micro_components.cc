// P1 — component microbenchmarks (google-benchmark): throughput of the
// framework's building blocks. These are engineering benchmarks, not paper
// artifacts: they document that the profiling/modeling pipeline is "fast"
// in the paper's sense (StatStack: "typically less than a minute"; here:
// milliseconds at reproduction scale).
#include <benchmark/benchmark.h>

#include "analysis/functional_sim.hh"
#include "core/pipeline.hh"
#include "core/sampler.hh"
#include "core/statstack.hh"
#include "sim/cache.hh"
#include "sim/system.hh"
#include "workloads/cursor.hh"
#include "workloads/suite.hh"

namespace {

using namespace re;

void BM_ProgramCursor(benchmark::State& state) {
  const workloads::Program program = workloads::make_benchmark("libquantum");
  workloads::ProgramCursor cursor(program);
  for (auto _ : state) {
    auto event = cursor.next();
    if (!event) event = cursor.next();
    benchmark::DoNotOptimize(event->addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProgramCursor);

void BM_CacheAccessHit(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{32 << 10, 8});
  for (Addr line = 0; line < 256; ++line) {
    cache.fill(line, sim::FillOrigin::Demand);
  }
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line, true));
    line = (line + 1) & 255;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheFillEvict(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{1 << 20, 16});
  Addr line = 0;
  for (auto _ : state) {
    if (!cache.access(line, true)) {
      benchmark::DoNotOptimize(cache.fill(line, sim::FillOrigin::Demand));
    }
    line += 1;  // pure streaming: every access is a fill+evict
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheFillEvict);

void BM_SamplerObserve(benchmark::State& state) {
  core::Sampler sampler(core::SamplerConfig{
      static_cast<std::uint64_t>(state.range(0)), 42});
  // The cursor holds a reference: the program must outlive it.
  const workloads::Program program = workloads::make_benchmark("gcc");
  workloads::ProgramCursor cursor(program);
  for (auto _ : state) {
    auto event = cursor.next();
    if (!event) event = cursor.next();
    sampler.observe(event->inst->pc, event->addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerObserve)->Arg(1000)->Arg(100000);

void BM_StatStackBuild(benchmark::State& state) {
  const core::Profile profile =
      core::profile_program(workloads::make_benchmark("mcf"),
                            core::SamplerConfig{1000, 42});
  for (auto _ : state) {
    core::StatStack model(profile);
    benchmark::DoNotOptimize(
        model.application_mrc().miss_ratio_bytes(768 << 10));
  }
}
BENCHMARK(BM_StatStackBuild);

void BM_MrcQuery(benchmark::State& state) {
  const core::Profile profile =
      core::profile_program(workloads::make_benchmark("mcf"),
                            core::SamplerConfig{1000, 42});
  const core::StatStack model(profile);
  std::uint64_t size = 8 << 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.application_mrc().miss_ratio_bytes(size));
    size = size >= (8 << 20) ? (8 << 10) : size * 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrcQuery);

void BM_FunctionalSim(benchmark::State& state) {
  const workloads::Program program = workloads::make_benchmark("libquantum");
  const sim::CacheGeometry l1{64 << 10, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::functional_simulate(program, l1, 100000));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_FunctionalSim);

void BM_TimedSimulation(benchmark::State& state) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  workloads::Program program = workloads::make_benchmark("soplex");
  // Shorten to keep each iteration sub-second.
  for (auto& loop : program.loops) loop.iterations /= 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_single(machine, program, true));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              program.total_references()));
}
BENCHMARK(BM_TimedSimulation);

void BM_FullPipeline(benchmark::State& state) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const workloads::Program program = workloads::make_benchmark("libquantum");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_program(program, machine));
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

BENCHMARK_MAIN();
