// Multi-tenant fairness isolation gate for the advisory service.
//
// Three seeded scenarios over the same well-behaved population (per-core
// independent arrival streams, so every scenario submits the identical
// request sequence for cores 0..N-1):
//
//   solo      — the well-behaved cores alone: the baseline p99/mix.
//   chatty    — plus one adversary submitting at 100x the base rate, cold
//               families only (every request is a solve). Its overflow must
//               be shed from its own quota (QuotaExceeded) before it can
//               touch a victim's deadline budget.
//   slowread  — plus one consumer that stops reading its bounded outbox.
//               Its responses pile up in its own outbox and its overflow is
//               rejected unanswered; nobody else's collection stalls.
//
// Isolation bound (DESIGN.md 14): for every well-behaved core,
//   p99(adversary run) <= p99(solo) + max(0.25 * p99(solo), 8 ticks)
//   degraded_rate(adversary run) <= degraded_rate(solo) + 0.02
// and the adversary absorbs its own overflow: victims see zero
// QuotaExceeded answers while the chatty core sheds > 0.
//
// Also gated here: byte-determinism of the chatty run (digest identical at
// --jobs 1, a jobs=1 replay, and --jobs 8) and the poisoned-warm-start
// sweep (serve_poison_check: bit-flipped / stale-fingerprint / truncated
// shard journals cost cache warmth only — zero stale-as-fresh, zero alien
// plans, zero lost acks, zero crashes).
//
// Reports victim/adversary metrics to BENCH_serve_fairness.json (with the
// reproducing seed). Exits non-zero on any violation — CI gate.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "engine/executor.hh"
#include "serve/harness.hh"
#include "serve/service.hh"
#include "support/text_table.hh"

namespace {

using namespace re;

constexpr std::uint64_t kSeed = 42;

int violations = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("VIOLATION: %s\n", what);
    ++violations;
  }
}

/// Worst-case victim regression vs the solo baseline, in p99 ticks and
/// degraded-rate percentage points, over well-behaved cores only.
struct VictimDelta {
  double max_p99_excess = 0.0;   // beyond the documented allowance
  double max_rate_excess = 0.0;  // beyond the 2pp allowance
  double worst_p99 = 0.0;
  double worst_rate = 0.0;
  std::uint64_t victim_quota_shed = 0;
};

VictimDelta victim_delta(const serve::FairnessRunResult& solo,
                         const serve::FairnessRunResult& adversarial,
                         int victim_cores) {
  VictimDelta d;
  for (int core = 0; core < victim_cores; ++core) {
    const serve::CoreMetrics& base =
        solo.per_core[static_cast<std::size_t>(core)];
    const serve::CoreMetrics& now =
        adversarial.per_core[static_cast<std::size_t>(core)];
    const double allowance = std::max(0.25 * base.p99, 8.0);
    d.max_p99_excess =
        std::max(d.max_p99_excess, now.p99 - (base.p99 + allowance));
    d.max_rate_excess = std::max(
        d.max_rate_excess, now.degraded_rate - (base.degraded_rate + 0.02));
    d.worst_p99 = std::max(d.worst_p99, now.p99);
    d.worst_rate = std::max(d.worst_rate, now.degraded_rate);
    d.victim_quota_shed += now.quota_shed;
  }
  return d;
}

}  // namespace

int main() {
  const bool smoke = bench::smoke_mode();
  const bool enforce = !smoke;
  bench::print_header(
      "Advisory-service fairness: chatty and slow-consumer tenants vs the "
      "isolation bound",
      "DRR dispatch, per-tenant token buckets, bounded outboxes, and the "
      "poisoned warm-start sweep");
  if (smoke) std::printf("[smoke mode: tiny runs, gates not enforced]\n\n");

  bench::JsonReport report("serve_fairness");

  serve::FairnessTraffic traffic;
  traffic.cores = smoke ? 4 : 8;
  traffic.ticks = smoke ? 128 : 1024;
  traffic.base_rate = 0.05;
  traffic.hot_fraction = 0.9;
  traffic.hot_families = 4;
  traffic.cold_families = smoke ? 16 : 64;
  traffic.seed = kSeed;

  serve::ServiceOptions sopts;
  sopts.solve_slots = 4;
  sopts.solve_cost_ticks = 8;
  sopts.deadline_ticks = 256;
  sopts.queue_capacity = 64;
  sopts.seed = kSeed ^ 0xAD115EEDull;
  sopts.fairness.enabled = true;
  sopts.fairness.quota_burst = 8;
  sopts.fairness.quota_rate_milli = 100;  // 0.1 requests/tick sustained
  sopts.fairness.per_core_queue_cap = 8;

  const std::vector<serve::Family> families =
      serve::make_families(traffic.hot_families, traffic.cold_families);
  const serve::AdvisoryService::Solver solver =
      serve::make_synthetic_solver(families);

  // Scenario 1+2: solo baseline, then the same victims plus a 100x chatty
  // adversary. Identical victim arrival streams (per-core Rngs) make the
  // comparison request-for-request.
  const serve::FairnessRunResult solo =
      serve::run_fairness_sim(traffic, sopts, solver, nullptr);

  serve::FairnessTraffic chatty = traffic;
  chatty.chatty = true;
  chatty.chatty_multiplier = 100.0;
  const serve::FairnessRunResult loud =
      serve::run_fairness_sim(chatty, sopts, solver, nullptr);
  const VictimDelta loud_delta = victim_delta(solo, loud, traffic.cores);
  const serve::CoreMetrics& chatty_core =
      loud.per_core[static_cast<std::size_t>(traffic.cores)];

  // Scenario 3: bounded outboxes, one consumer never reads until the end.
  // Its solo baseline is re-run with the same outbox config so the
  // comparison isolates the slow reader, not the outbox mechanism.
  serve::ServiceOptions oopts = sopts;
  oopts.fairness.outbox_capacity = 16;
  const serve::FairnessRunResult solo_outbox =
      serve::run_fairness_sim(traffic, oopts, solver, nullptr);

  serve::FairnessTraffic slow = traffic;
  slow.slow_consumer = true;
  slow.slow_collect_per_tick = 0;  // never reads during the run
  const serve::FairnessRunResult held =
      serve::run_fairness_sim(slow, oopts, solver, nullptr);
  const VictimDelta held_delta =
      victim_delta(solo_outbox, held, traffic.cores);

  // Determinism: the chatty scenario re-run (jobs=1 replay) and on an
  // 8-worker executor must produce the identical response digest.
  const serve::FairnessRunResult replay =
      serve::run_fairness_sim(chatty, sopts, solver, nullptr);
  const engine::Executor wide(8);
  const serve::FairnessRunResult jobs8 =
      serve::run_fairness_sim(chatty, sopts, solver, &wide);

  TextTable table({"scenario", "victim p99", "victim degr", "adv p99",
                   "adv degr", "quota shed", "stale-fresh"});
  const auto pct = [](double v) { return format_percent(v); };
  const auto victim_row = [&](const char* label,
                              const serve::FairnessRunResult& r,
                              const VictimDelta& d,
                              const serve::CoreMetrics* adversary) {
    table.add_row(
        {label, format_double(d.worst_p99, 1), pct(d.worst_rate),
         adversary ? format_double(adversary->p99, 1) : std::string("-"),
         adversary ? pct(adversary->degraded_rate) : std::string("-"),
         std::to_string(r.stats.shed_quota),
         std::to_string(r.stats.stale_fresh_violations)});
  };
  {
    VictimDelta base = victim_delta(solo, solo, traffic.cores);
    victim_row("solo", solo, base, nullptr);
    victim_row("chatty 100x", loud, loud_delta, &chatty_core);
    VictimDelta base_outbox =
        victim_delta(solo_outbox, solo_outbox, traffic.cores);
    victim_row("solo (outbox)", solo_outbox, base_outbox, nullptr);
    victim_row("slow consumer", held, held_delta, nullptr);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("chatty digests: jobs=1 %016llx | replay %016llx | jobs=8 "
              "%016llx\n",
              static_cast<unsigned long long>(loud.digest),
              static_cast<unsigned long long>(replay.digest),
              static_cast<unsigned long long>(jobs8.digest));
  std::printf("slow consumer: %llu rejected unanswered, outbox high-water "
              "bounded\n\n",
              static_cast<unsigned long long>(
                  held.stats.shed_slow_consumer));

  // Poisoned warm-start sweep rides along: fairness and warm-start are the
  // two halves of the same trust boundary.
  const serve::PoisonReport poison = serve::serve_poison_check(
      kSeed, smoke ? 3 : 12, "bench_serve_fairness_scratch");
  std::printf("poisoned warm-start: %s\n\n", poison.to_string().c_str());

  report.set("seed", kSeed);
  report.set("victim_cores", static_cast<std::uint64_t>(traffic.cores));
  report.set("solo_victim_p99",
             victim_delta(solo, solo, traffic.cores).worst_p99);
  report.set("chatty_victim_p99", loud_delta.worst_p99);
  report.set("chatty_victim_degraded_rate", loud_delta.worst_rate);
  report.set("chatty_adversary_p99", chatty_core.p99);
  report.set("chatty_quota_shed", loud.stats.shed_quota);
  report.set("chatty_breaker_trips", loud.stats.quota_breaker_trips);
  report.set("slow_victim_p99", held_delta.worst_p99);
  report.set("slow_shed_unanswered", held.stats.shed_slow_consumer);
  report.set("stale_fresh_violations",
             solo.stats.stale_fresh_violations +
                 loud.stats.stale_fresh_violations +
                 held.stats.stale_fresh_violations);
  report.set("digest", loud.digest);
  report.set("poison_trials", static_cast<std::uint64_t>(poison.trials));
  report.set("poison_quarantined", poison.warm_entries_quarantined);
  report.set("poison_files_rejected", poison.warm_files_rejected);
  report.set("poison_ok", poison.ok() ? std::string("true")
                                      : std::string("false"));

  if (enforce) {
    check(solo.gates_ok() && loud.gates_ok() && solo_outbox.gates_ok() &&
              held.gates_ok(),
          "a robustness gate (bounded queue / stale-as-fresh / degraded-"
          "safe) failed in a fairness scenario");
    check(loud_delta.max_p99_excess <= 0.0,
          "chatty adversary pushed a victim's p99 past the isolation bound "
          "(solo + max(25%, 8 ticks))");
    check(loud_delta.max_rate_excess <= 0.0,
          "chatty adversary pushed a victim's degraded mix more than 2pp "
          "past its solo baseline");
    check(loud_delta.victim_quota_shed == 0,
          "a well-behaved victim was shed under QuotaExceeded");
    check(chatty_core.quota_shed > 0 && loud.stats.shed_quota > 0,
          "the chatty adversary was never quota-shed (bench mis-sized: not "
          "actually overloading its bucket)");
    check(held_delta.max_p99_excess <= 0.0,
          "slow consumer pushed a victim's p99 past the isolation bound");
    check(held_delta.max_rate_excess <= 0.0,
          "slow consumer pushed a victim's degraded mix past the 2pp bound");
    check(held.stats.shed_slow_consumer > 0,
          "the slow consumer was never backpressured (bench mis-sized: "
          "outbox never filled)");
    check(replay.digest == loud.digest && jobs8.digest == loud.digest,
          "fairness response stream diverged across replay/--jobs "
          "(determinism contract broken)");
    check(poison.ok(),
          "poisoned warm-start leaked: stale-as-fresh, alien plan, lost "
          "ack, or recovery failure");
  }

  report.write();

  if (violations > 0) {
    std::printf("FAILED: %d fairness invariant violation(s) (reproduce "
                "with seed %llu)\n",
                violations, static_cast<unsigned long long>(kSeed));
    return 1;
  }
  std::printf("All fairness isolation and warm-start trust invariants "
              "hold.\n");
  return 0;
}
