// Ablation A3 — hardware prefetcher aggressiveness. Sweeps the stream
// degree and the adjacent-line engine on a fixed set of mixes: higher
// degree helps isolated streams but saturates the shared channel in mixes
// — the paper's central claim about aggressive prefetching.
#include <cstdio>

#include "analysis/metrics.hh"
#include "bench_common.hh"
#include "sim/system.hh"
#include "support/text_table.hh"
#include "workloads/mix.hh"
#include "support/text_table.hh"

namespace {

re::sim::RunResult run_mix_with(const re::sim::MachineConfig& machine,
                                const re::workloads::MixSpec& spec,
                                bool hw_prefetch) {
  std::vector<re::workloads::Program> programs;
  for (std::size_t core = 0; core < spec.apps.size(); ++core) {
    programs.push_back(re::workloads::make_benchmark(spec.apps[core]));
    re::workloads::rebase_program(
        programs.back(),
        re::workloads::core_address_offset(static_cast<int>(core)));
  }
  std::vector<const re::workloads::Program*> ptrs;
  for (const auto& p : programs) ptrs.push_back(&p);
  return re::sim::run_mix(machine, ptrs, hw_prefetch);
}

}  // namespace

int main() {
  using namespace re;
  bench::print_header("Ablation: hardware prefetcher aggressiveness",
                      "Stream degree and adjacent-line engine vs mix "
                      "throughput and traffic (8 fixed mixes, AMD config)");

  const auto mixes = workloads::generate_mixes(8, sim::kNumCores, 0xab1a);

  TextTable table({"stream degree", "adj-line", "avg speedup", "avg traffic",
                   "avg bandwidth"});
  for (bool adjacent : {false, true}) {
    for (std::uint32_t degree : {2u, 4u, 6u, 8u, 12u}) {
      sim::MachineConfig machine = sim::amd_phenom_ii();
      machine.hw_prefetcher.stream_degree = degree;
      machine.hw_prefetcher.adjacent_line = adjacent;

      double ws_sum = 0.0, traffic_sum = 0.0, bw_sum = 0.0;
      for (const workloads::MixSpec& spec : mixes) {
        const sim::RunResult base = run_mix_with(machine, spec, false);
        const sim::RunResult hw = run_mix_with(machine, spec, true);
        analysis::MixTimes times;
        for (const auto& app : base.apps) {
          times.baseline.push_back(static_cast<double>(app.cycles));
        }
        for (const auto& app : hw.apps) {
          times.policy.push_back(static_cast<double>(app.cycles));
        }
        ws_sum += analysis::weighted_speedup(times);
        traffic_sum += analysis::traffic_increase(base.dram.total_bytes(),
                                                  hw.dram.total_bytes());
        bw_sum += hw.bandwidth_gbps();
      }
      const double n = static_cast<double>(mixes.size());
      table.add_row({std::to_string(degree), adjacent ? "on" : "off",
                     format_speedup_percent(ws_sum / n),
                     format_percent(traffic_sum / n),
                     format_gbps(bw_sum / n)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
