// Ablation A1 — what cache bypassing buys (DESIGN.md): Software Pref. vs
// Soft Pref.+NT per benchmark, with the pollution counters that explain the
// difference (prefetched-but-never-used lines evicted from the caches).
#include <cstdio>

#include "analysis/experiments.hh"
#include "bench_common.hh"
#include "support/text_table.hh"

int main() {
  using namespace re;
  bench::print_header("Ablation: cache bypassing (NT) on/off",
                      "Speedup and traffic deltas attributable to "
                      "PREFETCHNTA semantics");

  analysis::PlanCache cache;
  for (const sim::MachineConfig& machine :
       {sim::amd_phenom_ii(), sim::intel_sandybridge()}) {
    std::printf("--- %s ---\n", machine.name.c_str());
    TextTable table({"Benchmark", "SW speedup", "+NT speedup", "SW traffic",
                     "+NT traffic", "NT plans/all"});
    for (const std::string& name : workloads::suite_names()) {
      const analysis::BenchmarkEvaluation eval =
          analysis::evaluate_benchmark(machine, name, cache);
      const auto& report =
          cache.report(machine, name, analysis::Policy::SoftwareNT);
      int nt_plans = 0;
      for (const auto& plan : report.plans) {
        if (plan.non_temporal()) ++nt_plans;
      }
      table.add_row(
          {name,
           format_speedup_percent(eval.speedup(analysis::Policy::Software)),
           format_speedup_percent(eval.speedup(analysis::Policy::SoftwareNT)),
           format_percent(eval.traffic_increase(analysis::Policy::Software)),
           format_percent(
               eval.traffic_increase(analysis::Policy::SoftwareNT)),
           std::to_string(nt_plans) + "/" +
               std::to_string(report.plans.size())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
