file(REMOVE_RECURSE
  "CMakeFiles/mrc_explorer.dir/mrc_explorer.cpp.o"
  "CMakeFiles/mrc_explorer.dir/mrc_explorer.cpp.o.d"
  "mrc_explorer"
  "mrc_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrc_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
