file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hwdegree.dir/bench_ablation_hwdegree.cc.o"
  "CMakeFiles/bench_ablation_hwdegree.dir/bench_ablation_hwdegree.cc.o.d"
  "bench_ablation_hwdegree"
  "bench_ablation_hwdegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hwdegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
