# Empty dependencies file for bench_ablation_hwdegree.
# This may be replaced when dependencies are built.
