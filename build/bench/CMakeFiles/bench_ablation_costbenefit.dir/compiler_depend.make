# Empty compiler generated dependencies file for bench_ablation_costbenefit.
# This may be replaced when dependencies are built.
