file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_costbenefit.dir/bench_ablation_costbenefit.cc.o"
  "CMakeFiles/bench_ablation_costbenefit.dir/bench_ablation_costbenefit.cc.o.d"
  "bench_ablation_costbenefit"
  "bench_ablation_costbenefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_costbenefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
