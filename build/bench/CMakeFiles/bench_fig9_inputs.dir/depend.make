# Empty dependencies file for bench_fig9_inputs.
# This may be replaced when dependencies are built.
