file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_inputs.dir/bench_fig9_inputs.cc.o"
  "CMakeFiles/bench_fig9_inputs.dir/bench_fig9_inputs.cc.o.d"
  "bench_fig9_inputs"
  "bench_fig9_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
