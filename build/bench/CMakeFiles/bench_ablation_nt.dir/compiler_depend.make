# Empty compiler generated dependencies file for bench_ablation_nt.
# This may be replaced when dependencies are built.
