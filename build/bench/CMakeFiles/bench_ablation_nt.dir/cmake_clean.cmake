file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nt.dir/bench_ablation_nt.cc.o"
  "CMakeFiles/bench_ablation_nt.dir/bench_ablation_nt.cc.o.d"
  "bench_ablation_nt"
  "bench_ablation_nt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
