# Empty dependencies file for bench_fig7_mixes.
# This may be replaced when dependencies are built.
