file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mixes.dir/bench_fig7_mixes.cc.o"
  "CMakeFiles/bench_fig7_mixes.dir/bench_fig7_mixes.cc.o.d"
  "bench_fig7_mixes"
  "bench_fig7_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
