file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mrc.dir/bench_fig3_mrc.cc.o"
  "CMakeFiles/bench_fig3_mrc.dir/bench_fig3_mrc.cc.o.d"
  "bench_fig3_mrc"
  "bench_fig3_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
