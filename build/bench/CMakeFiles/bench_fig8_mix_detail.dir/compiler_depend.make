# Empty compiler generated dependencies file for bench_fig8_mix_detail.
# This may be replaced when dependencies are built.
