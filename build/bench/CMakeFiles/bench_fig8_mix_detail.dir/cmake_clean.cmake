file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mix_detail.dir/bench_fig8_mix_detail.cc.o"
  "CMakeFiles/bench_fig8_mix_detail.dir/bench_fig8_mix_detail.cc.o.d"
  "bench_fig8_mix_detail"
  "bench_fig8_mix_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mix_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
