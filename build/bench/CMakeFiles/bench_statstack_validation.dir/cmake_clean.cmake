file(REMOVE_RECURSE
  "CMakeFiles/bench_statstack_validation.dir/bench_statstack_validation.cc.o"
  "CMakeFiles/bench_statstack_validation.dir/bench_statstack_validation.cc.o.d"
  "bench_statstack_validation"
  "bench_statstack_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statstack_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
