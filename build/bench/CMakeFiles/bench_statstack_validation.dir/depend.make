# Empty dependencies file for bench_statstack_validation.
# This may be replaced when dependencies are built.
