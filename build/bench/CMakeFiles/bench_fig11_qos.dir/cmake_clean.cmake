file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_qos.dir/bench_fig11_qos.cc.o"
  "CMakeFiles/bench_fig11_qos.dir/bench_fig11_qos.cc.o.d"
  "bench_fig11_qos"
  "bench_fig11_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
