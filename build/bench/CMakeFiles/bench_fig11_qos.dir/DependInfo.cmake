
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_qos.cc" "bench/CMakeFiles/bench_fig11_qos.dir/bench_fig11_qos.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_qos.dir/bench_fig11_qos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/re_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/re_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/re_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/re_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/re_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
