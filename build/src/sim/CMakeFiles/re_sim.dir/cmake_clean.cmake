file(REMOVE_RECURSE
  "CMakeFiles/re_sim.dir/cache.cc.o"
  "CMakeFiles/re_sim.dir/cache.cc.o.d"
  "CMakeFiles/re_sim.dir/config.cc.o"
  "CMakeFiles/re_sim.dir/config.cc.o.d"
  "CMakeFiles/re_sim.dir/core_runner.cc.o"
  "CMakeFiles/re_sim.dir/core_runner.cc.o.d"
  "CMakeFiles/re_sim.dir/dram.cc.o"
  "CMakeFiles/re_sim.dir/dram.cc.o.d"
  "CMakeFiles/re_sim.dir/hw_prefetcher.cc.o"
  "CMakeFiles/re_sim.dir/hw_prefetcher.cc.o.d"
  "CMakeFiles/re_sim.dir/memory_system.cc.o"
  "CMakeFiles/re_sim.dir/memory_system.cc.o.d"
  "CMakeFiles/re_sim.dir/system.cc.o"
  "CMakeFiles/re_sim.dir/system.cc.o.d"
  "libre_sim.a"
  "libre_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
