
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/re_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/re_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/core_runner.cc" "src/sim/CMakeFiles/re_sim.dir/core_runner.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/core_runner.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/re_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/hw_prefetcher.cc" "src/sim/CMakeFiles/re_sim.dir/hw_prefetcher.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/hw_prefetcher.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/sim/CMakeFiles/re_sim.dir/memory_system.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/memory_system.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/re_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/re_sim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/re_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/re_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
