# Empty dependencies file for re_sim.
# This may be replaced when dependencies are built.
