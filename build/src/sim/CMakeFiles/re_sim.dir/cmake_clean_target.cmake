file(REMOVE_RECURSE
  "libre_sim.a"
)
