
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/experiments.cc" "src/analysis/CMakeFiles/re_analysis.dir/experiments.cc.o" "gcc" "src/analysis/CMakeFiles/re_analysis.dir/experiments.cc.o.d"
  "/root/repo/src/analysis/functional_sim.cc" "src/analysis/CMakeFiles/re_analysis.dir/functional_sim.cc.o" "gcc" "src/analysis/CMakeFiles/re_analysis.dir/functional_sim.cc.o.d"
  "/root/repo/src/analysis/metrics.cc" "src/analysis/CMakeFiles/re_analysis.dir/metrics.cc.o" "gcc" "src/analysis/CMakeFiles/re_analysis.dir/metrics.cc.o.d"
  "/root/repo/src/analysis/mix_study.cc" "src/analysis/CMakeFiles/re_analysis.dir/mix_study.cc.o" "gcc" "src/analysis/CMakeFiles/re_analysis.dir/mix_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/re_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/re_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/re_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/re_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
