# Empty dependencies file for re_analysis.
# This may be replaced when dependencies are built.
