file(REMOVE_RECURSE
  "libre_analysis.a"
)
