file(REMOVE_RECURSE
  "CMakeFiles/re_analysis.dir/experiments.cc.o"
  "CMakeFiles/re_analysis.dir/experiments.cc.o.d"
  "CMakeFiles/re_analysis.dir/functional_sim.cc.o"
  "CMakeFiles/re_analysis.dir/functional_sim.cc.o.d"
  "CMakeFiles/re_analysis.dir/metrics.cc.o"
  "CMakeFiles/re_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/re_analysis.dir/mix_study.cc.o"
  "CMakeFiles/re_analysis.dir/mix_study.cc.o.d"
  "libre_analysis.a"
  "libre_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
