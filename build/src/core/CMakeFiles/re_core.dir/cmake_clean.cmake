file(REMOVE_RECURSE
  "CMakeFiles/re_core.dir/bypass.cc.o"
  "CMakeFiles/re_core.dir/bypass.cc.o.d"
  "CMakeFiles/re_core.dir/insertion.cc.o"
  "CMakeFiles/re_core.dir/insertion.cc.o.d"
  "CMakeFiles/re_core.dir/mddli.cc.o"
  "CMakeFiles/re_core.dir/mddli.cc.o.d"
  "CMakeFiles/re_core.dir/phases.cc.o"
  "CMakeFiles/re_core.dir/phases.cc.o.d"
  "CMakeFiles/re_core.dir/pipeline.cc.o"
  "CMakeFiles/re_core.dir/pipeline.cc.o.d"
  "CMakeFiles/re_core.dir/sampler.cc.o"
  "CMakeFiles/re_core.dir/sampler.cc.o.d"
  "CMakeFiles/re_core.dir/statstack.cc.o"
  "CMakeFiles/re_core.dir/statstack.cc.o.d"
  "CMakeFiles/re_core.dir/stride_analysis.cc.o"
  "CMakeFiles/re_core.dir/stride_analysis.cc.o.d"
  "libre_core.a"
  "libre_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
