file(REMOVE_RECURSE
  "libre_core.a"
)
