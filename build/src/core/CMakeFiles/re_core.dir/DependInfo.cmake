
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bypass.cc" "src/core/CMakeFiles/re_core.dir/bypass.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/bypass.cc.o.d"
  "/root/repo/src/core/insertion.cc" "src/core/CMakeFiles/re_core.dir/insertion.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/insertion.cc.o.d"
  "/root/repo/src/core/mddli.cc" "src/core/CMakeFiles/re_core.dir/mddli.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/mddli.cc.o.d"
  "/root/repo/src/core/phases.cc" "src/core/CMakeFiles/re_core.dir/phases.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/phases.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/re_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/sampler.cc" "src/core/CMakeFiles/re_core.dir/sampler.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/sampler.cc.o.d"
  "/root/repo/src/core/statstack.cc" "src/core/CMakeFiles/re_core.dir/statstack.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/statstack.cc.o.d"
  "/root/repo/src/core/stride_analysis.cc" "src/core/CMakeFiles/re_core.dir/stride_analysis.cc.o" "gcc" "src/core/CMakeFiles/re_core.dir/stride_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/re_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/re_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/re_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
