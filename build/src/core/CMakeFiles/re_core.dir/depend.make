# Empty dependencies file for re_core.
# This may be replaced when dependencies are built.
