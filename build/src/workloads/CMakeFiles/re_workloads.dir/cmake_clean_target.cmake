file(REMOVE_RECURSE
  "libre_workloads.a"
)
