# Empty compiler generated dependencies file for re_workloads.
# This may be replaced when dependencies are built.
