
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cursor.cc" "src/workloads/CMakeFiles/re_workloads.dir/cursor.cc.o" "gcc" "src/workloads/CMakeFiles/re_workloads.dir/cursor.cc.o.d"
  "/root/repo/src/workloads/dsl.cc" "src/workloads/CMakeFiles/re_workloads.dir/dsl.cc.o" "gcc" "src/workloads/CMakeFiles/re_workloads.dir/dsl.cc.o.d"
  "/root/repo/src/workloads/mix.cc" "src/workloads/CMakeFiles/re_workloads.dir/mix.cc.o" "gcc" "src/workloads/CMakeFiles/re_workloads.dir/mix.cc.o.d"
  "/root/repo/src/workloads/parallel.cc" "src/workloads/CMakeFiles/re_workloads.dir/parallel.cc.o" "gcc" "src/workloads/CMakeFiles/re_workloads.dir/parallel.cc.o.d"
  "/root/repo/src/workloads/program.cc" "src/workloads/CMakeFiles/re_workloads.dir/program.cc.o" "gcc" "src/workloads/CMakeFiles/re_workloads.dir/program.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/re_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/re_workloads.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/re_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
