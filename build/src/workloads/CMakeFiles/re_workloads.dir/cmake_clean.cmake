file(REMOVE_RECURSE
  "CMakeFiles/re_workloads.dir/cursor.cc.o"
  "CMakeFiles/re_workloads.dir/cursor.cc.o.d"
  "CMakeFiles/re_workloads.dir/dsl.cc.o"
  "CMakeFiles/re_workloads.dir/dsl.cc.o.d"
  "CMakeFiles/re_workloads.dir/mix.cc.o"
  "CMakeFiles/re_workloads.dir/mix.cc.o.d"
  "CMakeFiles/re_workloads.dir/parallel.cc.o"
  "CMakeFiles/re_workloads.dir/parallel.cc.o.d"
  "CMakeFiles/re_workloads.dir/program.cc.o"
  "CMakeFiles/re_workloads.dir/program.cc.o.d"
  "CMakeFiles/re_workloads.dir/suite.cc.o"
  "CMakeFiles/re_workloads.dir/suite.cc.o.d"
  "libre_workloads.a"
  "libre_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
