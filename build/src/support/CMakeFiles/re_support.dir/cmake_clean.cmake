file(REMOVE_RECURSE
  "CMakeFiles/re_support.dir/histogram.cc.o"
  "CMakeFiles/re_support.dir/histogram.cc.o.d"
  "CMakeFiles/re_support.dir/series_chart.cc.o"
  "CMakeFiles/re_support.dir/series_chart.cc.o.d"
  "CMakeFiles/re_support.dir/text_table.cc.o"
  "CMakeFiles/re_support.dir/text_table.cc.o.d"
  "libre_support.a"
  "libre_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
