file(REMOVE_RECURSE
  "libre_support.a"
)
