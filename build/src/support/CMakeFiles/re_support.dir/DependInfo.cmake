
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/histogram.cc" "src/support/CMakeFiles/re_support.dir/histogram.cc.o" "gcc" "src/support/CMakeFiles/re_support.dir/histogram.cc.o.d"
  "/root/repo/src/support/series_chart.cc" "src/support/CMakeFiles/re_support.dir/series_chart.cc.o" "gcc" "src/support/CMakeFiles/re_support.dir/series_chart.cc.o.d"
  "/root/repo/src/support/text_table.cc" "src/support/CMakeFiles/re_support.dir/text_table.cc.o" "gcc" "src/support/CMakeFiles/re_support.dir/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
