# Empty compiler generated dependencies file for re_support.
# This may be replaced when dependencies are built.
