file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/bypass_test.cc.o"
  "CMakeFiles/core_tests.dir/core/bypass_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/insertion_test.cc.o"
  "CMakeFiles/core_tests.dir/core/insertion_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mddli_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mddli_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/phases_test.cc.o"
  "CMakeFiles/core_tests.dir/core/phases_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cc.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/sampler_test.cc.o"
  "CMakeFiles/core_tests.dir/core/sampler_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/statstack_test.cc.o"
  "CMakeFiles/core_tests.dir/core/statstack_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/stride_analysis_test.cc.o"
  "CMakeFiles/core_tests.dir/core/stride_analysis_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
