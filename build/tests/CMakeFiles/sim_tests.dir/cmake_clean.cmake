file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/cache_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/cache_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/dram_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/dram_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/hw_prefetcher_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/hw_prefetcher_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/memory_system_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/memory_system_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/system_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/system_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/writeback_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/writeback_test.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
