file(REMOVE_RECURSE
  "CMakeFiles/workloads_tests.dir/workloads/cursor_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/cursor_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/dsl_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/dsl_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/mix_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/mix_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/parallel_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/parallel_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/program_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/program_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/suite_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/suite_test.cc.o.d"
  "workloads_tests"
  "workloads_tests.pdb"
  "workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
