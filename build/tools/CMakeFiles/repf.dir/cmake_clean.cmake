file(REMOVE_RECURSE
  "CMakeFiles/repf.dir/repf.cc.o"
  "CMakeFiles/repf.dir/repf.cc.o.d"
  "repf"
  "repf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
