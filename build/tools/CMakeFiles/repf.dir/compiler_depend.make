# Empty compiler generated dependencies file for repf.
# This may be replaced when dependencies are built.
