#include "support/json.hh"

#include <gtest/gtest.h>

namespace re::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_TRUE(parse("true")->as_bool());
  EXPECT_FALSE(parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2")->as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto doc = parse(
      "{\"version\": 1, \"entries\": [{\"k\": [1, 2]}, {\"k\": []}],"
      " \"flag\": true}");
  ASSERT_TRUE(doc.has_value());
  const Value* version = doc->find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_DOUBLE_EQ(version->as_number(), 1.0);
  const Value* entries = doc->find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_EQ(entries->as_array().size(), 2u);
  const Value* k = entries->as_array()[0].find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->as_array().size(), 2u);
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse("\"a\\\"b\"")->as_string(), "a\"b");
  EXPECT_EQ(parse("\"a\\\\b\"")->as_string(), "a\\b");
  EXPECT_EQ(parse("\"a\\n\\tb\"")->as_string(), "a\n\tb");
}

TEST(Json, WhitespaceIsTolerated) {
  const auto doc = parse("  {\n  \"a\" : [ 1 , 2 ]\t}\n  ");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a")->as_array().size(), 2u);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "nul", "\"unterminated", "1 2",
        "{\"a\": 1} trailing", "{'a': 1}", "[1 2]"}) {
    const auto doc = parse(bad);
    EXPECT_FALSE(doc.has_value()) << "accepted: " << bad;
    EXPECT_EQ(doc.status().code(), StatusCode::kDataLoss) << bad;
  }
}

TEST(Json, ErrorsCarryByteOffsets) {
  const auto doc = parse("{\"a\": !}");
  ASSERT_FALSE(doc.has_value());
  EXPECT_NE(doc.status().message().find("offset"), std::string::npos);
}

TEST(Json, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(parse("[1]")->find("a"), nullptr);
  const auto doc = parse("{\"a\": 1}");
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string raw = "line1\nline2\t\"quoted\" \\slash\\";
  // Appends rather than chained operator+: GCC 12's -Wrestrict misfires on
  // the temporary concatenation chain (PR 105329).
  std::string quoted = "\"";
  quoted += escape(raw);
  quoted += '"';
  const auto doc = parse(quoted);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), raw);
}

}  // namespace
}  // namespace re::json
