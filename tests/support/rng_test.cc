#include "support/rng.hh"

#include <gtest/gtest.h>

#include "testutil.hh"

namespace re {
namespace {

// All statistical bounds below hold for any seed by wide margins (>= 4
// sigma); RE_TEST_SEED lets a suspected seed-sensitivity be swept directly.
std::uint64_t seed() { return re::testing::test_seed(); }

TEST(Rng, SameSeedSameSequence) {
  Rng a(seed()), b(seed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(1000), b.next(1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(seed() + 1), b(seed() + 2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next(1 << 30) != b.next(1 << 30)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextStaysInRange) {
  Rng rng(seed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next(17), 17u);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(seed());
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(seed());
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricGapHasRequestedMean) {
  Rng rng(seed());
  const double mean = 1000.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t gap = rng.geometric_gap(mean);
    ASSERT_GE(gap, 1u);
    sum += static_cast<double>(gap);
  }
  EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(Rng, GeometricGapDegenerateMeanIsOne) {
  Rng rng(seed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.geometric_gap(0.5), 1u);
    EXPECT_EQ(rng.geometric_gap(1.0), 1u);
  }
}

TEST(Rng, ForkProducesIndependentChildSeeds) {
  Rng parent(seed());
  Rng c1(parent.fork());
  Rng c2(parent.fork());
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (c1.next(1 << 20) == c2.next(1 << 20)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(seed());
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace re
