#include "support/atomic_file.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "support/checksum.hh"

namespace re::support {
namespace {

/// Scratch file in the test's working directory, removed on destruction.
struct ScratchFile {
  explicit ScratchFile(std::string name) : path(std::move(name)) {}
  ~ScratchFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(AtomicFile, WriteThenReadRoundTrips) {
  ScratchFile scratch("atomic_file_test_roundtrip.txt");
  // Embedded NUL: binary-mode writes must not truncate.
  const std::string payload("line one\nline two\0binary tail", 29);
  ASSERT_TRUE(write_file_atomic(scratch.path, payload).ok());
  const Expected<std::string> read = read_file(scratch.path);
  ASSERT_TRUE(read.has_value()) << read.status().to_string();
  EXPECT_EQ(*read, payload);
  // The temp file was renamed away, not left behind.
  EXPECT_FALSE(file_exists(scratch.path + ".tmp"));
}

TEST(AtomicFile, OverwriteReplacesTheWholeFile) {
  ScratchFile scratch("atomic_file_test_overwrite.txt");
  ASSERT_TRUE(write_file_atomic(scratch.path, "a much longer first version")
                  .ok());
  ASSERT_TRUE(write_file_atomic(scratch.path, "short").ok());
  const Expected<std::string> read = read_file(scratch.path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, "short");
}

TEST(AtomicFile, WriteToUnwritableDirectoryReportsUnavailable) {
  const Status status =
      write_file_atomic("no_such_directory/sub/file.txt", "payload");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(AtomicFile, ReadMissingFileReportsUnavailable) {
  const Expected<std::string> read =
      read_file("atomic_file_test_does_not_exist.txt");
  EXPECT_FALSE(read.has_value());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
}

TEST(Checksum, MatchesTheCrc32CheckValue) {
  // The canonical CRC-32 check value (reflected, poly 0xEDB88320).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Any corruption flips the sum.
  EXPECT_NE(crc32("123456789"), crc32("123456780"));
}

TEST(Checksum, HexRenderingIsFixedWidthLowerCase) {
  EXPECT_EQ(crc32_hex(0xCBF43926u), "cbf43926");
  EXPECT_EQ(crc32_hex(0x0000000Au), "0000000a");
  EXPECT_EQ(crc32_hex(0u), "00000000");
}

}  // namespace
}  // namespace re::support
