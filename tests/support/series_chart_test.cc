#include "support/series_chart.hh"

#include <gtest/gtest.h>

namespace re {
namespace {

TEST(GroupedBars, RendersLabelAndSeries) {
  const std::string out = render_grouped_bars(
      {"bench1"}, {{"policyA", {0.5}}, {"policyB", {-0.25}}});
  EXPECT_NE(out.find("bench1"), std::string::npos);
  EXPECT_NE(out.find("policyA"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);
  EXPECT_NE(out.find("-25.0%"), std::string::npos);
}

TEST(GroupedBars, NegativeValuesUseDashBars) {
  const std::string out = render_grouped_bars({"x"}, {{"s", {-1.0}}});
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(GroupedBars, HandlesAllZeros) {
  EXPECT_NO_THROW(render_grouped_bars({"x"}, {{"s", {0.0}}}));
}

TEST(GroupedBars, SkipsMissingValues) {
  // Series shorter than the label list: no crash, label still printed.
  const std::string out =
      render_grouped_bars({"a", "b"}, {{"s", {0.1}}});
  EXPECT_NE(out.find("b"), std::string::npos);
}

TEST(Distribution, SortsEachSeriesAscending) {
  const std::string out =
      render_distribution({{"s", {0.3, 0.1, 0.2}}}, 2);
  const std::size_t p10 = out.find("10.0%");
  const std::size_t p30 = out.find("30.0%");
  ASSERT_NE(p10, std::string::npos);
  ASSERT_NE(p30, std::string::npos);
  EXPECT_LT(p10, p30);  // smallest value printed first
}

TEST(Distribution, EmptySeriesRendersDash) {
  const std::string out = render_distribution({{"s", {}}}, 4);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Distribution, StepCountControlsRows) {
  const std::string out =
      render_distribution({{"s", {0.1, 0.2, 0.3, 0.4}}}, 4);
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  // header + underline + 5 quantile rows (0..4 of 4).
  EXPECT_EQ(lines, 7);
}

}  // namespace
}  // namespace re
