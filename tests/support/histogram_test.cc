#include "support/histogram.hh"

#include <gtest/gtest.h>

namespace re {
namespace {

TEST(Histogram, EmptyHistogramHasNoMass) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0.0);
  EXPECT_EQ(h.distinct_keys(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.mode(), (std::pair<std::uint64_t, double>{0, 0.0}));
}

TEST(Histogram, AddAccumulatesWeights) {
  Histogram h;
  h.add(5);
  h.add(5, 2.0);
  h.add(7);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.count_of(5), 3.0);
  EXPECT_DOUBLE_EQ(h.count_of(7), 1.0);
  EXPECT_DOUBLE_EQ(h.count_of(42), 0.0);
  EXPECT_EQ(h.distinct_keys(), 2u);
}

TEST(Histogram, MeanIsWeighted) {
  Histogram h;
  h.add(10, 1.0);
  h.add(20, 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), (10.0 + 60.0) / 4.0);
}

TEST(Histogram, ModeBreaksTiesTowardsSmallestKey) {
  Histogram h;
  h.add(9, 2.0);
  h.add(3, 2.0);
  h.add(5, 1.0);
  EXPECT_EQ(h.mode().first, 3u);
  EXPECT_DOUBLE_EQ(h.mode().second, 2.0);
}

TEST(Histogram, MergeAddsAllMass) {
  Histogram a, b;
  a.add(1, 2.0);
  b.add(1, 3.0);
  b.add(2, 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count_of(1), 5.0);
  EXPECT_DOUBLE_EQ(a.count_of(2), 1.0);
  EXPECT_DOUBLE_EQ(a.total(), 6.0);
}

TEST(Histogram, SortedReturnsAscendingKeys) {
  Histogram h;
  h.add(30);
  h.add(10);
  h.add(20);
  const auto sorted = h.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 10u);
  EXPECT_EQ(sorted[1].first, 20u);
  EXPECT_EQ(sorted[2].first, 30u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(1);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0.0);
}

TEST(CumulativeDistribution, EmptyDistributionCdfIsOne) {
  const CumulativeDistribution d = Histogram{}.cumulative();
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.cdf(0), 1.0);
  EXPECT_DOUBLE_EQ(d.survival(100), 0.0);
}

TEST(CumulativeDistribution, CountsBelowAndAbove) {
  Histogram h;
  h.add(10, 2.0);
  h.add(20, 3.0);
  h.add(30, 5.0);
  const auto d = h.cumulative();
  EXPECT_DOUBLE_EQ(d.count_le(9), 0.0);
  EXPECT_DOUBLE_EQ(d.count_le(10), 2.0);
  EXPECT_DOUBLE_EQ(d.count_le(19), 2.0);
  EXPECT_DOUBLE_EQ(d.count_le(20), 5.0);
  EXPECT_DOUBLE_EQ(d.count_le(1000), 10.0);
  EXPECT_DOUBLE_EQ(d.count_gt(20), 5.0);
}

TEST(CumulativeDistribution, CdfAndSurvivalAreComplementary) {
  Histogram h;
  for (std::uint64_t k = 1; k <= 100; ++k) h.add(k);
  const auto d = h.cumulative();
  for (std::uint64_t x : {0ull, 1ull, 50ull, 99ull, 100ull, 200ull}) {
    EXPECT_NEAR(d.cdf(x) + d.survival(x), 1.0, 1e-12) << "x=" << x;
  }
}

TEST(CumulativeDistribution, QuantileFindsSmallestKeyReachingMass) {
  Histogram h;
  h.add(1, 1.0);
  h.add(2, 1.0);
  h.add(3, 2.0);
  const auto d = h.cumulative();
  EXPECT_EQ(d.quantile(0.25), 1u);
  EXPECT_EQ(d.quantile(0.5), 2u);
  EXPECT_EQ(d.quantile(0.75), 3u);
  EXPECT_EQ(d.quantile(1.0), 3u);
}

TEST(CumulativeDistribution, MaxKey) {
  Histogram h;
  h.add(17);
  h.add(4);
  EXPECT_EQ(h.cumulative().max_key(), 17u);
  EXPECT_EQ(Histogram{}.cumulative().max_key(), 0u);
}

// Property: for any weighted content, count_le is monotone and bounded by
// the total.
class CumulativeMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(CumulativeMonotoneTest, CountLeIsMonotone) {
  Histogram h;
  std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    h.add(x % 1000, static_cast<double>(x % 7 + 1));
  }
  const auto d = h.cumulative();
  double prev = -1.0;
  for (std::uint64_t key = 0; key <= 1000; key += 10) {
    const double c = d.count_le(key);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, d.total() + 1e-9);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CumulativeMonotoneTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace re
