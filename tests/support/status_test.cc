#include "support/status.hh"

#include <gtest/gtest.h>

namespace re {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s(StatusCode::kOutOfRange, "latency is NaN");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "latency is NaN");
  EXPECT_EQ(s.to_string(), "out_of_range: latency is NaN");
}

TEST(Status, CodeNamesAreStableTokens) {
  EXPECT_STREQ(status_code_name(StatusCode::kDataLoss), "data_loss");
  EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition),
               "failed_precondition");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "unavailable");
}

TEST(Status, UnavailableIsDistinctFromDataLoss) {
  // Recovery paths branch on the difference: unavailable = retry later /
  // start cold, data loss = the bytes are there but cannot be trusted.
  const Status down(StatusCode::kUnavailable, "circuit open");
  EXPECT_EQ(down.to_string(), "unavailable: circuit open");
  EXPECT_NE(down, Status(StatusCode::kDataLoss, "circuit open"));
}

TEST(Expected, HoldsValue) {
  const Expected<int> e(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(*e, 7);
  EXPECT_TRUE(e.status().ok());
  EXPECT_EQ(e.value_or(0), 7);
}

TEST(Expected, HoldsError) {
  const Expected<int> e(Status(StatusCode::kDataLoss, "no samples"));
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, OkStatusIsNormalizedToInternalError) {
  // Constructing from an ok status would break the value-xor-error
  // invariant; it degrades to an internal error instead.
  const Expected<int> e{Status::Ok()};
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::kInternal);
}

TEST(Expected, MutableAccess) {
  Expected<std::string> e(std::string("abc"));
  e->push_back('d');
  EXPECT_EQ(e.value(), "abcd");
}

}  // namespace
}  // namespace re
