#include "support/text_table.hh"

#include <gtest/gtest.h>

namespace re {
namespace {

TEST(TextTable, RendersHeaderAndUnderline) {
  TextTable t({"A", "B"});
  const std::string out = t.render();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("B"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "123456"});
  const std::string out = t.render();
  // Every line should have the same length (alignment).
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (first_len == std::string::npos) {
      first_len = len;
    } else {
      EXPECT_EQ(len, first_len) << out;
    }
    pos = eol + 1;
  }
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, SeparatorRendersDashes) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header underline plus explicit separator.
  std::size_t count = 0;
  for (std::size_t pos = out.find("-"); pos != std::string::npos;
       pos = out.find("\n-", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 2u);
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.5), "50.0%");
  EXPECT_EQ(format_percent(-0.123, 1), "-12.3%");
  EXPECT_EQ(format_percent(0.12345, 2), "12.35%");
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, Gbps) {
  EXPECT_EQ(format_gbps(8.0), "8.00 GB/s");
  EXPECT_EQ(format_gbps(15.637, 1), "15.6 GB/s");
}

TEST(Format, SpeedupPercent) {
  EXPECT_EQ(format_speedup_percent(1.5), "50.0%");
  EXPECT_EQ(format_speedup_percent(0.9), "-10.0%");
}

}  // namespace
}  // namespace re
