// ShardJournal tests: snapshot-then-append growth, the crash/restart
// recover() path (quarantine + compaction), and the error statuses the
// service layer relies on to distinguish "start cold" from "stop acking".
#include "serve/journal.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/plan_cache.hh"
#include "serve/harness.hh"
#include "workloads/program.hh"

namespace re::serve {
namespace {

using core::PhaseSignature;
using core::PrefetchPlan;
using runtime::PlanCache;
using runtime::PlanCacheOptions;
using workloads::PrefetchHint;

const PhaseSignature kSigA{{1, 0.5}, {2, 0.5}};
const PhaseSignature kSigB{{1, 0.5}, {3, 0.5}};
const PhaseSignature kSigC{{4, 1.0}};

std::vector<PrefetchPlan> plans_for(Pc pc, std::int64_t distance) {
  return {PrefetchPlan{pc, distance, PrefetchHint::T0}};
}

PlanCache seeded_cache() {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  return cache;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void overwrite(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Tear the final record the way a crash mid-append does: keep only the
/// first half of the last line, with no trailing newline.
void tear_tail(const std::string& path) {
  const std::string bytes = slurp(path);
  ASSERT_FALSE(bytes.empty());
  const std::size_t last_line = bytes.rfind('\n', bytes.size() - 2) + 1;
  const std::size_t keep = last_line + (bytes.size() - last_line) / 2;
  overwrite(path, bytes.substr(0, keep));
}

TEST(ShardJournal, CreateSnapshotsThenAppendsGrow) {
  const std::string path = "serve_journal_grow_test.json";
  ShardJournal journal;
  ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
  EXPECT_TRUE(journal.is_open());
  EXPECT_EQ(journal.path(), path);

  // The snapshot header promises 2 entries; the loader must accept the
  // third, appended one as valid growth — not a format violation.
  ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  EXPECT_EQ(journal.appended(), 1u);

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->loaded, 3u);
  EXPECT_FALSE(loaded->degraded());
  EXPECT_NE(loaded->cache.lookup(kSigA), nullptr);
  EXPECT_NE(loaded->cache.lookup(kSigB), nullptr);
  EXPECT_NE(loaded->cache.lookup(kSigC), nullptr);
  std::remove(path.c_str());
}

TEST(ShardJournal, AppendedDuplicateSignatureCollapsesOnLoad) {
  const std::string path = "serve_journal_dup_test.json";
  ShardJournal journal;
  ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
  // Two in-flight solves of one family can both ack an append for the same
  // signature. On load the duplicates collapse to one entry; the loader
  // rebuilds LRU order by inserting coldest-first, so the snapshot's record
  // wins over the appended one. Safe because duplicate appends only arise
  // from the deterministic solver re-solving the same family — the plans
  // are byte-identical in practice — and compaction folds appends into the
  // next snapshot anyway.
  ASSERT_TRUE(journal.append({kSigA, plans_for(1, 2048)}).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cache.size(), 2u);
  const auto* plans = loaded->cache.lookup(kSigA);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].distance_bytes, 512);
  std::remove(path.c_str());
}

TEST(ShardJournal, RecoverQuarantinesTornTailAndCompacts) {
  const std::string path = "serve_journal_recover_test.json";
  {
    ShardJournal journal;
    ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
    ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  }
  tear_tail(path);  // the crash: kSigC's record loses its second half

  ShardJournal restarted;
  auto recovered = restarted.recover(path, PlanCacheOptions{});
  ASSERT_TRUE(recovered.has_value()) << recovered.status().to_string();
  EXPECT_EQ(recovered->loaded, 2u);
  EXPECT_EQ(recovered->quarantined + recovered->missing, 1u);
  EXPECT_TRUE(recovered->degraded());
  EXPECT_EQ(recovered->cache.lookup(kSigC), nullptr);
  EXPECT_TRUE(restarted.is_open());

  // recover() compacted: the torn bytes are gone from disk, so the next
  // append lands on its own line instead of concatenating onto the tear.
  ASSERT_TRUE(restarted.append({kSigC, plans_for(4, 64)}).ok());
  auto reloaded = PlanCache::load_file(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->loaded, 3u);
  EXPECT_FALSE(reloaded->degraded());
  const auto* plans = reloaded->cache.lookup(kSigC);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].distance_bytes, 64);
  std::remove(path.c_str());
}

TEST(ShardJournal, AppendAfterTornTailWithoutRecoverCorruptsBothRecords) {
  // The hazard recover() exists for, pinned as behavior: appending through
  // open_existing() onto a torn tail concatenates two records into one
  // unparseable line, losing the new (acked-looking) record too.
  const std::string path = "serve_journal_hazard_test.json";
  {
    ShardJournal journal;
    ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
    ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  }
  tear_tail(path);

  ShardJournal naive;
  ASSERT_TRUE(naive.open_existing(path).ok());
  ASSERT_TRUE(naive.append({kSigC, plans_for(4, 64)}).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->loaded, 2u);  // the merged line is quarantined whole
  EXPECT_TRUE(loaded->degraded());
  EXPECT_EQ(loaded->cache.lookup(kSigC), nullptr);
  std::remove(path.c_str());
}

TEST(ShardJournal, AppendWithoutOpenIsAPreconditionFailure) {
  ShardJournal journal;
  EXPECT_FALSE(journal.is_open());
  const Status status = journal.append({kSigA, plans_for(1, 512)});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardJournal, RecoverMissingFileIsUnavailable) {
  // "Start cold" (no journal yet) must stay distinguishable from "the
  // journal exists but is damaged" — callers create() on kUnavailable.
  ShardJournal journal;
  auto recovered =
      journal.recover("serve_journal_no_such_file.json", PlanCacheOptions{});
  ASSERT_FALSE(recovered.has_value());
  EXPECT_EQ(recovered.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(journal.is_open());
}

TEST(ShardJournal, MoveTransfersOwnershipOfTheFd) {
  const std::string path = "serve_journal_move_test.json";
  ShardJournal journal;
  ASSERT_TRUE(journal.create(path, seeded_cache()).ok());

  ShardJournal moved = std::move(journal);
  EXPECT_FALSE(journal.is_open());
  EXPECT_TRUE(moved.is_open());
  ASSERT_TRUE(moved.append({kSigC, plans_for(4, 128)}).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->loaded, 3u);
  std::remove(path.c_str());
}

TEST(ServeCrashCheck, ShortRunRecoversEveryAckedEntry) {
  const ServeCrashReport report =
      serve_crash_check(/*seed=*/1234, /*trials=*/4,
                        "serve_journal_crash_scratch");
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.trials, 4);
  EXPECT_GT(report.acked_total, 0u);
  EXPECT_EQ(report.recovered_total, report.acked_total);
  EXPECT_EQ(report.lost_acked, 0u);
  EXPECT_EQ(report.alien_entries, 0u);
}

}  // namespace
}  // namespace re::serve
