// ShardJournal tests: snapshot-then-append growth, the crash/restart
// recover() path (quarantine + compaction), and the error statuses the
// service layer relies on to distinguish "start cold" from "stop acking".
#include "serve/journal.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/plan_cache.hh"
#include "serve/harness.hh"
#include "serve/service.hh"
#include "support/rng.hh"
#include "testutil.hh"
#include "workloads/program.hh"

namespace re::serve {
namespace {

using core::PhaseSignature;
using core::PrefetchPlan;
using runtime::PlanCache;
using runtime::PlanCacheOptions;
using workloads::PrefetchHint;

const PhaseSignature kSigA{{1, 0.5}, {2, 0.5}};
const PhaseSignature kSigB{{1, 0.5}, {3, 0.5}};
const PhaseSignature kSigC{{4, 1.0}};

std::vector<PrefetchPlan> plans_for(Pc pc, std::int64_t distance) {
  return {PrefetchPlan{pc, distance, PrefetchHint::T0}};
}

PlanCache seeded_cache() {
  PlanCache cache;
  cache.insert(kSigA, plans_for(1, 512));
  cache.insert(kSigB, plans_for(3, 256));
  return cache;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void overwrite(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Tear the final record the way a crash mid-append does: keep only the
/// first half of the last line, with no trailing newline.
void tear_tail(const std::string& path) {
  const std::string bytes = slurp(path);
  ASSERT_FALSE(bytes.empty());
  const std::size_t last_line = bytes.rfind('\n', bytes.size() - 2) + 1;
  const std::size_t keep = last_line + (bytes.size() - last_line) / 2;
  overwrite(path, bytes.substr(0, keep));
}

TEST(ShardJournal, CreateSnapshotsThenAppendsGrow) {
  const std::string path = "serve_journal_grow_test.json";
  ShardJournal journal;
  ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
  EXPECT_TRUE(journal.is_open());
  EXPECT_EQ(journal.path(), path);

  // The snapshot header promises 2 entries; the loader must accept the
  // third, appended one as valid growth — not a format violation.
  ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  EXPECT_EQ(journal.appended(), 1u);

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->loaded, 3u);
  EXPECT_FALSE(loaded->degraded());
  EXPECT_NE(loaded->cache.lookup(kSigA), nullptr);
  EXPECT_NE(loaded->cache.lookup(kSigB), nullptr);
  EXPECT_NE(loaded->cache.lookup(kSigC), nullptr);
  std::remove(path.c_str());
}

TEST(ShardJournal, AppendedDuplicateSignatureCollapsesOnLoad) {
  const std::string path = "serve_journal_dup_test.json";
  ShardJournal journal;
  ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
  // Two in-flight solves of one family can both ack an append for the same
  // signature. On load the duplicates collapse to one entry; the loader
  // rebuilds LRU order by inserting coldest-first, so the snapshot's record
  // wins over the appended one. Safe because duplicate appends only arise
  // from the deterministic solver re-solving the same family — the plans
  // are byte-identical in practice — and compaction folds appends into the
  // next snapshot anyway.
  ASSERT_TRUE(journal.append({kSigA, plans_for(1, 2048)}).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cache.size(), 2u);
  const auto* plans = loaded->cache.lookup(kSigA);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].distance_bytes, 512);
  std::remove(path.c_str());
}

TEST(ShardJournal, RecoverQuarantinesTornTailAndCompacts) {
  const std::string path = "serve_journal_recover_test.json";
  {
    ShardJournal journal;
    ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
    ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  }
  tear_tail(path);  // the crash: kSigC's record loses its second half

  ShardJournal restarted;
  auto recovered = restarted.recover(path, PlanCacheOptions{});
  ASSERT_TRUE(recovered.has_value()) << recovered.status().to_string();
  EXPECT_EQ(recovered->loaded, 2u);
  EXPECT_EQ(recovered->quarantined + recovered->missing, 1u);
  EXPECT_TRUE(recovered->degraded());
  EXPECT_EQ(recovered->cache.lookup(kSigC), nullptr);
  EXPECT_TRUE(restarted.is_open());

  // recover() compacted: the torn bytes are gone from disk, so the next
  // append lands on its own line instead of concatenating onto the tear.
  ASSERT_TRUE(restarted.append({kSigC, plans_for(4, 64)}).ok());
  auto reloaded = PlanCache::load_file(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->loaded, 3u);
  EXPECT_FALSE(reloaded->degraded());
  const auto* plans = reloaded->cache.lookup(kSigC);
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ((*plans)[0].distance_bytes, 64);
  std::remove(path.c_str());
}

TEST(ShardJournal, AppendAfterTornTailWithoutRecoverCorruptsBothRecords) {
  // The hazard recover() exists for, pinned as behavior: appending through
  // open_existing() onto a torn tail concatenates two records into one
  // unparseable line, losing the new (acked-looking) record too.
  const std::string path = "serve_journal_hazard_test.json";
  {
    ShardJournal journal;
    ASSERT_TRUE(journal.create(path, seeded_cache()).ok());
    ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  }
  tear_tail(path);

  ShardJournal naive;
  ASSERT_TRUE(naive.open_existing(path).ok());
  ASSERT_TRUE(naive.append({kSigC, plans_for(4, 64)}).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->loaded, 2u);  // the merged line is quarantined whole
  EXPECT_TRUE(loaded->degraded());
  EXPECT_EQ(loaded->cache.lookup(kSigC), nullptr);
  std::remove(path.c_str());
}

TEST(ShardJournal, AppendWithoutOpenIsAPreconditionFailure) {
  ShardJournal journal;
  EXPECT_FALSE(journal.is_open());
  const Status status = journal.append({kSigA, plans_for(1, 512)});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardJournal, RecoverMissingFileIsUnavailable) {
  // "Start cold" (no journal yet) must stay distinguishable from "the
  // journal exists but is damaged" — callers create() on kUnavailable.
  ShardJournal journal;
  auto recovered =
      journal.recover("serve_journal_no_such_file.json", PlanCacheOptions{});
  ASSERT_FALSE(recovered.has_value());
  EXPECT_EQ(recovered.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(journal.is_open());
}

TEST(ShardJournal, MoveTransfersOwnershipOfTheFd) {
  const std::string path = "serve_journal_move_test.json";
  ShardJournal journal;
  ASSERT_TRUE(journal.create(path, seeded_cache()).ok());

  ShardJournal moved = std::move(journal);
  EXPECT_FALSE(journal.is_open());
  EXPECT_TRUE(moved.is_open());
  ASSERT_TRUE(moved.append({kSigC, plans_for(4, 128)}).ok());

  auto loaded = PlanCache::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->loaded, 3u);
  std::remove(path.c_str());
}

// Torn-write fuzz: a journal truncated at EVERY byte offset (plus a seeded
// bit-flip sweep) must recover to load-or-quarantine — never crash, never
// produce an entry that was not one of the three known writes, and always
// leave an appendable journal behind.
TEST(ShardJournal, TruncationAtEveryOffsetRecoversOrQuarantines) {
  const std::string path = "serve_journal_fuzz_test.json";
  {
    ShardJournal journal;
    ASSERT_TRUE(journal.create(path, seeded_cache(), "feedface01234567").ok());
    ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  }
  const std::string pristine = slurp(path);
  ASSERT_GT(pristine.size(), 0u);

  const auto audit = [&](const runtime::PlanCache& cache) {
    // Every recovered entry must be one of the three known writes, with
    // its exact known plans — anything else is an alien entry.
    for (const runtime::PlanCache::Entry& entry : cache.entries()) {
      const std::uint64_t fp = signature_fingerprint(entry.signature);
      ASSERT_EQ(entry.plans.size(), 1u);
      if (fp == signature_fingerprint(kSigA)) {
        EXPECT_EQ(entry.plans[0].distance_bytes, 512);
      } else if (fp == signature_fingerprint(kSigB)) {
        EXPECT_EQ(entry.plans[0].distance_bytes, 256);
      } else if (fp == signature_fingerprint(kSigC)) {
        EXPECT_EQ(entry.plans[0].distance_bytes, 128);
      } else {
        ADD_FAILURE() << "alien entry recovered from a damaged journal";
      }
    }
  };

  for (std::size_t cut = 0; cut <= pristine.size(); ++cut) {
    overwrite(path, pristine.substr(0, cut));
    ShardJournal restarted;
    auto recovered = restarted.recover(path, PlanCacheOptions{});
    if (!recovered.has_value()) {
      // A clean refusal (e.g. the header itself is cut) is acceptable;
      // an open journal handle is not.
      EXPECT_FALSE(restarted.is_open()) << "cut at " << cut;
      continue;
    }
    ASSERT_TRUE(restarted.is_open()) << "cut at " << cut;
    audit(recovered->cache);
    // Quarantine accounting must cover whatever did not load.
    EXPECT_LE(recovered->loaded, 3u) << "cut at " << cut;

    // The compacted journal must take (and keep) a fresh append. When the
    // cut preserved kSigC's original record, the compacted snapshot holds
    // it and duplicate-collapse keeps the snapshot's copy (128); otherwise
    // the appended record (64) is the only one.
    const bool recovered_c = recovered->cache.lookup(kSigC) != nullptr;
    ASSERT_TRUE(restarted.append({kSigC, plans_for(4, 64)}).ok())
        << "cut at " << cut;
    restarted.close();
    auto reloaded = PlanCache::load_file(path);
    ASSERT_TRUE(reloaded.has_value()) << "cut at " << cut;
    const auto* plans = reloaded->cache.lookup(kSigC);
    ASSERT_NE(plans, nullptr) << "cut at " << cut;
    EXPECT_EQ((*plans)[0].distance_bytes, recovered_c ? 128 : 64)
        << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(ShardJournal, SeededBitFlipsNeverCrashOrAdmitAliens) {
  const std::string path = "serve_journal_bitflip_test.json";
  {
    ShardJournal journal;
    ASSERT_TRUE(journal.create(path, seeded_cache(), "feedface01234567").ok());
    ASSERT_TRUE(journal.append({kSigC, plans_for(4, 128)}).ok());
  }
  const std::string pristine = slurp(path);
  Rng rng(re::testing::test_seed() ^ 0xB17F11Bull);

  for (int trial = 0; trial < 128; ++trial) {
    std::string damaged = pristine;
    const int flips = 1 + static_cast<int>(rng.next(3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = static_cast<std::size_t>(
          rng.next(static_cast<std::uint64_t>(damaged.size())));
      damaged[byte] = static_cast<char>(
          static_cast<unsigned char>(damaged[byte]) ^ (1u << rng.next(8)));
    }
    overwrite(path, damaged);

    ShardJournal restarted;
    auto recovered = restarted.recover(path, PlanCacheOptions{});
    if (!recovered.has_value()) continue;  // clean refusal is fine
    // A flipped record must fail its CRC (quarantine) or — vanishingly
    // unlikely at these sizes — still decode to one of the known entries.
    // What it must never do is decode to different plans for a known
    // signature or to a signature that was never written.
    for (const runtime::PlanCache::Entry& entry :
         recovered->cache.entries()) {
      const std::uint64_t fp = signature_fingerprint(entry.signature);
      if (fp == signature_fingerprint(kSigA)) {
        EXPECT_EQ(entry.plans[0].distance_bytes, 512) << "trial " << trial;
      } else if (fp == signature_fingerprint(kSigB)) {
        EXPECT_EQ(entry.plans[0].distance_bytes, 256) << "trial " << trial;
      } else if (fp == signature_fingerprint(kSigC)) {
        EXPECT_EQ(entry.plans[0].distance_bytes, 128) << "trial " << trial;
      } else {
        ADD_FAILURE() << "alien signature admitted in trial " << trial;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ServeCrashCheck, ShortRunRecoversEveryAckedEntry) {
  const ServeCrashReport report =
      serve_crash_check(/*seed=*/1234, /*trials=*/4,
                        "serve_journal_crash_scratch");
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.trials, 4);
  EXPECT_GT(report.acked_total, 0u);
  EXPECT_EQ(report.recovered_total, report.acked_total);
  EXPECT_EQ(report.lost_acked, 0u);
  EXPECT_EQ(report.alien_entries, 0u);
}

}  // namespace
}  // namespace re::serve
