// Trust-but-verify warm-start tests: the AdvisoryService's recovery of
// prior-run shard journals. Every path that can go wrong — foreign
// fingerprint, corrupt record, implausible plan that passes its CRC — must
// cost cache warmth only (reject or quarantine), never serve suspect state.
#include <sys/stat.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/plan_cache.hh"
#include "serve/harness.hh"
#include "serve/service.hh"
#include "testutil.hh"

namespace re::serve {
namespace {

using runtime::PlanCache;
using workloads::PrefetchHint;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void overwrite(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Write a one-shard warm directory whose journal holds `plans` for the
/// first few of `families`, stamped with `fingerprint`.
void write_warm_dir(const std::string& dir,
                    const std::vector<Family>& families,
                    std::size_t count, std::int64_t distance,
                    const std::string& fingerprint) {
  ::mkdir(dir.c_str(), 0755);
  PlanCache cache({/*capacity=*/64});
  for (std::size_t i = 0; i < count; ++i) {
    cache.insert(families[i].signature,
                 {core::PrefetchPlan{static_cast<Pc>(0x9000 + i), distance,
                                     PrefetchHint::T0}});
  }
  ASSERT_TRUE(cache.save(dir + "/shard-0.journal", fingerprint).ok());
}

ServiceOptions warm_options(const std::string& dir,
                            const std::string& expected_fingerprint) {
  ServiceOptions options;
  options.shards = 2;  // shard drift on purpose: the warm dir has one
  options.cache.capacity = 64;
  options.seed = re::testing::test_seed();
  options.warm_start_dir = dir;
  options.config_fingerprint = expected_fingerprint;
  return options;
}

TEST(WarmStart, VerifiedEntriesAreServedAsCacheHits) {
  const std::vector<Family> families = make_families(2, 4);
  const std::string dir = "warm_start_ok_dir";
  write_warm_dir(dir, families, 3, 512, "feedface01234567");

  AdvisoryService service(warm_options(dir, "feedface01234567"),
                          make_synthetic_solver(families), nullptr);
  EXPECT_EQ(service.stats().warm_files_loaded, 1u);
  EXPECT_EQ(service.stats().warm_files_rejected, 0u);
  EXPECT_EQ(service.stats().warm_entries_loaded, 3u);
  EXPECT_EQ(service.stats().warm_entries_quarantined, 0u);

  // The warm plan (distance 512, pc 0x9000) is distinguishable from what
  // the synthetic solver would produce — a hit proves the warm state was
  // installed, re-homed across the shard-count drift.
  std::vector<PlanResponse> out;
  PlanRequest request;
  request.id = 1;
  request.core = 0;
  request.family = 0;
  request.signature = families[0].signature;
  service.submit(request, 0, out);
  service.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnswerKind::CacheHit);
  ASSERT_EQ(out[0].plans.size(), 1u);
  EXPECT_EQ(out[0].plans[0].distance_bytes, 512);
}

TEST(WarmStart, ForeignFingerprintRejectsTheWholeFile) {
  const std::vector<Family> families = make_families(2, 4);
  const std::string dir = "warm_start_stale_fp_dir";
  write_warm_dir(dir, families, 3, 512, "feedface01234567");

  // Every record is intact and CRC-clean; only the header's fingerprint
  // differs from the service's expectation. Nothing may load.
  AdvisoryService service(warm_options(dir, "0000dead0000beef"),
                          make_synthetic_solver(families), nullptr);
  EXPECT_EQ(service.stats().warm_files_loaded, 0u);
  EXPECT_EQ(service.stats().warm_files_rejected, 1u);
  EXPECT_EQ(service.stats().warm_entries_loaded, 0u);

  std::vector<PlanResponse> out;
  PlanRequest request;
  request.id = 1;
  request.core = 0;
  request.family = 0;
  request.signature = families[0].signature;
  service.submit(request, 0, out);
  service.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].kind, AnswerKind::CacheHit);  // degraded to fresh solve
}

TEST(WarmStart, EmptyExpectedFingerprintAcceptsAnyHeader) {
  // The opt-out: a service with no fingerprint of its own takes unstamped
  // and stamped files alike (CRC and sanity still apply).
  const std::vector<Family> families = make_families(2, 4);
  const std::string dir = "warm_start_optout_dir";
  write_warm_dir(dir, families, 2, 512, "feedface01234567");

  AdvisoryService service(warm_options(dir, ""),
                          make_synthetic_solver(families), nullptr);
  EXPECT_EQ(service.stats().warm_files_loaded, 1u);
  EXPECT_EQ(service.stats().warm_entries_loaded, 2u);
}

TEST(WarmStart, CorruptRecordIsQuarantinedRestIsKept) {
  const std::vector<Family> families = make_families(2, 4);
  const std::string dir = "warm_start_corrupt_dir";
  write_warm_dir(dir, families, 3, 512, "feedface01234567");

  // Flip one byte inside the middle record's plan payload: its CRC fails,
  // the other two records stay loadable.
  const std::string path = dir + "/shard-0.journal";
  std::string bytes = slurp(path);
  const std::size_t second_line = bytes.find('\n', bytes.find('\n') + 1) + 1;
  const std::size_t third_line = bytes.find('\n', second_line) + 1;
  ASSERT_LT(third_line, bytes.size());
  bytes[second_line + (third_line - second_line) / 2] ^= 0x20;
  overwrite(path, bytes);

  AdvisoryService service(warm_options(dir, "feedface01234567"),
                          make_synthetic_solver(families), nullptr);
  EXPECT_EQ(service.stats().warm_files_loaded, 1u);
  EXPECT_EQ(service.stats().warm_entries_loaded, 2u);
  EXPECT_EQ(service.stats().warm_entries_quarantined, 1u);
}

TEST(WarmStart, ImplausiblePlanFailsSanityDespiteValidCrc) {
  // An entry whose CRC is genuine (written by PlanCache itself) but whose
  // prefetch distance is beyond any plausible stride: the plan-sanity
  // revalidation (ProfileValidator bounds) must quarantine it — CRC alone
  // is not trust.
  const std::vector<Family> families = make_families(2, 4);
  const std::string dir = "warm_start_insane_dir";
  write_warm_dir(dir, families, 2, std::int64_t{1} << 45,
                 "feedface01234567");

  AdvisoryService service(warm_options(dir, "feedface01234567"),
                          make_synthetic_solver(families), nullptr);
  EXPECT_EQ(service.stats().warm_files_loaded, 1u);
  EXPECT_EQ(service.stats().warm_entries_loaded, 0u);
  EXPECT_EQ(service.stats().warm_entries_quarantined, 2u);

  std::vector<PlanResponse> out;
  PlanRequest request;
  request.id = 1;
  request.core = 0;
  request.family = 0;
  request.signature = families[0].signature;
  service.submit(request, 0, out);
  service.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].kind, AnswerKind::CacheHit);
}

TEST(WarmStart, MissingDirectoryIsAColdStart) {
  const std::vector<Family> families = make_families(2, 4);
  AdvisoryService service(
      warm_options("warm_start_no_such_dir", "feedface01234567"),
      make_synthetic_solver(families), nullptr);
  EXPECT_EQ(service.stats().warm_files_loaded, 0u);
  EXPECT_EQ(service.stats().warm_files_rejected, 0u);
  EXPECT_EQ(service.stats().warm_entries_loaded, 0u);
}

TEST(WarmStart, ConfigFingerprintIsStableAndConfigSensitive) {
  const sim::MachineConfig amd = sim::amd_phenom_ii();
  const sim::MachineConfig intel = sim::intel_sandybridge();
  core::OptimizerOptions knobs;
  const std::string a = config_fingerprint(amd, knobs);
  const std::string b = config_fingerprint(amd, knobs);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);  // 16 hex digits
  EXPECT_NE(a, config_fingerprint(intel, knobs));
  core::OptimizerOptions no_nt = knobs;
  no_nt.enable_non_temporal = false;
  EXPECT_NE(a, config_fingerprint(amd, no_nt));
}

TEST(PoisonCheck, ShortSweepHoldsEveryGate) {
  const PoisonReport report = serve_poison_check(
      re::testing::test_seed(), /*trials=*/3, "warm_start_poison_scratch");
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.trials, 3);
  EXPECT_EQ(report.stale_fresh, 0u);
  EXPECT_EQ(report.alien_served, 0u);
  EXPECT_EQ(report.acked_then_lost, 0u);
  EXPECT_EQ(report.recovery_failures, 0u);
}

}  // namespace
}  // namespace re::serve
