// Fairness-layer tests: the TokenBucket and DrrScheduler value types, the
// service-level isolation they compose into (quota sheds, per-tenant
// breaker trip-out, bounded outboxes), and the fairness-off compatibility
// guarantee (byte-identical to the PR 6 FIFO path).
#include "serve/fairness.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/harness.hh"
#include "serve/service.hh"
#include "testutil.hh"

namespace re::serve {
namespace {

// ------------------------------------------------------------ TokenBucket

TEST(TokenBucket, BurstThenSustainedRate) {
  TokenBucket bucket(/*burst_tokens=*/3, /*rate_milli=*/100, /*now=*/0);
  // The full burst is available immediately...
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));
  // ...then refill is 0.1 tokens/tick: the next token exists at tick 10.
  EXPECT_FALSE(bucket.try_take(9));
  EXPECT_TRUE(bucket.try_take(10));
  EXPECT_FALSE(bucket.try_take(10));
}

TEST(TokenBucket, RefillClampsAtBurstCapacity) {
  TokenBucket bucket(/*burst_tokens=*/2, /*rate_milli=*/1000, /*now=*/0);
  // A long idle period cannot bank more than the burst.
  EXPECT_EQ(bucket.available_milli(1000000), 2000u);
  EXPECT_TRUE(bucket.try_take(1000000));
  EXPECT_TRUE(bucket.try_take(1000000));
  EXPECT_FALSE(bucket.try_take(1000000));
}

TEST(TokenBucket, ZeroRateNeverRecovers) {
  TokenBucket bucket(/*burst_tokens=*/1, /*rate_milli=*/0, /*now=*/0);
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(1u << 20));
}

TEST(TokenBucket, PhaseOffsetShiftsTheFirstRefillBoundary) {
  // Two identical tenants with different phase offsets must not cross
  // refill boundaries in lockstep: the pre-spent phase delays the phased
  // bucket's recovery.
  TokenBucket aligned(1, 100, 0, /*phase_milli=*/0);
  TokenBucket phased(1, 100, 0, /*phase_milli=*/500);
  EXPECT_TRUE(aligned.try_take(0));
  EXPECT_FALSE(phased.try_take(0));  // 500 milli pre-spent: half a token
  EXPECT_TRUE(phased.try_take(5));   // recovered the phase at tick 5
  EXPECT_FALSE(aligned.try_take(5));
  EXPECT_TRUE(aligned.try_take(10));  // aligned boundary stays at tick 10
}

// ------------------------------------------------------------ DrrScheduler

TEST(DrrScheduler, RoundRobinsAcrossActiveTenants) {
  DrrScheduler<int> drr;
  // Tenant 1 floods; tenants 2 and 3 queue one item each.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(drr.push(1, 100 + i, 8));
  EXPECT_TRUE(drr.push(2, 200, 8));
  EXPECT_TRUE(drr.push(3, 300, 8));
  EXPECT_EQ(drr.size(), 6u);
  EXPECT_EQ(drr.active_tenants(), 3u);

  // Quantum 1, cost 1: strict round-robin — the flooder gets exactly one
  // slot per round, so 2 and 3 drain after at most one of 1's items each.
  std::vector<int> order;
  while (auto work = drr.pop(1, 1)) order.push_back(*work);
  const std::vector<int> expected = {100, 200, 300, 101, 102, 103};
  EXPECT_EQ(order, expected);
  EXPECT_TRUE(drr.empty());
  EXPECT_EQ(drr.active_tenants(), 0u);
}

TEST(DrrScheduler, PerTenantCapShedsOnlyTheOffender) {
  DrrScheduler<int> drr;
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(drr.push(7, i, 3));
  EXPECT_FALSE(drr.push(7, 99, 3));  // the flooder's 4th is refused
  EXPECT_TRUE(drr.push(8, 0, 3));    // an unrelated tenant is not
  EXPECT_EQ(drr.tenant_depth(7), 3u);
  EXPECT_EQ(drr.tenant_depth(8), 1u);
  EXPECT_EQ(drr.max_tenant_depth(), 3u);
}

TEST(DrrScheduler, DeficitDoesNotSurviveGoingIdle) {
  DrrScheduler<int> drr;
  EXPECT_TRUE(drr.push(1, 10, 8));
  EXPECT_TRUE(drr.pop(5, 1).has_value());  // banked 5, spent 1, drained
  // Re-activation starts from zero deficit: with cost 3 and quantum 1 the
  // tenant needs 3 fresh head visits, not the stale credit.
  EXPECT_TRUE(drr.push(1, 11, 8));
  EXPECT_EQ(*drr.pop(1, 3), 11);  // loops internally: 3 head grants
  EXPECT_TRUE(drr.empty());
}

TEST(DrrScheduler, ExpensiveItemsServeFewerPerRound) {
  DrrScheduler<int> drr;
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(drr.push(1, 100 + i, 8));
    EXPECT_TRUE(drr.push(2, 200 + i, 8));
  }
  // cost 2, quantum 1: each tenant needs two head visits per item, but the
  // interleave stays fair — neither tenant serves its second item before
  // the other's first.
  std::vector<int> order;
  while (auto work = drr.pop(1, 2)) order.push_back(*work);
  const std::vector<int> expected = {100, 200, 101, 201};
  EXPECT_EQ(order, expected);
}

// --------------------------------------------------- service integration

std::vector<Family> test_families() { return make_families(2, 8); }

ServiceOptions fairness_options() {
  ServiceOptions options;
  options.shards = 2;
  options.queue_capacity = 32;
  options.solve_slots = 2;
  options.solve_cost_ticks = 4;
  options.deadline_ticks = 128;
  options.seed = re::testing::test_seed();
  options.fairness.enabled = true;
  options.fairness.quota_burst = 4;
  options.fairness.quota_rate_milli = 0;  // no refill: sheds are immediate
  options.fairness.per_core_queue_cap = 4;
  return options;
}

PlanRequest request_for(std::uint64_t id, int core,
                        const std::vector<Family>& families,
                        std::uint64_t family) {
  PlanRequest request;
  request.id = id;
  request.core = core;
  request.family = family;
  request.signature = families[family % families.size()].signature;
  return request;
}

TEST(ServiceFairness, QuotaOverflowShedsOnlyTheOffender) {
  const std::vector<Family> families = test_families();
  AdvisoryService service(fairness_options(),
                          make_synthetic_solver(families), nullptr);
  std::vector<PlanResponse> out;
  // Core 0 floods 12 cold requests at tick 0: the burst (4 tokens, less
  // the sub-token seeded phase pre-spend) passes, the rest shed as
  // QuotaExceeded. Core 1's single request is untouched.
  for (std::uint64_t i = 0; i < 12; ++i) {
    service.submit(request_for(i + 1, 0, families, 2 + (i % 8)), 0, out);
  }
  service.submit(request_for(100, 1, families, 2), 0, out);
  service.drain(0, out);

  std::uint64_t core0_quota_shed = 0;
  for (const PlanResponse& response : out) {
    if (response.cause == DegradeCause::QuotaExceeded) {
      EXPECT_EQ(response.core, 0);
      EXPECT_TRUE(response.degraded());
      ++core0_quota_shed;
    }
    if (response.core == 1) {
      EXPECT_NE(response.cause, DegradeCause::QuotaExceeded);
    }
  }
  // 8 sheds with a zero phase offset, 9 when the pre-spend costs the 4th
  // burst token — never more, never the victim's.
  EXPECT_GE(core0_quota_shed, 8u);
  EXPECT_LE(core0_quota_shed, 9u);
  EXPECT_EQ(service.stats().shed_quota, core0_quota_shed);
  EXPECT_EQ(service.stats().stale_fresh_violations, 0u);
}

TEST(ServiceFairness, PersistentFloodTripsTheTenantBreaker) {
  ServiceOptions options = fairness_options();
  options.fairness.quota_trip_threshold = 16;
  const std::vector<Family> families = test_families();
  AdvisoryService service(options, make_synthetic_solver(families), nullptr);
  std::vector<PlanResponse> out;
  for (std::uint64_t i = 0; i < 64; ++i) {
    service.submit(request_for(i + 1, 0, families, 2), 0, out);
  }
  EXPECT_GE(service.stats().quota_breaker_trips, 1u);
  EXPECT_TRUE(service.tenant_state(0) == runtime::BreakerState::Backoff ||
              service.tenant_state(0) == runtime::BreakerState::Open);
  // While down, the shed is the zero-cost fast path — still QuotaExceeded,
  // still only this tenant.
  const std::size_t before = out.size();
  service.submit(request_for(999, 0, families, 2), 0, out);
  ASSERT_EQ(out.size(), before + 1);
  EXPECT_EQ(out.back().cause, DegradeCause::QuotaExceeded);
  // An unrelated tenant is still served normally (its cold miss is
  // admitted to the solve queue, not shed).
  service.submit(request_for(1000, 1, families, 0), 0, out);
  service.drain(0, out);
  bool found = false;
  for (const PlanResponse& response : out) {
    if (response.id != 1000) continue;
    found = true;
    EXPECT_NE(response.cause, DegradeCause::QuotaExceeded);
  }
  EXPECT_TRUE(found);
}

TEST(ServiceFairness, FullOutboxRejectsNewRequestsUnanswered) {
  ServiceOptions options = fairness_options();
  options.fairness.quota_burst = 64;  // quota out of the way
  options.fairness.outbox_capacity = 2;
  const std::vector<Family> families = test_families();
  AdvisoryService service(options, make_synthetic_solver(families), nullptr);
  std::vector<PlanResponse> out;
  // Three hot-family requests: the first two answer into the outbox
  // (capacity 2); the third finds outbox + outstanding at capacity and is
  // rejected unanswered.
  for (std::uint64_t i = 0; i < 3; ++i) {
    service.submit(request_for(i + 1, 0, families, 0), i, out);
    service.step(i + 1, out);
  }
  service.drain(3, out);
  EXPECT_TRUE(out.empty());  // nothing emitted directly in outbox mode
  EXPECT_EQ(service.stats().shed_slow_consumer, 1u);
  EXPECT_EQ(service.outbox_depth(0), 2u);

  // collect() drains the held responses; the core can then submit again.
  std::vector<PlanResponse> read;
  EXPECT_EQ(service.collect(0, 64, read), 2u);
  EXPECT_EQ(service.outbox_depth(0), 0u);
  service.submit(request_for(10, 0, families, 0), 10, read);
  service.drain(10, read);
  EXPECT_EQ(service.collect(0, 64, read), 1u);
}

TEST(ServiceFairness, DisabledFairnessIsByteIdenticalToFifo) {
  // The master switch off must reproduce the PR 6 response stream exactly
  // — same kinds, causes, ticks, ids — for identical traffic.
  TrafficConfig traffic;
  traffic.cores = 8;
  traffic.ticks = 96;
  traffic.request_rate = 0.2;
  traffic.hot_families = 2;
  traffic.cold_families = 8;
  traffic.seed = re::testing::test_seed();

  ServiceOptions fifo;
  fifo.shards = 2;
  fifo.queue_capacity = 8;
  fifo.solve_slots = 2;
  fifo.seed = re::testing::test_seed();
  ASSERT_FALSE(fifo.fairness.enabled);

  const std::vector<Family> families = make_families(2, 8);
  const AdvisoryService::Solver solver = make_synthetic_solver(families);
  const ServeRunResult a = run_serve_sim(traffic, fifo, solver, nullptr);
  const ServeRunResult b = run_serve_sim(traffic, fifo, solver, nullptr);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.stats.submitted, b.stats.submitted);
  EXPECT_EQ(a.stats.shed_quota, 0u);
  EXPECT_EQ(a.stats.shed_slow_consumer, 0u);
}

TEST(ServiceFairness, ChattyAdversaryCannotMoveAVictimsAnswers) {
  // The isolation invariant at unit scale: victims' per-core response
  // streams with and without the adversary stay within the documented
  // bound, and no victim is ever quota-shed.
  FairnessTraffic traffic;
  traffic.cores = 4;
  traffic.ticks = 256;
  traffic.base_rate = 0.05;
  traffic.hot_families = 2;
  traffic.cold_families = 16;
  traffic.seed = re::testing::test_seed();

  ServiceOptions options;
  options.shards = 2;
  options.queue_capacity = 32;
  options.solve_slots = 2;
  options.solve_cost_ticks = 4;
  options.deadline_ticks = 128;
  options.seed = re::testing::test_seed();
  options.fairness.enabled = true;
  options.fairness.quota_burst = 8;
  options.fairness.quota_rate_milli = 100;
  options.fairness.per_core_queue_cap = 4;

  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);
  const AdvisoryService::Solver solver = make_synthetic_solver(families);

  const FairnessRunResult solo =
      run_fairness_sim(traffic, options, solver, nullptr);
  FairnessTraffic adversarial = traffic;
  adversarial.chatty = true;
  adversarial.chatty_multiplier = 100.0;
  const FairnessRunResult loud =
      run_fairness_sim(adversarial, options, solver, nullptr);

  ASSERT_TRUE(solo.gates_ok());
  ASSERT_TRUE(loud.gates_ok());
  for (int core = 0; core < traffic.cores; ++core) {
    const CoreMetrics& base = solo.per_core[static_cast<std::size_t>(core)];
    const CoreMetrics& now = loud.per_core[static_cast<std::size_t>(core)];
    EXPECT_EQ(now.submitted, base.submitted)
        << "per-core arrival streams must be adversary-independent";
    EXPECT_EQ(now.quota_shed, 0u) << "victim core " << core;
    EXPECT_LE(now.p99, base.p99 + std::max(0.25 * base.p99, 8.0))
        << "victim core " << core;
    EXPECT_LE(now.degraded_rate, base.degraded_rate + 0.02)
        << "victim core " << core;
  }
  // The adversary's overflow lands on the adversary.
  const CoreMetrics& chatty =
      loud.per_core[static_cast<std::size_t>(traffic.cores)];
  EXPECT_GT(chatty.quota_shed, 0u);
  EXPECT_EQ(loud.stats.stale_fresh_violations, 0u);
}

}  // namespace
}  // namespace re::serve
