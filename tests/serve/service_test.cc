// Advisory-service unit tests: the degradation ladder, admission control,
// deadline cancellation through the real engine, retry/breaker behavior
// under injected cache faults, and the byte-determinism contract.
#include "serve/service.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/executor.hh"
#include "serve/harness.hh"
#include "sim/config.hh"

namespace re::serve {
namespace {

ServiceOptions small_options() {
  ServiceOptions opts;
  opts.shards = 1;  // every family lands on the same breaker
  opts.queue_capacity = 1;
  opts.solve_slots = 1;
  opts.solve_cost_ticks = 4;
  opts.deadline_ticks = 64;
  opts.seed = 99;
  return opts;
}

PlanRequest request_for(const std::vector<Family>& families, std::uint64_t id,
                        int core, std::size_t family) {
  PlanRequest req;
  req.id = id;
  req.core = core;
  req.family = families[family].id;
  req.signature = families[family].signature;
  return req;
}

TEST(AdvisoryService, MissSolvesFreshThenHitsTheCache) {
  const std::vector<Family> families = make_families(2, 0);
  AdvisoryService service(small_options(), make_synthetic_solver(families),
                          nullptr);
  std::vector<PlanResponse> out;

  service.submit(request_for(families, 1, 0, 0), 0, out);
  EXPECT_TRUE(out.empty());  // miss: admitted, not answered yet
  service.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnswerKind::Fresh);
  EXPECT_EQ(out[0].cause, DegradeCause::None);
  EXPECT_FALSE(out[0].plans.empty());
  EXPECT_FALSE(out[0].deadline_missed);

  // Same signature again: answered at submit, one hit-cost tick of latency.
  out.clear();
  service.submit(request_for(families, 2, 3, 0), 100, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, AnswerKind::CacheHit);
  EXPECT_EQ(out[0].latency_ticks, service.options().hit_cost_ticks);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(AdvisoryService, DegradationLadderLkgThenNoPrefetch) {
  const std::vector<Family> families = make_families(4, 0);
  AdvisoryService service(small_options(), make_synthetic_solver(families),
                          nullptr);
  std::vector<PlanResponse> out;

  // Give core 0 a known-good answer.
  service.submit(request_for(families, 1, 0, 0), 0, out);
  service.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  const std::vector<core::PrefetchPlan> good = out[0].plans;

  // Fill the one-deep queue, then overflow it from two cores.
  out.clear();
  service.submit(request_for(families, 2, 5, 1), 100, out);
  EXPECT_TRUE(out.empty());
  service.submit(request_for(families, 3, 0, 2), 100, out);
  service.submit(request_for(families, 4, 7, 3), 100, out);
  ASSERT_EQ(out.size(), 2u);

  // Core 0 has history: last-known-good, byte-for-byte the earlier answer.
  EXPECT_EQ(out[0].kind, AnswerKind::LastKnownGood);
  EXPECT_EQ(out[0].cause, DegradeCause::QueueFull);
  ASSERT_EQ(out[0].plans.size(), good.size());
  EXPECT_EQ(out[0].plans[0].pc, good[0].pc);
  EXPECT_EQ(out[0].plans[0].distance_bytes, good[0].distance_bytes);

  // Core 7 has none: the guaranteed-safe empty plan set.
  EXPECT_EQ(out[1].kind, AnswerKind::NoPrefetch);
  EXPECT_EQ(out[1].cause, DegradeCause::QueueFull);
  EXPECT_TRUE(out[1].plans.empty());

  EXPECT_EQ(service.stats().shed_queue_full, 2u);
  EXPECT_LE(service.stats().max_queue_depth,
            service.options().queue_capacity);
}

TEST(AdvisoryService, InfeasibleDeadlineIsShedAtAdmission) {
  ServiceOptions opts = small_options();
  opts.queue_capacity = 64;
  opts.solve_cost_ticks = 10;
  opts.deadline_ticks = 15;
  const std::vector<Family> families = make_families(3, 0);
  AdvisoryService service(opts, make_synthetic_solver(families), nullptr);
  std::vector<PlanResponse> out;

  // First miss fits (est. 10 <= 15); the second would wait behind it
  // (est. 20 > 15) and is shed immediately rather than queued to fail.
  service.submit(request_for(families, 1, 0, 0), 0, out);
  service.submit(request_for(families, 2, 1, 1), 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cause, DegradeCause::DeadlineInfeasible);
  EXPECT_TRUE(out[0].degraded());
  EXPECT_EQ(service.stats().shed_infeasible, 1u);
}

TEST(AdvisoryService, DeadlineBudgetCancelsTheEngineSolve) {
  // deadline == solve cost: admission accepts (est. = deadline exactly),
  // but the solve starts one tick after submit, so its completion lands
  // one tick past the budget. The service pre-arms the cancel token and
  // the engine's optimize graph unwinds — no fresh answer, a degraded one.
  ServiceOptions opts = small_options();
  opts.solve_cost_ticks = 10;
  opts.deadline_ticks = 10;
  const std::vector<Family> families = make_families(1, 0);
  const engine::Executor executor(2);
  AdvisoryService service(
      opts, make_engine_solver(families, sim::amd_phenom_ii(), &executor),
      &executor);
  std::vector<PlanResponse> out;

  service.submit(request_for(families, 1, 0, 0), 0, out);
  EXPECT_TRUE(out.empty());
  service.drain(1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cause, DegradeCause::DeadlineExpired);
  EXPECT_TRUE(out[0].degraded());
  EXPECT_TRUE(out[0].deadline_missed);
  EXPECT_EQ(service.stats().cancelled_solves, 1u);
  EXPECT_EQ(service.stats().fresh, 0u);
  EXPECT_EQ(service.stats().stale_fresh_violations, 0u);
}

TEST(AdvisoryService, ExhaustedCacheFaultRetriesTripTheBreaker) {
  ServiceOptions opts = small_options();
  opts.cache_fault_rate = 1.0;  // every touch faults: retries must exhaust
  opts.max_retries = 2;
  opts.retry_backoff_base_ticks = 1;
  opts.retry_jitter = 0.0;
  const std::vector<Family> families = make_families(2, 0);
  AdvisoryService service(opts, make_synthetic_solver(families), nullptr);
  std::vector<PlanResponse> out;

  service.submit(request_for(families, 1, 0, 0), 0, out);
  const std::uint64_t idle = service.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cause, DegradeCause::CacheFault);
  EXPECT_TRUE(out[0].degraded());
  EXPECT_GE(out[0].retries, 1);
  EXPECT_EQ(service.stats().breaker_trips, 1u);
  EXPECT_EQ(service.shard_state(0), runtime::BreakerState::Backoff);

  // While the shard serves its penalty, traffic degrades without retrying.
  out.clear();
  service.submit(request_for(families, 2, 1, 1), idle + 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cause, DegradeCause::ShardDown);

  // The penalty expires into half-open probation, not straight to armed.
  std::vector<PlanResponse> sink;
  service.step(idle + 10'000, sink);
  EXPECT_EQ(service.shard_state(0), runtime::BreakerState::HalfOpen);
}

TEST(AdvisoryService, ModerateFaultRateRecoversWithoutOpening) {
  TrafficConfig traffic;
  traffic.cores = 16;
  traffic.ticks = 512;
  traffic.request_rate = 0.1;
  traffic.hot_families = 4;
  traffic.cold_families = 16;
  traffic.seed = 7;
  ServiceOptions opts;
  opts.cache_fault_rate = 0.3;
  opts.seed = 8;
  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);
  const ServeRunResult r =
      run_serve_sim(traffic, opts, make_synthetic_solver(families), nullptr);

  EXPECT_GT(r.stats.retries, 0u);        // faults exercised the ladder
  EXPECT_EQ(r.shards_open, 0);           // nobody escalated to terminal
  EXPECT_TRUE(r.gates_ok()) << "stale_fresh=" << r.stats.stale_fresh_violations;
  EXPECT_EQ(r.stats.submitted,
            r.stats.fresh + r.stats.cache_hits + r.stats.last_known_good +
                r.stats.no_prefetch);  // every request answered exactly once
}

TEST(AdvisoryService, OverloadKeepsQueueBoundedAndAnswersSafe) {
  // ~6x saturation: misses arrive far faster than one slot can solve.
  TrafficConfig traffic;
  traffic.cores = 64;
  traffic.ticks = 256;
  traffic.request_rate = 0.05;
  traffic.hot_fraction = 0.5;
  traffic.hot_families = 2;
  traffic.cold_families = 512;
  traffic.seed = 21;
  ServiceOptions opts;
  opts.queue_capacity = 8;
  opts.solve_slots = 1;
  opts.solve_cost_ticks = 32;
  opts.deadline_ticks = 128;
  opts.seed = 22;
  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);
  const ServeRunResult r =
      run_serve_sim(traffic, opts, make_synthetic_solver(families), nullptr);

  EXPECT_GT(r.stats.shed_queue_full + r.stats.shed_infeasible, 0u);
  EXPECT_LE(r.stats.max_queue_depth, opts.queue_capacity);
  EXPECT_TRUE(r.queue_bounded);
  EXPECT_TRUE(r.no_stale_fresh);
  EXPECT_TRUE(r.degraded_safe);
  EXPECT_EQ(r.stats.stale_fresh_violations, 0u);
}

TEST(AdvisoryService, ResponsesAreByteIdenticalAcrossJobsAndRuns) {
  TrafficConfig traffic;
  traffic.cores = 24;
  traffic.ticks = 192;
  traffic.request_rate = 0.05;
  traffic.seed = 33;
  ServiceOptions opts;
  opts.cache_fault_rate = 0.2;  // jitter draws included in the contract
  opts.seed = 34;
  const std::vector<Family> families =
      make_families(traffic.hot_families, traffic.cold_families);

  const engine::Executor serial(1);
  const engine::Executor wide(8);
  const ServeRunResult a = run_serve_sim(
      traffic, opts,
      make_engine_solver(families, sim::amd_phenom_ii(), &serial), &serial);
  const ServeRunResult b = run_serve_sim(
      traffic, opts,
      make_engine_solver(families, sim::amd_phenom_ii(), &wide), &wide);
  const ServeRunResult c = run_serve_sim(
      traffic, opts,
      make_engine_solver(families, sim::amd_phenom_ii(), &serial), &serial);

  EXPECT_EQ(a.digest, b.digest);  // --jobs never changes a byte
  EXPECT_EQ(a.digest, c.digest);  // neither does a replay
  EXPECT_EQ(a.stats.fresh, b.stats.fresh);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.responses, b.responses);
}

TEST(SignatureFingerprint, DependsOnPcsAndWeightsNotOrder) {
  const core::PhaseSignature ab{{1, 0.5}, {2, 0.5}};
  const core::PhaseSignature ba{{2, 0.5}, {1, 0.5}};
  const core::PhaseSignature heavier{{1, 0.5}, {2, 0.75}};
  const core::PhaseSignature other{{1, 0.5}, {3, 0.5}};
  EXPECT_EQ(signature_fingerprint(ab), signature_fingerprint(ba));
  EXPECT_NE(signature_fingerprint(ab), signature_fingerprint(heavier));
  EXPECT_NE(signature_fingerprint(ab), signature_fingerprint(other));
}

}  // namespace
}  // namespace re::serve
