#include "analysis/metrics.hh"

#include <gtest/gtest.h>

namespace re::analysis {
namespace {

TEST(WeightedSpeedup, IdentityWhenUnchanged) {
  const MixTimes times{{100, 200, 300, 400}, {100, 200, 300, 400}};
  EXPECT_DOUBLE_EQ(weighted_speedup(times), 1.0);
}

TEST(WeightedSpeedup, ArithmeticMeanOfPerAppSpeedups) {
  // Speedups 2.0 and 1.0 -> weighted speedup 1.5.
  const MixTimes times{{100, 100}, {50, 100}};
  EXPECT_DOUBLE_EQ(weighted_speedup(times), 1.5);
}

TEST(FairSpeedup, HarmonicMeanPenalizesImbalance) {
  const MixTimes times{{100, 100}, {50, 100}};
  // FS = 2 / (0.5 + 1.0) = 1.333... < weighted 1.5.
  EXPECT_NEAR(fair_speedup(times), 4.0 / 3.0, 1e-12);
  EXPECT_LT(fair_speedup(times), weighted_speedup(times));
}

TEST(FairSpeedup, MatchesPaperFormula) {
  // FS = N / sum(T_pref / T_base).
  const MixTimes times{{100, 200, 400, 800}, {50, 400, 400, 400}};
  const double denom = 0.5 + 2.0 + 1.0 + 0.5;
  EXPECT_NEAR(fair_speedup(times), 4.0 / denom, 1e-12);
}

TEST(Qos, ZeroWhenNothingSlowsDown) {
  const MixTimes times{{100, 100}, {50, 100}};
  EXPECT_DOUBLE_EQ(qos_degradation(times), 0.0);
}

TEST(Qos, SumsOnlySlowdowns) {
  // App 0 speeds up (ignored), app 1 slows to 2x (counts -0.5).
  const MixTimes times{{100, 100}, {50, 200}};
  EXPECT_DOUBLE_EQ(qos_degradation(times), -0.5);
}

TEST(Qos, AccumulatesAcrossApps) {
  const MixTimes times{{100, 100, 100, 100}, {200, 125, 100, 50}};
  EXPECT_DOUBLE_EQ(qos_degradation(times), -0.5 - 0.2);
}

TEST(Metrics, InvalidInputsThrow) {
  EXPECT_THROW(weighted_speedup(MixTimes{{1}, {}}), std::invalid_argument);
  EXPECT_THROW(weighted_speedup(MixTimes{{}, {}}), std::invalid_argument);
  EXPECT_THROW(weighted_speedup(MixTimes{{0}, {1}}), std::invalid_argument);
  EXPECT_THROW(fair_speedup(MixTimes{{1}, {-1}}), std::invalid_argument);
}

TEST(TrafficIncrease, RelativeChange) {
  EXPECT_DOUBLE_EQ(traffic_increase(1000, 1500), 0.5);
  EXPECT_DOUBLE_EQ(traffic_increase(1000, 800), -0.2);
  EXPECT_DOUBLE_EQ(traffic_increase(1000, 1000), 0.0);
  EXPECT_DOUBLE_EQ(traffic_increase(0, 1234), 0.0);  // undefined -> 0
}

}  // namespace
}  // namespace re::analysis
