#include "analysis/experiments.hh"

#include <gtest/gtest.h>

namespace re::analysis {
namespace {

TEST(PolicyName, AllPoliciesNamed) {
  EXPECT_STREQ(policy_name(Policy::Baseline), "Baseline");
  EXPECT_STREQ(policy_name(Policy::Hardware), "Hardware Pref.");
  EXPECT_STREQ(policy_name(Policy::Software), "Software Pref.");
  EXPECT_STREQ(policy_name(Policy::SoftwareNT), "Soft Pref.+NT");
  EXPECT_STREQ(policy_name(Policy::StrideCentric), "Stride-centric");
}

TEST(PlanCache, ReportsAreCachedPerKey) {
  PlanCache cache;
  const auto machine = sim::amd_phenom_ii();
  const auto& a = cache.report(machine, "libquantum", Policy::SoftwareNT);
  const auto& b = cache.report(machine, "libquantum", Policy::SoftwareNT);
  EXPECT_EQ(&a, &b);  // same object: computed once
  const auto& c = cache.report(machine, "libquantum", Policy::Software);
  EXPECT_NE(&a, &c);  // NT and non-NT variants are distinct
}

TEST(PlanCache, BaselinePolicyHasNoReport) {
  PlanCache cache;
  EXPECT_THROW(
      cache.report(sim::amd_phenom_ii(), "libquantum", Policy::Baseline),
      std::invalid_argument);
}

TEST(PlanCache, PrepareBaselineHasNoPrefetches) {
  PlanCache cache;
  const auto program =
      cache.prepare(sim::amd_phenom_ii(), "libquantum",
                    workloads::InputSet::Reference, Policy::Baseline);
  for (const auto& loop : program.loops) {
    for (const auto& inst : loop.body) {
      EXPECT_FALSE(inst.prefetch.has_value());
    }
  }
}

TEST(PlanCache, PreparedProgramCarriesPlansAcrossInputs) {
  PlanCache cache;
  const auto machine = sim::intel_sandybridge();
  const auto& report = cache.report(machine, "libquantum", Policy::SoftwareNT);
  ASSERT_FALSE(report.plans.empty());
  const auto alt = cache.prepare(machine, "libquantum",
                                 workloads::InputSet::Alternate,
                                 Policy::SoftwareNT);
  for (const auto& plan : report.plans) {
    const auto* inst = alt.find(plan.pc);
    ASSERT_NE(inst, nullptr);
    ASSERT_TRUE(inst->prefetch.has_value());
    EXPECT_EQ(inst->prefetch->distance_bytes, plan.distance_bytes);
  }
}

TEST(PlanCache, PrepareAppliesBaseOffset) {
  PlanCache cache;
  const auto machine = sim::amd_phenom_ii();
  const auto base = cache.prepare(machine, "milc",
                                  workloads::InputSet::Reference,
                                  Policy::Baseline, 0);
  const auto moved = cache.prepare(machine, "milc",
                                   workloads::InputSet::Reference,
                                   Policy::Baseline, 1ULL << 40);
  Addr base_addr = 0, moved_addr = 0;
  std::visit([&](const auto& p) { base_addr = p.base; },
             base.loops[0].body[0].pattern);
  std::visit([&](const auto& p) { moved_addr = p.base; },
             moved.loops[0].body[0].pattern);
  EXPECT_EQ(moved_addr, base_addr + (1ULL << 40));
}

TEST(EvaluateBenchmark, ProducesAllPolicies) {
  PlanCache cache;
  const auto eval =
      evaluate_benchmark(sim::amd_phenom_ii(), "libquantum", cache);
  EXPECT_EQ(eval.runs.size(), 5u);
  EXPECT_DOUBLE_EQ(eval.speedup(Policy::Baseline), 1.0);
  EXPECT_GT(eval.speedup(Policy::SoftwareNT), 1.2);
  EXPECT_GT(eval.bandwidth_gbps(Policy::Baseline), 0.0);
}

TEST(EvaluateMix, FourAppsFourResults) {
  PlanCache cache;
  const workloads::MixSpec spec{
      {"libquantum", "milc", "soplex", "GemsFDTD"}};
  const auto eval = evaluate_mix(sim::amd_phenom_ii(), spec, cache);
  for (const auto policy :
       {Policy::Baseline, Policy::Hardware, Policy::SoftwareNT}) {
    EXPECT_EQ(eval.runs.at(policy).apps.size(), 4u);
  }
  EXPECT_DOUBLE_EQ(eval.weighted_speedup(Policy::Baseline), 1.0);
  EXPECT_DOUBLE_EQ(eval.qos(Policy::Baseline), 0.0);
  EXPECT_GT(eval.weighted_speedup(Policy::SoftwareNT), 1.0);
}

TEST(EvaluateMix, FairSpeedupNeverExceedsWeighted) {
  PlanCache cache;
  const workloads::MixSpec spec{{"libquantum", "mcf", "gcc", "cigar"}};
  const auto eval = evaluate_mix(sim::intel_sandybridge(), spec, cache);
  for (const auto policy : {Policy::Hardware, Policy::SoftwareNT}) {
    EXPECT_LE(eval.fair_speedup(policy),
              eval.weighted_speedup(policy) + 1e-9);
  }
}

}  // namespace
}  // namespace re::analysis
