#include "analysis/functional_sim.hh"

#include <gtest/gtest.h>

#include "core/insertion.hh"

using re::workloads::PrefetchHint;
#include "workloads/suite.hh"

namespace re::analysis {
namespace {

using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

Program line_stream(std::uint64_t iterations, std::uint64_t footprint) {
  Program p;
  p.name = "stream";
  p.seed = 3;
  StaticInst inst;
  inst.pc = 1;
  inst.pattern = StreamPattern{0, 64, footprint};
  p.loops.push_back(Loop{{inst}, iterations});
  return p;
}

TEST(FunctionalSim, StreamingMissesEveryLine) {
  // Footprint far beyond the cache: every access is a new line -> miss.
  const auto result =
      functional_simulate(line_stream(10000, 1 << 30),
                          sim::CacheGeometry{64 << 10, 2});
  EXPECT_EQ(result.total_references, 10000u);
  EXPECT_EQ(result.total_misses, 10000u);
  EXPECT_DOUBLE_EQ(result.miss_ratio(), 1.0);
  EXPECT_EQ(result.misses_of(1), 10000u);
}

TEST(FunctionalSim, ResidentWorkingSetHitsAfterWarmup) {
  // 256 lines cycled in a 1024-line cache: only 256 cold misses.
  const auto result = functional_simulate(line_stream(10000, 256 * 64),
                                          sim::CacheGeometry{64 << 10, 2});
  EXPECT_EQ(result.total_misses, 256u);
}

TEST(FunctionalSim, MaxRefsCapsExecution) {
  const auto result = functional_simulate(line_stream(100000, 1 << 30),
                                          sim::CacheGeometry{64 << 10, 2},
                                          5000);
  EXPECT_EQ(result.total_references, 5000u);
}

TEST(FunctionalSim, PerPcAttribution) {
  Program p;
  p.name = "two";
  p.seed = 3;
  StaticInst a;
  a.pc = 7;
  a.pattern = StreamPattern{0, 64, 1 << 30};  // always misses
  StaticInst b;
  b.pc = 8;
  b.pattern = StreamPattern{1ULL << 40, 8, 512};  // 8 lines, resident
  p.loops.push_back(Loop{{a, b}, 5000});
  const auto result =
      functional_simulate(p, sim::CacheGeometry{64 << 10, 2});
  EXPECT_EQ(result.misses_of(7), 5000u);
  EXPECT_LE(result.misses_of(8), 8u + 16u);  // cold + rare conflicts
  EXPECT_EQ(result.accesses_by_pc.at(7), 5000u);
}

TEST(FunctionalSim, PrefetchesFillTheCacheButAreNotReferences) {
  Program p = line_stream(10000, 1 << 30);
  p = core::insert_prefetches(p, {{1, 256, PrefetchHint::T0}});
  const auto result =
      functional_simulate(p, sim::CacheGeometry{64 << 10, 2});
  EXPECT_EQ(result.total_references, 10000u);
  EXPECT_EQ(result.prefetches_executed, 10000u);
  // All but the first few lines are prefetched before demand arrives.
  EXPECT_LT(result.total_misses, 20u);
}

TEST(FunctionalSim, NtPrefetchBehavesLikeNormalInSingleLevel) {
  Program normal = core::insert_prefetches(line_stream(5000, 1 << 30),
                                           {{1, 256, PrefetchHint::T0}});
  Program nt = core::insert_prefetches(line_stream(5000, 1 << 30),
                                       {{1, 256, PrefetchHint::NTA}});
  const sim::CacheGeometry geom{64 << 10, 2};
  EXPECT_EQ(functional_simulate(normal, geom).total_misses,
            functional_simulate(nt, geom).total_misses);
}

TEST(MeasureCoverage, FullCoverageForPerfectPrefetch) {
  const Program original = line_stream(10000, 1 << 30);
  const Program optimized =
      core::insert_prefetches(original, {{1, 256, PrefetchHint::T0}});
  const CoverageResult cov =
      measure_coverage(original, optimized, sim::CacheGeometry{64 << 10, 2});
  EXPECT_GT(cov.miss_coverage(), 0.99);
  EXPECT_NEAR(cov.overhead(), 1.0, 0.05);  // one prefetch per miss removed
}

TEST(MeasureCoverage, ZeroCoverageWithoutPlans) {
  const Program original = line_stream(5000, 1 << 30);
  const CoverageResult cov =
      measure_coverage(original, original, sim::CacheGeometry{64 << 10, 2});
  EXPECT_DOUBLE_EQ(cov.miss_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(cov.overhead(), 0.0);
}

TEST(MeasureCoverage, UselessPrefetchesShowAsOverhead) {
  // Prefetch distance 0 lines away from a resident structure: prefetches
  // execute but remove nothing.
  Program original = line_stream(5000, 256 * 64);
  Program optimized =
      core::insert_prefetches(original, {{1, 0, PrefetchHint::T0}});
  const CoverageResult cov =
      measure_coverage(original, optimized, sim::CacheGeometry{64 << 10, 2});
  EXPECT_EQ(cov.prefetches_executed, 5000u);
  EXPECT_LT(cov.miss_coverage(), 0.05);
}

TEST(CoverageResult, OverheadWhenNothingRemoved) {
  CoverageResult cov;
  cov.base_misses = 100;
  cov.optimized_misses = 100;
  cov.prefetches_executed = 500;
  EXPECT_DOUBLE_EQ(cov.overhead(), 500.0);
  cov.optimized_misses = 120;  // regression: still no division by zero
  EXPECT_DOUBLE_EQ(cov.miss_coverage(), 0.0);
}

}  // namespace
}  // namespace re::analysis
