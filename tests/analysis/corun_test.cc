// Unit and property tests for the co-run composition: trace collection,
// proportional-progress interleaving, CoRunModel's composed shared MRCs and
// effective capacity shares, the demand-only profile strip, and the
// determinism of the full co-run graph at any worker count.
#include "analysis/corun.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sampler.hh"
#include "core/statstack.hh"
#include "core/trace_replay.hh"
#include "engine/executor.hh"
#include "engine/pipeline.hh"
#include "sim/config.hh"
#include "testutil.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/mix.hh"

namespace re::analysis {
namespace {

workloads::Program corun_program(int core, verify::TraceFamily family) {
  verify::FuzzedTrace fuzzed =
      verify::make_trace(family, re::testing::test_seed(), core);
  workloads::rebase_program(fuzzed.program,
                            workloads::core_address_offset(core));
  return fuzzed.program;
}

core::Profile sample_trace(const CoreTrace& trace, std::uint64_t period) {
  core::Sampler sampler(core::SamplerConfig{period, 42});
  for (const CoreAccess& access : trace) {
    sampler.observe(access.pc, access.addr);
  }
  return sampler.finish();
}

TEST(Interleave, ProportionalProgressIsDeterministicAndFair) {
  // Lengths 2 and 4: the next reference always comes from the core with
  // the smallest (pos+1)/len, so core 1 leads (1/4 < 1/2) and issues twice
  // per core-0 reference, with ties at equal progress going to core 0.
  std::vector<CoreTrace> traces(2);
  traces[0] = {{1, 0}, {1, 64}};
  traces[1] = {{2, 0}, {2, 64}, {2, 128}, {2, 192}};
  std::vector<int> order;
  interleave_traces(traces, [&](int core, const CoreAccess&) {
    order.push_back(core);
  });
  const std::vector<int> expected = {1, 0, 1, 1, 0, 1};
  EXPECT_EQ(order, expected);

  // Same input, same order — bitwise determinism.
  std::vector<int> again;
  interleave_traces(traces, [&](int core, const CoreAccess&) {
    again.push_back(core);
  });
  EXPECT_EQ(order, again);
}

TEST(Interleave, EmitsEveryReferenceExactlyOnce) {
  std::vector<CoreTrace> traces(3);
  traces[0].assign(7, CoreAccess{1, 0});
  traces[1].assign(13, CoreAccess{2, 64});
  traces[2].assign(29, CoreAccess{3, 128});
  std::vector<std::uint64_t> counts(3, 0);
  interleave_traces(traces, [&](int core, const CoreAccess&) {
    ++counts[static_cast<std::size_t>(core)];
  });
  EXPECT_EQ(counts[0], 7u);
  EXPECT_EQ(counts[1], 13u);
  EXPECT_EQ(counts[2], 29u);
}

TEST(CollectCoreTrace, HwPrefetchAugmentationUsesSentinelPc) {
  const workloads::Program program =
      corun_program(0, verify::TraceFamily::kStrided);
  const CoreTrace demand = collect_core_trace(program, 4096);
  sim::HwPrefetcherConfig hw = sim::amd_phenom_ii().hw_prefetcher;
  const CoreTrace augmented = collect_core_trace(program, 4096, &hw);

  ASSERT_GE(augmented.size(), demand.size());
  std::uint64_t fills = 0;
  for (const CoreAccess& access : augmented) {
    if (access.pc == kHwPrefetchPc) {
      ++fills;
      EXPECT_EQ(access.addr % kLineSize, 0u);  // fills are line-aligned
    }
  }
  EXPECT_EQ(augmented.size(), demand.size() + fills);
  // A strided sweep trains the stream engine; fills must actually appear.
  EXPECT_GT(fills, 0u);
}

TEST(CoRunModel, SingleCoreCompositionMatchesOwnStatStackExactly) {
  const workloads::Program program =
      corun_program(0, verify::TraceFamily::kPointerChase);
  const CoreTrace trace = collect_core_trace(program, 1 << 14);
  const core::Profile profile = sample_trace(trace, 16);
  const core::StatStack model(profile);

  const CoRunModel corun({CoRunCoreInput{&profile, &model, 1.0}});
  for (std::uint64_t lines : {64u, 1024u, 12288u, 65536u}) {
    EXPECT_DOUBLE_EQ(corun.shared_miss_ratio_lines(0, lines),
                     model.application_mrc().miss_ratio_lines(lines))
        << "lines=" << lines;
  }
}

TEST(CoRunModel, SymmetricCoresSplitTheCacheEvenly) {
  // Two identical strided cores (same family, same seed variant shape):
  // their composed shares of the LLC must come out (nearly) equal.
  std::vector<CoreTrace> traces;
  std::vector<core::Profile> profiles;
  std::vector<std::unique_ptr<core::StatStack>> models;
  std::vector<CoRunCoreInput> inputs;
  for (int core = 0; core < 2; ++core) {
    workloads::Program program =
        corun_program(0, verify::TraceFamily::kStrided);
    workloads::rebase_program(program, workloads::core_address_offset(core));
    traces.push_back(collect_core_trace(program, 1 << 14));
  }
  for (const CoreTrace& trace : traces) {
    profiles.push_back(sample_trace(trace, 16));
  }
  for (const core::Profile& profile : profiles) {
    models.push_back(std::make_unique<core::StatStack>(profile));
  }
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    inputs.push_back(CoRunCoreInput{&profiles[i], models[i].get(),
                                    static_cast<double>(traces[i].size())});
  }
  const CoRunModel corun(std::move(inputs));
  const std::uint64_t llc = sim::amd_phenom_ii().llc.num_lines();
  const std::uint64_t share0 = corun.effective_llc_lines(0, llc);
  const std::uint64_t share1 = corun.effective_llc_lines(1, llc);
  // Shares are clamped to >= 1, so the ratio is well-defined.
  const double ratio =
      static_cast<double>(share0) / static_cast<double>(share1);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
  // And a shared cache is a partition: the shares cannot exceed capacity
  // by more than composition slack (each is clamped to [1, llc]).
  EXPECT_GE(share0, 1u);
  EXPECT_LE(share0, llc);
  EXPECT_GE(share1, 1u);
  EXPECT_LE(share1, llc);
}

TEST(CoRunModel, StreamingNeighbourShrinksAChaseCoresShare) {
  const workloads::Program chase =
      corun_program(0, verify::TraceFamily::kPointerChase);
  workloads::Program stream =
      corun_program(1, verify::TraceFamily::kStrided);

  const CoreTrace chase_trace = collect_core_trace(chase, 1 << 14);
  const CoreTrace stream_trace = collect_core_trace(stream, 1 << 14);
  const core::Profile chase_profile = sample_trace(chase_trace, 16);
  const core::Profile stream_profile = sample_trace(stream_trace, 16);
  const core::StatStack chase_model(chase_profile);
  const core::StatStack stream_model(stream_profile);

  const std::uint64_t llc = sim::amd_phenom_ii().llc.num_lines();
  const CoRunModel solo({CoRunCoreInput{&chase_profile, &chase_model, 1.0}});
  const CoRunModel pair(
      {CoRunCoreInput{&chase_profile, &chase_model,
                      static_cast<double>(chase_trace.size())},
       CoRunCoreInput{&stream_profile, &stream_model,
                      static_cast<double>(stream_trace.size())}});

  EXPECT_LT(pair.effective_llc_lines(0, llc), solo.effective_llc_lines(0, llc));
  EXPECT_GE(pair.shared_miss_ratio_lines(0, llc) + 1e-12,
            solo.shared_miss_ratio_lines(0, llc));
}

TEST(CoRunModel, SharedStackDistanceIsMonotone) {
  const workloads::Program program =
      corun_program(0, verify::TraceFamily::kHotCold);
  const CoreTrace trace = collect_core_trace(program, 1 << 13);
  const core::Profile profile = sample_trace(trace, 16);
  const core::StatStack model(profile);
  const CoRunModel corun({CoRunCoreInput{&profile, &model, 1.0},
                          CoRunCoreInput{&profile, &model, 1.0}});
  double prev = 0.0;
  for (RefCount d = 1; d <= (RefCount{1} << 20); d *= 4) {
    const double sd = corun.shared_stack_distance(0, d);
    EXPECT_GE(sd + 1e-9, prev) << "d=" << d;
    prev = sd;
  }
}

TEST(DemandOnlyProfile, StripsTheSentinelPc) {
  core::Profile augmented;
  augmented.reuse_samples.push_back(core::ReuseSample{1, 2, 10});
  augmented.reuse_samples.push_back(core::ReuseSample{kHwPrefetchPc, 1, 4});
  augmented.reuse_samples.push_back(core::ReuseSample{2, kHwPrefetchPc, 7});
  augmented.stride_samples.push_back(core::StrideSample{1, 64});
  augmented.stride_samples.push_back(core::StrideSample{kHwPrefetchPc, 64});
  augmented.dangling_reuse_samples = 5;
  augmented.dangling_by_pc[1] = 2;
  augmented.dangling_by_pc[kHwPrefetchPc] = 3;
  augmented.pc_execution_counts[1] = 50;
  augmented.pc_execution_counts[2] = 30;
  augmented.pc_execution_counts[kHwPrefetchPc] = 20;
  augmented.total_references = 100;
  augmented.sample_period = 4;

  const core::Profile demand = demand_only_profile(augmented);
  ASSERT_EQ(demand.reuse_samples.size(), 1u);
  EXPECT_EQ(demand.reuse_samples[0].first_pc, 1u);
  ASSERT_EQ(demand.stride_samples.size(), 1u);
  EXPECT_EQ(demand.dangling_reuse_samples, 2u);
  EXPECT_EQ(demand.dangling_by_pc.count(kHwPrefetchPc), 0u);
  EXPECT_EQ(demand.pc_execution_counts.count(kHwPrefetchPc), 0u);
  EXPECT_EQ(demand.total_references, 80u);
  EXPECT_EQ(demand.sample_period, 4u);
}

TEST(CoRunGraph, ByteIdenticalAtAnyWorkerCount) {
  std::vector<workloads::Program> programs;
  programs.push_back(corun_program(0, verify::TraceFamily::kPointerChase));
  programs.push_back(corun_program(1, verify::TraceFamily::kStrided));
  programs.push_back(corun_program(2, verify::TraceFamily::kBlocked));

  auto decisions = [&](int jobs) {
    CoRunArtifacts artifacts;
    artifacts.programs = &programs;
    const sim::MachineConfig machine = sim::amd_phenom_ii();
    artifacts.machine = &machine;
    artifacts.max_refs_per_core = 1 << 13;
    const engine::Executor executor(jobs);
    engine::EngineContext ctx;
    ctx.executor = &executor;
    run_corun(artifacts, ctx);
    std::string out;
    for (std::size_t i = 0; i < artifacts.reports.size(); ++i) {
      out += std::to_string(artifacts.effective_llc_lines[i]) + "\n";
      out += engine::serialize_report(artifacts.reports[i]);
    }
    return out;
  };
  const std::string serial = decisions(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, decisions(8));
}

TEST(CoRunGraph, EffectiveShareFlowsIntoPlanKnobs) {
  // The composed share must reach the per-core optimizer: a tiny effective
  // LLC raises modeled miss costs. Check the plumbing end to end by
  // asserting the graph populated per-core shares and reports.
  std::vector<workloads::Program> programs;
  programs.push_back(corun_program(0, verify::TraceFamily::kPointerChase));
  programs.push_back(corun_program(1, verify::TraceFamily::kStrided));

  CoRunArtifacts artifacts;
  artifacts.programs = &programs;
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  artifacts.machine = &machine;
  artifacts.max_refs_per_core = 1 << 13;
  run_corun(artifacts);

  ASSERT_EQ(artifacts.effective_llc_lines.size(), 2u);
  ASSERT_EQ(artifacts.reports.size(), 2u);
  const std::uint64_t llc = machine.llc.num_lines();
  for (const std::uint64_t share : artifacts.effective_llc_lines) {
    EXPECT_GE(share, 1u);
    EXPECT_LE(share, llc);
  }
  // Co-running with a streaming neighbour, neither core keeps the whole
  // cache to itself.
  EXPECT_LT(artifacts.effective_llc_lines[0] + artifacts.effective_llc_lines[1],
            2 * llc);
}

}  // namespace
}  // namespace re::analysis
