// The differential oracle: StatStack fed sparse samples must agree with the
// exact-LRU model fed the full trace, on the same replay. These bounds are
// the acceptance criteria for the whole estimation pipeline; loosening them
// requires a reviewed change, not a tweak.
#include "verify/differential.hh"

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "testutil.hh"
#include "verify/trace_fuzzer.hh"

namespace re::verify {
namespace {

TEST(Differential, EstimatesTrackExactModelAcrossAllFamilies) {
  const std::uint64_t seed = re::testing::test_seed();
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  std::size_t strict_families = 0;
  for (const TraceFamily family : all_trace_families()) {
    double worst = 0.0;
    for (std::uint64_t variant = 0; variant < 2; ++variant) {
      const FuzzedTrace trace = make_trace(family, seed, variant);
      const DifferentialResult result =
          run_differential(trace.program, machine);
      EXPECT_EQ(result.references, trace.program.total_references());
      EXPECT_GT(result.reuse_samples, 0u);
      worst = std::max(worst, result.max_application_error());
      EXPECT_LE(result.max_application_error(),
                family_app_error_bound(family))
          << result.to_string();
      EXPECT_GE(result.mddli_agreement(), kMinDecisionAgreement)
          << result.to_string();
      EXPECT_GE(result.bypass_agreement(), kMinDecisionAgreement)
          << result.to_string();
    }
    if (worst <= 0.02) ++strict_families;
  }
  // Acceptance floor: at least 5 of the 6 families inside the strict 2 %
  // application-MRC bound (phasemix is the documented exception).
  EXPECT_GE(strict_families, 5u);
}

TEST(Differential, ReportIsReproducible) {
  const std::uint64_t seed = re::testing::test_seed();
  const sim::MachineConfig machine = sim::intel_sandybridge();
  const FuzzedTrace trace = make_trace(TraceFamily::kHotCold, seed);
  const DifferentialResult a = run_differential(trace.program, machine);
  const DifferentialResult b = run_differential(trace.program, machine);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Differential, ReportCarriesEverySection) {
  const FuzzedTrace trace =
      make_trace(TraceFamily::kStrided, re::testing::test_seed());
  const DifferentialResult result =
      run_differential(trace.program, sim::amd_phenom_ii());
  const std::string report = result.to_string();
  EXPECT_NE(report.find("differential " + trace.program.name),
            std::string::npos);
  EXPECT_NE(report.find("app-mrc L1"), std::string::npos);
  EXPECT_NE(report.find("app-mrc L2"), std::string::npos);
  EXPECT_NE(report.find("app-mrc LLC"), std::string::npos);
  EXPECT_NE(report.find("load pc1"), std::string::npos);
  EXPECT_NE(report.find("summary max_app_err="), std::string::npos);
  ASSERT_EQ(result.application.size(), 3u);
  EXPECT_FALSE(result.loads.empty());
}

TEST(Differential, ExplicitSamplePeriodIsHonored) {
  const FuzzedTrace trace =
      make_trace(TraceFamily::kStrided, re::testing::test_seed());
  DifferentialOptions options;
  options.sampler.sample_period = 97;
  const DifferentialResult result =
      run_differential(trace.program, sim::amd_phenom_ii(), options);
  EXPECT_EQ(result.sample_period, 97u);
}

// The hot/cold family is the bypass litmus test: the never-reused stream
// load must be a bypass candidate on BOTH sides, and the hot-buffer load on
// neither.
TEST(Differential, HotColdBypassDecisionsAgreeInDetail) {
  const std::uint64_t seed = re::testing::test_seed();
  const FuzzedTrace trace = make_trace(TraceFamily::kHotCold, seed);
  const DifferentialResult result =
      run_differential(trace.program, sim::amd_phenom_ii());
  ASSERT_EQ(result.loads.size(), 2u);
  for (const LoadComparison& load : result.loads) {
    EXPECT_TRUE(load.bypass_agrees()) << result.to_string();
    if (load.pc == 2) {
      EXPECT_TRUE(load.estimated_bypass) << result.to_string();
      EXPECT_TRUE(load.exact_bypass) << result.to_string();
    }
  }
}

}  // namespace
}  // namespace re::verify
