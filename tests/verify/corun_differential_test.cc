// Co-run differential tests: the composed shared-LLC model vs the exact
// interleaved-LRU oracle, across the scenario matrix at 2/4/8 cores.
// Randomized via RE_TEST_SEED (the failing seed is printed by the shared
// SeedReporter); bounds are the documented per-family ones from
// verify::corun_family_error_bound (calibration table in DESIGN.md §13).
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/config.hh"
#include "testutil.hh"
#include "verify/differential.hh"

namespace re::verify {
namespace {

/// Per-core window for the test suite. This matches the default the
/// per-family bounds were calibrated at — a truncated window shifts the
/// fuzzed working-set cliffs relative to the probed cache sizes and the
/// bounds stop being the documented ones.
constexpr std::uint64_t kTestRefsPerCore = std::uint64_t{1} << 16;

void expect_scenario_within_bounds(const sim::MachineConfig& machine,
                                   int cores) {
  CoRunDifferentialOptions options;
  options.max_refs_per_core = kTestRefsPerCore;
  for (const CoRunScenario& scenario : corun_scenarios(cores)) {
    const CoRunDifferentialResult result = run_corun_differential(
        scenario, machine, re::testing::test_seed(), options);
    EXPECT_TRUE(result.attribution_exact)
        << scenario.name << " at " << cores << " cores: " << result.to_string();
    ASSERT_EQ(result.per_core.size(), static_cast<std::size_t>(cores));
    for (int core = 0; core < cores; ++core) {
      const TraceFamily family =
          scenario.families[static_cast<std::size_t>(core) %
                            scenario.families.size()];
      const double bound = corun_family_error_bound(family, cores);
      EXPECT_LE(result.per_core[static_cast<std::size_t>(core)].max_error(),
                bound)
          << scenario.name << " core " << core << " at " << cores
          << " cores:\n"
          << result.to_string();
    }
  }
}

TEST(CoRunDifferential, ScenarioMatrixWithinBoundsAtTwoCores) {
  expect_scenario_within_bounds(sim::amd_phenom_ii(), 2);
}

TEST(CoRunDifferential, ScenarioMatrixWithinBoundsAtFourCores) {
  expect_scenario_within_bounds(sim::amd_phenom_ii(), 4);
}

TEST(CoRunDifferential, ScenarioMatrixWithinBoundsAtEightCores) {
  expect_scenario_within_bounds(sim::amd_phenom_ii(), 8);
}

TEST(CoRunDifferential, IntelMachineWithinBoundsAtTwoCores) {
  expect_scenario_within_bounds(sim::intel_sandybridge(), 2);
}

TEST(CoRunDifferential, HwPrefetchAugmentedCellStaysWithinBounds) {
  // The hw-augmented streaming_vs_chase cell: fills enter both the
  // composition and the oracle symmetrically, so the bound still holds.
  CoRunDifferentialOptions options;
  options.max_refs_per_core = kTestRefsPerCore;
  options.model_hw_prefetch = true;
  for (const CoRunScenario& scenario : corun_scenarios(2)) {
    if (scenario.name != "streaming_vs_chase") continue;
    const CoRunDifferentialResult result = run_corun_differential(
        scenario, sim::amd_phenom_ii(), re::testing::test_seed(), options);
    EXPECT_TRUE(result.attribution_exact) << result.to_string();
    for (std::size_t core = 0; core < result.per_core.size(); ++core) {
      const double bound = corun_family_error_bound(
          scenario.families[core % scenario.families.size()], 2);
      EXPECT_LE(result.per_core[core].max_error(), bound)
          << result.to_string();
    }
  }
}

TEST(CoRunDifferential, ReportIsDeterministic) {
  CoRunDifferentialOptions options;
  options.max_refs_per_core = kTestRefsPerCore;
  const CoRunScenario scenario = corun_scenarios(2).front();
  const CoRunDifferentialResult a = run_corun_differential(
      scenario, sim::amd_phenom_ii(), re::testing::test_seed(), options);
  const CoRunDifferentialResult b = run_corun_differential(
      scenario, sim::amd_phenom_ii(), re::testing::test_seed(), options);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_FALSE(a.to_string().empty());
}

TEST(CoRunInterference, PrefetchDegradationPredictedAndConfirmed) {
  // The paper's motivating pathology, as a gate: aggressors' adjacent-line
  // overfetch must be predicted (composed model) and confirmed (oracle) to
  // degrade the chase victim.
  const CoRunInterference r = run_corun_interference(
      sim::amd_phenom_ii(), 2, re::testing::test_seed(), kTestRefsPerCore);
  EXPECT_TRUE(r.predicted()) << r.to_string();
  EXPECT_TRUE(r.confirmed()) << r.to_string();
  EXPECT_LE(r.max_composed_error, 0.02) << r.to_string();
  EXPECT_LE(r.share_on, r.share_off) << r.to_string();
}

}  // namespace
}  // namespace re::verify
