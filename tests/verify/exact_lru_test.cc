#include "verify/exact_lru.hh"

#include <gtest/gtest.h>

#include "testutil.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/program.hh"

namespace re::verify {
namespace {

Addr line_addr(std::uint64_t line) { return line * kLineSize; }

// Hand-checkable trace: lines A B C A B B. Stack distances: three cold
// first-touches, then A at distance 2 ({B,C}), B at distance 2 ({C,A}),
// B at distance 0.
TEST(ExactLruModel, HandTraceDistances) {
  ExactLruModel model;
  model.observe(1, line_addr(0));  // A cold
  model.observe(1, line_addr(1));  // B cold
  model.observe(1, line_addr(2));  // C cold
  model.observe(1, line_addr(0));  // A, distance 2
  model.observe(2, line_addr(1));  // B, distance 2
  model.observe(2, line_addr(1));  // B, distance 0
  model.finalize();

  const ExactMrc& app = model.application_mrc();
  EXPECT_EQ(app.access_count(), 6u);
  EXPECT_EQ(app.cold_count(), 3u);
  // 1 line: only the distance-0 access hits.
  EXPECT_DOUBLE_EQ(app.miss_ratio_lines(1), 5.0 / 6.0);
  // 2 lines: same (both reuses sit at distance 2).
  EXPECT_DOUBLE_EQ(app.miss_ratio_lines(2), 5.0 / 6.0);
  // 3 lines: only the cold misses remain.
  EXPECT_DOUBLE_EQ(app.miss_ratio_lines(3), 0.5);
  // Zero-line cache misses everything.
  EXPECT_DOUBLE_EQ(app.miss_ratio_lines(0), 1.0);
}

TEST(ExactLruModel, PerPcAttributionAndReuseEdges) {
  ExactLruModel model;
  model.observe(1, line_addr(0));
  model.observe(1, line_addr(1));
  model.observe(1, line_addr(2));
  model.observe(1, line_addr(0));
  model.observe(2, line_addr(1));  // line last touched by pc1 -> edge 1->2
  model.observe(2, line_addr(1));  // line last touched by pc2 -> edge 2->2
  model.finalize();

  EXPECT_EQ(model.accesses(), 6u);
  EXPECT_EQ(model.accesses_of(1), 4u);
  EXPECT_EQ(model.accesses_of(2), 2u);
  EXPECT_EQ((std::vector<Pc>{1, 2}), model.pcs());

  // The distance-0 B access belongs to pc2's curve.
  EXPECT_DOUBLE_EQ(model.pc_mrc(2).miss_ratio_lines(1), 0.5);
  EXPECT_DOUBLE_EQ(model.pc_mrc(2).miss_ratio_lines(3), 0.0);
  // pc1: 3 cold + one distance-2 reuse.
  EXPECT_DOUBLE_EQ(model.pc_mrc(1).miss_ratio_lines(3), 3.0 / 4.0);
  // Unknown PC has an empty curve.
  EXPECT_TRUE(model.pc_mrc(99).empty());
  EXPECT_DOUBLE_EQ(model.pc_mrc(99).miss_ratio_lines(1), 0.0);

  EXPECT_EQ(model.reuse_edge_count(1, 1), 1u);  // A -> A
  EXPECT_EQ(model.reuse_edge_count(1, 2), 1u);  // B(pc1) -> B(pc2)
  EXPECT_EQ(model.reuse_edge_count(2, 2), 1u);
  EXPECT_EQ(model.reuse_out_degree(1), 2u);
  EXPECT_EQ((std::vector<Pc>{1, 2}), model.reusers_of(1, 0.05));
  EXPECT_TRUE(model.reusers_of(99, 0.05).empty());
}

// The oracle itself is pinned by analytic ground truth: for every fuzzer
// family that carries closed-form MRC points, the exact model must hit them
// to within the (tight) stated tolerance.
TEST(ExactLruModel, MatchesAnalyticGroundTruth) {
  const std::uint64_t seed = re::testing::test_seed();
  for (const TraceFamily family : all_trace_families()) {
    for (std::uint64_t variant = 0; variant < 2; ++variant) {
      const FuzzedTrace trace = make_trace(family, seed, variant);
      if (trace.expectations.empty()) continue;
      const ExactLruModel model = exact_model_of(trace.program);
      EXPECT_EQ(model.accesses(), trace.program.total_references());
      for (const MrcExpectation& expect : trace.expectations) {
        EXPECT_NEAR(model.application_mrc().miss_ratio_lines(
                        expect.cache_lines),
                    expect.miss_ratio, expect.tolerance)
            << trace.program.name << " at " << expect.cache_lines
            << " lines";
      }
    }
  }
}

// True LRU miss ratios can only fall as the cache grows (stack inclusion).
TEST(ExactLruModel, MrcMonotoneInCacheSize) {
  const FuzzedTrace trace =
      make_trace(TraceFamily::kPointerChase, re::testing::test_seed());
  const ExactLruModel model = exact_model_of(trace.program);
  double prev = 1.0;
  for (std::uint64_t lines = 1; lines <= 1u << 16; lines *= 2) {
    const double mr = model.application_mrc().miss_ratio_lines(lines);
    EXPECT_LE(mr, prev + 1e-12) << "MRC rose at " << lines << " lines";
    prev = mr;
  }
}

TEST(ExactLruModel, MaxRefsCapsTheReplay) {
  const FuzzedTrace trace =
      make_trace(TraceFamily::kStrided, re::testing::test_seed());
  const ExactLruModel model = exact_model_of(trace.program, 1000);
  EXPECT_EQ(model.accesses(), 1000u);
}

}  // namespace
}  // namespace re::verify
