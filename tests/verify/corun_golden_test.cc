// Co-run golden-plan snapshot enforcement: every suite benchmark's core-0
// prefetch plan, solved under contention from three deterministic streaming
// aggressors with the composed effective-LLC-share knob, must match the
// committed snapshot. Re-bless deliberately via `tools/check.sh corun
// --bless` (or `repf corun --bless --golden tests/golden`).
#include "verify/golden.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "engine/executor.hh"
#include "sim/config.hh"

#ifndef RE_SOURCE_DIR
#error "RE_SOURCE_DIR must point at the repository root"
#endif

namespace re::verify {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " — bless with tools/check.sh corun --bless";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CoRunGoldenPlans, VictimPlansMatchCommittedSnapshot) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const std::string actual =
      render_corun_golden(compute_corun_suite_plans(machine), machine.name);
  const std::string expected =
      read_file(std::string(RE_SOURCE_DIR) + "/tests/golden/" +
                corun_golden_filename(machine.name));
  EXPECT_EQ(diff_golden(expected, actual), "")
      << "co-run plans drifted from tests/golden/"
      << corun_golden_filename(machine.name)
      << " — if intentional, re-bless with tools/check.sh corun --bless";
}

TEST(CoRunGoldenPlans, FilenameIsSlugged) {
  EXPECT_EQ(corun_golden_filename("AMD Phenom II"),
            "corun_plans_amd_phenom_ii.golden");
  EXPECT_EQ(corun_golden_filename("Intel i7-2600K"),
            "corun_plans_intel_i7_2600k.golden");
}

TEST(CoRunGoldenPlans, ParallelComputeMatchesSerial) {
  // The snapshot's determinism contract: the victim plans are byte-identical
  // whether the suite fans out over 8 workers or runs serially.
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const engine::Executor executor(8);
  const std::string serial =
      render_corun_golden(compute_corun_suite_plans(machine), machine.name);
  const std::string parallel = render_corun_golden(
      compute_corun_suite_plans(machine, &executor), machine.name);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace re::verify
