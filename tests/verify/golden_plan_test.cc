// Golden-plan snapshot enforcement: the committed plans for the benchmark
// suite must match what the pipeline produces today. A legitimate pipeline
// change re-blesses via `tools/check.sh verify --bless`; anything else that
// shifts a plan is a regression this test catches.
#include "verify/golden.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/config.hh"

#ifndef RE_SOURCE_DIR
#error "RE_SOURCE_DIR must point at the repository root"
#endif

namespace re::verify {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " — bless with tools/check.sh verify --bless";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(GoldenPlans, SuitePlansMatchCommittedSnapshot) {
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const std::string actual =
      render_golden(compute_suite_plans(machine), machine.name);
  const std::string expected = read_file(
      std::string(RE_SOURCE_DIR) + "/tests/golden/" +
      golden_filename(machine.name));
  EXPECT_EQ(diff_golden(expected, actual), "")
      << "plans drifted from tests/golden/" << golden_filename(machine.name)
      << " — if intentional, re-bless with tools/check.sh verify --bless";
}

TEST(GoldenPlans, FilenameIsSlugged) {
  EXPECT_EQ(golden_filename("AMD Phenom II"), "plans_amd_phenom_ii.golden");
  EXPECT_EQ(golden_filename("Intel i7-2600K"),
            "plans_intel_i7_2600k.golden");
}

TEST(GoldenPlans, DiffIgnoresCommentsAndWhitespace) {
  const std::string a = "# header\nbenchmark x\n  pc1 prefetcht0 +64\n";
  const std::string b =
      "# different header\r\nbenchmark x  \n  pc1 prefetcht0 +64\n";
  EXPECT_EQ(diff_golden(a, b), "");
}

TEST(GoldenPlans, DiffReportsChangesBothWays) {
  const std::string expected = "benchmark x\n  pc1 prefetcht0 +64\n";
  const std::string actual = "benchmark x\n  pc1 prefetchnta +128\n";
  const std::string diff = diff_golden(expected, actual);
  EXPECT_NE(diff.find("-  pc1 prefetcht0 +64"), std::string::npos);
  EXPECT_NE(diff.find("+  pc1 prefetchnta +128"), std::string::npos);
  // Extra and missing trailing lines are both reported.
  EXPECT_NE(diff_golden(expected, expected + "  pc2 prefetcht0 +64\n"), "");
  EXPECT_NE(diff_golden(expected + "  pc2 prefetcht0 +64\n", expected), "");
}

TEST(GoldenPlans, RenderEmitsEveryBenchmark) {
  const std::vector<GoldenEntry> entries = {
      {"alpha", {core::PrefetchPlan{7, 128, workloads::PrefetchHint::T0}}},
      {"beta", {}},
  };
  const std::string text = render_golden(entries, "Test Machine");
  EXPECT_NE(text.find("machine=Test Machine"), std::string::npos);
  EXPECT_NE(text.find("benchmark alpha\n  pc7 prefetcht0 +128\n"),
            std::string::npos);
  EXPECT_NE(text.find("benchmark beta\n  none\n"), std::string::npos);
}

}  // namespace
}  // namespace re::verify
