#include "verify/trace_fuzzer.hh"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "testutil.hh"
#include "workloads/dsl.hh"

namespace re::verify {
namespace {

TEST(TraceFuzzer, SameKeyIsByteDeterministic) {
  const std::uint64_t seed = re::testing::test_seed();
  for (const TraceFamily family : all_trace_families()) {
    const FuzzedTrace a = make_trace(family, seed, 1);
    const FuzzedTrace b = make_trace(family, seed, 1);
    EXPECT_EQ(workloads::print_program(a.program),
              workloads::print_program(b.program));
    ASSERT_EQ(a.expectations.size(), b.expectations.size());
    for (std::size_t i = 0; i < a.expectations.size(); ++i) {
      EXPECT_EQ(a.expectations[i].cache_lines, b.expectations[i].cache_lines);
      EXPECT_DOUBLE_EQ(a.expectations[i].miss_ratio,
                       b.expectations[i].miss_ratio);
    }
  }
}

TEST(TraceFuzzer, SeedsAndVariantsChangeTheTrace) {
  const std::uint64_t seed = re::testing::test_seed();
  for (const TraceFamily family : all_trace_families()) {
    const std::string base =
        workloads::print_program(make_trace(family, seed, 0).program);
    EXPECT_NE(base,
              workloads::print_program(make_trace(family, seed, 1).program))
        << trace_family_name(family) << ": variant did not vary";
    EXPECT_NE(base, workloads::print_program(
                        make_trace(family, seed + 1, 0).program))
        << trace_family_name(family) << ": seed did not vary";
  }
}

TEST(TraceFuzzer, FamiliesHaveUniqueNamesAndSaneSizes) {
  const std::uint64_t seed = re::testing::test_seed();
  std::set<std::string> names;
  EXPECT_EQ(all_trace_families().size(), 6u);
  for (const TraceFamily family : all_trace_families()) {
    const FuzzedTrace trace = make_trace(family, seed);
    EXPECT_TRUE(names.insert(trace.program.name).second);
    EXPECT_NE(trace.program.name.find(trace_family_name(family)),
              std::string::npos);
    // Large enough for sparse sampling to be meaningful, small enough for
    // the tier-1 suite to replay exactly. (phasemix bottoms out near 18k;
    // the tightly-bounded families keep a 50k floor in the fuzzer itself.)
    EXPECT_GE(trace.program.total_references(), 15000u);
    EXPECT_LE(trace.program.total_references(), 500000u);
    // The DSL round-trip must hold for fuzzed programs too.
    const workloads::Program reparsed =
        workloads::parse_program(workloads::print_program(trace.program));
    EXPECT_EQ(workloads::print_program(reparsed),
              workloads::print_program(trace.program));
  }
}

TEST(TraceFuzzer, ExpectationsAreWellFormed) {
  const std::uint64_t seed = re::testing::test_seed();
  std::size_t with_truth = 0;
  for (const TraceFamily family : all_trace_families()) {
    const FuzzedTrace trace = make_trace(family, seed);
    if (!trace.expectations.empty()) ++with_truth;
    for (const MrcExpectation& e : trace.expectations) {
      EXPECT_GT(e.cache_lines, 0u);
      EXPECT_GE(e.miss_ratio, 0.0);
      EXPECT_LE(e.miss_ratio, 1.0);
      EXPECT_GT(e.tolerance, 0.0);
    }
  }
  // Four of the six families carry closed-form ground truth (chase and
  // phasemix intentionally do not).
  EXPECT_EQ(with_truth, 4u);
}

}  // namespace
}  // namespace re::verify
