// Property tests for the exact shared-LLC oracle: one true LRU stack over
// the interleaved multi-core stream with per-core attribution. The
// properties here are exact identities — no modeling slack anywhere.
#include "verify/shared_lru.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/trace_replay.hh"
#include "support/rng.hh"
#include "testutil.hh"
#include "verify/exact_lru.hh"
#include "verify/trace_fuzzer.hh"
#include "workloads/mix.hh"

namespace re::verify {
namespace {

/// Per-core seeded pseudo-random line streams (256-line working set per
/// core, disjoint windows), for properties that need arbitrary traffic.
std::vector<std::vector<Addr>> make_stream(int cores, std::uint64_t seed,
                                           std::uint64_t refs_per_core) {
  std::vector<std::vector<Addr>> lines(static_cast<std::size_t>(cores));
  Rng rng(seed);
  for (int core = 0; core < cores; ++core) {
    for (std::uint64_t i = 0; i < refs_per_core; ++i) {
      const Addr line = (static_cast<Addr>(core) << 32) | rng.next(256);
      lines[static_cast<std::size_t>(core)].push_back(line);
    }
  }
  return lines;
}

TEST(ExactSharedLru, SingleCoreMatchesExactLruExactly) {
  const FuzzedTrace fuzzed =
      make_trace(TraceFamily::kPointerChase, re::testing::test_seed(), 0);
  ExactLruModel solo;
  ExactSharedLruModel shared(1);
  core::replay_program(
      fuzzed.program,
      [&](Pc pc, Addr addr) {
        solo.observe(pc, addr);
        shared.observe(0, pc, addr);
      },
      std::uint64_t{1} << 14);
  solo.finalize();
  shared.finalize();

  ASSERT_EQ(shared.accesses(), solo.accesses());
  ASSERT_EQ(shared.accesses_of(0), solo.accesses());
  // Exact equality at every probed size: a one-core shared stack IS the
  // private stack.
  for (std::uint64_t lines = 1; lines <= (1u << 16); lines *= 2) {
    EXPECT_EQ(shared.misses_at(lines),
              solo.application_mrc().miss_count_lines(lines))
        << "lines=" << lines;
    EXPECT_EQ(shared.core_misses_at(0, lines),
              solo.application_mrc().miss_count_lines(lines))
        << "lines=" << lines;
  }
}

TEST(ExactSharedLru, PerCoreMissesSumExactlyToSharedTotal) {
  const int cores = 4;
  const auto stream = make_stream(cores, re::testing::test_seed(), 2048);
  ExactSharedLruModel model(cores);
  for (std::uint64_t i = 0; i < 2048; ++i) {
    for (int core = 0; core < cores; ++core) {
      model.observe(core, static_cast<Pc>(core + 1),
                    stream[static_cast<std::size_t>(core)][i] * kLineSize);
    }
  }
  model.finalize();

  std::uint64_t total_accesses = 0;
  for (int core = 0; core < cores; ++core) {
    total_accesses += model.accesses_of(core);
  }
  EXPECT_EQ(total_accesses, model.accesses());

  for (std::uint64_t lines = 1; lines <= 4096; lines *= 4) {
    std::uint64_t sum = 0;
    for (int core = 0; core < cores; ++core) {
      sum += model.core_misses_at(core, lines);
    }
    EXPECT_EQ(sum, model.misses_at(lines)) << "lines=" << lines;
  }
}

TEST(ExactSharedLru, MissRatiosAreMonotoneNonIncreasing) {
  const int cores = 3;
  const auto stream = make_stream(cores, re::testing::test_seed() + 1, 4096);
  ExactSharedLruModel model(cores);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    for (int core = 0; core < cores; ++core) {
      model.observe(core, 1,
                    stream[static_cast<std::size_t>(core)][i] * kLineSize);
    }
  }
  model.finalize();

  double prev_app = 1.0;
  std::vector<double> prev_core(static_cast<std::size_t>(cores), 1.0);
  for (std::uint64_t lines = 1; lines <= 4096; lines *= 2) {
    const double app = model.application_mrc().miss_ratio_lines(lines);
    EXPECT_LE(app, prev_app + 1e-12) << "lines=" << lines;
    prev_app = app;
    for (int core = 0; core < cores; ++core) {
      const double mr = model.core_mrc(core).miss_ratio_lines(lines);
      EXPECT_LE(mr, prev_core[static_cast<std::size_t>(core)] + 1e-12)
          << "core=" << core << " lines=" << lines;
      prev_core[static_cast<std::size_t>(core)] = mr;
    }
  }
}

TEST(ExactSharedLru, ContentionInflatesACoresMissRatio) {
  // A chase core alone vs the same chase core sharing the stack with a
  // streaming neighbour: shared-stack distances can only grow, so at any
  // fixed size the chase core's attributed miss ratio must not drop.
  const std::uint64_t max_refs = std::uint64_t{1} << 13;
  const FuzzedTrace chase =
      make_trace(TraceFamily::kPointerChase, re::testing::test_seed(), 0);

  ExactLruModel solo;
  core::replay_program(
      chase.program, [&](Pc pc, Addr addr) { solo.observe(pc, addr); },
      max_refs);
  solo.finalize();

  FuzzedTrace stream =
      make_trace(TraceFamily::kStrided, re::testing::test_seed(), 1);
  workloads::rebase_program(stream.program, workloads::core_address_offset(1));
  std::vector<std::vector<std::pair<Pc, Addr>>> traces(2);
  core::replay_program(
      chase.program,
      [&](Pc pc, Addr addr) { traces[0].emplace_back(pc, addr); }, max_refs);
  core::replay_program(
      stream.program,
      [&](Pc pc, Addr addr) { traces[1].emplace_back(pc, addr); }, max_refs);

  ExactSharedLruModel shared(2);
  const std::size_t n = std::min(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < n; ++i) {
    shared.observe(0, traces[0][i].first, traces[0][i].second);
    shared.observe(1, traces[1][i].first, traces[1][i].second);
  }
  for (std::size_t i = n; i < traces[0].size(); ++i) {
    shared.observe(0, traces[0][i].first, traces[0][i].second);
  }
  for (std::size_t i = n; i < traces[1].size(); ++i) {
    shared.observe(1, traces[1][i].first, traces[1][i].second);
  }
  shared.finalize();

  for (std::uint64_t lines = 64; lines <= 16384; lines *= 4) {
    EXPECT_GE(shared.core_mrc(0).miss_ratio_lines(lines) + 1e-12,
              solo.application_mrc().miss_ratio_lines(lines))
        << "lines=" << lines;
  }
}

}  // namespace
}  // namespace re::verify
