// Property-based invariants over fuzzed traces: whatever the (seeded)
// parameters, these must hold for every trace the fuzzer can produce.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/pipeline.hh"
#include "core/profile_validator.hh"
#include "core/sampler.hh"
#include "core/statstack.hh"
#include "sim/config.hh"
#include "testutil.hh"
#include "verify/exact_lru.hh"
#include "verify/trace_fuzzer.hh"

namespace re::verify {
namespace {

core::OptimizerOptions fast_options() {
  core::OptimizerOptions options;
  // Skip the baseline timing simulation; the properties under test concern
  // the analysis passes, not the measured Δ.
  options.assumed_cycles_per_memop = 3.0;
  return options;
}

// StatStack's estimated application MRC must be monotone non-increasing in
// cache size — the estimator maps a fixed reuse-distance distribution
// through a survival function, so any rise is an implementation bug.
TEST(Properties, EstimatedMrcMonotoneInCacheSize) {
  const std::uint64_t seed = re::testing::test_seed();
  for (const TraceFamily family : all_trace_families()) {
    const FuzzedTrace trace = make_trace(family, seed);
    const core::Profile profile = core::profile_program(
        trace.program,
        {std::max<std::uint64_t>(
             1, trace.program.total_references() / 16384),
         seed});
    const core::StatStack model(profile);
    double prev = 1.0;
    for (std::uint64_t lines = 16; lines <= 1u << 16; lines *= 2) {
      const double mr = model.application_mrc().miss_ratio_lines(lines);
      EXPECT_LE(mr, prev + 1e-9)
          << trace.program.name << ": MRC rose at " << lines << " lines";
      prev = mr;
    }
  }
}

// The whole pipeline is deterministic: identical inputs give byte-identical
// plans (this is what makes `repf verify` reproducible and the golden
// snapshots stable).
TEST(Properties, OptimizationPlansAreDeterministic) {
  const std::uint64_t seed = re::testing::test_seed();
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  for (const TraceFamily family : all_trace_families()) {
    const FuzzedTrace trace = make_trace(family, seed);
    const core::OptimizationReport a =
        core::optimize_program(trace.program, machine, fast_options());
    const core::OptimizationReport b =
        core::optimize_program(trace.program, machine, fast_options());
    ASSERT_EQ(a.plans.size(), b.plans.size()) << trace.program.name;
    for (std::size_t i = 0; i < a.plans.size(); ++i) {
      EXPECT_EQ(a.plans[i].pc, b.plans[i].pc);
      EXPECT_EQ(a.plans[i].distance_bytes, b.plans[i].distance_bytes);
      EXPECT_EQ(a.plans[i].hint, b.plans[i].hint);
    }
  }
}

// Paper Section VI-A: the prefetch distance is capped at half the loop's
// references (P <= R/2, in bytes: |distance| <= executions/2 * |stride|),
// and is never shorter than one cache line.
TEST(Properties, PrefetchDistanceRespectsTheHalfLoopCap) {
  const std::uint64_t seed = re::testing::test_seed();
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  std::size_t plans_checked = 0;
  for (const TraceFamily family : all_trace_families()) {
    for (std::uint64_t variant = 0; variant < 2; ++variant) {
      const FuzzedTrace trace = make_trace(family, seed, variant);
      const core::OptimizationReport report =
          core::optimize_program(trace.program, machine, fast_options());
      for (const core::PrefetchPlan& plan : report.plans) {
        const std::int64_t stride = [&] {
          for (const core::StrideInfo& info : report.stride_infos) {
            if (info.pc == plan.pc) return info.stride;
          }
          return std::int64_t{0};
        }();
        ASSERT_NE(stride, 0) << "plan for pc" << plan.pc
                             << " without stride info";
        const double r = static_cast<double>(
            report.profile.executions_of(plan.pc));
        const double cap = std::max(
            r / 2.0 * static_cast<double>(std::llabs(stride)),
            static_cast<double>(kLineSize));
        EXPECT_LE(static_cast<double>(std::llabs(plan.distance_bytes)), cap)
            << trace.program.name << " pc" << plan.pc;
        EXPECT_GE(std::llabs(plan.distance_bytes),
                  static_cast<std::int64_t>(kLineSize));
        ++plans_checked;
      }
    }
  }
  EXPECT_GT(plans_checked, 0u);
}

// Bypass soundness against ground truth: a load may only be demoted to
// PREFETCHNTA when every instruction that (actually, per the exact model)
// reuses its lines has a flat MRC between L1 and LLC — i.e. the data truly
// gains nothing from residing in the shared levels.
TEST(Properties, NonTemporalPlansOnlyForFlatReusers) {
  const std::uint64_t seed = re::testing::test_seed();
  const sim::MachineConfig machine = sim::amd_phenom_ii();
  const FuzzedTrace trace = make_trace(TraceFamily::kHotCold, seed);
  const core::OptimizationReport report =
      core::optimize_program(trace.program, machine, fast_options());
  const ExactLruModel exact = exact_model_of(trace.program);

  bool saw_nta = false;
  for (const core::PrefetchPlan& plan : report.plans) {
    if (plan.hint != workloads::PrefetchHint::NTA) continue;
    saw_nta = true;
    std::vector<Pc> reusers = exact.reusers_of(plan.pc, 0.05);
    reusers.push_back(plan.pc);
    for (Pc reuser : reusers) {
      const ExactMrc& mrc = exact.pc_mrc(reuser);
      if (mrc.empty()) continue;
      const double mr_l1 = mrc.miss_ratio_bytes(machine.l1.size_bytes);
      if (mr_l1 <= 0.0) continue;
      const double drop =
          (mr_l1 - mrc.miss_ratio_bytes(machine.llc.size_bytes)) / mr_l1;
      EXPECT_LE(drop, 0.10 + 0.02)
          << "NTA plan for pc" << plan.pc << " but reuser pc" << reuser
          << " gains " << drop << " from shared caches";
    }
  }
  // The family is constructed so the cold stream earns an NTA plan.
  EXPECT_TRUE(saw_nta);
}

core::Profile small_profile() {
  core::Profile profile;
  profile.total_references = 1000;
  profile.sample_period = 10;
  profile.reuse_samples.push_back({1, 1, 5, 100});
  profile.reuse_samples.push_back({1, 2, 40, 400});
  profile.stride_samples.push_back({1, 64, 10, 200});
  profile.pc_execution_counts[1] = 500;
  profile.pc_execution_counts[2] = 500;
  return profile;
}

// Sanitizing discards corrupt samples, never invents new ones, and is
// idempotent: a sanitized profile passes a second pass untouched.
TEST(Properties, ValidatorSanitizeDiscardsAndIsIdempotent) {
  core::Profile profile = small_profile();
  // Internally impossible: reuse beyond the profiled window, stride sample
  // positioned beyond the window, implausible stride magnitude.
  profile.reuse_samples.push_back({1, 2, 5000, 100});
  profile.stride_samples.push_back({1, 64, 10, 5000});
  profile.stride_samples.push_back({1, std::int64_t{1} << 50, 10, 300});

  const core::ProfileValidator validator;
  core::DegradationLog log;
  const Expected<core::Profile> clean = validator.sanitize(profile, &log);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->reuse_samples.size(), 2u);
  EXPECT_EQ(clean->stride_samples.size(), 1u);
  // One log entry per discard class, with the count in the detail text.
  EXPECT_EQ(log.count(core::DegradationReason::kCorruptReuseSample), 1u);
  EXPECT_EQ(log.count(core::DegradationReason::kCorruptStrideSample), 1u);

  core::DegradationLog second_log;
  const Expected<core::Profile> again = validator.sanitize(*clean, &second_log);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(second_log.empty());
  EXPECT_EQ(again->reuse_samples.size(), clean->reuse_samples.size());
  EXPECT_EQ(again->stride_samples.size(), clean->stride_samples.size());
}

// Classification can only gate, never promote: thin or irregular evidence
// must not come back kOk, NaN poisoning must come back kInvalid, and a
// profile with nothing usable is an error, not a silent pass.
TEST(Properties, ValidatorNeverUpgradesBadEvidence) {
  const core::ProfileValidator validator;

  core::StrideInfo thin;
  thin.pc = 1;
  thin.regular = true;
  thin.stride = 64;
  thin.dominance = 1.0;
  EXPECT_NE(validator.classify_stride_evidence(thin, 2).confidence,
            core::LoadConfidence::kOk);

  core::StrideInfo irregular = thin;
  irregular.regular = false;
  irregular.dominance = 0.4;
  EXPECT_NE(validator.classify_stride_evidence(irregular, 100).confidence,
            core::LoadConfidence::kOk);

  core::StrideInfo good = thin;
  EXPECT_EQ(validator.classify_stride_evidence(good, 100).confidence,
            core::LoadConfidence::kOk);

  EXPECT_EQ(validator
                .classify_model_numerics(std::nan(""), 0.1, 0.1, 100.0, 3.0)
                .confidence,
            core::LoadConfidence::kInvalid);
  EXPECT_EQ(validator.classify_model_numerics(0.2, 0.1, 0.05, 100.0, 3.0)
                .confidence,
            core::LoadConfidence::kOk);

  core::Profile empty;
  core::DegradationLog log;
  EXPECT_FALSE(validator.sanitize(empty, &log).has_value());
}

}  // namespace
}  // namespace re::verify
