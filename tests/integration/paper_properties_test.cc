// End-to-end properties pinning the paper's headline claims on a small
// (deterministic) sample of mixed workloads. These are the reproduction's
// regression guard: if a refactor breaks any of them, the benches would no
// longer tell the paper's story.
#include <gtest/gtest.h>

#include "analysis/functional_sim.hh"
#include "analysis/metrics.hh"
#include "analysis/mix_study.hh"
#include "core/pipeline.hh"
#include "core/statstack.hh"
#include "workloads/suite.hh"

namespace re {
namespace {

class PaperPropertiesTest : public ::testing::Test {
 protected:
  static constexpr int kMixSample = 8;

  static analysis::MixStudy amd_study() {
    static analysis::MixStudy study = [] {
      analysis::PlanCache cache;
      return analysis::run_mix_study(sim::amd_phenom_ii(), cache, kMixSample,
                                     workloads::InputSet::Reference);
    }();
    return study;
  }
};

TEST_F(PaperPropertiesTest, SoftwareNtBeatsHardwareThroughputOnAverage) {
  // Paper Section VII-C: +16 % vs +6 % on AMD across the mixes.
  const auto study = amd_study();
  EXPECT_GT(study.average(&analysis::MixOutcome::ws_nt),
            study.average(&analysis::MixOutcome::ws_hw));
  EXPECT_GT(study.average(&analysis::MixOutcome::ws_nt), 1.05);
}

TEST_F(PaperPropertiesTest, SoftwareNtNeverDegradesAMix) {
  // Paper: "our software prefetching method never hurts performance".
  for (const auto& o : amd_study().outcomes) {
    EXPECT_GE(o.ws_nt, 1.0) << o.spec.apps[0] << "," << o.spec.apps[1] << ","
                            << o.spec.apps[2] << "," << o.spec.apps[3];
  }
}

TEST_F(PaperPropertiesTest, SoftwareNtMovesLessDataThanHardware) {
  // Paper Fig. 7c/d: strictly less off-chip traffic than HW prefetching.
  const auto study = amd_study();
  EXPECT_LT(study.average(&analysis::MixOutcome::traffic_nt),
            study.average(&analysis::MixOutcome::traffic_hw));
  int nt_less = 0;
  for (const auto& o : study.outcomes) {
    if (o.traffic_nt < o.traffic_hw) ++nt_less;
  }
  EXPECT_GE(nt_less, kMixSample - 1);
}

TEST_F(PaperPropertiesTest, QosDegradationSmallerThanHardware) {
  const auto study = amd_study();
  EXPECT_GT(study.average(&analysis::MixOutcome::qos_nt),
            study.average(&analysis::MixOutcome::qos_hw));
}

TEST(PaperProperties, HardwarePrefetchSlowsCigarOnAmd) {
  // Paper Section VII-A: AMD's prefetcher slows cigar by >11 %.
  const auto machine = sim::amd_phenom_ii();
  const auto program = workloads::make_benchmark("cigar");
  const auto base = sim::run_single(machine, program, false);
  const auto hw = sim::run_single(machine, program, true);
  EXPECT_GT(hw.apps[0].cycles, base.apps[0].cycles);

  // While the cost-benefit software prefetcher speeds it up.
  const auto report = core::optimize_program(program, machine);
  const auto sw = sim::run_single(machine, report.optimized, false);
  EXPECT_LT(sw.apps[0].cycles, base.apps[0].cycles);
}

TEST(PaperProperties, HardwarePrefetchInflatesCigarTrafficOnIntel) {
  // Paper Fig. 5b: Intel's prefetcher inflates cigar's traffic by 630 %.
  const auto machine = sim::intel_sandybridge();
  const auto program = workloads::make_benchmark("cigar");
  const auto base = sim::run_single(machine, program, false);
  const auto hw = sim::run_single(machine, program, true);
  EXPECT_GT(analysis::traffic_increase(base.dram.total_bytes(),
                                       hw.dram.total_bytes()),
            0.5);
}

TEST(PaperProperties, MddliExecutesFewerPrefetchesThanStrideCentric) {
  // Paper Table I: ~35 % fewer prefetch instructions at similar coverage.
  const auto machine = sim::amd_phenom_ii();
  std::uint64_t mddli_pf = 0, centric_pf = 0;
  double mddli_cov = 0.0, centric_cov = 0.0;
  for (const char* name : {"gcc", "omnetpp", "soplex", "xalan", "milc"}) {
    const auto program = workloads::make_benchmark(name);
    const auto mddli = core::optimize_program(program, machine);
    const auto centric = core::stride_centric_optimize(program, machine);
    const auto cov_m =
        analysis::measure_coverage(program, mddli.optimized, machine.l1);
    const auto cov_c =
        analysis::measure_coverage(program, centric.optimized, machine.l1);
    mddli_pf += cov_m.prefetches_executed;
    centric_pf += cov_c.prefetches_executed;
    mddli_cov += cov_m.miss_coverage();
    centric_cov += cov_c.miss_coverage();
  }
  EXPECT_LT(static_cast<double>(mddli_pf),
            static_cast<double>(centric_pf) * 0.75);
  EXPECT_NEAR(mddli_cov, centric_cov, 0.10 * 5);
}

TEST(PaperProperties, StatStackCoversMostMisses) {
  // Paper Section IV: 88 % of misses at the L1, 94 % at the L2.
  const auto machine = sim::amd_phenom_ii();
  double l1_sum = 0.0, l2_sum = 0.0;
  int n = 0;
  for (const char* name : {"libquantum", "mcf", "omnetpp", "leslie3d"}) {
    const auto program = workloads::make_benchmark(name);
    const auto profile = core::profile_program(program, {});
    const core::StatStack model(profile);
    l1_sum += analysis::statstack_miss_coverage(
        model, profile, analysis::functional_simulate(program, machine.l1),
        machine.l1.num_lines());
    l2_sum += analysis::statstack_miss_coverage(
        model, profile, analysis::functional_simulate(program, machine.l2),
        machine.l2.num_lines());
    ++n;
  }
  EXPECT_GT(l1_sum / n, 0.80);
  EXPECT_GT(l2_sum / n, 0.85);
}

TEST(PaperProperties, NtReducesTrafficVsPlainSoftwarePrefetchInMixes) {
  // The bypassing benefit is a multicore effect: in a shared LLC, NT keeps
  // co-runners' reusable data resident.
  analysis::PlanCache cache;
  const workloads::MixSpec spec{{"libquantum", "gcc", "mcf", "soplex"}};
  const auto eval = analysis::evaluate_mix(
      sim::amd_phenom_ii(), spec, cache, workloads::InputSet::Reference,
      {analysis::Policy::Baseline, analysis::Policy::Software,
       analysis::Policy::SoftwareNT});
  EXPECT_LT(eval.runs.at(analysis::Policy::SoftwareNT).dram.total_bytes(),
            eval.runs.at(analysis::Policy::Software).dram.total_bytes());
  EXPECT_GE(eval.weighted_speedup(analysis::Policy::SoftwareNT),
            eval.weighted_speedup(analysis::Policy::Software) * 0.98);
}

TEST(PaperProperties, PlansTransferAcrossInputs) {
  // Paper Section VII-D: plans from the Reference profile still help on
  // Alternate inputs.
  const auto machine = sim::amd_phenom_ii();
  for (const char* name : {"libquantum", "lbm", "leslie3d"}) {
    const auto reference = workloads::make_benchmark(name);
    const auto report = core::optimize_program(reference, machine);
    const auto alternate =
        workloads::make_benchmark(name, workloads::InputSet::Alternate);
    const auto alt_opt = core::insert_prefetches(alternate, report.plans);
    const auto base = sim::run_single(machine, alternate, false);
    const auto opt = sim::run_single(machine, alt_opt, false);
    EXPECT_GT(static_cast<double>(base.apps[0].cycles) /
                  static_cast<double>(opt.apps[0].cycles),
              1.15)
        << name;
  }
}

}  // namespace
}  // namespace re
