#include "sim/hw_prefetcher.hh"

#include <algorithm>
#include <gtest/gtest.h>

namespace re::sim {
namespace {

HwPrefetcherConfig base_config() {
  HwPrefetcherConfig c;
  c.enabled = true;
  c.pc_stride = true;
  c.stride_confidence_threshold = 2;
  c.stride_degree = 4;
  c.stream = true;
  c.stream_train_misses = 2;
  c.stream_degree = 4;
  c.adjacent_line = false;
  c.throttle_queue_cycles = 400;
  c.throttled_min_degree = 2;
  return c;
}

std::vector<Addr> observe_seq(HwPrefetcher& pf, Pc pc,
                              const std::vector<Addr>& addrs, bool l2_hit,
                              Cycle queue_delay = 0) {
  std::vector<Addr> out;
  for (Addr a : addrs) pf.observe(pc, a, l2_hit, queue_delay, out);
  return out;
}

TEST(HwPrefetcher, DisabledIssuesNothing) {
  HwPrefetcherConfig c = base_config();
  c.enabled = false;
  HwPrefetcher pf(c);
  const auto out = observe_seq(pf, 1, {0, 64, 128, 192, 256}, false);
  EXPECT_TRUE(out.empty());
}

TEST(HwPrefetcher, StrideEngineTrainsAfterConfidenceThreshold) {
  HwPrefetcherConfig c = base_config();
  c.stream = false;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  // First observation allocates, next two build confidence 2.
  pf.observe(1, 1000, true, 0, out);
  pf.observe(1, 1128, true, 0, out);
  EXPECT_TRUE(out.empty());  // confidence 1 < 2
  pf.observe(1, 1256, true, 0, out);
  ASSERT_FALSE(out.empty());
  // Targets are line addresses of addr + stride*k.
  EXPECT_EQ(out.front(), line_of(1256 + 128));
  EXPECT_EQ(pf.stats().stride_prefetches, out.size());
}

TEST(HwPrefetcher, StrideEngineDedupsSubLineStridesPerTrigger) {
  HwPrefetcherConfig c = base_config();
  c.stream = false;
  c.stride_degree = 8;
  HwPrefetcher pf(c);
  for (Addr a = 0; a < 16 * 16; a += 16) {
    std::vector<Addr> out;
    pf.observe(1, a, true, 0, out);
    // Stride 16: degree 8 covers 128 bytes = at most 3 distinct lines per
    // trigger, never 8, and no duplicates within one trigger.
    EXPECT_LE(out.size(), 3u);
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_NE(out[i], out[i - 1]);
    }
  }
}

TEST(HwPrefetcher, StrideEngineIgnoresIrregularPcs) {
  HwPrefetcherConfig c = base_config();
  c.stream = false;
  HwPrefetcher pf(c);
  // Pseudo-random addresses: confidence never reaches 2.
  std::vector<Addr> addrs;
  Addr x = 12345;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1;
    addrs.push_back(x % (1 << 20));
  }
  const auto out = observe_seq(pf, 1, addrs, true);
  EXPECT_TRUE(out.empty());
}

TEST(HwPrefetcher, NegativeStridesTrainToo) {
  HwPrefetcherConfig c = base_config();
  c.stream = false;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  for (Addr a = 64 * 100; a >= 64 * 90; a -= 64) {
    pf.observe(1, a, true, 0, out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_LT(out.front(), line_of(64 * 100));
}

TEST(HwPrefetcher, StreamEngineDetectsSequentialMisses) {
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  pf.observe(1, 64 * 10, false, 0, out);
  pf.observe(2, 64 * 11, false, 0, out);  // delta +1 line, count 1
  EXPECT_TRUE(out.empty());
  pf.observe(3, 64 * 12, false, 0, out);  // count 2 -> trigger
  ASSERT_EQ(out.size(), 4u);              // degree lines ahead
  EXPECT_EQ(out[0], 13u);
  EXPECT_EQ(out[3], 16u);
}

TEST(HwPrefetcher, StreamEngineTracksDirection) {
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  pf.observe(1, 64 * 20, false, 0, out);
  pf.observe(1, 64 * 19, false, 0, out);
  pf.observe(1, 64 * 18, false, 0, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], 17u);  // descending stream
}

TEST(HwPrefetcher, StreamEngineIgnoresL2Hits) {
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  HwPrefetcher pf(c);
  const auto out =
      observe_seq(pf, 1, {64 * 10, 64 * 11, 64 * 12, 64 * 13}, true);
  EXPECT_TRUE(out.empty());
}

TEST(HwPrefetcher, AdjacentLineFetchesBuddy) {
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  c.stream = false;
  c.adjacent_line = true;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  pf.observe(1, 64 * 10, false, 0, out);  // line 10 -> buddy 11
  pf.observe(1, 64 * 13, false, 0, out);  // line 13 -> buddy 12
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[1], 12u);
  EXPECT_EQ(pf.stats().adjacent_prefetches, 2u);
}

TEST(HwPrefetcher, AdjacentLineBacksOffUnderContention) {
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  c.stream = false;
  c.adjacent_line = true;
  c.throttle_queue_cycles = 100;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  pf.observe(1, 64 * 10, false, /*queue=*/500, out);
  EXPECT_TRUE(out.empty());
}

TEST(HwPrefetcher, ThrottleHalvesDegree) {
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  c.stream_degree = 8;
  c.throttle_queue_cycles = 100;
  c.throttled_min_degree = 2;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  pf.observe(1, 64 * 10, false, 500, out);
  pf.observe(1, 64 * 11, false, 500, out);
  pf.observe(1, 64 * 12, false, 500, out);
  EXPECT_EQ(out.size(), 4u);  // 8/2
  EXPECT_GT(pf.stats().throttled_events, 0u);
}

TEST(HwPrefetcher, ResetClearsTrainingAndStats) {
  HwPrefetcher pf(base_config());
  std::vector<Addr> out;
  for (Addr a = 0; a < 64 * 10; a += 64) pf.observe(1, a, false, 0, out);
  EXPECT_GT(pf.stats().total(), 0u);
  pf.reset();
  EXPECT_EQ(pf.stats().total(), 0u);
  out.clear();
  pf.observe(1, 64 * 100, false, 0, out);
  EXPECT_TRUE(out.empty());  // training lost
}

// Property: short strided runs trigger overfetch beyond the run end — the
// cigar pathology. Quantify that the prefetcher issues targets past the
// last line the run touches.
class ShortStreamOverfetchTest : public ::testing::TestWithParam<int> {};

TEST_P(ShortStreamOverfetchTest, OverrunsStreamEnd) {
  const int run_lines = GetParam();
  HwPrefetcherConfig c = base_config();
  c.pc_stride = false;
  c.stream_train_misses = 1;
  c.stream_degree = 6;
  HwPrefetcher pf(c);
  std::vector<Addr> out;
  const Addr start_line = 1000;
  for (int i = 0; i < run_lines; ++i) {
    pf.observe(1, (start_line + static_cast<Addr>(i)) * 64, false, 0, out);
  }
  const Addr last_line = start_line + static_cast<Addr>(run_lines) - 1;
  const auto past_end =
      std::count_if(out.begin(), out.end(),
                    [&](Addr line) { return line > last_line; });
  EXPECT_GT(past_end, 0) << "run_lines=" << run_lines;
}

INSTANTIATE_TEST_SUITE_P(RunLengths, ShortStreamOverfetchTest,
                         ::testing::Values(3, 4, 6, 8, 16));

}  // namespace
}  // namespace re::sim
