#include "sim/cache.hh"

#include <gtest/gtest.h>

namespace re::sim {
namespace {

CacheGeometry geom(std::uint64_t size, std::uint32_t assoc) {
  return CacheGeometry{size, assoc};
}

TEST(CacheGeometry, DerivedQuantities) {
  const CacheGeometry g{64 << 10, 2};
  EXPECT_EQ(g.num_lines(), 1024u);
  EXPECT_EQ(g.num_sets(), 512u);
}

TEST(SetAssocCache, RejectsNonPowerOfTwoSets) {
  EXPECT_THROW(SetAssocCache(geom(3 * 64, 1)), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(geom(0, 1)), std::invalid_argument);
}

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache cache(geom(4 << 10, 2));
  EXPECT_FALSE(cache.access(1, true));
  cache.fill(1, FillOrigin::Demand);
  EXPECT_TRUE(cache.access(1, true));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(SetAssocCache, LruEvictsLeastRecentlyUsed) {
  // 2 ways, 1 set: size = 2 lines.
  SetAssocCache cache(geom(128, 2));
  cache.fill(0, FillOrigin::Demand);
  cache.fill(1, FillOrigin::Demand);
  cache.access(0, true);  // 0 is now MRU
  const auto evicted = cache.fill(2, FillOrigin::Demand);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, 1u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(1));
}

TEST(SetAssocCache, FillPrefersInvalidWays) {
  SetAssocCache cache(geom(256, 4));  // 4 ways, 1 set
  cache.fill(10, FillOrigin::Demand);
  const auto evicted = cache.fill(11, FillOrigin::Demand);
  EXPECT_FALSE(evicted.has_value());  // three ways still invalid
}

TEST(SetAssocCache, SetsAreIndependent) {
  // 2 sets x 1 way.
  SetAssocCache cache(geom(128, 1));
  cache.fill(0, FillOrigin::Demand);  // set 0
  cache.fill(1, FillOrigin::Demand);  // set 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  cache.fill(2, FillOrigin::Demand);  // set 0 again -> evicts line 0
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(SetAssocCache, EvictionReportsOriginAndTouchState) {
  SetAssocCache cache(geom(64, 1));  // 1 set, 1 way
  cache.fill(1, FillOrigin::HwPrefetch);
  auto ev = cache.fill(2, FillOrigin::SwPrefetch);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->origin, FillOrigin::HwPrefetch);
  EXPECT_FALSE(ev->demand_touched);

  cache.access(2, /*demand=*/true);
  ev = cache.fill(3, FillOrigin::Demand);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->origin, FillOrigin::SwPrefetch);
  EXPECT_TRUE(ev->demand_touched);
}

TEST(SetAssocCache, NonDemandAccessDoesNotMarkTouched) {
  SetAssocCache cache(geom(64, 1));
  cache.fill(1, FillOrigin::SwPrefetch);
  cache.access(1, /*demand=*/false);
  const auto ev = cache.fill(2, FillOrigin::Demand);
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->demand_touched);
}

TEST(SetAssocCache, InvalidateRemovesLine) {
  SetAssocCache cache(geom(4 << 10, 4));
  cache.fill(5, FillOrigin::Demand);
  cache.invalidate(5);
  EXPECT_FALSE(cache.contains(5));
  // Invalidating an absent line is a no-op.
  EXPECT_NO_THROW(cache.invalidate(999));
}

TEST(SetAssocCache, FlushEmptiesEverything) {
  SetAssocCache cache(geom(4 << 10, 4));
  for (Addr line = 0; line < 32; ++line) cache.fill(line, FillOrigin::Demand);
  cache.flush();
  for (Addr line = 0; line < 32; ++line) EXPECT_FALSE(cache.contains(line));
}

TEST(SetAssocCache, UntouchedPrefetchLineCount) {
  SetAssocCache cache(geom(4 << 10, 4));
  cache.fill(1, FillOrigin::SwPrefetch);
  cache.fill(2, FillOrigin::HwPrefetch);
  cache.fill(3, FillOrigin::Demand);
  EXPECT_EQ(cache.untouched_prefetch_lines(), 2u);
  cache.access(1, /*demand=*/true);
  EXPECT_EQ(cache.untouched_prefetch_lines(), 1u);
}

TEST(SetAssocCache, AccessRefreshesRecency) {
  SetAssocCache cache(geom(128, 2));  // 1 set, 2 ways
  cache.fill(0, FillOrigin::Demand);
  cache.fill(1, FillOrigin::Demand);
  // Touch 1 then 0; next eviction must take 1.
  cache.access(1, true);
  cache.access(0, true);
  const auto ev = cache.fill(2, FillOrigin::Demand);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 1u);
}

// Property: a cyclic sweep over N lines in a fully-associative cache of N
// lines hits after warmup; over N+1 lines it always misses (LRU).
class LruSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LruSweepTest, CyclicSweepBoundary) {
  const std::uint32_t ways = GetParam();
  SetAssocCache cache(geom(static_cast<std::uint64_t>(ways) * kLineSize,
                           ways));  // 1 set, `ways` lines

  // Working set == capacity: all hits after the first pass.
  for (Addr line = 0; line < ways; ++line) cache.fill(line, FillOrigin::Demand);
  for (int pass = 0; pass < 3; ++pass) {
    for (Addr line = 0; line < ways; ++line) {
      EXPECT_TRUE(cache.access(line, true)) << "ways=" << ways;
    }
  }

  // Working set == capacity + 1: LRU thrashes, zero hits.
  cache.flush();
  for (int pass = 0; pass < 3; ++pass) {
    for (Addr line = 0; line <= ways; ++line) {
      if (!cache.access(line, true)) cache.fill(line, FillOrigin::Demand);
    }
  }
  for (Addr line = 0; line <= ways; ++line) {
    if (cache.access(line, true)) {
      // Only the most recently filled `ways` lines can be resident; the
      // cyclic order guarantees the next needed line was just evicted.
      continue;
    }
    cache.fill(line, FillOrigin::Demand);
  }
  // Quantitative check: a full extra pass sees zero hits.
  int hits = 0;
  for (Addr line = 0; line <= ways; ++line) {
    if (cache.access(line, true)) {
      ++hits;
    } else {
      cache.fill(line, FillOrigin::Demand);
    }
  }
  EXPECT_EQ(hits, 0) << "ways=" << ways;
}

INSTANTIATE_TEST_SUITE_P(Associativities, LruSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 24));

}  // namespace
}  // namespace re::sim
