#include "sim/memory_system.hh"

#include <gtest/gtest.h>

#include "sim/config.hh"

using re::workloads::PrefetchHint;

namespace re::sim {
namespace {

MachineConfig test_machine() {
  MachineConfig m = amd_phenom_ii();
  m.hw_prefetcher.enabled = false;
  return m;
}

TEST(PendingLines, TracksInFlightFills) {
  PendingLines pending;
  pending.insert(100, 500);
  EXPECT_EQ(pending.remaining(100, 400), 100u);
  EXPECT_TRUE(pending.in_flight(100, 499));
  EXPECT_FALSE(pending.in_flight(100, 500));
  EXPECT_FALSE(pending.in_flight(101, 0));
  EXPECT_EQ(pending.remaining(100, 600), 0u);
}

TEST(PendingLines, CollisionOverwrites) {
  PendingLines pending;
  pending.insert(1, 1000);
  pending.insert(1, 2000);  // same line, refreshed
  EXPECT_EQ(pending.remaining(1, 0), 2000u);
}

TEST(MemorySystem, ColdMissGoesToDram) {
  MemorySystem mem(test_machine(), 1);
  mem.demand_load(0, 1, 0x10000, 0);
  EXPECT_EQ(mem.core_stats(0).dram_loads, 1u);
  EXPECT_EQ(mem.dram_stats().demand_lines, 1u);
}

TEST(MemorySystem, SecondAccessHitsL1) {
  MemorySystem mem(test_machine(), 1);
  mem.demand_load(0, 1, 0x10000, 0);
  const Cycle stall = mem.demand_load(0, 1, 0x10000, 1000);
  EXPECT_EQ(mem.core_stats(0).l1_hits, 1u);
  EXPECT_EQ(stall, test_machine().pipelined_l1_cost);
}

TEST(MemorySystem, SerialLoadsPayFullLatency) {
  MachineConfig m = test_machine();
  MemorySystem mem(m, 1);
  const Cycle serial = mem.demand_load(0, 1, 0x10000, 0, true);
  EXPECT_EQ(serial, m.dram_latency);

  MemorySystem mem2(m, 1);
  const Cycle overlapped = mem2.demand_load(0, 1, 0x10000, 0, false);
  EXPECT_EQ(overlapped, m.dram_latency - m.oo_overlap_cycles);
}

TEST(MemorySystem, L1HitForSerialLoadCostsL1Latency) {
  MachineConfig m = test_machine();
  MemorySystem mem(m, 1);
  mem.demand_load(0, 1, 0x10000, 0);
  EXPECT_EQ(mem.demand_load(0, 1, 0x10000, 1000, true), m.l1_latency);
}

TEST(MemorySystem, SoftwarePrefetchHidesDramLatency) {
  MachineConfig m = test_machine();
  MemorySystem mem(m, 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T0, 0);
  EXPECT_EQ(mem.core_stats(0).sw_prefetch_dram_lines, 1u);
  // Demand long after arrival: plain L1 hit.
  const Cycle stall = mem.demand_load(0, 1, 0x20000, 10000);
  EXPECT_EQ(stall, m.pipelined_l1_cost);
  EXPECT_EQ(mem.core_stats(0).dram_loads, 0u);
}

TEST(MemorySystem, LatePrefetchChargesRemainingLatency) {
  MachineConfig m = test_machine();
  MemorySystem mem(m, 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T0, 0);  // ready at ~dram_latency
  // Demand arrives 50 cycles in: remaining ~latency-50, charged as a
  // serial-dependent load would observe it.
  const Cycle stall = mem.demand_load(0, 1, 0x20000, 50, true);
  EXPECT_EQ(stall, m.dram_latency - 50);
  EXPECT_EQ(mem.core_stats(0).late_prefetch_hits, 1u);
}

TEST(MemorySystem, DuplicatePrefetchesAreDropped) {
  MemorySystem mem(test_machine(), 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T0, 0);
  mem.software_prefetch(0, 0x20010, PrefetchHint::T0, 1);  // same line
  EXPECT_EQ(mem.core_stats(0).sw_prefetches_issued, 2u);
  EXPECT_EQ(mem.core_stats(0).sw_prefetches_dropped, 1u);
  EXPECT_EQ(mem.core_stats(0).sw_prefetch_dram_lines, 1u);
}

TEST(MemorySystem, NormalPrefetchFillsSharedLevels) {
  MemorySystem mem(test_machine(), 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T0, 0);
  EXPECT_TRUE(mem.l1(0).contains(line_of(0x20000)));
  EXPECT_TRUE(mem.l2(0).contains(line_of(0x20000)));
  EXPECT_TRUE(mem.llc().contains(line_of(0x20000)));
}

TEST(MemorySystem, NonTemporalPrefetchBypassesSharedLevels) {
  MemorySystem mem(test_machine(), 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::NTA, 0);
  EXPECT_TRUE(mem.l1(0).contains(line_of(0x20000)));
  EXPECT_FALSE(mem.l2(0).contains(line_of(0x20000)));
  EXPECT_FALSE(mem.llc().contains(line_of(0x20000)));
}

TEST(MemorySystem, T1HintFillsL2AndLlcButNotL1) {
  MemorySystem mem(test_machine(), 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T1, 0);
  EXPECT_FALSE(mem.l1(0).contains(line_of(0x20000)));
  EXPECT_TRUE(mem.l2(0).contains(line_of(0x20000)));
  EXPECT_TRUE(mem.llc().contains(line_of(0x20000)));
}

TEST(MemorySystem, T2HintFillsLlcOnly) {
  MemorySystem mem(test_machine(), 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T2, 0);
  EXPECT_FALSE(mem.l1(0).contains(line_of(0x20000)));
  EXPECT_FALSE(mem.l2(0).contains(line_of(0x20000)));
  EXPECT_TRUE(mem.llc().contains(line_of(0x20000)));
}

TEST(MemorySystem, T1DedupsAgainstL2NotL1) {
  MemorySystem mem(test_machine(), 1);
  mem.software_prefetch(0, 0x20000, PrefetchHint::T1, 0);
  // A second T1 prefetch of the same line is dropped (L2-resident) even
  // though the L1 never saw it.
  mem.software_prefetch(0, 0x20000, PrefetchHint::T1, 100000);
  EXPECT_EQ(mem.core_stats(0).sw_prefetches_dropped, 1u);
  EXPECT_EQ(mem.core_stats(0).sw_prefetch_dram_lines, 1u);
}

TEST(MemorySystem, NtLineVanishesAfterL1Eviction) {
  MachineConfig m = test_machine();
  MemorySystem mem(m, 1);
  const Addr target = 0x20000;
  mem.software_prefetch(0, target, PrefetchHint::NTA, 0);
  // Flush it out of L1 by filling conflicting lines (same set, many ways).
  const std::uint64_t sets = m.l1.num_sets();
  for (std::uint64_t i = 1; i <= m.l1.associativity + 1; ++i) {
    mem.demand_load(0, 2, target + i * sets * kLineSize, 10000 + i * 1000);
  }
  EXPECT_FALSE(mem.l1(0).contains(line_of(target)));
  // The line is nowhere: re-access goes to DRAM.
  const std::uint64_t dram_before = mem.core_stats(0).dram_loads;
  mem.demand_load(0, 1, target, 100000);
  EXPECT_EQ(mem.core_stats(0).dram_loads, dram_before + 1);
}

TEST(MemorySystem, PrefetchFromLlcDoesNotTouchDram) {
  MemorySystem mem(test_machine(), 1);
  // Bring the line into LLC via demand, then evict from L1+L2 is not
  // needed: prefetch probe sees L2 copy. Use a second core's fill to place
  // it only in LLC.
  MemorySystem mem2(test_machine(), 2);
  mem2.demand_load(1, 1, 0x30000, 0);  // core 1 fills LLC (and its L1/L2)
  const std::uint64_t dram_before = mem2.dram_stats().total_lines();
  mem2.software_prefetch(0, 0x30000, PrefetchHint::T0, 1000);  // core 0: LLC hit
  EXPECT_EQ(mem2.dram_stats().total_lines(), dram_before);
}

TEST(MemorySystem, UselessPrefetchEvictionsAreCounted) {
  MachineConfig m = test_machine();
  // Tiny LLC pressure test: use NT fills into L1 and flood.
  MemorySystem mem(m, 1);
  const std::uint64_t sets = m.l1.num_sets();
  // NT-prefetch three lines mapping to set 0, never touch them, then force
  // their eviction with demand fills in the same set.
  for (int i = 0; i < 3; ++i) {
    mem.software_prefetch(0, static_cast<Addr>(i) * sets * kLineSize,
                          PrefetchHint::NTA, static_cast<Cycle>(i));
  }
  for (int i = 3; i < 8; ++i) {
    mem.demand_load(0, 2, static_cast<Addr>(i) * sets * kLineSize,
                    1000 + static_cast<Cycle>(i) * 500);
  }
  EXPECT_GT(mem.core_stats(0).useless_sw_evictions, 0u);
}

TEST(MemorySystem, SharedLlcIsVisibleAcrossCores) {
  MemorySystem mem(test_machine(), 2);
  mem.demand_load(0, 1, 0x40000, 0);
  // Core 1 misses its private L1/L2 but hits the shared LLC.
  mem.demand_load(1, 1, 0x40000, 1000);
  EXPECT_EQ(mem.core_stats(1).llc_hits, 1u);
  EXPECT_EQ(mem.core_stats(1).dram_loads, 0u);
}

TEST(MemorySystem, HwPrefetcherGeneratesTraffic) {
  MachineConfig m = test_machine();
  m.hw_prefetcher.enabled = true;
  MemorySystem mem(m, 1);
  // Stream of L2 misses trains the stream engine.
  for (int i = 0; i < 32; ++i) {
    mem.demand_load(0, 1, 0x100000 + static_cast<Addr>(i) * kLineSize,
                    static_cast<Cycle>(i) * 400);
  }
  EXPECT_GT(mem.core_stats(0).hw_prefetch_dram_lines, 0u);
  EXPECT_GT(mem.dram_stats().hw_prefetch_lines, 0u);
  // Later stream accesses should be covered (L2 hits or better).
  EXPECT_GT(mem.core_stats(0).l2_hits, 0u);
}

TEST(MemorySystem, StatsMissRatioHelpers) {
  CoreMemStats stats;
  stats.loads = 100;
  stats.l1_hits = 80;
  EXPECT_EQ(stats.l1_misses(), 20u);
  EXPECT_DOUBLE_EQ(stats.l1_miss_ratio(), 0.2);
  EXPECT_DOUBLE_EQ(CoreMemStats{}.l1_miss_ratio(), 0.0);
}

}  // namespace
}  // namespace re::sim
