#include "sim/system.hh"

#include <gtest/gtest.h>

#include "sim/core_runner.hh"
#include "workloads/mix.hh"
#include "workloads/program.hh"

namespace re::sim {
namespace {

using workloads::Loop;
using workloads::Program;
using workloads::StaticInst;
using workloads::StreamPattern;

Program stream_program(const std::string& name, std::uint64_t iterations,
                       std::uint64_t footprint, std::uint32_t compute = 2) {
  Program p;
  p.name = name;
  p.seed = 7;
  StaticInst inst;
  inst.pc = 1;
  inst.pattern = StreamPattern{0x100000, 64, footprint};
  inst.compute_cycles = compute;
  p.loops.push_back(Loop{{inst}, iterations});
  return p;
}

TEST(CoreRunner, ExecutesProgramToCompletion) {
  const MachineConfig machine = amd_phenom_ii();
  const Program p = stream_program("s", 1000, 1 << 20);
  MemorySystem memory(machine, 1);
  CoreRunner core(0, p, memory);
  while (!core.completed_once()) core.step();
  EXPECT_EQ(core.first_run_references(), 1000u);
  EXPECT_GT(core.first_completion_cycle(), 0u);
  EXPECT_EQ(memory.core_stats(0).loads, 1000u);
}

TEST(CoreRunner, RestartsAfterCompletion) {
  const MachineConfig machine = amd_phenom_ii();
  const Program p = stream_program("s", 100, 1 << 16);
  MemorySystem memory(machine, 1);
  CoreRunner core(0, p, memory);
  for (int i = 0; i < 250 + 3; ++i) core.step();
  EXPECT_GE(core.completions(), 2u);
}

TEST(CoreRunner, PrefetchOpCostsOneCycleAndIssues) {
  MachineConfig machine = amd_phenom_ii();
  Program p = stream_program("s", 10, 1 << 20, /*compute=*/0);
  p.loops[0].body[0].prefetch =
      workloads::PrefetchOp{256, workloads::PrefetchHint::T0};
  MemorySystem memory(machine, 1);
  CoreRunner core(0, p, memory);
  while (!core.completed_once()) core.step();
  EXPECT_EQ(memory.core_stats(0).sw_prefetches_issued, 10u);
}

TEST(RunSingle, BaselineAndResultShape) {
  const MachineConfig machine = amd_phenom_ii();
  const Program p = stream_program("bench", 5000, 1 << 22);
  const RunResult result = run_single(machine, p, false);
  ASSERT_EQ(result.apps.size(), 1u);
  EXPECT_EQ(result.apps[0].name, "bench");
  EXPECT_EQ(result.apps[0].references, 5000u);
  EXPECT_EQ(result.elapsed_cycles, result.apps[0].cycles);
  EXPECT_GT(result.dram.total_bytes(), 0u);
  EXPECT_GT(result.bandwidth_gbps(), 0.0);
  EXPECT_DOUBLE_EQ(result.freq_ghz, machine.freq_ghz);
}

TEST(RunSingle, DeterministicAcrossRuns) {
  const MachineConfig machine = intel_sandybridge();
  const Program p = stream_program("bench", 5000, 1 << 22);
  const RunResult a = run_single(machine, p, true);
  const RunResult b = run_single(machine, p, true);
  EXPECT_EQ(a.apps[0].cycles, b.apps[0].cycles);
  EXPECT_EQ(a.dram.total_lines(), b.dram.total_lines());
}

TEST(RunSingle, HwPrefetchingSpeedsUpStreams) {
  const MachineConfig machine = amd_phenom_ii();
  const Program p = stream_program("stream", 20000, 1 << 22);
  const RunResult base = run_single(machine, p, false);
  const RunResult hw = run_single(machine, p, true);
  EXPECT_LT(hw.apps[0].cycles, base.apps[0].cycles);
}

TEST(RunMix, AllAppsCompleteAndWindowIsMax) {
  const MachineConfig machine = amd_phenom_ii();
  const Program a = stream_program("a", 2000, 1 << 20);
  const Program b = stream_program("b", 6000, 1 << 21);
  const RunResult result = run_mix(machine, {&a, &b}, false);
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_GT(result.apps[0].cycles, 0u);
  EXPECT_GT(result.apps[1].cycles, 0u);
  EXPECT_EQ(result.elapsed_cycles,
            std::max(result.apps[0].cycles, result.apps[1].cycles));
}

TEST(RunMix, ContentionSlowsAppsDown) {
  MachineConfig machine = amd_phenom_ii();
  machine.dram_bytes_per_cycle = 1.0;  // very tight channel
  const Program p = stream_program("s", 20000, 1 << 22, /*compute=*/0);
  const RunResult alone = run_single(machine, p, false);

  std::vector<Program> copies;
  std::vector<const Program*> ptrs;
  for (int i = 0; i < 4; ++i) {
    copies.push_back(p);
    copies.back().name = "s" + std::to_string(i);
    workloads::rebase_program(copies.back(),
                              workloads::core_address_offset(i));
  }
  for (const auto& c : copies) ptrs.push_back(&c);
  const RunResult mixed = run_mix(machine, ptrs, false);
  for (const AppResult& app : mixed.apps) {
    EXPECT_GT(app.cycles, alone.apps[0].cycles);
  }
}

TEST(RunParallel, ShardsScaleWhenNotBandwidthBound) {
  MachineConfig machine = intel_sandybridge();
  const Program one = stream_program("w", 40000, 1 << 16, /*compute=*/20);
  const RunResult single = run_parallel(machine, {one}, false);

  std::vector<Program> shards;
  for (int i = 0; i < 4; ++i) {
    Program s = stream_program("w", 10000, 1 << 16, 20);
    workloads::rebase_program(s, workloads::core_address_offset(i));
    shards.push_back(std::move(s));
  }
  const RunResult quad = run_parallel(machine, shards, false);
  const double speedup = static_cast<double>(single.elapsed_cycles) /
                         static_cast<double>(quad.elapsed_cycles);
  EXPECT_GT(speedup, 3.0);
}

TEST(RunResult, BandwidthComputation) {
  RunResult r;
  r.freq_ghz = 2.0;
  r.elapsed_cycles = 1000;
  r.dram.demand_lines = 100;  // 6400 bytes over 1000 cycles at 2 GHz
  EXPECT_NEAR(r.bandwidth_gbps(), 6400.0 / 1000.0 * 2.0, 1e-9);
  RunResult empty;
  EXPECT_EQ(empty.bandwidth_gbps(), 0.0);
}

}  // namespace
}  // namespace re::sim
